"""Benchmark E13 — realistic tapered-chain gate edges and the PWL model."""

from repro.experiments import realistic_input


def test_realistic_input(benchmark, publish):
    result = benchmark.pedantic(realistic_input.run, rounds=1, iterations=1)
    publish("realistic_input", result.format_report())

    # The PWL-drive closed form recovers paper-level accuracy on a real
    # (non-ramp) gate waveform; the effective-ramp bridge stays loose.
    assert abs(result.percent_error(result.pwl_peak)) < 8.0
    assert abs(result.percent_error(result.pwl_peak)) < abs(
        result.percent_error(result.effective_ramp_peak)
    )
