"""Extension benchmarks — E10 (power rail), E11 (coupled pins), E12 (skew).

These validate the paper's asides and design implications end-to-end; see
DESIGN.md Section 5.
"""

import pytest

from repro.experiments import mutual_coupling, power_rail, skew


def test_power_rail_duality(benchmark, publish):
    result = benchmark.pedantic(power_rail.run, rounds=1, iterations=1)
    publish("power_rail", result.format_report())

    # Paper: "The SSN at the power-supply node can be analyzed similarly."
    assert result.max_droop_error() < 7.0
    # Paper's implicit idealization: pull-ups negligible on the rising edge.
    assert result.max_crowbar_effect() < 0.5


def test_mutual_coupling(benchmark, publish):
    result = benchmark.pedantic(mutual_coupling.run, rounds=1, iterations=1)
    publish("mutual_coupling", result.format_report())

    strongest = result.points[-1]
    assert strongest.naive_percent_error < -15.0
    for point in result.points:
        assert abs(point.corrected_percent_error) < 5.0


def test_skew_schedule(benchmark, publish):
    result = benchmark.pedantic(skew.run, rounds=1, iterations=1)
    publish("skew", result.format_report())

    assert result.simulated_skewed_peak <= result.budget * 1.05
    assert result.simulated_simultaneous_peak > result.budget
    assert result.simulated_skewed_peak == pytest.approx(
        result.plan.peak_noise, rel=0.08
    )
