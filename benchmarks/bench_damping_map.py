"""Benchmark E7 — Eqn (27), the critical capacitance and region map.

Timed region: the analytic damping map (no circuit simulation — this is
the cheap end of the harness and shows the closed-form model's cost).
"""

import pytest

from repro.experiments import damping_map


def test_damping_map(benchmark, publish):
    result = benchmark.pedantic(damping_map.run, rounds=3, iterations=1)
    publish("damping_map", result.format_report())

    assert result.loglog_slope == pytest.approx(2.0, abs=1e-6)
    for row in result.rows:
        assert row.zeta_at_crit == pytest.approx(1.0, rel=1e-9)
        assert row.overshoot_above > 1.0
        assert row.overshoot_below <= 1.0 + 1e-9
