"""Benchmark E3 — regenerate paper Fig. 3 (model shoot-out vs driver count).

Timed region: the full N sweep — ten golden simulations plus all five
estimators at every point.
"""

from repro.experiments import fig3_model_comparison
from repro.experiments.fig3_model_comparison import THIS_WORK


def test_fig3_model_comparison(benchmark, publish):
    result = benchmark.pedantic(fig3_model_comparison.run, rounds=1, iterations=1)
    publish("fig3_model_comparison", result.format_report())

    # Paper claim: "The new model is shown to be the most accurate with
    # different number of simultaneously switching drivers."
    assert result.best_estimator() == THIS_WORK
    assert result.summaries[THIS_WORK].max_abs_percent < 7.0
    assert result.summaries["vemuru-1996"].mean_abs_percent > result.summaries[THIS_WORK].mean_abs_percent
    assert result.summaries["song-1999"].mean_abs_percent > result.summaries[THIS_WORK].mean_abs_percent
