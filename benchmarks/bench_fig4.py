"""Benchmark E4 — regenerate paper Fig. 4 (the capacitance effect).

Timed region: both pad configurations' full N sweeps (twenty golden
simulations) plus the LC and L-only estimates at every point.
"""

from repro.experiments import fig4_capacitance
from repro.experiments.fig4_capacitance import L_ONLY, WITH_C


def test_fig4_capacitance(benchmark, publish):
    result = benchmark.pedantic(fig4_capacitance.run, rounds=1, iterations=1)
    publish("fig4_capacitance", result.format_report())

    for panel in result.panels:
        l_only = panel.errors_by_region(L_ONLY)
        lc = panel.errors_by_region(WITH_C)
        # Paper: the L-only model "performs adequately in the over-damped
        # and critically damped regions. But the error is significant in
        # the under-damped region."
        assert l_only["under-damped"] > 10.0
        assert l_only["not-under-damped"] < 5.0
        # Paper: the LC model is "within 3%" with the authors' BSIM3 fit;
        # our golden-device substitution lands within ~6% (EXPERIMENTS.md).
        assert lc["under-damped"] < 7.0
        assert lc["not-under-damped"] < 4.0
