"""Benchmark-harness plumbing.

Each benchmark regenerates one of the paper's tables/figures and both
prints the rows (visible with ``pytest benchmarks/ --benchmark-only -s``)
and writes them to ``benchmarks/reports/<name>.txt`` so the artifacts
survive the run either way.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="perf benchmarks: tiny workloads and no timing assertions "
        "(CI smoke — catches engine breakage, not regressions)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


class WallClock:
    """Accumulates named wall-clock timings for the perf benchmarks."""

    def __init__(self):
        self.timings: dict[str, float] = {}

    def measure(self, name: str, fn, *args, **kwargs):
        """Time one call of ``fn`` and record it under ``name``."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.timings[name] = time.perf_counter() - start
        return result

    def speedup(self, before: str, after: str) -> float:
        return self.timings[before] / self.timings[after]


@pytest.fixture
def wall_clock() -> WallClock:
    return WallClock()


@pytest.fixture
def perf_report():
    """Merge the machine-readable perf summary into ``BENCH_perf.json``
    at the repo root (the regression-tracking artifact).

    Top-level sections are merged rather than the file overwritten, so
    the perf benchmarks can contribute sections from separate tests.
    """

    def _write(payload: dict) -> None:
        path = REPO_ROOT / "BENCH_perf.json"
        merged = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text())
            except ValueError:
                merged = {}
        merged.update(payload)
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")

    return _write


@pytest.fixture
def publish(report_dir):
    """Write a report file and echo it to stdout."""

    def _publish(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _publish
