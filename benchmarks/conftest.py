"""Benchmark-harness plumbing.

Each benchmark regenerates one of the paper's tables/figures and both
prints the rows (visible with ``pytest benchmarks/ --benchmark-only -s``)
and writes them to ``benchmarks/reports/<name>.txt`` so the artifacts
survive the run either way.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def publish(report_dir):
    """Write a report file and echo it to stdout."""

    def _publish(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _publish
