"""Benchmark E17 — peak SSN vs ground capacitance (worst-case decap)."""

from repro.experiments import capacitance_sweep


def test_capacitance_sweep(benchmark, publish):
    result = benchmark.pedantic(capacitance_sweep.run, rounds=1, iterations=1)
    publish("capacitance_sweep", result.format_report())

    # Peak SSN has an interior maximum in C: a badly sized ground "decap"
    # makes things worse (the Eqn 27 under-damping trap).
    assert result.model_has_interior_maximum()
    # Table 1 + the post-ramp extension track simulation across the arc.
    assert result.max_abs_extended_error() < 4.0