"""Speed benchmarks: the analytic model vs the golden simulation.

The paper's practical pitch is that a closed-form SSN estimate replaces a
SPICE run.  These benchmarks quantify the gap on this repository's own
substrate: microseconds (Eqn 10 / Table 1) vs around a second (transient
simulation) per configuration — five to six orders of magnitude.
"""

from repro.analysis import DriverBankSpec, simulate_ssn
from repro.core import InductiveSsnModel, LcSsnModel, circuit_figure, peak_noise_from_figure
from repro.experiments.common import NOMINAL_GROUND, NOMINAL_RISE_TIME, fitted_models


def _nominal_spec():
    models = fitted_models("tsmc018")
    return models, DriverBankSpec(
        technology=models.technology,
        n_drivers=8,
        inductance=NOMINAL_GROUND.inductance,
        capacitance=NOMINAL_GROUND.capacitance,
        rise_time=NOMINAL_RISE_TIME,
    )


def test_eqn10_evaluation_speed(benchmark):
    models, spec = _nominal_spec()
    vdd = models.technology.vdd
    z = circuit_figure(spec.n_drivers, spec.inductance, spec.slope)
    result = benchmark(peak_noise_from_figure, z, models.asdm, vdd)
    assert result > 0


def test_table1_evaluation_speed(benchmark):
    models, spec = _nominal_spec()
    vdd = models.technology.vdd

    def evaluate():
        return LcSsnModel(
            models.asdm, spec.n_drivers, spec.inductance, spec.capacitance, vdd,
            spec.rise_time,
        ).peak_voltage()

    assert benchmark(evaluate) > 0


def test_inductive_waveform_speed(benchmark):
    import numpy as np

    models, spec = _nominal_spec()
    model = InductiveSsnModel(
        models.asdm, spec.n_drivers, spec.inductance, models.technology.vdd, spec.rise_time
    )
    ts = np.linspace(0, spec.rise_time, 1000)
    out = benchmark(model.voltage, ts)
    assert np.nanmax(out) > 0


def test_golden_simulation_speed(benchmark):
    _, spec = _nominal_spec()
    sim = benchmark.pedantic(simulate_ssn, args=(spec,), rounds=1, iterations=1)
    assert sim.peak_voltage > 0
