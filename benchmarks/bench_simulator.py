"""Simulator-substrate benchmarks: transient cost scaling.

Not a paper artifact, but the number that justifies the collapsed-driver
harness: explicit N-driver netlists grow the MNA system and the Newton
work, while the collapsed equivalent stays constant-size.
"""

import pytest

from repro.analysis import DriverBankSpec, simulate_ssn
from repro.experiments.common import NOMINAL_GROUND, NOMINAL_RISE_TIME
from repro.process import TSMC018


def _spec(n, collapse):
    return DriverBankSpec(
        technology=TSMC018,
        n_drivers=n,
        inductance=NOMINAL_GROUND.inductance,
        capacitance=NOMINAL_GROUND.capacitance,
        rise_time=NOMINAL_RISE_TIME,
        collapse=collapse,
    )


@pytest.mark.parametrize("n", [2, 8])
def test_explicit_bank_simulation(benchmark, n):
    sim = benchmark.pedantic(
        simulate_ssn, args=(_spec(n, collapse=False),), rounds=1, iterations=1
    )
    assert sim.peak_voltage > 0


def test_collapsed_bank_simulation(benchmark):
    sim = benchmark.pedantic(
        simulate_ssn, args=(_spec(8, collapse=True),), rounds=1, iterations=1
    )
    assert sim.peak_voltage > 0
