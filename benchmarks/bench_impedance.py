"""Benchmark E14 — ground-path impedance vs damping regions."""

import pytest

from repro.core import DampingRegion
from repro.experiments import impedance


def test_impedance_map(benchmark, publish):
    result = benchmark.pedantic(impedance.run, rounds=1, iterations=1)
    publish("impedance", result.format_report())

    for point in result.points:
        # Parallel resonance pinned at f0; height set by the drivers.
        assert point.peak_frequency == pytest.approx(
            result.resonant_frequency, rel=0.05
        )
        # Q = 1/(2*zeta): the Eqn 15 damping ratio, measured in ohms.
        assert point.peaking_ratio == pytest.approx(1.0 / (2.0 * point.zeta), rel=0.20)
        if point.region is DampingRegion.OVERDAMPED:
            assert point.peaking_ratio < 1.0
