"""Benchmark E2 — regenerate paper Fig. 2 (waveform validation).

Timed region: the full experiment, dominated by the golden transient
simulation the closed forms are judged against.
"""

from repro.experiments import fig2_waveforms


def test_fig2_waveforms(benchmark, publish):
    result = benchmark.pedantic(fig2_waveforms.run, rounds=1, iterations=1)
    publish("fig2_waveforms", result.format_report())

    # Paper claim: "both the SSN voltage formula and the current formula
    # match the simulation results very well."
    assert result.current_match.normalized_max_error < 0.06
    assert result.ssn_match.normalized_max_error < 0.20
