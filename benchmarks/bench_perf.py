"""Benchmark P1 — engine fast path vs the frozen seed engine.

Times the cached-assembly engine against ``legacy_reference=True`` (a
byte-for-byte preservation of the seed Newton loop and device evaluation)
on the two workloads the perf work targets:

* one golden transient of a mid-size driver bank, and
* a Fig. 3-class driver-count sweep.

Both engines run the identical workload; parity of every peak is checked
to 1e-9 V before speedups are reported.  The summary lands in
``BENCH_perf.json`` at the repo root for regression tracking.

The sweep strides N over 1..30 (the full Fig. 3 range) rather than
running every count, purely to keep the legacy-engine half of the
comparison inside a CI-friendly minute; the fast engine handles the
dense sweep in seconds (see ``bench_fig3``).
"""

import dataclasses

import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.process import TSMC018
from repro.analysis.simulate import simulate_ssn, simulate_ssn_cache_clear
from repro.spice.transient import TransientOptions

#: Required end-to-end gain of the fast path over the seed engine.
MIN_SPEEDUP = 3.0
#: Peak-voltage agreement between the two engines.
PARITY_TOL = 1e-9

SINGLE_N = 10
SWEEP_COUNTS = list(range(1, 31, 4))  # Fig. 3 range, strided for runtime

LEGACY = TransientOptions(legacy_reference=True)


def _spec(tech, n):
    return DriverBankSpec(
        technology=tech, n_drivers=n, inductance=5e-9, rise_time=0.2e-9
    )


def _run_single(tech, options):
    return simulate_ssn(_spec(tech, SINGLE_N), options=options).peak_voltage


def _run_sweep(tech, options):
    base = _spec(tech, 1)
    return [
        simulate_ssn(dataclasses.replace(base, n_drivers=n), options=options).peak_voltage
        for n in SWEEP_COUNTS
    ]


@pytest.fixture(scope="module")
def tech018():
    return TSMC018


def test_fastpath_speedup(tech018, wall_clock, perf_report, publish):
    simulate_ssn_cache_clear()

    legacy_peak = wall_clock.measure("single_legacy", _run_single, tech018, LEGACY)
    fast_peak = wall_clock.measure("single_fast", _run_single, tech018, None)
    assert abs(fast_peak - legacy_peak) <= PARITY_TOL

    legacy_peaks = wall_clock.measure("sweep_legacy", _run_sweep, tech018, LEGACY)
    fast_peaks = wall_clock.measure("sweep_fast", _run_sweep, tech018, None)
    for lp, fp in zip(legacy_peaks, fast_peaks):
        assert abs(fp - lp) <= PARITY_TOL

    single_speedup = wall_clock.speedup("single_legacy", "single_fast")
    sweep_speedup = wall_clock.speedup("sweep_legacy", "sweep_fast")

    payload = {
        "parity_tol_volts": PARITY_TOL,
        "single_transient": {
            "n_drivers": SINGLE_N,
            "legacy_seconds": wall_clock.timings["single_legacy"],
            "fast_seconds": wall_clock.timings["single_fast"],
            "speedup": single_speedup,
        },
        "driver_sweep": {
            "counts": SWEEP_COUNTS,
            "legacy_seconds": wall_clock.timings["sweep_legacy"],
            "fast_seconds": wall_clock.timings["sweep_fast"],
            "speedup": sweep_speedup,
        },
    }
    perf_report(payload)

    lines = ["engine fast path vs seed engine", ""]
    for label, key in [("single transient (N=10)", "single_transient"),
                       ("driver sweep (N=1..30)", "driver_sweep")]:
        row = payload[key]
        lines.append(
            f"{label}: legacy {row['legacy_seconds']:.2f}s -> "
            f"fast {row['fast_seconds']:.2f}s  ({row['speedup']:.1f}x)"
        )
    publish("bench_perf", "\n".join(lines) + "\n")

    assert single_speedup >= MIN_SPEEDUP
    assert sweep_speedup >= MIN_SPEEDUP
