"""Benchmark P1 — engine fast path and batched ensemble vs their baselines.

Four regression-tracked comparisons:

* the cached-assembly scalar engine against ``legacy_reference=True`` (a
  byte-for-byte preservation of the seed Newton loop and device
  evaluation), on one golden transient and a Fig. 3-class sweep;
* the batched lockstep engine (one vectorized Newton loop for the whole
  ensemble) against the scalar fast path it shares its numerics with, on
  the same driver-count sweep;
* the sparse linear-algebra tier (CSC assembly + cached-pattern ``splu``)
  against the dense LAPACK path on generated large-N RC-ladder networks
  (``sparse_scaling``); and
* the adaptive batched lockstep engine against per-instance scalar
  adaptive runs on a Fig. 3-class ensemble (``adaptive_batch``); and
* the fitted surrogate tier against a cold scalar fast-path compute on
  in-region single-point queries, with the fitted peak error gated
  against the golden MNA and out-of-region routing proven bit-exact
  (``surrogate_latency``).

Every speedup is gated on peak parity to 1e-9 V first.  The summaries
merge into ``BENCH_perf.json`` at the repo root, together with host
metadata (CPU count, numpy version, commit) so the perf trajectory stays
interpretable across machines.

The sweep strides N over 1..30 (the full Fig. 3 range) rather than
running every count, purely to keep the legacy-engine half of the
comparison inside a CI-friendly minute; the fast engine handles the
dense sweep in seconds (see ``bench_fig3``).

``pytest benchmarks/bench_perf.py --quick`` shrinks every workload to
smoke-test size and drops the timing assertions — CI uses it to catch
engine breakage without asserting wall-clock behavior on shared runners.
"""

import dataclasses
import os
import pathlib
import platform
import subprocess
import time

import numpy as np
import pytest

from repro.analysis.campaign import CampaignConfig, CampaignRunner
from repro.analysis.driver_bank import DriverBankSpec
from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.observability import trace as obs_trace
from repro.process import TSMC018
from repro.analysis.simulate import (
    simulate_many,
    simulate_ssn,
    simulate_ssn_cache_clear,
)
from repro.spice.mna import SPARSE_AUTO_THRESHOLD, sparse_available
from repro.spice.transient import TransientOptions, transient
from repro.testing.netlists import ladder_circuit

#: Required end-to-end gain of the fast path over the seed engine.
MIN_SPEEDUP = 3.0
#: Required gain of the batched ensemble over the scalar fast path.
MIN_BATCH_SPEEDUP = 3.0
#: Required gain of sparse splu over dense LAPACK on the largest ladder.
MIN_SPARSE_SPEEDUP = 5.0
#: Required gain of an in-region surrogate query over the scalar fast path.
MIN_SURROGATE_SPEEDUP = 100.0
#: Worst in-region peak error the surrogate may show vs the golden MNA.
MAX_SURROGATE_ERROR_PERCENT = 3.0
#: Peak-voltage agreement between any two engines.
PARITY_TOL = 1e-9
#: Worst-case share of an untraced run the disabled instrumentation may
#: cost (the observability package's hot-path budget).
MAX_DISABLED_OVERHEAD = 0.03

SINGLE_N = 10
SWEEP_COUNTS = list(range(1, 31, 4))  # Fig. 3 range, strided for runtime

#: Ladder sizes for the sparse-scaling comparison.  The auto threshold
#: sits at SPARSE_AUTO_THRESHOLD unknowns; the tier is sized for the
#: largest entry, where dense LAPACK pays the full O(n^3) toll.
SPARSE_LADDER_SECTIONS = [150, 300, 600]
SPARSE_TSTOP = 0.5e-9
SPARSE_DT = 0.02e-9

#: Adaptive ensemble: denser Fig. 3 stride than the fixed-step sweep —
#: the scalar baseline repeats the whole step-doubling controller per
#: instance, so a wider ensemble is what the batch path amortizes.
ADAPTIVE_COUNTS = list(range(1, 31, 2))

#: --quick smoke sizes: still exercises every engine, finishes in seconds.
QUICK_SINGLE_N = 3
QUICK_SWEEP_COUNTS = [1, 4]
QUICK_SPARSE_SECTIONS = [SPARSE_AUTO_THRESHOLD + 10]
QUICK_ADAPTIVE_COUNTS = [1, 4]

#: Timing repetitions for the batch comparison; the hosts this runs on
#: are shared and noisy, so each side reports its best of several runs.
TIMING_REPS = 3

LEGACY = TransientOptions(legacy_reference=True)


def _host_metadata() -> dict:
    """Machine context stamped into ``BENCH_perf.json`` with every run."""
    commit = "unknown"
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "commit": commit,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _spec(tech, n):
    return DriverBankSpec(
        technology=tech, n_drivers=n, inductance=5e-9, rise_time=0.2e-9
    )


def _run_single(tech, options, n):
    return simulate_ssn(_spec(tech, n), options=options).peak_voltage


def _run_sweep(tech, options, counts):
    base = _spec(tech, 1)
    return [
        simulate_ssn(dataclasses.replace(base, n_drivers=n), options=options).peak_voltage
        for n in counts
    ]


def _best_of(wall_clock, name, fn, reps):
    """Record ``fn``'s best wall clock over ``reps`` runs; return last result."""
    best, result = None, None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    wall_clock.timings[name] = best
    return result


@pytest.fixture(scope="module")
def tech018():
    return TSMC018


def test_fastpath_speedup(tech018, wall_clock, perf_report, publish, quick):
    simulate_ssn_cache_clear()
    single_n = QUICK_SINGLE_N if quick else SINGLE_N
    counts = QUICK_SWEEP_COUNTS if quick else SWEEP_COUNTS
    reps = 1 if quick else TIMING_REPS

    # Every timed side clears the memo first so each rep re-runs the full
    # compute; min-of-N then discards cold-start and scheduler noise, the
    # same protocol the batch/adaptive sections already use.
    def single(options):
        simulate_ssn_cache_clear()
        return _run_single(tech018, options, single_n)

    def sweep(options):
        simulate_ssn_cache_clear()
        return _run_sweep(tech018, options, counts)

    legacy_peak = _best_of(wall_clock, "single_legacy", lambda: single(LEGACY), reps)
    fast_peak = _best_of(wall_clock, "single_fast", lambda: single(None), reps)
    assert abs(fast_peak - legacy_peak) <= PARITY_TOL

    legacy_peaks = _best_of(wall_clock, "sweep_legacy", lambda: sweep(LEGACY), reps)
    fast_peaks = _best_of(wall_clock, "sweep_fast", lambda: sweep(None), reps)
    for lp, fp in zip(legacy_peaks, fast_peaks):
        assert abs(fp - lp) <= PARITY_TOL

    single_speedup = wall_clock.speedup("single_legacy", "single_fast")
    sweep_speedup = wall_clock.speedup("sweep_legacy", "sweep_fast")

    if quick:
        # Smoke mode: engines and parity exercised, but neither the timing
        # assertions nor the regression artifact reflect real workloads.
        return

    payload = {
        "host": _host_metadata(),
        "parity_tol_volts": PARITY_TOL,
        "single_transient": {
            "n_drivers": single_n,
            "legacy_seconds": wall_clock.timings["single_legacy"],
            "fast_seconds": wall_clock.timings["single_fast"],
            "speedup": single_speedup,
            "timing_reps": reps,
        },
        "driver_sweep": {
            "counts": counts,
            "legacy_seconds": wall_clock.timings["sweep_legacy"],
            "fast_seconds": wall_clock.timings["sweep_fast"],
            "speedup": sweep_speedup,
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    lines = ["engine fast path vs seed engine", ""]
    for label, key in [(f"single transient (N={single_n})", "single_transient"),
                       ("driver sweep", "driver_sweep")]:
        row = payload[key]
        lines.append(
            f"{label}: legacy {row['legacy_seconds']:.2f}s -> "
            f"fast {row['fast_seconds']:.2f}s  ({row['speedup']:.1f}x)"
        )
    publish("bench_perf", "\n".join(lines) + "\n")

    assert single_speedup >= MIN_SPEEDUP
    assert sweep_speedup >= MIN_SPEEDUP


def test_batched_sweep_speedup(tech018, wall_clock, perf_report, publish, quick):
    counts = QUICK_SWEEP_COUNTS if quick else SWEEP_COUNTS
    base = _spec(tech018, 1)
    specs = [dataclasses.replace(base, n_drivers=n) for n in counts]

    def scalar_run():
        simulate_ssn_cache_clear()
        return [s.peak_voltage for s in simulate_many(specs, engine="scalar")]

    def batch_run():
        simulate_ssn_cache_clear()
        return [s.peak_voltage for s in simulate_many(specs, engine="batch")]

    # Warm both paths (model constant caches, lazy imports) before timing.
    scalar_run()
    batch_run()

    reps = 1 if quick else TIMING_REPS
    scalar_peaks = _best_of(wall_clock, "batched_sweep_scalar", scalar_run, reps)
    batch_peaks = _best_of(wall_clock, "batched_sweep_batch", batch_run, reps)
    for sp, bp in zip(scalar_peaks, batch_peaks):
        assert abs(bp - sp) <= PARITY_TOL

    speedup = wall_clock.speedup("batched_sweep_scalar", "batched_sweep_batch")
    if quick:
        return

    payload = {
        "batched_sweep": {
            "counts": counts,
            "scalar_seconds": wall_clock.timings["batched_sweep_scalar"],
            "batch_seconds": wall_clock.timings["batched_sweep_batch"],
            "speedup": speedup,
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    publish(
        "bench_perf_batched",
        "batched ensemble engine vs scalar fast path\n\n"
        f"driver sweep (N={counts[0]}..{counts[-1]}): "
        f"scalar {wall_clock.timings['batched_sweep_scalar']:.2f}s -> "
        f"batch {wall_clock.timings['batched_sweep_batch']:.2f}s  "
        f"({speedup:.1f}x)\n",
    )

    assert speedup >= MIN_BATCH_SPEEDUP


def test_sparse_scaling(wall_clock, perf_report, publish, quick):
    """Sparse tier vs dense LAPACK on generated large-N ladder networks.

    Each ladder runs once per backend on the same fixed grid; parity is
    asserted bitwise on the time axis and to 1e-9 V on every node before
    any timing is compared.  ``--quick`` shrinks to one ladder just above
    the auto threshold and asserts the sparse path *engages* (telemetry
    records splu factorizations and the sparse backend) without gating on
    wall clock.  The speedup gate applies to the largest ladder only —
    the size the tier exists for."""
    if not sparse_available():
        pytest.skip("scipy.sparse not importable")
    sections = QUICK_SPARSE_SECTIONS if quick else SPARSE_LADDER_SECTIONS

    rows = []
    for n in sections:
        dense = wall_clock.measure(
            f"sparse_ladder_dense_{n}", transient,
            ladder_circuit(n), SPARSE_TSTOP, SPARSE_DT,
            options=TransientOptions(sparse=False))
        # sparse="auto" (the default), proving the size heuristic engages
        # the tier on its own above the threshold.
        sparse = wall_clock.measure(
            f"sparse_ladder_sparse_{n}", transient,
            ladder_circuit(n), SPARSE_TSTOP, SPARSE_DT)

        assert np.array_equal(dense.times, sparse.times)
        worst = max(
            np.max(np.abs(dense.voltage(node).y - sparse.voltage(node).y))
            for node in dense.node_names
        )
        assert worst <= PARITY_TOL
        assert sparse.telemetry.sparse_factorizations > 0
        assert sparse.telemetry.extras.get("backend_sparse_splu") == 1
        rows.append({
            "sections": n,
            "unknowns": n + 3,
            "steps": len(sparse.times) - 1,
            "dense_seconds": wall_clock.timings[f"sparse_ladder_dense_{n}"],
            "sparse_seconds": wall_clock.timings[f"sparse_ladder_sparse_{n}"],
            "speedup": wall_clock.speedup(
                f"sparse_ladder_dense_{n}", f"sparse_ladder_sparse_{n}"),
            "worst_dv_volts": float(worst),
        })

    if quick:
        return

    payload = {
        "sparse_scaling": {
            "ladders": rows,
            "min_speedup_largest": MIN_SPARSE_SPEEDUP,
        },
    }
    perf_report(payload)

    lines = ["sparse splu tier vs dense LAPACK on RC-ladder networks", ""]
    for row in rows:
        lines.append(
            f"{row['sections']} sections ({row['unknowns']} unknowns): "
            f"dense {row['dense_seconds']:.2f}s -> "
            f"sparse {row['sparse_seconds']:.2f}s  ({row['speedup']:.1f}x)"
        )
    publish("bench_perf_sparse", "\n".join(lines) + "\n")

    assert rows[-1]["speedup"] >= MIN_SPARSE_SPEEDUP


def test_adaptive_batch_speedup(tech018, wall_clock, perf_report, publish, quick):
    """Adaptive batched lockstep vs per-instance scalar adaptive runs.

    Both sides run the same step-doubling controller over the same Fig. 3
    ensemble; the batch path phase-aligns the big/half/half solve triplet
    across instances while each keeps its own (t, h).  Peak parity to
    1e-9 V gates the comparison, and the batch results must prove the
    lockstep path actually ran (mask_steps > 0, zero fallbacks)."""
    counts = QUICK_ADAPTIVE_COUNTS if quick else ADAPTIVE_COUNTS
    base = _spec(tech018, 1)
    specs = [dataclasses.replace(base, n_drivers=n) for n in counts]
    adaptive = TransientOptions(adaptive=True)

    def scalar_run():
        simulate_ssn_cache_clear()
        return simulate_many(specs, options=adaptive, engine="scalar")

    def batch_run():
        simulate_ssn_cache_clear()
        return simulate_many(specs, options=adaptive, engine="batch")

    # Warm both paths (model constant caches, lazy imports) before timing.
    scalar_run()
    batch_run()

    reps = 1 if quick else TIMING_REPS
    scalar_res = _best_of(wall_clock, "adaptive_scalar", scalar_run, reps)
    batch_res = _best_of(wall_clock, "adaptive_batch", batch_run, reps)

    for s, b in zip(scalar_res, batch_res):
        assert abs(b.peak_voltage - s.peak_voltage) <= PARITY_TOL
        assert s.telemetry.accepted_steps == b.telemetry.accepted_steps
    assert all(b.telemetry.mask_steps > 0 for b in batch_res)
    assert all(b.telemetry.batch_fallbacks == 0 for b in batch_res)

    speedup = wall_clock.speedup("adaptive_scalar", "adaptive_batch")
    if quick:
        return

    payload = {
        "adaptive_batch": {
            "counts": counts,
            "scalar_seconds": wall_clock.timings["adaptive_scalar"],
            "batch_seconds": wall_clock.timings["adaptive_batch"],
            "speedup": speedup,
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    publish(
        "bench_perf_adaptive",
        "adaptive batched lockstep vs scalar adaptive runs\n\n"
        f"driver ensemble (N={counts[0]}..{counts[-1]}, "
        f"{len(counts)} instances): "
        f"scalar {wall_clock.timings['adaptive_scalar']:.2f}s -> "
        f"batch {wall_clock.timings['adaptive_batch']:.2f}s  "
        f"({speedup:.1f}x)\n",
    )

    assert speedup >= MIN_BATCH_SPEEDUP


def test_surrogate_latency(tech018, wall_clock, perf_report, publish, quick):
    """Surrogate tier vs the scalar fast path on single-point queries.

    The serving story's top rung: fit one surrogate over the stock box,
    then show (a) an in-region query answers >= 100x faster than a cold
    scalar fast-path simulation while staying within 3% of the golden MNA
    peak, and (b) an out-of-region query is *provably* routed to the full
    engine — ``surrogate_refusals == 1`` in its telemetry and waveform
    parity to 1e-9 V against a direct scalar run.  The timed surrogate
    path is the registry's full serving cost (model lookup + validity
    checks + closed form), not just the formula evaluation.
    """
    from repro.surrogate import default_registry, fit_surrogate

    box = dict(n_drivers=(2, 12), inductance=(2e-9, 8e-9),
               rise_time=(0.2e-9, 0.8e-9))
    samples = 2  # corners + center: 9 golden training sims
    model = fit_surrogate(tech018, samples_per_knob=samples, **box)
    assert model.error.max_abs_percent <= model.tolerance_percent

    probe = DriverBankSpec(technology=tech018, n_drivers=7,
                           inductance=4e-9, rise_time=0.5e-9)
    registry = default_registry()
    registry.clear()
    registry.register(model)
    try:
        # -- in-region: surrogate answers, and tracks the golden peak ----
        [hit] = simulate_many([probe], engine="surrogate")
        assert hit.telemetry.extras.get("surrogate_hits") == 1
        simulate_ssn_cache_clear()
        golden = simulate_ssn(probe)
        error_percent = 100.0 * abs(hit.peak_voltage - golden.peak_voltage) / (
            golden.peak_voltage)
        assert error_percent <= MAX_SURROGATE_ERROR_PERCENT

        # -- latency: registry serving cost vs one cold scalar compute ---
        def scalar_once():
            simulate_ssn_cache_clear()
            return simulate_ssn(probe).peak_voltage

        scalar_once()  # warm model caches and lazy imports before timing
        reps = 1 if quick else TIMING_REPS
        _best_of(wall_clock, "surrogate_scalar", scalar_once, reps)

        queries = 10 if quick else 1000

        def answer_loop():
            answer = None
            for _ in range(queries):
                answer = registry.answer(probe)
            return answer

        assert answer_loop() is not None
        _best_of(wall_clock, "surrogate_answer_loop", answer_loop, reps)
        wall_clock.timings["surrogate_query"] = (
            wall_clock.timings["surrogate_answer_loop"] / queries)
        speedup = wall_clock.speedup("surrogate_scalar", "surrogate_query")

        # -- out-of-region: provably routed to the full engine -----------
        outside = dataclasses.replace(probe, n_drivers=40)
        [routed] = simulate_many([outside], engine="surrogate")
        assert routed.telemetry.extras.get("surrogate_refusals") == 1
        simulate_ssn_cache_clear()
        direct = simulate_ssn(outside)
        worst_dv = max(
            routed.ssn.max_abs_difference(direct.ssn),
            routed.output_voltage.max_abs_difference(direct.output_voltage),
        )
        assert worst_dv <= PARITY_TOL
        assert abs(routed.peak_voltage - direct.peak_voltage) <= PARITY_TOL
    finally:
        registry.clear()

    if quick:
        return

    payload = {
        "surrogate_latency": {
            "box": model.region.as_payload(),
            "probe": {"n_drivers": probe.n_drivers,
                      "inductance": probe.inductance,
                      "rise_time": probe.rise_time},
            "training_points": model.n_training,
            "fitted_max_error_percent": model.error.max_abs_percent,
            "probe_error_percent": error_percent,
            "scalar_seconds": wall_clock.timings["surrogate_scalar"],
            "query_seconds": wall_clock.timings["surrogate_query"],
            "queries_per_rep": queries,
            "speedup": speedup,
            "min_speedup": MIN_SURROGATE_SPEEDUP,
            "max_error_percent": MAX_SURROGATE_ERROR_PERCENT,
            "out_of_region_worst_dv_volts": float(worst_dv),
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    publish(
        "bench_perf_surrogate",
        "surrogate tier vs scalar fast path on single-point queries\n\n"
        f"in-region probe (N={probe.n_drivers}): scalar "
        f"{wall_clock.timings['surrogate_scalar'] * 1e3:.1f} ms -> surrogate "
        f"{wall_clock.timings['surrogate_query'] * 1e6:.1f} us per query "
        f"({speedup:.0f}x), peak error {error_percent:.2f}% "
        f"(bound {model.error.max_abs_percent:.2f}%)\n"
        f"out-of-region probe: routed to the full engine, waveform parity "
        f"{worst_dv:.1e} V\n",
    )

    assert speedup >= MIN_SURROGATE_SPEEDUP
    assert error_percent <= MAX_SURROGATE_ERROR_PERCENT


def test_tracing_overhead(tech018, wall_clock, perf_report, publish, quick):
    """Observability must be free when off and cheap when on.

    Three measurements on one golden transient:

    * the untraced wall clock (instrumentation present but disabled — the
      shape every production run has);
    * the same workload under full-detail tracing + metrics, with peak
      parity asserted (reported, not gated: enabled tracing buys data
      with time);
    * the disabled no-op primitives micro-timed, then scaled by the span
      count the traced run proved is on the hot path.  That bounds the
      instrumentation's share of the untraced run without needing an
      uninstrumented build to diff against, and the bound is a ratio of
      back-to-back timings on one host, so shared-runner noise largely
      cancels — it is asserted even in ``--quick`` mode.
    """
    single_n = QUICK_SINGLE_N if quick else SINGLE_N

    def run():
        simulate_ssn_cache_clear()
        return simulate_ssn(_spec(tech018, single_n)).peak_voltage

    run()  # warm model caches and lazy imports before timing

    reps = 1 if quick else TIMING_REPS
    peak_off = _best_of(wall_clock, "tracing_off", run, reps)

    tracer = obs_trace.enable_tracing(detail="full")
    obs_metrics.enable_metrics()
    try:
        peak_on = _best_of(wall_clock, "tracing_on", run, reps)
    finally:
        obs_trace.disable_tracing()
        obs_metrics.disable_metrics()
    assert abs(peak_on - peak_off) <= PARITY_TOL
    assert tracer.spans, "full-detail tracing recorded no spans"

    # Disabled-path cost per instrumented site: one span() call (returns
    # the shared no-op span after a single global read) plus one metric
    # observation (a no-op after the same read).
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        obs_trace.span("newton_solve", level="newton", mode="tran", t=0.0)
        obs_metrics.observe("repro_newton_iterations_per_solve", 3)
    per_site = (time.perf_counter() - start) / calls
    # Sites that still execute with tracing disabled: everything except
    # the per-iteration assembly/LU spans, which sit behind the hoisted
    # wants("full") gate and cost one bool check when off.  2x that count
    # is a safety margin (every span site pairs with at most one metric
    # observation).
    hot_sites = sum(
        1 for sp in tracer.spans if sp.name not in ("assembly", "lu_solve")
    )
    disabled_fraction = (
        2 * hot_sites * per_site / wall_clock.timings["tracing_off"]
    )
    enabled_fraction = wall_clock.speedup("tracing_on", "tracing_off") - 1.0

    assert disabled_fraction < MAX_DISABLED_OVERHEAD

    if quick:
        return

    payload = {
        "tracing_overhead": {
            "n_drivers": single_n,
            "untraced_seconds": wall_clock.timings["tracing_off"],
            "traced_seconds": wall_clock.timings["tracing_on"],
            "traced_spans": len(tracer.spans),
            "disabled_hot_sites": hot_sites,
            "noop_site_seconds": per_site,
            "disabled_overhead_fraction": disabled_fraction,
            "enabled_overhead_fraction": enabled_fraction,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    publish(
        "bench_perf_tracing",
        "observability overhead on one golden transient "
        f"(N={single_n})\n\n"
        f"untraced {wall_clock.timings['tracing_off']:.2f}s -> full-detail "
        f"traced {wall_clock.timings['tracing_on']:.2f}s "
        f"({100 * enabled_fraction:+.1f}%, {len(tracer.spans)} spans)\n"
        f"disabled-instrumentation bound: {100 * disabled_fraction:.2f}% "
        f"of the untraced run (budget {100 * MAX_DISABLED_OVERHEAD:.0f}%)\n",
    )


def test_events_overhead(tech018, wall_clock, perf_report, publish, quick,
                         tmp_path):
    """The event journal must be free when off and cheap when on.

    Three measurements on one checkpointed campaign — the workload that
    crosses the most journal sites per run (chunk lifecycle, checkpoint
    publication, pool adoption):

    * the journal-off wall clock (emit sites present but disabled — the
      shape every direct run has);
    * the same campaign with a durable file-backed journal enabled, with
      peak parity asserted; the recorded event count is the *proof* of
      how many emit sites the run actually crosses;
    * the disabled :func:`~repro.observability.events.emit` no-op
      micro-timed, then scaled by the proven site count.  That bounds the
      disabled journal's share of the run as a ratio of back-to-back
      timings on one host (shared-runner noise largely cancels), so it is
      asserted even in ``--quick`` mode.
    """
    counts = QUICK_SWEEP_COUNTS if quick else SWEEP_COUNTS
    reps = 1 if quick else TIMING_REPS
    ckpt = tmp_path / "campaign.jsonl"
    base = _spec(tech018, 1)
    specs = [dataclasses.replace(base, n_drivers=n) for n in counts]

    def run():
        simulate_ssn_cache_clear()
        if ckpt.exists():
            ckpt.unlink()
        runner = CampaignRunner(CampaignConfig(
            chunk_size=2, max_workers=1, engine="scalar",
            backoff_base=0.0, checkpoint=ckpt))
        return [s.peak_voltage for s in runner.run_simulate(specs)]

    run()  # warm model caches and lazy imports before timing

    peaks_off = _best_of(wall_clock, "events_off", run, reps)

    journal = obs_events.enable_events(tmp_path / "events.jsonl")
    try:
        peaks_on = _best_of(wall_clock, "events_on", run, reps)
        recorded = journal.recorded
    finally:
        obs_events.disable_events()
    assert max(abs(a - b) for a, b in zip(peaks_on, peaks_off)) <= PARITY_TOL
    assert recorded > 0, "journaled campaign recorded no events"
    # The journal accumulated across every timing rep; each rep crosses
    # the same deterministic site sequence.
    hot_sites = max(1, recorded // reps)

    # Disabled-path cost per site: one emit() call — a module-global read
    # and a None check after Python packs the keyword attributes.
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        obs_events.emit("chunk_retry", chunk=0, attempt=1)
    per_site = (time.perf_counter() - start) / calls
    # 2x the proven count is a safety margin for sites a clean run skips
    # (retries, degradations, quarantines, flight recording).
    disabled_fraction = (
        2 * hot_sites * per_site / wall_clock.timings["events_off"]
    )
    enabled_fraction = wall_clock.speedup("events_on", "events_off") - 1.0

    assert disabled_fraction < MAX_DISABLED_OVERHEAD

    if quick:
        return

    payload = {
        "events_overhead": {
            "sweep_counts": counts,
            "journal_off_seconds": wall_clock.timings["events_off"],
            "journal_on_seconds": wall_clock.timings["events_on"],
            "events_per_run": hot_sites,
            "noop_emit_seconds": per_site,
            "disabled_overhead_fraction": disabled_fraction,
            "enabled_overhead_fraction": enabled_fraction,
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "timing_reps": reps,
        },
    }
    perf_report(payload)

    publish(
        "bench_perf_events",
        "event-journal overhead on one checkpointed campaign "
        f"({len(counts)} specs)\n\n"
        f"journal off {wall_clock.timings['events_off']:.2f}s -> durable "
        f"journal on {wall_clock.timings['events_on']:.2f}s "
        f"({100 * enabled_fraction:+.1f}%, {hot_sites} events/run)\n"
        f"disabled-journal bound: {100 * disabled_fraction:.2f}% of the "
        f"journal-off run (budget {100 * MAX_DISABLED_OVERHEAD:.0f}%)\n",
    )
