"""Ablation benchmarks — the modeling choices DESIGN.md calls out.

* series resistance neglected (paper's 10 mOhm claim),
* ASDM fit-floor placement,
* driver-bank collapse equivalence.
"""

from repro.experiments import ablations


def test_resistance_ablation(benchmark, publish):
    result = benchmark.pedantic(ablations.resistance_ablation, rounds=1, iterations=1)
    publish("ablation_resistance", result.format_report())

    # Paper: "it is a very good approximation to neglect the small
    # resistance" (10 mOhm) — the peak shift must be far below 1%.
    assert abs(result.percent_shift(1)) < 0.1
    # Even 100x the quoted resistance barely moves the peak.
    assert abs(result.percent_shift(2)) < 1.0


def test_fit_floor_ablation(benchmark, publish):
    result = benchmark.pedantic(ablations.fit_floor_ablation, rounds=1, iterations=1)
    publish("ablation_fit_floor", result.format_report())

    # Fitting deeper into the knee (lower floor) lowers V0 monotonically.
    assert list(result.v0_values) == sorted(result.v0_values)


def test_collapse_ablation(benchmark, publish):
    result = benchmark.pedantic(ablations.collapse_ablation, rounds=1, iterations=1)
    publish("ablation_collapse", result.format_report())

    assert result.peak_diff_percent < 0.01
    assert result.max_waveform_diff < 1e-6
