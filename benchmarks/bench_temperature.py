"""Benchmark E18 — SSN across temperature corners."""

from repro.experiments import temperature


def test_temperature_corners(benchmark, publish):
    result = benchmark.pedantic(temperature.run, rounds=1, iterations=1)
    publish("temperature", result.format_report())

    # Cold is the ground-bounce sign-off corner.
    assert result.coldest().simulated_peak > result.hottest().simulated_peak
    # Per-corner refits keep the closed form accurate everywhere.
    assert result.max_abs_error() < 6.0
