"""Benchmark E15 — random-data bus SSN statistics."""

import numpy as np

from repro.experiments import pattern_statistics


def test_pattern_statistics(benchmark, publish):
    result = benchmark.pedantic(pattern_statistics.run, rounds=1, iterations=1)
    publish("pattern_statistics", result.format_report())

    assert float(np.sum(result.probabilities)) == 1.0 or abs(
        float(np.sum(result.probabilities)) - 1.0
    ) < 1e-9
    assert result.mean_peak < result.p99_peak < result.worst_case
    for n, sim, model in result.sim_checks:
        assert abs(model - sim) / sim < 0.06
