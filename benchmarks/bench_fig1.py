"""Benchmark E1 — regenerate paper Fig. 1 (IV curves vs ASDM fit).

Timed region: the full experiment (golden IV sweep + least-squares fit),
i.e. the cost of characterizing a process for ASDM.
"""

from repro.experiments import fig1_iv_fit


def test_fig1_iv_fit(benchmark, publish):
    result = benchmark.pedantic(fig1_iv_fit.run, rounds=3, iterations=1)
    publish("fig1_iv_fit", result.format_report())

    # Shape assertions mirroring the paper's Fig. 1 claims.
    assert result.report.max_relative_error < 0.06
    assert result.params.v0 > result.device_vth
    assert result.params.lam > 1.0
