"""Benchmark E5 — validate paper Table 1 (the four maximum-SSN formulas).

Timed region: the full experiment — four case configurations, each with a
high-precision ODE integration and a golden transient simulation.
"""

from repro.core import Table1Case
from repro.experiments import table1_formulas


def test_table1_formulas(benchmark, publish):
    result = benchmark.pedantic(table1_formulas.run, rounds=1, iterations=1)
    publish("table1_formulas", result.format_report())

    assert {row.config.case for row in result.rows} == set(Table1Case)
    for row in result.rows:
        # The derivation is exact given ASDM: formula == ODE to precision.
        assert abs(row.formula_vs_ode_percent) < 0.01
        assert row.waveform_max_diff < 1e-9
