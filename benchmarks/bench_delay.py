"""Benchmark E16 — SSN-induced delay degradation."""

from repro.experiments import delay_degradation


def test_delay_degradation(benchmark, publish):
    result = benchmark.pedantic(delay_degradation.run, rounds=1, iterations=1)
    publish("delay_degradation", result.format_report())

    pushouts = [p.pushout for p in result.points]
    assert all(b > a for a, b in zip(pushouts, pushouts[1:]))
    # The intro's "decreased effective driving strength" is material:
    # hundreds of picoseconds at N = 16 on this load.
    assert result.points[-1].pushout > 100e-12
