"""Benchmark E6 — the paper's cross-process claim (0.25 and 0.35 um).

Timed region: the Fig. 3 shoot-out repeated on all three technology cards.
"""

from repro.experiments import processes
from repro.experiments.fig3_model_comparison import THIS_WORK


def test_cross_process_accuracy(benchmark, publish):
    result = benchmark.pedantic(processes.run, rounds=1, iterations=1)
    publish("processes", result.format_report())

    # Paper: "Similar results are also observed using 0.25 um and 0.35 um
    # processes" — i.e. the ASDM formula stays the most accurate.
    winners = result.best_estimators()
    assert set(winners) == {"tsmc018", "tsmc025", "tsmc035"}
    assert all(winner == THIS_WORK for winner in winners.values())
