"""Soft-dependency smoke: the circuit engine on a numpy-only interpreter.

scipy and numba are *soft* dependencies of the spice engine: the sparse
MNA tier (``repro.spice.mna``), the batched rank-1 update lane
(``repro.spice.batch._Rank1Lane``) and the compiled MOSFET stencil
(``repro.devices.kernels``) all degrade to dense-LAPACK/pure-numpy paths
when their import fails.  This script *proves* that on every CI run, with
no dedicated dependency-stripped environment to maintain: it blocks the
``scipy`` package at the import-machinery level (deterministic whether or
not scipy is installed), sets ``REPRO_NO_NUMBA``, and then drives the
engine end to end:

* availability probes report both accelerators absent;
* ``repro.core`` imports clean (the PEP 562 scipy-free contract) and the
  ASDM extraction — the fit the surrogate tier depends on — runs on the
  pure-numpy lstsq path, while the scipy-backed alpha-power baseline
  raises a plain ImportError only when actually called;
* a forced-sparse transient warns once and runs dense, telemetry
  recording the dense backend and zero sparse factorizations;
* ``sparse="auto"`` never engages, at any size;
* the batched lockstep engine — fixed-step and adaptive — matches the
  scalar engine to 1e-9 V without its scipy rank-1 lane, with zero
  scalar fallbacks and no compiled-kernel backend in telemetry.

Run via ``make softdep-smoke`` (needs ``PYTHONPATH=src``); CI's
``soft-deps`` job executes it next to the no-numba pytest leg.
"""

import importlib.abc
import os
import sys
import warnings

os.environ["REPRO_NO_NUMBA"] = "1"


class _BlockScipy(importlib.abc.MetaPathFinder):
    """Meta-path finder that makes every scipy import raise ImportError."""

    def find_spec(self, fullname, path=None, target=None):
        if fullname == "scipy" or fullname.startswith("scipy."):
            raise ImportError(f"{fullname} is blocked by the soft-dependency smoke")
        return None


sys.meta_path.insert(0, _BlockScipy())
for name in [m for m in sys.modules if m == "scipy" or m.startswith("scipy.")]:
    del sys.modules[name]

import numpy as np  # noqa: E402

from repro.devices.kernels import kernel_available  # noqa: E402
from repro.spice.batch import batch_transient  # noqa: E402
from repro.spice.mna import resolve_sparse, sparse_available  # noqa: E402
from repro.spice.transient import TransientOptions, transient  # noqa: E402
from repro.testing.netlists import ladder_circuit  # noqa: E402

PARITY_TOL = 1e-9
TSTOP, DT = 0.4e-9, 0.05e-9


def check(condition, label):
    if not condition:
        raise SystemExit(f"softdep smoke FAILED: {label}")
    print(f"  ok: {label}")


print("soft-dependency probes")
check(not sparse_available(), "sparse tier reports scipy absent")
check(not kernel_available(), "compiled kernel reports numba disabled")
with warnings.catch_warnings():
    warnings.simplefilter("ignore")
    check(resolve_sparse("auto", 10_000) is False,
          "sparse='auto' never engages without scipy")

print("model extraction on the numpy-only interpreter")
import repro.core  # noqa: E402  (must import with scipy blocked)

from repro.core import fit_alpha_power, fit_asdm  # noqa: E402
from repro.devices.sweep import sweep_id_vg  # noqa: E402
from repro.process import TSMC018  # noqa: E402

surface = sweep_id_vg(TSMC018.driver_device(), TSMC018.vdd)
params, report = fit_asdm(surface)
check(params.k > 0 and np.isfinite([params.k, params.v0, params.lam]).all(),
      "fit_asdm runs pure-numpy (no scipy) and yields finite parameters")
check(report.max_relative_error < 0.10,
      "scipy-free ASDM fit quality matches the Fig. 1 contract")
try:
    fit_alpha_power(surface)
except ImportError:
    check(True, "fit_alpha_power raises ImportError only when called")
else:
    raise SystemExit("softdep smoke FAILED: fit_alpha_power imported scipy")

print("forced-sparse transient degrades to dense")
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    forced = transient(ladder_circuit(12), TSTOP, DT,
                       options=TransientOptions(sparse=True))
check(any("falling back to dense" in str(w.message) for w in caught),
      "degradation emits its RuntimeWarning")
check(forced.telemetry.sparse_factorizations == 0,
      "no sparse factorizations happened")
check(forced.telemetry.extras.get("backend_dense_lu") == 1,
      "telemetry records the dense backend")
dense = transient(ladder_circuit(12), TSTOP, DT,
                  options=TransientOptions(sparse=False))
worst = max(
    float(np.max(np.abs(dense.voltage(n).y - forced.voltage(n).y)))
    for n in dense.node_names
)
check(worst == 0.0, "degraded run is bitwise the dense run")

for label, options in [("fixed-step", TransientOptions()),
                       ("adaptive", TransientOptions(adaptive=True))]:
    print(f"batched lockstep without the scipy rank-1 lane ({label})")
    resistances = (15.0, 25.0, 60.0)
    scalar = [transient(ladder_circuit(12, resistance=r), TSTOP, DT,
                        options=options) for r in resistances]
    batched = batch_transient(
        [ladder_circuit(12, resistance=r) for r in resistances],
        TSTOP, DT, options=options)
    worst = max(
        float(np.max(np.abs(s.voltage(n).y - b.voltage(n).y)))
        for s, b in zip(scalar, batched) for n in s.node_names
    )
    check(worst <= PARITY_TOL, f"batch-vs-scalar parity {worst:.3e} V <= 1e-9")
    check(all(b.telemetry.batch_fallbacks == 0 for b in batched),
          "no instance fell back to the scalar engine")
    check(all("backend_numba_kernel" not in b.telemetry.extras for b in batched),
          "no compiled-kernel backend in telemetry")

print("softdep smoke passed")
