"""Surrogate-tier smoke: fit -> in-region answer -> provable refusal.

Drives the microsecond answering tier (``repro.surrogate``) end to end
in well under a minute:

* fit a surrogate over a small 3-knob box from golden fast-path sweeps
  and check the fitted error bound honors the declared tolerance;
* register it in the process-wide registry and serve an in-region spec
  through ``simulate_many(engine="surrogate")`` — zero Newton
  iterations, ``surrogate_hits == 1`` in telemetry, and the closed-form
  peak within the fitted error bound of the golden simulation;
* push an out-of-region spec down the same rung and prove the refusal
  routed to the full simulator: ``surrogate_refusals == 1``, the SSN
  waveform within 1e-9 V of a direct scalar run, and Newton iterations
  actually spent.

Run via ``make surrogate-smoke``; CI's ``surrogate-smoke`` job executes
it next to the surrogate test suite.
"""

import dataclasses

import numpy as np

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.simulate import simulate_many, simulate_ssn_cache_clear
from repro.process import get_technology
from repro.surrogate import default_registry, fit_surrogate

PARITY_TOL = 1e-9


def check(condition, label):
    if not condition:
        raise SystemExit(f"surrogate smoke FAILED: {label}")
    print(f"  ok: {label}")


def main() -> None:
    tech = get_technology("tsmc018")

    print("fitting over a quick 3-knob box")
    model = fit_surrogate(
        tech,
        n_drivers=(2, 6),
        inductance=(2e-9, 5e-9),
        rise_time=(0.4e-9, 0.7e-9),
        samples_per_knob=2,
    )
    check(model.error.n_points >= 8, "training grid covered the box corners")
    check(model.error.max_abs_percent <= model.tolerance_percent,
          f"fitted bound {model.error.max_abs_percent:.2f}% within "
          f"{model.tolerance_percent:.0f}% tolerance")

    registry = default_registry()
    registry.register(model)
    try:
        in_region = DriverBankSpec(
            technology=tech, n_drivers=4, inductance=3e-9, rise_time=0.5e-9
        )
        print("in-region query through the surrogate engine rung")
        simulate_ssn_cache_clear()
        (hit,) = simulate_many([in_region], engine="surrogate")
        check(hit.telemetry.extras.get("surrogate_hits") == 1,
              "telemetry tagged the surrogate hit")
        check(hit.telemetry.newton_iterations == 0,
              "closed-form answer spent zero Newton iterations")
        simulate_ssn_cache_clear()
        (golden,) = simulate_many([in_region], engine="scalar")
        error = abs(hit.peak_voltage - golden.peak_voltage) / golden.peak_voltage
        check(error * 100.0 <= model.error.max_abs_percent,
              f"peak error {error * 100.0:.2f}% within the fitted bound")

        print("out-of-region query routes to the full simulator")
        out_region = dataclasses.replace(in_region, n_drivers=40)
        simulate_ssn_cache_clear()
        (routed,) = simulate_many([out_region], engine="surrogate")
        check(routed.telemetry.extras.get("surrogate_refusals") == 1,
              "telemetry tagged the validity-region refusal")
        check(routed.telemetry.newton_iterations > 0,
              "fallback ran the real Newton loop")
        simulate_ssn_cache_clear()
        (direct,) = simulate_many([out_region], engine="scalar")
        worst = float(np.max(np.abs(routed.ssn.y - direct.ssn.y)))
        check(worst <= PARITY_TOL,
              f"fallback waveform parity {worst:.3e} V <= 1e-9")
        check(abs(routed.peak_voltage - direct.peak_voltage) <= PARITY_TOL,
              "fallback peak matches the direct scalar run")
    finally:
        registry.clear()

    print("surrogate smoke passed")


if __name__ == "__main__":
    main()
