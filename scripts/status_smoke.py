"""Operational-health smoke: surrogate hit -> forced audit -> /statusz.

Drives one in-process :class:`repro.service.SsnService` (ephemeral port,
throwaway store pre-seeded with a quick-fitted surrogate, audit fraction
forced to 1.0) through the health layer end to end:

* ``/healthz`` answers ``ok`` once the warm-up scan registered the model;
* an in-region ``/simulate`` is answered by the surrogate and enrolled
  in the shadow audit;
* draining the background refinement resolves the audit against the
  golden record (samples >= 1, no demotion — the model is honest);
* ``/statusz`` carries the versioned schema: store state, request/outcome
  totals, latency quantiles, the SLO window, audit summaries and the
  event-journal tail;
* after the server closes, the durable journal on disk replays the
  request sequence, and ``repro status --store`` / ``repro events``
  summarize it offline.

Runs under ``-W``-style strict RuntimeWarnings (installed below, so the
gate travels with the script).  Run via ``make status-smoke``; CI's
``status-smoke`` job executes it next to the service suites.
"""

import asyncio
import tempfile
import warnings
from pathlib import Path

warnings.simplefilter("error", RuntimeWarning)

from repro.cli import main as cli_main  # noqa: E402
from repro.observability import events as obs_events  # noqa: E402
from repro.observability.health import STATUS_SCHEMA_VERSION  # noqa: E402
from repro.service import (  # noqa: E402
    ResultStore,
    SsnService,
    arequest,
    surrogate_key,
)
from repro.surrogate import fit_surrogate  # noqa: E402

IN_REGION = {"n_drivers": 4, "inductance": 3e-9, "rise_time": 0.5e-9,
             "tech": "tsmc018"}


def check(condition, label):
    if not condition:
        raise SystemExit(f"status smoke FAILED: {label}")
    print(f"  ok: {label}")


async def drive(root: str) -> None:
    print("fitting and persisting a quick surrogate")
    model = fit_surrogate(
        "tsmc018", n_drivers=(2, 6), inductance=(2e-9, 5e-9),
        rise_time=(0.4e-9, 0.7e-9), samples_per_knob=2)
    store = ResultStore(root)
    store.put_surrogate(
        surrogate_key(model.technology, model.topology,
                      model.operating_region), model)

    service = SsnService(store_root=root, port=0, audit_fraction=1.0)
    await service.start()
    try:
        async def get(path):
            return await arequest("127.0.0.1", service.port, "GET", path)

        status, health = await get("/healthz")
        check(status == 200 and health["status"] == "ok",
              "healthz reports ready after the warm-up scan")

        status, first = await arequest(
            "127.0.0.1", service.port, "POST", "/simulate", IN_REGION)
        check(status == 200 and first["outcome"] == "surrogate",
              "in-region request answered by the surrogate tier")

        # The background golden refinement is the audit's reference; with
        # fraction 1.0 this request is guaranteed to be enrolled.
        await service.drain_background()

        status, payload = await get("/statusz")
        check(status == 200 and payload["schema"] == STATUS_SCHEMA_VERSION,
              "statusz carries the versioned schema")
        check(payload["status"] == "ok" and payload["ready"] is True,
              "statusz reports ready")
        check(payload["store"]["records"] >= 2,
              "store holds the surrogate and its golden refinement")
        totals = payload["requests"]["totals"]
        check(totals["simulate"].get("surrogate") == 1.0,
              "request totals count the surrogate outcome")
        check("/simulate" in payload["latency"],
              "latency quantiles cover the request path")
        check(payload["slo"]["error_budget"]["state"] == "ok",
              "error budget intact")
        audit = payload["surrogate"]["audit"]
        region = "/".join((model.technology, model.topology,
                           model.operating_region))
        check(audit["regions"].get(region, {}).get("samples", 0) >= 1,
              "shadow audit resolved at least one sample")
        check(audit["regions"][region]["demoted"] is False,
              "an honest model is not demoted")
        check(payload["events"]["recorded"] >= 3,
              "statusz exposes the journal tail")
    finally:
        await service.close()

    journal_path = Path(root) / "events.jsonl"
    events = obs_events.read_journal(journal_path)
    names = [event["name"] for event in events]
    check("service_ready" in names and "service_request" in names
          and "surrogate_audited" in names,
          "durable journal replays the sequence after the server is gone")

    print("offline CLI views over the same store")
    check(cli_main(["status", "--store", root]) == 0, "repro status --store")
    check(cli_main(["events", "summarize", str(journal_path)]) == 0,
          "repro events summarize")
    check(cli_main(["events", "tail", str(journal_path), "-n", "3"]) == 0,
          "repro events tail")


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        asyncio.run(drive(root))
    print("status smoke ok")


if __name__ == "__main__":
    main()
