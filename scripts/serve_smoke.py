"""Serving-layer smoke: miss -> hit -> dedup against a live server.

Drives one in-process :class:`repro.service.SsnService` (ephemeral port,
throwaway store) through the three serving outcomes and a ``/metrics``
scrape:

* a cold ``/simulate`` computes and persists (outcome ``miss``);
* the identical repeat — with the in-process memo wiped, so only the
  persistent store can answer — returns the bit-identical payload
  (outcome ``hit``);
* three concurrent requests for a *new* spec, with the compute stalled
  by the deterministic fault injector, collapse onto one computation
  (outcomes ``dedup``/``dedup``/``miss``, one compute counted);
* the Prometheus text carries the request/outcome counters and the
  store-write totals.

Runs under ``-W``-style strict RuntimeWarnings (installed below, so the
gate travels with the script).  Run via ``make serve-smoke``; CI's
``service-smoke`` job executes it next to the service test suites.
"""

import asyncio
import tempfile
import warnings

warnings.simplefilter("error", RuntimeWarning)

from repro.analysis.simulate import simulate_ssn_cache_clear  # noqa: E402
from repro.service import SsnService, arequest  # noqa: E402
from repro.testing import faults  # noqa: E402
from repro.testing.faults import FaultRule  # noqa: E402

PARAMS = {"n_drivers": 2, "inductance": 1e-9, "rise_time": 0.5e-9}


async def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        service = SsnService(store_root=root, port=0)
        await service.start()
        try:
            await drive(service)
        finally:
            await service.close()
    print("serve smoke ok")


async def drive(service: SsnService) -> None:
    async def post(path, payload):
        return await arequest("127.0.0.1", service.port, "POST", path, payload)

    status, first = await post("/simulate", PARAMS)
    assert status == 200, f"simulate answered {status}: {first}"
    assert first["outcome"] == "miss", first["outcome"]

    # Wipe the in-process memo: the repeat answer must come from the
    # persistent store alone, bit-identical.
    simulate_ssn_cache_clear()
    status, again = await post("/simulate", PARAMS)
    assert status == 200 and again["outcome"] == "hit", again
    assert again["waveforms"] == first["waveforms"], "hit is not bit-identical"
    assert again["peak_voltage"] == first["peak_voltage"]
    print(f"store hit ok: key {first['key'][:12]}..., "
          f"peak {first['peak_voltage']:.6g} V")

    # Stall the single fresh compute long enough for the followers to
    # observe the in-flight leader and dedup onto it.
    faults.install_faults([FaultRule(kind="stall", seconds=0.5)])
    try:
        answers = await asyncio.gather(*(
            post("/simulate", dict(PARAMS, n_drivers=3)) for _ in range(3)
        ))
    finally:
        faults.clear_faults()
    assert all(status == 200 for status, _ in answers)
    outcomes = sorted(payload["outcome"] for _, payload in answers)
    assert outcomes == ["dedup", "dedup", "miss"], outcomes
    assert len({payload["key"] for _, payload in answers}) == 1
    print("dedup ok: 3 concurrent requests, outcomes " + "/".join(outcomes))

    status, text = await arequest(
        "127.0.0.1", service.port, "GET", "/metrics")
    assert status == 200
    for needle in ("repro_service_requests_total", 'outcome="hit"',
                   'outcome="dedup"', "repro_service_computes_total",
                   "repro_store_writes_total",
                   # The surrogate tier counts every routing decision even
                   # with an empty store: each fresh spec is a miss.
                   "repro_surrogate_misses_total"):
        assert needle in text, f"{needle!r} missing from /metrics"
    print("metrics scrape ok")


if __name__ == "__main__":
    asyncio.run(main())
