"""Quickstart: fit ASDM to a process and estimate ground bounce.

Walks the paper's full flow in ~40 lines:

1. sweep the golden 0.18 um device's IV surface (what the paper gets from
   HSPICE/BSIM3),
2. fit the ASDM linear model (Eqn 3),
3. evaluate the closed-form SSN peak with and without the package's
   parasitic capacitance (Eqn 7 / Table 1),
4. check both against a real transient simulation of the driver bank.

Run:  python examples/quickstart.py
"""

from repro.analysis import DriverBankSpec, simulate_ssn
from repro.core import InductiveSsnModel, LcSsnModel, fit_asdm
from repro.devices import sweep_id_vg
from repro.packaging import PGA
from repro.process import TSMC018

N_DRIVERS = 8
RISE_TIME = 0.5e-9


def main() -> None:
    tech = TSMC018
    ground = PGA.pin  # 5 nH / 1 pF / 10 mOhm, the paper's reference package

    # 1-2. Characterize the process once; the fit takes milliseconds.
    surface = sweep_id_vg(tech.driver_device(), tech.vdd)
    params, report = fit_asdm(surface)
    print(f"ASDM fit for {tech.name}: K = {params.k * 1e3:.2f} mA/V, "
          f"V0 = {params.v0:.3f} V, lambda = {params.lam:.3f}")
    print(f"  (fit error {report.max_relative_error * 100:.1f}% of peak current, "
          f"{report.n_points} points; device Vth0 = {tech.nmos.vth0} V — "
          "note V0 > Vth, as the paper stresses)\n")

    # 3. Closed-form estimates: microseconds instead of a SPICE run.
    l_only = InductiveSsnModel(params, N_DRIVERS, ground.inductance, tech.vdd, RISE_TIME)
    with_c = LcSsnModel(params, N_DRIVERS, ground.inductance, ground.capacitance,
                        tech.vdd, RISE_TIME)
    print(f"{N_DRIVERS} drivers switching in {RISE_TIME * 1e9:.1f} ns on a PGA ground pin:")
    print(f"  L-only model (Eqn 7):    peak SSN = {l_only.peak_voltage():.3f} V")
    print(f"  LC model (Table 1):      peak SSN = {with_c.peak_voltage():.3f} V "
          f"[{with_c.case.value}]")

    # 4. Golden transient simulation of the same bank.
    spec = DriverBankSpec(
        technology=tech,
        n_drivers=N_DRIVERS,
        inductance=ground.inductance,
        capacitance=ground.capacitance,
        rise_time=RISE_TIME,
    )
    sim = simulate_ssn(spec)
    err = 100 * (with_c.peak_voltage() - sim.peak_voltage) / sim.peak_voltage
    print(f"  golden simulation:       peak SSN = {sim.peak_voltage:.3f} V "
          f"at t = {sim.peak_time * 1e9:.2f} ns")
    print(f"  LC model error vs simulation: {err:+.1f}%")


if __name__ == "__main__":
    main()
