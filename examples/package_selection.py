"""Scenario: choose a package for an I/O bank by predicted ground bounce.

Compares the built-in package styles (PGA, QFP, BGA, bare wirebond) for
the same driver bank, reporting each package's damping region and peak
SSN from the Table 1 model — and flags where the naive L-only estimate
would have misled the selection (the paper's Section 4 warning: low-L
packages with relatively high C ring, and the first ringing peak exceeds
the L-only prediction).

Run:  python examples/package_selection.py
"""

from repro.core import InductiveSsnModel, LcSsnModel, fit_asdm
from repro.devices import sweep_id_vg
from repro.packaging import get_package, list_packages
from repro.process import TSMC018

N_DRIVERS = 8
RISE_TIME = 0.5e-9
GROUND_PADS = 2


def main() -> None:
    tech = TSMC018
    params, _ = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))

    print(f"{N_DRIVERS} drivers, {tech.name}, tr = {RISE_TIME * 1e9:.1f} ns, "
          f"{GROUND_PADS} ground pads per package\n")
    header = (f"{'package':>9}  {'L (nH)':>7}  {'C (pF)':>7}  {'region':>17}  "
              f"{'LC peak (V)':>11}  {'L-only (V)':>10}  {'L-only error':>12}")
    print(header)
    print("-" * len(header))

    rows = []
    for name in list_packages():
        path = get_package(name).ground_path(GROUND_PADS)
        lc = LcSsnModel(params, N_DRIVERS, path.inductance, path.capacitance,
                        tech.vdd, RISE_TIME)
        l_only = InductiveSsnModel(params, N_DRIVERS, path.inductance, tech.vdd, RISE_TIME)
        mislead = 100 * (l_only.peak_voltage() - lc.peak_voltage()) / lc.peak_voltage()
        rows.append((lc.peak_voltage(), name))
        print(f"{name:>9}  {path.inductance * 1e9:7.2f}  {path.capacitance * 1e12:7.2f}  "
              f"{lc.region.value:>17}  {lc.peak_voltage():11.3f}  "
              f"{l_only.peak_voltage():10.3f}  {mislead:+11.1f}%")

    best = min(rows)
    print(f"\nLowest predicted ground bounce: {best[1]} ({best[0]:.3f} V).")
    print("Negative 'L-only error' rows are configurations where ignoring the")
    print("pad capacitance *underestimates* the noise — the paper's key warning.")


if __name__ == "__main__":
    main()
