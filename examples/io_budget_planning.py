"""Scenario: plan a 64-bit output bus against a ground-bounce budget.

The workload the paper's introduction motivates: a wide synchronous bus
whose simultaneous switching would collapse the ground rail.  Using the
closed-form model (the whole point of having one — these questions become
arithmetic, not overnight SPICE sweeps), answer the designer's questions:

* How many bits may switch together within the budget?
* If all 64 must switch together, how slow must the edges be?
* Alternatively, how many ground pads does the package need?
* Or: what staggered (skewed) launch schedule meets the budget?

Run:  python examples/io_budget_planning.py
"""

from repro.core import (
    fit_asdm,
    max_simultaneous_drivers,
    required_ground_pads,
    required_rise_time,
    skew_schedule,
)
from repro.devices import sweep_id_vg
from repro.packaging import PGA
from repro.process import TSMC018

BUS_WIDTH = 64
RISE_TIME = 0.5e-9
#: Noise budget: 15% of VDD, a common I/O signal-integrity allocation.
BUDGET_FRACTION = 0.15


def main() -> None:
    tech = TSMC018
    budget = BUDGET_FRACTION * tech.vdd
    pin = PGA.pin
    params, _ = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))

    print(f"Bus: {BUS_WIDTH} bits, {tech.name}, tr = {RISE_TIME * 1e9:.1f} ns, "
          f"PGA ground pin ({pin.inductance * 1e9:.0f} nH)")
    print(f"Ground-bounce budget: {budget:.2f} V ({BUDGET_FRACTION:.0%} of VDD)\n")

    n_max = max_simultaneous_drivers(budget, params, pin.inductance, tech.vdd, RISE_TIME)
    print(f"Option 1 — limit simultaneous switching: at most {n_max} bits at once.")

    tr_needed = required_rise_time(budget, params, BUS_WIDTH, pin.inductance, tech.vdd)
    print(f"Option 2 — slow the edges: all {BUS_WIDTH} bits need "
          f"tr >= {tr_needed * 1e9:.2f} ns "
          f"({tr_needed / RISE_TIME:.1f}x slower than nominal).")

    pads = required_ground_pads(
        budget, params, BUS_WIDTH, pin.inductance, pin.capacitance, tech.vdd, RISE_TIME
    )
    print(f"Option 3 — add ground pads: {pads.pads} pads "
          f"(L = {pads.inductance * 1e9:.2f} nH, C = {pads.capacitance * 1e12:.1f} pF) "
          f"-> peak {pads.peak_noise:.3f} V.")
    if pads.l_only_peak_noise < pads.peak_noise:
        print("    note: the L-only model would have promised "
              f"{pads.l_only_peak_noise:.3f} V — parallel pads raise C and can "
              "push the network under-damped (paper Section 4).")

    plan = skew_schedule(budget, params, BUS_WIDTH, pin.inductance, tech.vdd, RISE_TIME)
    print(f"Option 4 — skew the launch: {plan.groups} groups of <= {plan.group_size} bits, "
          f"{RISE_TIME * 1e9:.1f} ns apart; per-group peak {plan.peak_noise:.3f} V, "
          f"added latency {plan.added_latency * 1e9:.2f} ns.")


if __name__ == "__main__":
    main()
