"""Scenario: how much SSN guard band does process variation demand?

A payoff of having Eqn (10) in closed form: propagating die-to-die
parameter spread to a noise distribution costs microseconds per sample,
so a designer can size guard bands statistically instead of padding the
worst case.  (An extension beyond the paper — see DESIGN.md Section 5.)

Run:  python examples/variation_guardband.py
"""

from repro.analysis import ParameterSpread, peak_noise_distribution
from repro.core import fit_asdm
from repro.devices import sweep_id_vg
from repro.packaging import PGA
from repro.process import TSMC018

N_DRIVERS = 12
RISE_TIME = 0.5e-9
TRIALS = 5000


def main() -> None:
    tech = TSMC018
    params, _ = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))

    print(f"{N_DRIVERS} drivers, {tech.name}, PGA ground pin, "
          f"tr = {RISE_TIME * 1e9:.1f} ns, {TRIALS} Monte Carlo trials\n")

    corners = {
        "tight  (K 4%, V0 15 mV)": ParameterSpread(k_sigma=0.04, v0_sigma=0.015, lam_sigma=0.005),
        "typical(K 8%, V0 30 mV)": ParameterSpread(k_sigma=0.08, v0_sigma=0.030, lam_sigma=0.010),
        "loose  (K 15%, V0 60 mV)": ParameterSpread(k_sigma=0.15, v0_sigma=0.060, lam_sigma=0.020),
    }
    print(f"{'process spread':>26}  {'nominal':>7}  {'mean':>6}  {'sigma':>6}  "
          f"{'p95':>6}  {'guard band':>10}")
    for label, spread in corners.items():
        result = peak_noise_distribution(
            params, N_DRIVERS, PGA.pin.inductance, tech.vdd, RISE_TIME,
            spread=spread, trials=TRIALS,
        )
        print(f"{label:>26}  {result.nominal:7.3f}  {result.mean:6.3f}  "
              f"{result.std:6.3f}  {result.p95:6.3f}  {result.guard_band * 1e3:7.1f} mV")

    print("\nGuard band = p95 - nominal: the margin a sign-off methodology must")
    print("add on top of the nominal-corner estimate to cover 95% of dies.")


if __name__ == "__main__":
    main()
