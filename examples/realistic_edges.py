"""Scenario: estimate SSN from a *measured* gate waveform, not an ideal ramp.

Output drivers are fed by tapered pre-driver chains whose edges are fast
in the middle and slow at both ends.  This example:

1. simulates the real chain (the repository's own substrate) to obtain
   the final gate waveform,
2. estimates the peak ground bounce three ways — ideal ramp with the
   chain-input edge rate, effective ramp fitted to the measured edge, and
   the PWL-drive closed form fed the waveform itself,
3. exports the simulated bank as a SPICE netlist for external checking.

Run:  python examples/realistic_edges.py
"""

from repro.analysis import (
    BufferChainSpec,
    build_buffer_chain,
    extract_effective_ramp,
    simulate_buffer_chain,
)
from repro.core import InductiveSsnModel, PwlDriveSsnModel, fit_asdm
from repro.devices import sweep_id_vg
from repro.process import TSMC018
from repro.spice.netlist import to_spice

N_DRIVERS = 8


def main() -> None:
    tech = TSMC018
    params, _ = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))

    spec = BufferChainSpec(technology=tech, n_drivers=N_DRIVERS)
    print(f"Simulating a {spec.stages}-stage, {spec.taper}x-tapered pre-driver "
          f"chain feeding {N_DRIVERS} drivers...")
    sim = simulate_buffer_chain(spec)
    print(f"  golden peak ground bounce: {sim.peak_voltage:.4f} V\n")

    naive = InductiveSsnModel(
        params, N_DRIVERS, spec.inductance, tech.vdd, spec.input_rise_time
    ).peak_voltage()
    print(f"Ideal ramp @ chain-input tr ({spec.input_rise_time * 1e9:.1f} ns): "
          f"{naive:.4f} V ({100 * (naive / sim.peak_voltage - 1):+.1f}%)")

    ramp = extract_effective_ramp(
        sim.final_gate, tech.vdd,
        low_fraction=params.v0 / tech.vdd, high_fraction=0.95,
    )
    effective = InductiveSsnModel(
        params, N_DRIVERS, spec.inductance, tech.vdd, ramp.rise_time
    ).peak_voltage()
    print(f"Ideal ramp @ effective tr ({ramp.rise_time * 1e9:.3f} ns):     "
          f"{effective:.4f} V ({100 * (effective / sim.peak_voltage - 1):+.1f}%)")

    step = max(1, len(sim.final_gate) // 200)
    pwl = PwlDriveSsnModel(
        params, N_DRIVERS, spec.inductance,
        sim.final_gate.t[::step], sim.final_gate.y[::step],
    )
    print(f"PWL-drive closed form (measured waveform):  {pwl.peak_voltage():.4f} V "
          f"({100 * (pwl.peak_voltage() / sim.peak_voltage - 1):+.1f}%)")
    print(f"  predicted peak time {pwl.peak_time() * 1e9:.3f} ns vs "
          f"simulated {sim.ssn.peak()[0] * 1e9:.3f} ns")

    netlist = to_spice(build_buffer_chain(spec))
    print(f"\nExported bank netlist ({len(netlist.splitlines())} cards), first lines:")
    for line in netlist.splitlines()[:6]:
        print("  " + line)


if __name__ == "__main__":
    main()
