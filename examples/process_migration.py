"""Scenario: how does ground bounce evolve when a design migrates nodes?

Re-characterizes the same I/O bank on the 0.35, 0.25 and 0.18 um cards
(each with its own VDD, threshold and drive strength), showing how the
fitted ASDM parameters move and what the closed-form model predicts.
This is the cross-process repetition the paper reports at the end of
Section 3 ("similar results are also observed using 0.25 um and 0.35 um
processes"), turned into a migration-planning table.

Run:  python examples/process_migration.py
"""

from repro.core import InductiveSsnModel, fit_asdm, required_rise_time
from repro.devices import sweep_id_vg
from repro.packaging import PGA
from repro.process import get_technology, list_technologies

N_DRIVERS = 16
RISE_TIME = 0.5e-9
#: Keep the same absolute noise budget across nodes.
BUDGET = 0.3


def main() -> None:
    inductance = PGA.pin.inductance
    print(f"I/O bank: {N_DRIVERS} drivers, L = {inductance * 1e9:.0f} nH, "
          f"tr = {RISE_TIME * 1e9:.1f} ns, budget = {BUDGET} V\n")
    header = (f"{'node':>8}  {'VDD':>4}  {'K (mA/V)':>8}  {'V0 (V)':>6}  {'lam':>5}  "
              f"{'peak (V)':>8}  {'%VDD':>5}  {'tr for budget':>13}")
    print(header)
    print("-" * len(header))

    for name in sorted(list_technologies(), reverse=True):  # oldest node first
        tech = get_technology(name)
        params, _ = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))
        model = InductiveSsnModel(params, N_DRIVERS, inductance, tech.vdd, RISE_TIME)
        peak = model.peak_voltage()
        tr_budget = required_rise_time(BUDGET, params, N_DRIVERS, inductance, tech.vdd)
        print(f"{name:>8}  {tech.vdd:4.1f}  {params.k * 1e3:8.2f}  {params.v0:6.3f}  "
              f"{params.lam:5.3f}  {peak:8.3f}  {100 * peak / tech.vdd:5.1f}  "
              f"{tr_budget * 1e9:10.2f} ns")

    print("\nReading the table: absolute bounce falls with VDD, but the noise")
    print("*fraction* of the shrinking supply is what erodes margins — the")
    print("trend the paper's introduction calls out. The last column is the")
    print("edge rate each node can afford under the same absolute budget.")


if __name__ == "__main__":
    main()
