"""Persistent, content-addressed store of golden SSN results.

One record per :func:`repro.service.keys.result_key`, written as a
schema-versioned JSON file through the shared crash-safe
:func:`repro.observability.atomic.atomic_write` (tempfile + fsync +
``os.replace``), so a reader — or a crash at any instant — sees either no
record or a complete record, never a torn one.  Every load re-validates
the record: JSON shape, schema version, key match (the file content must
hash-address itself) and an embedded SHA-256 payload checksum.  A record
failing any check is *quarantined* — moved aside into ``quarantine/`` and
treated as a miss — so one corrupt file costs one recompute, never a
crash or a wrong answer.

Float fidelity: waveform samples and summary numbers serialize through
:mod:`json`, whose float rendering is ``repr`` — the shortest exact round
trip — so a stored simulation deserializes bit-identical to the run that
produced it.  Deserialized waveform arrays come back frozen
(``writeable=False``), the same read-only contract as the in-process
memo.

The ``crash-write`` rule of the deterministic fault injector
(:mod:`repro.testing.faults`) fires mid-write here exactly as it does in
the campaign checkpoint journal, under fault scope ``phase="store"`` so
tests can target store writes alone.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.montecarlo import MonteCarloResult
from ..analysis.simulate import SsnSimulation, freeze_simulation
from ..observability import events as obs_events
from ..observability import metrics as obs_metrics
from ..observability.atomic import atomic_write
from ..spice.telemetry import SolverTelemetry
from ..spice.waveform import Waveform
from ..testing import faults

#: Bumped on incompatible record-layout changes; a stored record with any
#: other version is quarantined and recomputed, never misread.
RECORD_SCHEMA_VERSION = 1

#: The five waveforms a simulation record persists, in layout order.
WAVEFORM_FIELDS = ("ssn", "inductor_current", "driver_current",
                   "input_voltage", "output_voltage")


def _checksum(record: dict) -> str:
    """SHA-256 over the canonical rendering of everything but the checksum."""
    payload = {k: v for k, v in record.items() if k != "checksum"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def _waveform_payload(wf: Waveform) -> dict:
    return {"t": wf.t.tolist(), "y": wf.y.tolist()}


def _waveform_from(payload: dict) -> Waveform:
    wf = Waveform(np.asarray(payload["t"], dtype=float),
                  np.asarray(payload["y"], dtype=float))
    wf.t.setflags(write=False)
    wf.y.setflags(write=False)
    return wf


def simulation_record(key: str, sim: SsnSimulation,
                      meta: dict | None = None) -> dict:
    """Render one golden simulation as a store record (sans checksum)."""
    record = {
        "schema": RECORD_SCHEMA_VERSION,
        "key": key,
        "kind": "simulate",
        "spec": repr(sim.spec),
        "peak_voltage": float(sim.peak_voltage),
        "peak_time": float(sim.peak_time),
        "waveforms": {name: _waveform_payload(getattr(sim, name))
                      for name in WAVEFORM_FIELDS},
        "telemetry": None if sim.telemetry is None else sim.telemetry.as_dict(),
        "meta": dict(meta or {}),
    }
    return record


def simulation_from_record(record: dict, spec: DriverBankSpec) -> SsnSimulation:
    """Rebuild the :class:`SsnSimulation` a record serialized.

    The spec is supplied by the caller (who derived the record's key from
    it) rather than parsed back out of the record — specs embed technology
    cards whose identity lives in the process, not the JSON.
    """
    waveforms = {name: _waveform_from(record["waveforms"][name])
                 for name in WAVEFORM_FIELDS}
    telemetry = record.get("telemetry")
    return freeze_simulation(SsnSimulation(
        spec=spec,
        peak_voltage=float(record["peak_voltage"]),
        peak_time=float(record["peak_time"]),
        telemetry=None if telemetry is None else SolverTelemetry.from_dict(telemetry),
        **waveforms,
    ))


def montecarlo_record(key: str, result: MonteCarloResult,
                      meta: dict | None = None) -> dict:
    """Render one Monte Carlo distribution as a store record (sans checksum)."""
    return {
        "schema": RECORD_SCHEMA_VERSION,
        "key": key,
        "kind": "montecarlo",
        "samples": np.asarray(result.samples, dtype=float).tolist(),
        "mean": float(result.mean),
        "std": float(result.std),
        "p95": float(result.p95),
        "nominal": float(result.nominal),
        "telemetry": None if result.telemetry is None else result.telemetry.as_dict(),
        "meta": dict(meta or {}),
    }


def montecarlo_from_record(record: dict) -> MonteCarloResult:
    """Rebuild the :class:`MonteCarloResult` a record serialized."""
    samples = np.asarray(record["samples"], dtype=float)
    samples.setflags(write=False)
    telemetry = record.get("telemetry")
    return MonteCarloResult(
        samples=samples,
        mean=float(record["mean"]),
        std=float(record["std"]),
        p95=float(record["p95"]),
        nominal=float(record["nominal"]),
        telemetry=None if telemetry is None else SolverTelemetry.from_dict(telemetry),
    )


def surrogate_record(key: str, model, meta: dict | None = None) -> dict:
    """Render one fitted surrogate model as a store record (sans checksum).

    ``model`` is a :class:`repro.surrogate.SurrogateModel`; typed loosely
    so the store module never imports the surrogate package (which builds
    on the analysis stack) at import time.
    """
    return {
        "schema": RECORD_SCHEMA_VERSION,
        "key": key,
        "kind": "surrogate",
        "model": model.as_payload(),
        "meta": dict(meta or {}),
    }


def surrogate_from_record(record: dict):
    """Rebuild the :class:`repro.surrogate.SurrogateModel` a record holds."""
    from ..surrogate import SurrogateModel

    return SurrogateModel.from_payload(record["model"])


class ResultStore:
    """Directory-backed result database, one validated JSON file per key.

    Layout: ``root/<key[:2]>/<key>.json`` (two-hex-char fan-out keeps any
    single directory small at millions of records) plus ``root/quarantine/``
    for records that failed validation.  All writes are atomic; concurrent
    writers of the *same* key are idempotent (equal content), concurrent
    writers of different keys never touch the same file.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.root / "quarantine"

    # -- paths -----------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    # -- writes ----------------------------------------------------------------------

    def put(self, key: str, record: dict) -> Path:
        """Checksum and atomically publish one record under its key.

        The serialized text is written in two chunks with the fault
        injector's ``checkpoint`` probe between them (fault scope
        ``phase="store"``): an armed ``crash-write`` rule aborts with half
        the record in the temp file, proving a torn write can never land
        under the committed name.
        """
        record = dict(record)
        record["key"] = key
        record.setdefault("schema", RECORD_SCHEMA_VERSION)
        record["checksum"] = _checksum(record)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record, sort_keys=True) + "\n"
        mid = len(text) // 2

        def chunks():
            yield text[:mid]
            with faults.scope(phase="store"):
                faults.probe("checkpoint")
            yield text[mid:]

        atomic_write(path, chunks())
        obs_metrics.inc("repro_store_writes_total")
        return path

    def put_simulation(self, key: str, sim: SsnSimulation,
                       meta: dict | None = None) -> Path:
        return self.put(key, simulation_record(key, sim, meta=meta))

    def put_montecarlo(self, key: str, result: MonteCarloResult,
                       meta: dict | None = None) -> Path:
        return self.put(key, montecarlo_record(key, result, meta=meta))

    def put_surrogate(self, key: str, model, meta: dict | None = None) -> Path:
        """Persist a fitted surrogate model under its identity key."""
        return self.put(key, surrogate_record(key, model, meta=meta))

    # -- reads -----------------------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The validated record stored under ``key``, or None (a miss).

        Misses include: no file, unparseable JSON, wrong schema version,
        key mismatch (file stored under a name its content does not
        claim) and checksum mismatch.  Every invalid file is quarantined
        on the way out, so the next write of the key starts clean.
        """
        path = self.path_for(key)
        if not path.exists():
            obs_metrics.inc("repro_store_misses_total")
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return self._quarantine(path, "unreadable")
        if not isinstance(record, dict):
            return self._quarantine(path, "malformed")
        if record.get("schema") != RECORD_SCHEMA_VERSION:
            return self._quarantine(path, "schema")
        if record.get("key") != key:
            return self._quarantine(path, "key")
        if record.get("checksum") != _checksum(record):
            return self._quarantine(path, "checksum")
        obs_metrics.inc("repro_store_hits_total")
        return record

    def get_simulation(self, key: str, spec: DriverBankSpec) -> SsnSimulation | None:
        record = self.load(key)
        if record is None or record.get("kind") != "simulate":
            return None
        return simulation_from_record(record, spec)

    def get_montecarlo(self, key: str) -> MonteCarloResult | None:
        record = self.load(key)
        if record is None or record.get("kind") != "montecarlo":
            return None
        return montecarlo_from_record(record)

    def get_surrogate(self, key: str):
        """The fitted surrogate model stored under ``key``, or None.

        A record that stores a different kind, or a model payload this
        version cannot rebuild (an incompatible surrogate schema), is a
        miss — the caller re-fits — never an exception.
        """
        record = self.load(key)
        if record is None or record.get("kind") != "surrogate":
            return None
        try:
            return surrogate_from_record(record)
        except (KeyError, TypeError, ValueError):
            return None

    def iter_records(self, kind: str | None = None):
        """Every validated record in the store, optionally kind-filtered.

        Loads through :meth:`load`, so invalid files are quarantined on
        the way past rather than yielded.  Used by ``repro surrogate
        inspect``; result sweeps at scale should use the key-addressed
        reads instead.
        """
        for path in sorted(self.root.glob("??/*.json")):
            record = self.load(path.stem)
            if record is None:
                continue
            if kind is None or record.get("kind") == kind:
                yield record

    # -- quarantine ------------------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move an invalid record aside and report the miss (returns None)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            os.replace(path, self.quarantine_dir / path.name)
        obs_metrics.inc("repro_store_quarantined_total",
                        labels={"reason": reason})
        obs_metrics.inc("repro_store_misses_total")
        obs_events.emit("store_quarantined", reason=reason, file=path.name)
        return None

    def quarantined(self) -> list[Path]:
        """Quarantined record files, for inspection and tests."""
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.glob("*.json"))
