"""SSN-as-a-service: persistent result store + async HTTP front end.

The serving backbone of the "millions of users" story: repeat queries are
answered from a content-addressed, schema-versioned result database
(:mod:`repro.service.store`) keyed on the exact simulation fingerprint
(:mod:`repro.service.keys` — circuit spec, resolved time grid, option
set, resolved backend defaults), identical in-flight requests collapse
onto one computation, and genuine misses dispatch onto the
fault-tolerant campaign runner in the background
(:mod:`repro.service.server`).  Start it with ``python -m repro serve``.
"""

from .client import ServiceClient, ServiceError, arequest
from .keys import KEY_SCHEME_VERSION, canonical_request, result_key, surrogate_key
from .server import BadRequest, ServiceConfig, SsnService, run_server
from .store import (
    RECORD_SCHEMA_VERSION,
    ResultStore,
    montecarlo_from_record,
    montecarlo_record,
    simulation_from_record,
    simulation_record,
    surrogate_from_record,
    surrogate_record,
)

__all__ = [
    "BadRequest",
    "KEY_SCHEME_VERSION",
    "RECORD_SCHEMA_VERSION",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SsnService",
    "arequest",
    "canonical_request",
    "montecarlo_from_record",
    "montecarlo_record",
    "result_key",
    "run_server",
    "simulation_from_record",
    "simulation_record",
    "surrogate_from_record",
    "surrogate_key",
    "surrogate_record",
]
