"""Thin stdlib clients for the SSN service.

:class:`ServiceClient` is the blocking convenience wrapper
(``http.client``, one connection per call — the server answers with
``Connection: close``); :func:`arequest` is the raw asyncio counterpart
used by the concurrency tests and anything already inside an event loop.
Neither adds dependencies.
"""

from __future__ import annotations

import http.client
import json


class ServiceError(RuntimeError):
    """A non-200 service response; carries ``.status`` and ``.payload``."""

    def __init__(self, status: int, payload):
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one service address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8431,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, method: str, path: str, payload: dict | None = None):
        """One request/response cycle; returns ``(status, decoded body)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            headers = {} if body is None else {
                "Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        ctype = response.getheader("Content-Type", "")
        if ctype.startswith("application/json"):
            return response.status, json.loads(raw.decode())
        return response.status, raw.decode()

    def _checked(self, method: str, path: str, payload: dict | None = None):
        status, decoded = self.request(method, path, payload)
        if status != 200:
            raise ServiceError(status, decoded)
        return decoded

    def simulate(self, **params) -> dict:
        return self._checked("POST", "/simulate", params)

    def sweep(self, **params) -> dict:
        return self._checked("POST", "/sweep", params)

    def montecarlo(self, **params) -> dict:
        return self._checked("POST", "/montecarlo", params)

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._checked("GET", "/metrics")


async def arequest(host: str, port: int, method: str, path: str,
                   payload: dict | None = None):
    """Async one-shot request over a raw stream; ``(status, decoded body)``.

    Lives on the caller's event loop, so tests can ``gather`` many of
    these against an in-process server to exercise in-flight dedup
    deterministically.
    """
    import asyncio

    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    header_blob, _, payload_blob = raw.partition(b"\r\n\r\n")
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    headers = header_blob.decode("latin-1").lower()
    if "content-type: application/json" in headers:
        return status, json.loads(payload_blob.decode())
    return status, payload_blob.decode()
