"""Content-addressed result keys for the persistent SSN store.

One golden simulation is exactly determined by four things: the frozen
circuit spec, the resolved time grid, the transient-option set, and the
process-global backend defaults the run resolves under (engine, sparse
tier, compiled-kernel availability).  :func:`result_key` hashes a
canonical JSON rendering of all four into a hex fingerprint; equal keys
mean "bit-identical simulation", so the store can serve a repeat query
without re-entering the Newton loop, and a flipped backend default is a
different key — a miss, never a stale hit.

The backend snapshot is the *same* :func:`repro.analysis.simulate.resolved_backend`
the in-process memo folds into its key, so the two cache tiers share one
key contract by construction.  Floats are rendered with :func:`repr`
(the shortest exact round trip), dataclasses with their deterministic
``repr``; the digest is SHA-256, never truncated — keys are the full
64 hex characters.
"""

from __future__ import annotations

import hashlib
import json

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import default_stop_time, default_time_step, resolved_backend
from ..spice.transient import TransientOptions

#: Bumped whenever the canonical payload layout changes; part of the hash,
#: so a scheme change invalidates every previously stored key at once.
KEY_SCHEME_VERSION = 1


def canonical_request(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
    kind: str = "simulate",
    extra: dict | None = None,
) -> dict:
    """The canonical JSON-able payload :func:`result_key` hashes.

    ``tstop``/``dt`` are resolved to their spec-derived defaults before
    rendering, so "defaulted" and "explicitly passed the default value"
    spell the same key.  ``extra`` carries workload parameters beyond one
    transient run (Monte Carlo trial count and seed, sweep identity);
    its values must be JSON-serializable.
    """
    return {
        "scheme": KEY_SCHEME_VERSION,
        "kind": str(kind),
        "spec": repr(spec),
        "tstop": repr(default_stop_time(spec) if tstop is None else float(tstop)),
        "dt": repr(default_time_step(spec) if dt is None else float(dt)),
        "options": repr(options),
        "backend": [list(pair) for pair in resolved_backend(options)],
        "extra": dict(sorted((extra or {}).items())),
    }


def result_key(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
    kind: str = "simulate",
    extra: dict | None = None,
) -> str:
    """64-hex-char content fingerprint of one analysis request."""
    payload = canonical_request(spec, tstop, dt, options, kind=kind, extra=extra)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


def surrogate_key(technology: str, topology: str, operating_region: str) -> str:
    """Deterministic store key of one fitted surrogate model.

    Unlike result keys, surrogate keys are *identity* keys — they name the
    (technology, topology signature, operating region) slot, not the
    fitted content — so the serving layer can probe the store for a warm
    model without enumerating the directory, and a re-fit overwrites its
    predecessor in place.
    """
    payload = {
        "scheme": KEY_SCHEME_VERSION,
        "kind": "surrogate",
        "technology": str(technology),
        "topology": str(topology),
        "region": str(operating_region),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()
