"""Async HTTP front end serving SSN results from the persistent store.

The paper's economics — fit once, answer repeat queries cheaply — only
materialize at traffic scale if repeat queries never re-enter the Newton
loop.  This server puts four layers between a request and the solver:

1. **Surrogate-first answering** — a ``/simulate`` request accepted by a
   fitted surrogate model (:mod:`repro.surrogate`; warmed on demand from
   the store's ``surrogate`` records) is answered in closed form
   (outcome ``"surrogate"``), with an optional background full-sim
   refinement publishing the golden record for later exact hits.
2. **In-flight dedup** — identical concurrent requests (equal
   :func:`repro.service.keys.result_key`) collapse onto one computation;
   followers await the leader's result (outcome ``"dedup"``).
3. **Persistent store** — a key already computed, by any earlier process,
   is answered straight from the validated record (outcome ``"hit"``)
   with zero solver work.
4. **Background dispatch** — a genuine miss runs on a worker thread
   through the fault-tolerant :class:`~repro.analysis.campaign.CampaignRunner`
   (retry ladder, engine degradation), is atomically published to the
   store, and then answered (outcome ``"miss"``).

Zero new dependencies: the HTTP/1.1 layer is hand-rolled on
``asyncio.start_server`` (no ``http.server``), responses are
``Connection: close``, and the endpoints speak plain JSON:

* ``POST /simulate``   — one golden simulation (optionally with waveforms).
* ``POST /sweep``      — a knob sweep; each point goes through the same
  key/dedup/store path, so overlapping sweeps share work.
* ``POST /montecarlo`` — a golden transient Monte Carlo distribution.
* ``GET /healthz``     — liveness + readiness (``"warming"`` until the
  surrogate store warm-up completes) + store location.
* ``GET /statusz``     — the detailed operational view
  (:func:`repro.observability.health.statusz_snapshot`): latency
  quantiles, request/outcome totals, rolling SLO rates and error budget,
  surrogate audit state, event-journal tail.
* ``GET /metrics``     — Prometheus text of the process registry
  (request/outcome counters, store activity, solver histograms).

Prometheus metrics and trace spans (``service_request`` down to the
solver's ``newton_solve``) thread through every path via
:mod:`repro.observability`; request outcomes, compute crashes and
surrogate audit decisions additionally land in the durable event journal
(``events.jsonl`` next to the store by default), and a shadow audit
(:mod:`repro.surrogate.audit`) re-checks a sampled fraction of
surrogate-served answers against their background golden refinements,
demoting a region whose observed error breaches its served tolerance.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import time

from ..analysis.campaign import CampaignConfig, CampaignRunner, _rung_options
from ..analysis.driver_bank import DriverBankSpec
from ..analysis.montecarlo import DeviceSpread, transient_peak_distribution
from ..analysis.simulate import simulate_ssn_cached_fresh
from ..observability import events as obs_events
from ..observability import health as obs_health
from ..observability import metrics as obs_metrics
from ..observability import trace
from ..observability.export import to_prometheus_text
from ..process import get_technology
from ..spice.transient import TransientOptions
from ..surrogate import (
    REGIONS_BY_TOPOLOGY,
    SurrogateAuditor,
    SurrogateRegistry,
    topology_signature,
)
from .keys import canonical_request, result_key, surrogate_key
from .store import (
    ResultStore,
    WAVEFORM_FIELDS,
    _waveform_payload,
    montecarlo_record,
    simulation_record,
    surrogate_from_record,
)

#: Upper bounds on one request's header block and body, in bytes.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Spec fields a request may set, with coercions (None = required).
_SPEC_FIELDS = {
    "n_drivers": int,
    "inductance": float,
    "rise_time": float,
    "capacitance": float,
    "resistance": float,
    "load_capacitance": float,
    "driver_strength": float,
    "collapse": bool,
}

#: Sweepable spec knobs: name -> per-value coercion.
_SWEEP_KNOBS = {
    "n_drivers": int,
    "inductance": float,
    "capacitance": float,
    "rise_time": float,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
}


class BadRequest(ValueError):
    """A malformed or invalid request body (answered with HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one serving process.

    Attributes:
        host: bind address.
        port: bind port; 0 picks an ephemeral port (reported after bind).
        store_root: result-database directory.
        max_retries: per-chunk retry budget of the dispatch campaigns.
        deadline: per-task wall-clock budget in seconds (None = unlimited).
        chunk_size: campaign chunk size for multi-instance workloads
            (Monte Carlo trial fleets).
        max_workers: process-pool width for campaign bulk execution
            (None honors ``REPRO_MAX_WORKERS``, else serial).
        surrogate: serve in-region ``/simulate`` requests from fitted
            surrogate models (clients can also opt out per request with
            ``"surrogate": false``).
        surrogate_refine: on a surrogate answer, kick off a background
            full simulation that publishes the golden record, so the next
            identical request is an exact store hit.
        audit_fraction: fraction of surrogate-served answers shadow-audited
            against their golden refinement (0 disables; requires
            ``surrogate_refine``).
        events_path: durable event-journal file; the default ``"auto"``
            puts ``events.jsonl`` inside the store root, ``None`` disables
            journaling.  A journal already enabled process-wide is reused
            (and left alone on close).
        flight_dir: directory for flight-recorder bundles dumped when a
            dispatched computation crashes (default: ``$REPRO_FLIGHT_DIR``,
            else disabled).
    """

    host: str = "127.0.0.1"
    port: int = 8431
    store_root: str | os.PathLike = ".repro_store"
    max_retries: int = 2
    deadline: float | None = None
    chunk_size: int = 8
    max_workers: int | None = None
    surrogate: bool = True
    surrogate_refine: bool = True
    audit_fraction: float = 0.1
    events_path: str | os.PathLike | None = "auto"
    flight_dir: str | os.PathLike | None = None


def _parse_options(payload) -> TransientOptions | None:
    """Build :class:`TransientOptions` from a request's ``options`` object."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise BadRequest("'options' must be a JSON object")
    allowed = {f.name for f in dataclasses.fields(TransientOptions)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise BadRequest(f"unknown transient options: {', '.join(unknown)}")
    try:
        return TransientOptions(**payload)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid transient options: {exc}") from exc


def _spec_from(params: dict) -> DriverBankSpec:
    """Build the :class:`DriverBankSpec` a request's spec fields describe."""
    try:
        technology = get_technology(str(params.get("tech", "tsmc018")))
    except (KeyError, ValueError) as exc:
        raise BadRequest(f"unknown technology: {exc}") from exc
    if "n_drivers" not in params:
        raise BadRequest("'n_drivers' is required")
    # The CLI's defaults: 5 nH ground path, 0.5 ns edge.
    kwargs = {"inductance": 5e-9, "rise_time": 0.5e-9}
    for name, coerce in _SPEC_FIELDS.items():
        if name not in params or params[name] is None:
            continue
        try:
            kwargs[name] = coerce(params[name])
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid {name!r}: {exc}") from exc
    offsets = params.get("input_offsets")
    if offsets is not None:
        try:
            kwargs["input_offsets"] = tuple(float(v) for v in offsets)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid 'input_offsets': {exc}") from exc
    try:
        return DriverBankSpec(technology=technology, **kwargs)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid spec: {exc}") from exc


def _check_params(params, allowed: set[str], endpoint: str) -> dict:
    if not isinstance(params, dict):
        raise BadRequest(f"{endpoint} expects a JSON object body")
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise BadRequest(
            f"unknown {endpoint} parameters: {', '.join(unknown)}"
        )
    return params


_SPEC_PARAMS = set(_SPEC_FIELDS) | {"tech", "input_offsets", "options"}


class SsnService:
    """The serving loop: store + dedup map + campaign dispatch."""

    def __init__(self, config: ServiceConfig | None = None, **kwargs):
        if config is not None and kwargs:
            raise TypeError("pass either a ServiceConfig or keyword knobs, not both")
        self.config = config if config is not None else ServiceConfig(**kwargs)
        self.store = ResultStore(self.config.store_root)
        self._inflight: dict[str, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        #: Fitted surrogate models this server may answer from, warmed
        #: lazily from the store's ``surrogate`` records (one probe per
        #: identity key per process; restart to pick up later fits).
        self.registry = SurrogateRegistry()
        self._surrogate_probed: set[str] = set()
        self._refine_tasks: set[asyncio.Task] = set()
        self._audit = SurrogateAuditor(
            self.registry, fraction=self.config.audit_fraction)
        self._slo = obs_health.SloAggregator()
        self._ready = False
        self._owns_journal = False

    # -- lifecycle -------------------------------------------------------------------

    def _events_path(self) -> os.PathLike | str | None:
        path = self.config.events_path
        if path == "auto":
            return self.store.root / "events.jsonl"
        return path

    async def start(self) -> None:
        """Bind, then warm the surrogate registry before reporting ready.

        Binding first keeps ``/healthz`` answerable (``"warming"``) while
        the store scan runs; metrics and the event journal are enabled
        here when no process-wide ones exist (a journal this service
        enables is disabled again on :meth:`close`).
        """
        if obs_metrics.active_registry() is None:
            obs_metrics.enable_metrics()
        events_path = self._events_path()
        if events_path is not None and obs_events.active_journal() is None:
            obs_events.enable_events(events_path)
            self._owns_journal = True
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.surrogate:
            await asyncio.to_thread(self._warm_from_store)
        self._ready = True
        # Baseline SLO sample: the first /statusz window measures traffic
        # since startup, not an empty single-point delta.
        self._slo.sample(obs_metrics.active_registry())
        obs_events.emit("service_ready", port=self.port,
                        models=len(self.registry))

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def run(self, announce=None) -> None:
        """Start, optionally announce the bound address, and serve forever."""
        await self.start()
        if announce is not None:
            announce(
                f"repro service listening on "
                f"http://{self.config.host}:{self.port} "
                f"(store: {self.store.root})"
            )
        await self.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._inflight.values()):
            task.cancel()
        for task in list(self._refine_tasks):
            task.cancel()
        if self._owns_journal:
            obs_events.disable_events()
            self._owns_journal = False
        self._ready = False

    async def drain_background(self) -> None:
        """Await every pending background refinement (tests and shutdown)."""
        while self._refine_tasks:
            await asyncio.gather(*list(self._refine_tasks),
                                 return_exceptions=True)

    # -- HTTP plumbing ---------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        start = time.perf_counter()
        endpoint = "unparsed"
        try:
            try:
                method, path, body = await self._read_request(reader)
                endpoint = path
                status, payload, ctype = await self._dispatch(method, path, body)
            except BadRequest as exc:
                status, payload, ctype = 400, {"error": str(exc)}, "application/json"
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request; nothing to answer
            except Exception as exc:  # computation / internal failures -> 500
                status = 500
                payload = {"error": f"{type(exc).__name__}: {exc}"}
                ctype = "application/json"
                obs_metrics.inc("repro_service_errors_total",
                                labels={"endpoint": endpoint})
                obs_events.emit("service_error", endpoint=endpoint,
                                error=f"{type(exc).__name__}: {exc}")
            body_bytes = payload if isinstance(payload, bytes) else (
                json.dumps(payload, sort_keys=True) + "\n").encode()
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body_bytes)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body_bytes)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            obs_metrics.observe("repro_service_request_seconds",
                                time.perf_counter() - start,
                                labels={"endpoint": endpoint})

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise BadRequest("header block too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body

    async def _dispatch(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}, "application/json"
            # Liveness answers as soon as the socket is bound; readiness
            # ("ok") waits for the surrogate warm-up.  /statusz has the
            # detailed view.
            return 200, {"status": "ok" if self._ready else "warming",
                         "store": str(self.store.root),
                         "inflight": len(self._inflight)}, "application/json"
        if path == "/statusz":
            if method != "GET":
                return 405, {"error": "GET only"}, "application/json"
            return 200, self._statusz(), "application/json"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}, "application/json"
            registry = obs_metrics.active_registry()
            text = "" if registry is None else to_prometheus_text(registry)
            return 200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        handlers = {"/simulate": self._handle_simulate,
                    "/sweep": self._handle_sweep,
                    "/montecarlo": self._handle_montecarlo}
        handler = handlers.get(path)
        if handler is None:
            return 404, {"error": f"no such endpoint {path!r}"}, "application/json"
        if method != "POST":
            return 405, {"error": "POST only"}, "application/json"
        try:
            params = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc
        return 200, await handler(params), "application/json"

    def _statusz(self) -> dict:
        """The ``GET /statusz`` payload (see ``docs/observability.md``)."""
        surrogate = {
            "enabled": self.config.surrogate,
            "models": len(self.registry),
            "audit": self._audit.as_payload(),
        }
        return obs_health.statusz_snapshot(
            ready=self._ready,
            store={
                "root": str(self.store.root),
                "records": len(self.store),
                "quarantined": len(self.store.quarantined()),
            },
            inflight=len(self._inflight),
            registry=obs_metrics.active_registry(),
            slo=self._slo,
            surrogate=surrogate,
            journal=obs_events.active_journal(),
        )

    # -- endpoints -------------------------------------------------------------------

    async def _handle_simulate(self, params) -> dict:
        params = _check_params(
            params, _SPEC_PARAMS | {"include_waveforms", "surrogate"},
            "/simulate")
        spec = _spec_from(params)
        options = _parse_options(params.get("options"))
        include_waveforms = bool(params.get("include_waveforms", True))
        use_surrogate = self.config.surrogate and bool(
            params.get("surrogate", True))
        with trace.span("service_request", endpoint="simulate"):
            if use_surrogate and options is None:
                payload = self._try_surrogate(spec, include_waveforms)
                if payload is not None:
                    return payload
            record, outcome = await self._serve_simulation(
                spec, options, endpoint="simulate")
        return self._simulation_payload(record, outcome, include_waveforms)

    async def _handle_sweep(self, params) -> dict:
        params = _check_params(
            params, _SPEC_PARAMS | {"knob", "values"}, "/sweep")
        knob = str(params.get("knob", "n_drivers"))
        coerce = _SWEEP_KNOBS.get(knob)
        if coerce is None:
            raise BadRequest(
                f"unknown sweep knob {knob!r}; choose from "
                f"{sorted(_SWEEP_KNOBS)}")
        values = params.get("values")
        if not isinstance(values, list) or not values:
            raise BadRequest("'values' must be a non-empty JSON array")
        base_params = {k: v for k, v in params.items()
                       if k not in ("knob", "values")}
        base_params.setdefault("n_drivers", 4)
        options = _parse_options(params.get("options"))
        specs = []
        for value in values:
            point = dict(base_params)
            try:
                point[knob] = coerce(value)
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"invalid {knob} value {value!r}: {exc}") from exc
            specs.append(_spec_from(point))
        with trace.span("service_request", endpoint="sweep", points=len(specs)):
            served = await asyncio.gather(*(
                self._serve_simulation(spec, options, endpoint="sweep")
                for spec in specs
            ))
        points = []
        for value, spec, (record, outcome) in zip(values, specs, served):
            points.append({
                "value": value,
                "key": record["key"],
                "outcome": outcome,
                "peak_voltage": record["peak_voltage"],
                "peak_time": record["peak_time"],
            })
        return {"knob": knob, "points": points}

    async def _handle_montecarlo(self, params) -> dict:
        params = _check_params(
            params,
            _SPEC_PARAMS | {"trials", "seed", "vth_sigma", "mu_sigma"},
            "/montecarlo")
        spec = _spec_from(params)
        options = _parse_options(params.get("options"))
        if options is not None:
            raise BadRequest("/montecarlo does not accept 'options' yet")
        try:
            trials = int(params.get("trials", 64))
            seed = int(params.get("seed", 0))
            spread = DeviceSpread(
                **{k: float(params[k]) for k in ("vth_sigma", "mu_sigma")
                   if params.get(k) is not None})
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid Monte Carlo parameters: {exc}") from exc
        if trials < 1:
            raise BadRequest("'trials' must be at least 1")
        extra = {"trials": trials, "seed": seed, "spread": repr(spread)}
        key = result_key(spec, kind="montecarlo", extra=extra)
        with trace.span("service_request", endpoint="montecarlo"):
            record, outcome = await self._serve_record(
                key, "montecarlo", endpoint="montecarlo",
                compute=lambda: self._compute_montecarlo_sync(
                    key, spec, spread, trials, seed),
            )
        return {
            "key": key, "outcome": outcome,
            "trials": trials, "seed": seed,
            "mean": record["mean"], "std": record["std"],
            "p95": record["p95"], "nominal": record["nominal"],
            "samples": record["samples"],
            "telemetry": record.get("telemetry"),
        }

    # -- surrogate-first answering ---------------------------------------------------

    def _warm_from_store(self) -> None:
        """Eagerly register every stored surrogate model (startup warm-up).

        Runs on a worker thread before the server reports ready, and is
        deliberately read-only: files are parsed directly rather than
        through :meth:`ResultStore.load`, so a startup scan never ticks
        hit/miss counters or quarantines records the serving path would
        handle (and count) itself.  Slots found here are marked probed so
        the per-request lazy warm-up skips them.
        """
        for path in sorted(self.store.root.glob("??/*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(record, dict) or record.get("kind") != "surrogate":
                continue
            try:
                model = surrogate_from_record(record)
            except (KeyError, TypeError, ValueError):
                continue
            key = record.get("key")
            if isinstance(key, str) and key not in self._surrogate_probed:
                self._surrogate_probed.add(key)
                self.registry.register(model)
                obs_metrics.inc("repro_surrogate_warmed_total")

    def _warm_surrogates(self, spec: DriverBankSpec) -> None:
        """Load any stored surrogate models covering ``spec``'s query slot.

        Surrogate store keys are identity keys (one per technology /
        topology / operating region), so warming probes at most the
        handful of slots a query could hit — no directory enumeration.
        Each slot is probed once per server process, negative or not.
        """
        topology = topology_signature(spec)
        for region in REGIONS_BY_TOPOLOGY.get(topology, ()):
            key = surrogate_key(spec.technology.name, topology, region)
            if key in self._surrogate_probed:
                continue
            self._surrogate_probed.add(key)
            model = self.store.get_surrogate(key)
            if model is not None:
                self.registry.register(model)
                obs_metrics.inc("repro_surrogate_warmed_total")

    def _try_surrogate(self, spec: DriverBankSpec,
                       include_waveforms: bool) -> dict | None:
        """The closed-form answer for an in-region request, or None.

        Refusals and misses return None — the caller falls through to the
        exact dedup/store/dispatch path, bit-identical to a server with
        no surrogate tier (the registry's ``repro_surrogate_*`` counters
        record why).  A hit optionally schedules background refinement so
        the golden record eventually backs the same key; once it does (or
        the exact answer was ever computed), the store hit outranks the
        surrogate — approximate answers only ever stand in for work not
        yet done.
        """
        self._warm_surrogates(spec)
        key = result_key(spec)
        if key in self.store:
            return None  # the exact record is already on disk
        model, _reason = self.registry.lookup(spec)
        if model is None:
            return None
        sim = model.simulation(spec)
        if self.config.surrogate_refine:
            if self._schedule_refinement(key, spec):
                # Shadow audit: the background golden refinement doubles
                # as the reference for a sampled fraction of answers.
                self._audit.track(key, model, sim.peak_voltage)
        obs_metrics.inc("repro_service_requests_total",
                        labels={"endpoint": "simulate", "outcome": "surrogate"})
        obs_events.emit("service_request", endpoint="simulate",
                        outcome="surrogate", key=key[:12])
        payload = {
            "key": key,
            "outcome": "surrogate",
            "peak_voltage": sim.peak_voltage,
            "peak_time": sim.peak_time,
            "engine": "surrogate",
            "telemetry": sim.telemetry.as_dict(),
            "surrogate": {
                "technology": model.technology,
                "topology": model.topology,
                "operating_region": model.operating_region,
                "error_bound_percent": model.error.max_abs_percent,
                "tolerance_percent": model.tolerance_percent,
            },
        }
        if include_waveforms:
            payload["waveforms"] = {
                name: _waveform_payload(getattr(sim, name))
                for name in WAVEFORM_FIELDS
            }
        return payload

    def _schedule_refinement(self, key: str, spec: DriverBankSpec) -> bool:
        """Fire-and-forget the golden computation behind a surrogate answer.

        Returns whether a refinement task was actually created (the audit
        monitor only enrolls keys whose golden reference will arrive).
        """
        if key in self._inflight or key in self.store:
            return False
        task = asyncio.get_running_loop().create_task(self._refine(key, spec))
        self._refine_tasks.add(task)
        task.add_done_callback(self._refine_tasks.discard)
        return True

    async def _refine(self, key: str, spec: DriverBankSpec) -> None:
        try:
            record, _ = await self._serve_record(
                key, "simulate", endpoint="surrogate_refine",
                compute=lambda: self._compute_simulation_sync(key, spec, None),
            )
        except Exception:
            # Background work: the client already has its answer, and the
            # next exact request recomputes; just count the failure.
            obs_metrics.inc("repro_surrogate_refine_errors_total")
            obs_events.emit("surrogate_refine_failed", key=key[:12])
            self._audit.discard(key)
        else:
            # The refined record is the golden MNA answer — resolve the
            # shadow audit (a no-op for unsampled keys).
            reference = record.get("peak_voltage")
            if isinstance(reference, (int, float)):
                self._audit.resolve(key, reference)
            else:
                self._audit.discard(key)

    # -- serving core ----------------------------------------------------------------

    async def _serve_simulation(self, spec: DriverBankSpec,
                                options: TransientOptions | None,
                                endpoint: str):
        key = result_key(spec, options=options)
        return await self._serve_record(
            key, "simulate", endpoint=endpoint,
            compute=lambda: self._compute_simulation_sync(key, spec, options),
        )

    async def _serve_record(self, key: str, kind: str, endpoint: str, compute):
        """hit / dedup / miss resolution of one keyed request.

        ``compute`` is a zero-argument sync function returning the record
        dict; on a miss it runs on a worker thread, its result is
        atomically published to the store, and every deduped follower of
        the same key receives the same record object.
        """
        task = self._inflight.get(key)
        if task is not None:
            outcome = "dedup"
            record = await asyncio.shield(task)
        else:
            record = self.store.load(key)
            if record is not None and record.get("kind") == kind:
                outcome = "hit"
            else:
                outcome = "miss"
                task = asyncio.get_running_loop().create_task(
                    self._compute_and_publish(key, compute))
                self._inflight[key] = task
                record = await asyncio.shield(task)
        obs_metrics.inc("repro_service_requests_total",
                        labels={"endpoint": endpoint, "outcome": outcome})
        obs_events.emit("service_request", endpoint=endpoint,
                        outcome=outcome, key=key[:12])
        return record, outcome

    async def _compute_and_publish(self, key: str, compute) -> dict:
        try:
            with trace.span("service_compute", key=key[:12]):
                record = await asyncio.to_thread(compute)
                await asyncio.to_thread(self.store.put, key, record)
            return record
        except Exception as exc:
            # A dispatched computation died past its whole recovery
            # ladder: preserve the moments before it for the operator.
            obs_events.emit("service_compute_failed", key=key[:12],
                            error=f"{type(exc).__name__}: {exc}")
            obs_health.maybe_flight_record(
                self.config.flight_dir, "service_compute_failed",
                extra={"key": key, "error": f"{type(exc).__name__}: {exc}"})
            raise
        finally:
            self._inflight.pop(key, None)

    def _campaign_config(self) -> CampaignConfig:
        cfg = self.config
        return CampaignConfig(
            chunk_size=cfg.chunk_size, max_retries=cfg.max_retries,
            deadline=cfg.deadline, max_workers=cfg.max_workers,
        )

    def _compute_simulation_sync(self, key: str, spec: DriverBankSpec,
                                 options: TransientOptions | None) -> dict:
        """Miss path: dispatch one spec onto the fault-tolerant runner.

        The campaign executes (and journals nothing — no checkpoint is
        configured for interactive traffic) through the full retry /
        degradation ladder; the warm in-process memo then hands the full
        waveform set over without a second solve.
        """
        obs_metrics.inc("repro_service_computes_total")
        runner = CampaignRunner(self._campaign_config())
        records = runner.run_specs([spec], kind="service-simulate",
                                   options=options)
        rung = records[0]["engine"]
        sim, _ = simulate_ssn_cached_fresh(
            spec, options=_rung_options(rung, options))
        return simulation_record(key, sim, meta={
            "engine": rung,
            "request": canonical_request(spec, options=options),
        })

    def _compute_montecarlo_sync(self, key: str, spec: DriverBankSpec,
                                 spread: DeviceSpread, trials: int,
                                 seed: int) -> dict:
        obs_metrics.inc("repro_service_computes_total")
        result = transient_peak_distribution(
            spec, spread=spread, trials=trials, seed=seed,
            campaign=self._campaign_config(),
        )
        return montecarlo_record(key, result, meta={
            "request": canonical_request(
                spec, kind="montecarlo",
                extra={"trials": trials, "seed": seed, "spread": repr(spread)}),
        })

    # -- payload shaping -------------------------------------------------------------

    @staticmethod
    def _simulation_payload(record: dict, outcome: str,
                            include_waveforms: bool) -> dict:
        payload = {
            "key": record["key"],
            "outcome": outcome,
            "peak_voltage": record["peak_voltage"],
            "peak_time": record["peak_time"],
            "engine": record.get("meta", {}).get("engine"),
            "telemetry": record.get("telemetry"),
        }
        if include_waveforms:
            payload["waveforms"] = record["waveforms"]
        return payload


def run_server(config: ServiceConfig | None = None, announce=None,
               **kwargs) -> None:
    """Blocking entry point: serve until interrupted (the CLI's path)."""
    service = SsnService(config, **kwargs)
    asyncio.run(service.run(announce=announce))
