"""Durable, schema-versioned operational event journal.

Where :mod:`~repro.observability.trace` answers "how long did this take"
and :mod:`~repro.observability.metrics` answers "how often", the event
journal answers "*what happened, in order*": request outcomes, campaign
chunk retries and degradations, checkpoint writes, store quarantines,
surrogate refusals and demotions.  It is the substrate the health surface
(``/statusz``, the flight recorder, ``repro events``) reads from, and —
because events survive process restarts as append-only JSONL — the record
an operator replays after an incident.

Design mirrors the tracer:

* **Off by default, near-zero when off** — :func:`emit` is one module
  global read and a ``None`` check when no journal is enabled.
* **Module-global journal** — :func:`enable_events` / :func:`disable_events`
  / :func:`active_journal`, so instrumented call sites never thread a
  journal handle through APIs.
* **Cross-ProcessPool adoption** — workers record into a memory-only
  journal (:meth:`EventJournal.config` drops the path, so there is never
  more than one writer per file); :func:`snapshot_events` rides the events
  back with the results and :func:`adopt_events` folds them into the
  parent, preserving each event's original ``(pid, seq)`` identity so
  stitched streams are exactly-once.
* **Correlation** — every event records the trace span id active at emit
  time (``span_id``), linking the discrete log to the span tree.

Durability: each event appends one JSONL line.  The line is written in a
single buffered write *after* the ``crash-write`` fault probe fires
(``faults.scope(phase="events")``), so an injected — or real — crash
aborts before any bytes land and the journal never holds a torn line.
When the segment exceeds ``max_bytes`` it is rotated: the last
``ring_size`` events are rewritten through the shared
:func:`~repro.observability.atomic.atomic_write`, bounding disk use while
keeping recent history (a reader sees the old or the new segment, never a
partial one).
"""

from __future__ import annotations

import collections
import json
import os
import time
from pathlib import Path
from typing import Iterable, Iterator

from . import trace
from .atomic import atomic_write
from ..testing import faults

#: Version stamped into every event; bump on any field-semantics change.
EVENT_SCHEMA_VERSION = 1

#: Default bound on the in-memory ring buffer (events kept for /statusz,
#: flight-recorder bundles and rotation).
DEFAULT_RING_SIZE = 512

#: Default journal-segment size that triggers rotation, in bytes.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class EventJournal:
    """A bounded in-memory ring plus an optional append-only JSONL segment.

    Attributes:
        path: journal file (``None`` = memory-only, the pool-worker mode).
        ring_size: events retained in memory.
        max_bytes: segment size beyond which the file is rotated down to
            the ring's contents.
        recorded: events recorded over this journal's lifetime (adopted
            worker events included).
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 ring_size: int = DEFAULT_RING_SIZE,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.path = None if path is None else Path(path)
        self.ring_size = ring_size
        self.max_bytes = max_bytes
        self.recorded = 0
        self._ring: collections.deque[dict] = collections.deque(
            maxlen=ring_size)
        self._seq = 0
        self._pid = os.getpid()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- recording -------------------------------------------------------------------

    def emit(self, name: str, **attributes) -> dict:
        """Record one event; returns the event dict (also kept in the ring)."""
        self._seq += 1
        event = {
            "schema": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "t": time.time(),
            "pid": self._pid,
            "name": name,
            "span_id": trace.current_span_id(),
        }
        if attributes:
            event["attributes"] = attributes
        self._record(event)
        return event

    def adopt(self, payload: Iterable[dict]) -> int:
        """Fold events snapshotted in a worker process into this journal.

        Events keep their worker-side identity (``pid``, ``seq``, ``t``,
        ``span_id`` — worker spans are themselves adopted by the tracer, so
        correlation ids stay resolvable) and are recorded in worker order,
        so one worker's stream is never reordered and a discarded pool
        attempt's events simply never arrive — exactly-once, like spans.
        """
        count = 0
        for event in payload:
            self._record(dict(event))
            count += 1
        return count

    def _record(self, event: dict) -> None:
        self._ring.append(event)
        self.recorded += 1
        if self.path is not None:
            self._append_line(event)

    def _append_line(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        # The probe fires *before* any bytes are written: an injected
        # crash leaves the previous, fully-valid journal on disk.
        with faults.scope(phase="events"):
            faults.probe("checkpoint")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size > self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Shrink the on-disk segment to the ring's (recent) contents."""
        lines = [json.dumps(event, sort_keys=True) + "\n"
                 for event in self._ring]
        mid = max(1, len(lines) // 2)

        def chunks() -> Iterator[str]:
            yield "".join(lines[:mid])
            with faults.scope(phase="events"):
                faults.probe("checkpoint")
            yield "".join(lines[mid:])

        atomic_write(self.path, chunks())

    # -- reading ---------------------------------------------------------------------

    def events(self) -> list[dict]:
        """The ring's events, oldest first (copies of the live dicts)."""
        return [dict(event) for event in self._ring]

    def tail(self, n: int = 10) -> list[dict]:
        """The most recent ``n`` events, oldest first."""
        if n <= 0:
            return []
        return [dict(event) for event in list(self._ring)[-n:]]

    # -- worker bootstrap ------------------------------------------------------------

    def config(self) -> dict:
        """Picklable bootstrap for pool workers.

        Drops the path on purpose: workers journal to memory only (their
        events ride back with the results), so the file always has exactly
        one writer.
        """
        return {"ring_size": self.ring_size, "max_bytes": self.max_bytes}


# -- module-global journal ---------------------------------------------------------

_journal: EventJournal | None = None


def enable_events(path: str | os.PathLike | None = None,
                  ring_size: int = DEFAULT_RING_SIZE,
                  max_bytes: int = DEFAULT_MAX_BYTES) -> EventJournal:
    """Install (and return) the process's event journal."""
    global _journal
    _journal = EventJournal(path, ring_size=ring_size, max_bytes=max_bytes)
    return _journal


def disable_events() -> None:
    """Remove the journal; :func:`emit` returns to its no-op fast path."""
    global _journal
    _journal = None


def active_journal() -> EventJournal | None:
    """The enabled journal, or None (the production default)."""
    return _journal


def emit(name: str, **attributes) -> dict | None:
    """Record one event on the active journal; no-op (None) when disabled."""
    journal = _journal
    if journal is None:
        return None
    return journal.emit(name, **attributes)


def snapshot_events() -> list[dict]:
    """The active journal's ring as picklable dicts ([] when disabled)."""
    journal = _journal
    if journal is None:
        return []
    return journal.events()


def adopt_events(payload: Iterable[dict]) -> int:
    """Fold worker-side events into the active journal; 0 when disabled."""
    journal = _journal
    if journal is None:
        return 0
    return journal.adopt(payload)


# -- journal files -----------------------------------------------------------------


def read_journal(path: str | os.PathLike) -> list[dict]:
    """Parse a journal file into event dicts, oldest first.

    Blank and undecodable lines are skipped (the append protocol never
    produces them, but an operator's journal should survive a stray edit).
    """
    events = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


def summarize_events(events: list[dict]) -> str:
    """A per-name count table of an event stream (the CLI's summary view)."""
    if not events:
        return "no events"
    counts: collections.Counter[str] = collections.Counter(
        str(event.get("name", "?")) for event in events)
    times = [event["t"] for event in events
             if isinstance(event.get("t"), (int, float))]
    width = max(len(name) for name in counts)
    lines = [f"{len(events)} events, {len(counts)} kinds"]
    if times:
        lines[0] += f", spanning {max(times) - min(times):.3f} s"
    for name, count in counts.most_common():
        lines.append(f"  {name:<{width}}  {count}")
    return "\n".join(lines)


def format_event(event: dict) -> str:
    """One human-readable journal line (the CLI's tail view)."""
    stamp = event.get("t")
    when = (time.strftime("%H:%M:%S", time.localtime(stamp))
            if isinstance(stamp, (int, float)) else "--:--:--")
    name = event.get("name", "?")
    attrs = event.get("attributes") or {}
    detail = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    line = f"{when} [{event.get('pid', '?')}#{event.get('seq', '?')}] {name}"
    return f"{line} {detail}" if detail else line
