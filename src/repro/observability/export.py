"""Exporters: Chrome trace-event JSON, Prometheus text, timeline summaries.

Three views of one run, for three audiences:

* :func:`to_chrome_trace` — the ``chrome://tracing`` / `Perfetto
  <https://ui.perfetto.dev>`_ JSON format (an object with a
  ``traceEvents`` list of complete ``"X"`` events), for interactive
  where-did-the-time-go spelunking.  Span ids ride in ``args`` so the tree
  can be reconstructed losslessly from the file alone.
* :func:`to_prometheus_text` — the text exposition format (``# HELP`` /
  ``# TYPE`` plus cumulative ``_bucket{le=...}`` histogram lines), for
  scraping a long campaign from a metrics stack.
* :func:`timeline_summary` — a human tree with sibling spans aggregated by
  name (``newton_solve x812``), the CLI's ``repro trace summarize`` view.

All exporters are pure functions of spans / registries; file output goes
through :func:`repro.observability.atomic.atomic_write` so partially
written artifacts never exist on disk.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Sequence

from .atomic import atomic_write, atomic_write_json
from .metrics import Counter, Gauge, MetricsRegistry
from .trace import Span, Tracer

#: Schema version stamped into exported traces (consumed by trace-smoke).
TRACE_SCHEMA = "repro-trace-1"


# -- Chrome trace events -------------------------------------------------------------


def _tid_map(spans: Sequence[Span]) -> dict[str, int]:
    """Map span-id process prefixes to small integer thread ids."""
    prefixes: dict[str, int] = {}
    for sp in spans:
        prefix = sp.span_id.split(".", 1)[0]
        if prefix not in prefixes:
            prefixes[prefix] = len(prefixes) + 1
    return prefixes


def to_chrome_trace(spans: Sequence[Span], tracer: Tracer | None = None) -> dict:
    """Spans -> Chrome trace-event JSON object (``traceEvents`` format).

    Timestamps are microseconds relative to the earliest span start, so
    traces open at t=0 in Perfetto regardless of the host clock.  Each
    worker process gets its own ``tid`` lane (derived from the pid prefix
    of its span ids); span events inside a span become instant events.
    """
    spans = list(spans)
    origin = min((sp.start for sp in spans), default=0.0)
    tids = _tid_map(spans)
    events = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": "repro"},
    }]
    for sp in spans:
        tid = tids[sp.span_id.split(".", 1)[0]]
        end = sp.end if sp.end is not None else sp.start
        args = {k: _jsonable(v) for k, v in sp.attributes.items()}
        args["span_id"] = sp.span_id
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        events.append({
            "ph": "X",
            "name": sp.name,
            "cat": sp.name,
            "ts": (sp.start - origin) * 1e6,
            "dur": max(end - sp.start, 0.0) * 1e6,
            "pid": 0,
            "tid": tid,
            "args": args,
        })
        for ev in sp.events:
            events.append({
                "ph": "i",
                "name": ev["name"],
                "ts": (ev["t"] - origin) * 1e6,
                "pid": 0,
                "tid": tid,
                "s": "t",
                "args": {k: _jsonable(v) for k, v in ev.items()
                         if k not in ("name", "t")},
            })
    out = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
    }
    if tracer is not None and tracer.dropped:
        out["otherData"]["dropped_spans"] = tracer.dropped
    return out


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def write_chrome_trace(path: str | os.PathLike, spans: Sequence[Span],
                       tracer: Tracer | None = None) -> None:
    """Atomically write :func:`to_chrome_trace` output as JSON."""
    atomic_write_json(path, to_chrome_trace(spans, tracer), indent=None)


def validate_chrome_trace(obj) -> dict:
    """Check an object against the Chrome trace-event schema we emit.

    Raises ``ValueError`` naming the first violation; returns the object
    unchanged on success (so the trace-smoke pipeline can chain on it).
    """
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    ids: set[str] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"traceEvents[{i}] has unsupported phase {ph!r}")
        if "name" not in ev or "pid" not in ev or "tid" not in ev:
            raise ValueError(f"traceEvents[{i}] misses name/pid/tid")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or math.isnan(ts) or ts < 0:
            raise ValueError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has invalid dur {dur!r}")
            span_id = ev.get("args", {}).get("span_id")
            if not span_id:
                raise ValueError(f"traceEvents[{i}] misses args.span_id")
            if span_id in ids:
                raise ValueError(f"duplicate span id {span_id!r}")
            ids.add(span_id)
    for i, ev in enumerate(events):
        parent = ev.get("args", {}).get("parent_id") if ev.get("ph") == "X" else None
        if parent is not None and parent not in ids:
            raise ValueError(
                f"traceEvents[{i}] references unknown parent {parent!r}"
            )
    return obj


# -- Prometheus text exposition ------------------------------------------------------


def _fmt_labels(labels: Iterable[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Registry -> Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    seen_header: set[str] = set()
    for name, labels, metric in registry.items():
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_text(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            kind = ("counter" if isinstance(metric, Counter)
                    else "gauge" if isinstance(metric, Gauge) else "histogram")
            lines.append(f"# TYPE {name} {kind}")
        if isinstance(metric, Counter):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(metric.value)}")
        else:
            cumulative = 0
            for bound, count in zip(
                list(metric.bounds) + [math.inf], metric.counts
            ):
                cumulative += count
                le = _fmt_labels(labels, f'le="{_fmt_value(bound)}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(metric.sum)}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str | os.PathLike, registry: MetricsRegistry) -> None:
    """Atomically write :func:`to_prometheus_text` output."""
    atomic_write(path, to_prometheus_text(registry))


# -- human timeline summary ----------------------------------------------------------


def timeline_summary(spans: Sequence[Span], max_depth: int = 6) -> str:
    """Aggregate the span tree into a human timeline report.

    Sibling spans sharing a name collapse into one line with count, total
    and maximum duration — a 10k-solve campaign reads as a dozen lines, not
    ten thousand.
    """
    spans = list(spans)
    if not spans:
        return "trace: no spans recorded"
    children: dict[str | None, list[Span]] = {}
    ids = {sp.span_id for sp in spans}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in ids else None
        children.setdefault(parent, []).append(sp)

    total = sum(sp.duration or 0.0 for sp in children.get(None, []))
    lines = [f"trace: {len(spans)} spans, {total:.3f}s across "
             f"{len(children.get(None, []))} root span(s)"]

    def walk(parent_id: str | None, depth: int) -> None:
        if depth > max_depth:
            return
        groups: dict[str, list[Span]] = {}
        for sp in sorted(children.get(parent_id, []), key=lambda s: s.start):
            groups.setdefault(sp.name, []).append(sp)
        for name, group in groups.items():
            durations = [sp.duration or 0.0 for sp in group]
            label = name if len(group) == 1 else f"{name} x{len(group)}"
            line = (f"{'  ' * (depth + 1)}{label:<28} "
                    f"total {sum(durations):.4f}s")
            if len(group) > 1:
                line += f"  max {max(durations):.4f}s"
            extras = _group_attributes(group)
            if extras:
                line += f"  [{extras}]"
            lines.append(line)
            # Recurse through the longest member only when grouped — the
            # aggregate view stays readable; singletons expand fully.
            if len(group) == 1:
                walk(group[0].span_id, depth + 1)
            else:
                longest = max(group, key=lambda s: s.duration or 0.0)
                walk(longest.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def _group_attributes(group: Sequence[Span]) -> str:
    """Compact shared-attribute display for one aggregated line."""
    if len(group) == 1:
        attrs = {k: v for k, v in group[0].attributes.items()
                 if k not in ("span_id", "parent_id")}
        return ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())[:4])
    keys = set.intersection(*(set(sp.attributes) for sp in group)) if group else set()
    shared = {}
    for key in sorted(keys):
        values = {repr(sp.attributes[key]) for sp in group}
        if len(values) == 1:
            shared[key] = group[0].attributes[key]
    return ", ".join(f"{k}={v}" for k, v in list(shared.items())[:4])


def spans_from_chrome_trace(obj: dict) -> list[Span]:
    """Rebuild summarizable spans from an exported Chrome trace object."""
    validate_chrome_trace(obj)
    spans = []
    for ev in obj["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id", None)
        start = ev["ts"] / 1e6
        spans.append(Span(
            name=ev["name"], span_id=span_id, parent_id=parent_id,
            start=start, end=start + ev["dur"] / 1e6, attributes=args,
        ))
    return spans


def summarize_trace_file(path: str | os.PathLike, max_depth: int = 6) -> str:
    """Load an exported Chrome trace and render its timeline summary."""
    with open(path) as fh:
        obj = json.load(fh)
    summary = timeline_summary(spans_from_chrome_trace(obj), max_depth=max_depth)
    dropped = obj.get("otherData", {}).get("dropped_spans")
    if dropped:
        summary += f"\n(note: {dropped} spans dropped by the max_spans cap)"
    return summary
