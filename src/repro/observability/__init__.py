"""Zero-dependency observability for the SSN simulation stack.

Three cooperating pieces, all process-local and off by default:

* :mod:`~repro.observability.trace` — hierarchical spans (``campaign`` >
  ``chunk`` > ``task`` > ``newton_solve``/``assembly``/``lu_solve``) with a
  contextvar current-span stack, head-based sampling, detail levels and
  cross-ProcessPool stitching.
* :mod:`~repro.observability.metrics` — a registry of counters, gauges and
  fixed-bucket histograms whose merge semantics match
  :meth:`repro.spice.telemetry.SolverTelemetry.merge`.
* :mod:`~repro.observability.export` — Chrome trace-event JSON (open in
  ``chrome://tracing`` or Perfetto), Prometheus text exposition, and human
  timeline summaries; :mod:`~repro.observability.atomic` publishes every
  artifact via tempfile + fsync + ``os.replace``.

Two operational layers build on those three:

* :mod:`~repro.observability.events` — a durable, schema-versioned JSONL
  event journal (bounded ring + atomic rotation, cross-ProcessPool
  adoption, span correlation ids) recording what *happened*: request
  outcomes, chunk retries, quarantines, surrogate demotions.
* :mod:`~repro.observability.health` — the operator view: rolling-window
  SLO rates, the ``/statusz`` payload, and the crash-time flight
  recorder.

See ``docs/observability.md`` for the span taxonomy, event schema, bucket
layouts, overhead budget and CLI workflow (``--trace`` / ``--metrics`` /
``repro trace summarize`` / ``repro events`` / ``repro status``).
"""

from .atomic import atomic_write, atomic_write_json
from .events import (
    EVENT_SCHEMA_VERSION,
    EventJournal,
    active_journal,
    adopt_events,
    disable_events,
    emit,
    enable_events,
    read_journal,
    snapshot_events,
    summarize_events,
)
from .health import (
    SloAggregator,
    flight_record,
    maybe_flight_record,
    statusz_snapshot,
)
from .metrics import (
    MetricsRegistry,
    active_registry,
    disable_metrics,
    enable_metrics,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    adopt_spans,
    current_span_id,
    disable_tracing,
    enable_tracing,
    snapshot_spans,
    span,
)
from .export import (
    summarize_trace_file,
    timeline_summary,
    to_chrome_trace,
    to_prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventJournal",
    "MetricsRegistry",
    "SloAggregator",
    "Span",
    "Tracer",
    "active_journal",
    "active_registry",
    "active_tracer",
    "adopt_events",
    "adopt_spans",
    "atomic_write",
    "atomic_write_json",
    "current_span_id",
    "disable_events",
    "disable_metrics",
    "disable_tracing",
    "emit",
    "enable_events",
    "enable_metrics",
    "enable_tracing",
    "flight_record",
    "maybe_flight_record",
    "read_journal",
    "snapshot_events",
    "snapshot_spans",
    "span",
    "statusz_snapshot",
    "summarize_events",
    "summarize_trace_file",
    "timeline_summary",
    "to_chrome_trace",
    "to_prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
]
