"""Zero-dependency observability for the SSN simulation stack.

Three cooperating pieces, all process-local and off by default:

* :mod:`~repro.observability.trace` — hierarchical spans (``campaign`` >
  ``chunk`` > ``task`` > ``newton_solve``/``assembly``/``lu_solve``) with a
  contextvar current-span stack, head-based sampling, detail levels and
  cross-ProcessPool stitching.
* :mod:`~repro.observability.metrics` — a registry of counters, gauges and
  fixed-bucket histograms whose merge semantics match
  :meth:`repro.spice.telemetry.SolverTelemetry.merge`.
* :mod:`~repro.observability.export` — Chrome trace-event JSON (open in
  ``chrome://tracing`` or Perfetto), Prometheus text exposition, and human
  timeline summaries; :mod:`~repro.observability.atomic` publishes every
  artifact via tempfile + fsync + ``os.replace``.

See ``docs/observability.md`` for the span taxonomy, bucket layouts,
overhead budget and CLI workflow (``--trace`` / ``--metrics`` /
``repro trace summarize``).
"""

from .atomic import atomic_write, atomic_write_json
from .metrics import (
    MetricsRegistry,
    active_registry,
    disable_metrics,
    enable_metrics,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    adopt_spans,
    current_span_id,
    disable_tracing,
    enable_tracing,
    snapshot_spans,
    span,
)
from .export import (
    summarize_trace_file,
    timeline_summary,
    to_chrome_trace,
    to_prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_registry",
    "active_tracer",
    "adopt_spans",
    "atomic_write",
    "atomic_write_json",
    "current_span_id",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "snapshot_spans",
    "span",
    "summarize_trace_file",
    "timeline_summary",
    "to_chrome_trace",
    "to_prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
]
