"""Operational health surface: SLO aggregation, ``/statusz``, flight recorder.

:mod:`~repro.observability.metrics` accumulates monotonically over a
process's whole life, which answers "how much, ever" but not "is this
deployment healthy *right now*".  This module layers the operator's view
on top:

* :class:`SloAggregator` — a rolling window of counter snapshots turned
  into current rates (requests/s, error rate, hit and surrogate
  fractions) and an error-budget state against a target error rate.
* :func:`statusz_snapshot` — the ``GET /statusz`` JSON payload: readiness,
  store and in-flight state, latency quantiles per endpoint (from the
  fixed-bucket request histograms), request/outcome totals, SLO window,
  surrogate audit state, and the event journal's tail.  ``/healthz``
  stays the cheap liveness probe; this is the detailed, versioned view.
* :func:`flight_record` — on an unrecovered campaign failure or a service
  compute crash, dump the last-N events + span snapshot + metrics into a
  single JSON bundle (atomic, and firing the ``crash-write`` fault probe
  under ``faults.scope(phase="events")`` like every other durable write),
  so the moments *before* an incident survive it.
"""

from __future__ import annotations

import collections
import itertools
import json
import math
import os
import time
from pathlib import Path
from typing import Iterator, Mapping

from . import events as obs_events
from . import metrics as obs_metrics
from . import trace
from .atomic import atomic_write
from ..testing import faults

#: Version stamped into /statusz payloads and flight bundles.
STATUS_SCHEMA_VERSION = 1

#: Environment fallback for the flight-recorder bundle directory.
FLIGHT_ENV = "REPRO_FLIGHT_DIR"

#: Request-path metric names the health view reads.
REQUESTS_METRIC = "repro_service_requests_total"
ERRORS_METRIC = "repro_service_errors_total"
LATENCY_METRIC = "repro_service_request_seconds"

#: Latency quantiles reported per endpoint.
QUANTILES = (0.5, 0.9, 0.99)

#: Disambiguates flight bundles written within one millisecond.
_flight_counter = itertools.count()


def _counter_value(metric) -> float:
    return metric.value if isinstance(metric, obs_metrics.Counter) else 0.0


def request_outcomes(registry: obs_metrics.MetricsRegistry
                     ) -> dict[str, dict[str, float]]:
    """``repro_service_requests_total`` as {endpoint: {outcome: count}}."""
    outcomes: dict[str, dict[str, float]] = {}
    for name, labels, metric in registry.items():
        if name != REQUESTS_METRIC:
            continue
        label_map = dict(labels)
        endpoint = label_map.get("endpoint", "?")
        outcome = label_map.get("outcome", "?")
        outcomes.setdefault(endpoint, {})[outcome] = _counter_value(metric)
    return outcomes


def error_counts(registry: obs_metrics.MetricsRegistry) -> dict[str, float]:
    """``repro_service_errors_total`` per endpoint (500-answered requests)."""
    errors: dict[str, float] = {}
    for name, labels, metric in registry.items():
        if name != ERRORS_METRIC:
            continue
        endpoint = dict(labels).get("endpoint", "?")
        errors[endpoint] = _counter_value(metric)
    return errors


def latency_quantiles(registry: obs_metrics.MetricsRegistry,
                      quantiles=QUANTILES) -> dict[str, dict[str, float]]:
    """Per-endpoint request-latency quantiles from the bucket histograms.

    Quantiles come from :meth:`MetricsRegistry.quantile` (bucket upper
    bounds — conservative); NaN-valued entries (endpoint never observed)
    are omitted so the payload stays JSON-clean.
    """
    latency: dict[str, dict[str, float]] = {}
    for name, labels, metric in registry.items():
        if name != LATENCY_METRIC or not isinstance(metric, obs_metrics.Histogram):
            continue
        endpoint = dict(labels).get("endpoint", "?")
        per_q = {}
        for q in quantiles:
            value = metric.quantile(q)
            if not math.isnan(value):
                per_q[f"p{round(q * 100)}"] = value
        if per_q:
            latency[endpoint] = per_q
    return latency


class SloAggregator:
    """Rolling-window service-level view over the monotonic counters.

    Each :meth:`sample` snapshots the request/error totals; rates are the
    delta between the oldest retained snapshot and now, so a long-lived
    process reports *recent* health, not its lifetime average.  The error
    budget compares the window's error rate against ``error_budget``
    (errors per request): ``remaining`` is the unspent fraction of the
    budget, clamped to [0, 1].
    """

    def __init__(self, window: float = 300.0, error_budget: float = 0.01):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if error_budget <= 0:
            raise ValueError(f"error_budget must be positive, got {error_budget}")
        self.window = window
        self.error_budget = error_budget
        self._samples: collections.deque[tuple[float, float, float, dict]] = (
            collections.deque())

    @staticmethod
    def _totals(registry: obs_metrics.MetricsRegistry | None
                ) -> tuple[float, float, dict[str, float]]:
        if registry is None:
            return 0.0, 0.0, {}
        requests = 0.0
        by_outcome: dict[str, float] = {}
        for endpoint_outcomes in request_outcomes(registry).values():
            for outcome, count in endpoint_outcomes.items():
                requests += count
                by_outcome[outcome] = by_outcome.get(outcome, 0.0) + count
        errors = sum(error_counts(registry).values())
        return requests, errors, by_outcome

    def sample(self, registry: obs_metrics.MetricsRegistry | None,
               now: float | None = None) -> None:
        """Record one counter snapshot and prune beyond the window."""
        now = time.monotonic() if now is None else now
        requests, errors, by_outcome = self._totals(registry)
        self._samples.append((now, requests, errors, by_outcome))
        while (len(self._samples) > 1
               and now - self._samples[0][0] > self.window):
            self._samples.popleft()

    def snapshot(self) -> dict:
        """The current window's rates and error-budget state."""
        if not self._samples:
            return {
                "window_seconds": self.window, "requests": 0,
                "request_rate": 0.0, "error_rate": 0.0,
                "hit_rate": 0.0, "surrogate_rate": 0.0,
                "error_budget": {"target": self.error_budget,
                                 "remaining": 1.0, "state": "ok"},
            }
        t0, req0, err0, out0 = self._samples[0]
        t1, req1, err1, out1 = self._samples[-1]
        span = max(t1 - t0, 1e-9)
        requests = max(req1 - req0, 0.0)
        errors = max(err1 - err0, 0.0)

        def outcome_delta(outcome: str) -> float:
            return max(out1.get(outcome, 0.0) - out0.get(outcome, 0.0), 0.0)

        error_rate = errors / requests if requests else 0.0
        remaining = max(0.0, min(1.0, 1.0 - error_rate / self.error_budget))
        return {
            "window_seconds": self.window,
            "requests": requests,
            "request_rate": requests / span if len(self._samples) > 1 else 0.0,
            "error_rate": error_rate,
            "hit_rate": outcome_delta("hit") / requests if requests else 0.0,
            "surrogate_rate": (outcome_delta("surrogate") / requests
                               if requests else 0.0),
            "error_budget": {
                "target": self.error_budget,
                "remaining": remaining,
                "state": "ok" if remaining > 0.0 else "exhausted",
            },
        }


def statusz_snapshot(*, ready: bool, store: Mapping | None = None,
                     inflight: int = 0,
                     registry: obs_metrics.MetricsRegistry | None = None,
                     slo: SloAggregator | None = None,
                     surrogate: Mapping | None = None,
                     journal: obs_events.EventJournal | None = None,
                     events_tail: int = 5) -> dict:
    """Assemble the versioned ``/statusz`` JSON payload."""
    payload: dict = {
        "schema": STATUS_SCHEMA_VERSION,
        "status": "ok" if ready else "warming",
        "ready": ready,
        "inflight": inflight,
    }
    if store is not None:
        payload["store"] = dict(store)
    if registry is not None:
        payload["requests"] = {
            "totals": request_outcomes(registry),
            "errors": error_counts(registry),
        }
        payload["latency"] = latency_quantiles(registry)
    if slo is not None:
        slo.sample(registry)
        payload["slo"] = slo.snapshot()
    if surrogate is not None:
        payload["surrogate"] = dict(surrogate)
    if journal is not None:
        payload["events"] = {
            "recorded": journal.recorded,
            "path": None if journal.path is None else str(journal.path),
            "tail": journal.tail(events_tail),
        }
    return payload


# -- flight recorder ---------------------------------------------------------------


def flight_record(directory: str | os.PathLike, reason: str, *,
                  extra: Mapping | None = None) -> Path:
    """Dump last-N events + span snapshot + metrics into one JSON bundle.

    The bundle commits through :func:`atomic_write` with the
    ``crash-write`` fault probe between its two chunks
    (``faults.scope(phase="events")``), so torn-write atomicity is
    testable exactly like checkpoints and store records: a crash leaves
    either no bundle or a complete one.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.time()
    bundle = {
        "schema": STATUS_SCHEMA_VERSION,
        "reason": reason,
        "t": stamp,
        "pid": os.getpid(),
        "events": obs_events.snapshot_events(),
        "spans": trace.snapshot_spans(),
        "metrics": obs_metrics.snapshot_metrics(),
        "extra": dict(extra or {}),
    }
    name = (f"flight-{int(stamp * 1000):013d}"
            f"-{os.getpid()}-{next(_flight_counter)}.json")
    text = json.dumps(bundle, sort_keys=True, indent=2, default=str) + "\n"
    mid = max(1, len(text) // 2)

    def chunks() -> Iterator[str]:
        yield text[:mid]
        with faults.scope(phase="events"):
            faults.probe("checkpoint")
        yield text[mid:]

    path = atomic_write(directory / name, chunks())
    obs_events.emit("flight_recorded", reason=reason, path=path.name)
    return path


def maybe_flight_record(directory: str | os.PathLike | None, reason: str, *,
                        extra: Mapping | None = None) -> Path | None:
    """Best-effort :func:`flight_record` on crash paths.

    ``directory`` falls back to ``$REPRO_FLIGHT_DIR``; with neither set
    this is a no-op.  Any failure writing the bundle is swallowed (and
    counted) — the flight recorder runs while an unrecovered error is
    already propagating, and must never mask it.
    """
    directory = directory or os.environ.get(FLIGHT_ENV) or None
    if directory is None:
        return None
    try:
        return flight_record(directory, reason, extra=extra)
    except Exception:
        obs_metrics.inc("repro_flight_record_errors_total")
        return None
