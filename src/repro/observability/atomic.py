"""Crash-safe file publication: tempfile + fsync + ``os.replace``.

Extracted from the campaign runner's checkpoint journal so every artifact
the stack publishes — journals, ``--telemetry-json`` summaries, Chrome
traces, Prometheus snapshots — commits through the same atomic rename: a
reader (or a crash at any instant) sees either the previous complete file
or the new complete file, never a torn one.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable


def atomic_write(path: str | os.PathLike, content: str | Iterable[str]) -> Path:
    """Atomically replace ``path`` with ``content``.

    ``content`` is one string or an iterable of string chunks (written in
    order — a generator may interleave work, e.g. fault-injection probes,
    between chunks).  The temp file lives in the destination's directory so
    the final ``os.replace`` is a same-filesystem atomic rename, and it is
    fsynced before the rename so the committed name never points at
    unflushed data.  On any failure the temp file is removed and the
    previous ``path`` (if any) is left untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            if isinstance(content, str):
                fh.write(content)
            else:
                for chunk in content:
                    fh.write(chunk)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def atomic_write_json(path: str | os.PathLike, payload, *,
                      indent: int = 2) -> Path:
    """:func:`atomic_write` of ``payload`` as sorted, newline-ended JSON."""
    return atomic_write(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
