"""Hierarchical run tracing: spans, a contextvar stack, cross-process stitching.

The SSN stack executes as a tree — a campaign runs chunks, a chunk runs
tasks, a task runs one transient, a transient runs Newton solves — and the
question production debugging actually asks ("where did this 40-minute
Monte Carlo spend its time, and which chunk degraded and why") is a question
about that tree, not about flat counters.  This module records it as
**spans**: named, timed, attributed intervals linked parent-to-child through
a :mod:`contextvars` stack, exactly the way the paper's application-specific
device modeling instruments the region that matters instead of everything.

Design constraints, in order:

1. **Zero-dependency and near-zero cost when disabled.**  Tracing is off by
   default; :func:`span` then returns a shared no-op context manager after
   one module-global read.  Hot inner loops (per-Newton-iteration assembly)
   additionally gate on :meth:`Tracer.wants` so a disabled run pays a single
   ``None`` check per iteration.  The perf benchmark pins the total
   disabled-mode overhead under 3% (``bench_perf.py``).
2. **Deterministic, bounded output.**  Head-based sampling decides at each
   *root* span (children inherit the decision) from a seeded RNG;
   ``max_spans`` caps memory with an explicit dropped-span count instead of
   silent truncation.
3. **Process-pool stitching.**  Worker processes trace into their own
   :class:`Tracer`; finished spans are serialized with wall-clock-anchored
   times (:func:`snapshot_spans`), shipped back with the results, and
   re-parented under the dispatching span (:func:`adopt_spans`), so one
   exported trace shows the whole campaign tree regardless of where each
   task physically ran.

Span taxonomy (see ``docs/observability.md``): ``campaign`` > ``chunk`` >
``task`` > ``transient``/``dc`` > ``ic``/``stepping`` > ``newton_solve`` >
``assembly``/``lu_solve``, plus ``checkpoint_write``, ``parallel_map``,
``sweep``, ``montecarlo`` and ``batch_transient``.
"""

from __future__ import annotations

import contextvars
import dataclasses
import itertools
import os
import random
import time

#: Detail levels, coarsest first.  A tracer records spans whose level is at
#: or below its own: "phase" keeps campaign/chunk/task/phase structure,
#: "newton" (the default) adds one span per Newton solve, "full" adds
#: per-iteration assembly / linear-solve spans.
DETAIL_LEVELS = ("phase", "newton", "full")

_DETAIL_RANK = {name: rank for rank, name in enumerate(DETAIL_LEVELS)}

#: Default cap on retained spans per tracer (drops are counted, not silent).
DEFAULT_MAX_SPANS = 1_000_000


@dataclasses.dataclass
class Span:
    """One named, timed interval in the run tree (also a context manager).

    Attributes:
        name: span kind (``"campaign"``, ``"chunk"``, ``"newton_solve"``...).
        span_id: globally unique id (``"<prefix>.<counter hex>"``; the
            prefix is the pid in the parent and pid+task in pool workers,
            so stitched traces never collide even when one worker process
            serves several tasks).
        parent_id: enclosing span's id, or None for a root span.
        start/end: :func:`time.perf_counter` instants (monotonic).
        attributes: structured context (engine, chunk id, instance index...).
        events: point-in-time markers (fault firings, degradations).
        recorded: False for spans sampled out at their root; they still
            keep the hierarchy consistent but are never exported.
    """

    name: str
    span_id: str
    parent_id: str | None
    start: float = 0.0
    end: float | None = None
    attributes: dict = dataclasses.field(default_factory=dict)
    events: list = dataclasses.field(default_factory=list)
    recorded: bool = True

    _tracer: "Tracer | None" = dataclasses.field(default=None, repr=False)
    _token: object = dataclasses.field(default=None, repr=False)

    @property
    def duration(self) -> float | None:
        """Elapsed seconds, or None while the span is still open."""
        return None if self.end is None else self.end - self.start

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attrs) -> None:
        """Record a point-in-time marker inside this span."""
        self.events.append({"name": name, "t": time.perf_counter(), **attrs})

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        _current.reset(self._token)
        if self._tracer is not None and self.recorded:
            self._tracer._record(self)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    recorded = False
    duration = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attribute(self, key, value):
        pass

    def add_event(self, name, **attrs):
        pass


NOOP_SPAN = _NoopSpan()

_current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


class Tracer:
    """Collects finished spans for one process (or one pool-worker task).

    Attributes:
        sample: root-span keep probability in [0, 1]; children inherit
            their root's decision, so sampled trees stay structurally whole.
        detail: coarsest-to-finest recording level (:data:`DETAIL_LEVELS`).
        spans: finished, recorded spans in completion order.
        dropped: spans discarded by the ``max_spans`` cap.
    """

    def __init__(self, sample: float = 1.0, detail: str = "newton",
                 seed: int = 0, max_spans: int = DEFAULT_MAX_SPANS,
                 id_prefix: str | None = None):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be within [0, 1], got {sample}")
        if detail not in _DETAIL_RANK:
            raise ValueError(
                f"unknown detail {detail!r}; choose from {DETAIL_LEVELS}"
            )
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.sample = float(sample)
        self.detail = detail
        self.seed = int(seed)
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        self.dropped = 0
        self._detail_rank = _DETAIL_RANK[detail]
        self._rng = random.Random(seed)
        self._ids = itertools.count(1)
        # Span-id namespace.  The pid default keeps ids unique across pool
        # *processes*; a worker that runs several tasks re-creates its
        # tracer (and this counter) per task, so the pool shim overrides
        # the prefix per task to keep stitched ids globally unique.
        self._prefix = f"{os.getpid():x}" if id_prefix is None else id_prefix
        # Wall-clock anchor: lets workers convert their monotonic times into
        # an exchangeable timeline (see snapshot_spans / adopt_spans).
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()

    def wants(self, level: str) -> bool:
        """Whether spans at ``level`` would be recorded by this tracer."""
        return _DETAIL_RANK[level] <= self._detail_rank

    def new_id(self) -> str:
        return f"{self._prefix}.{next(self._ids):x}"

    def start_span(self, name: str, level: str, attributes: dict) -> Span | _NoopSpan:
        if _DETAIL_RANK[level] > self._detail_rank:
            return NOOP_SPAN
        parent = _current.get()
        if parent is None:
            sampled = self.sample >= 1.0 or self._rng.random() < self.sample
            parent_id = None
        else:
            sampled = parent.recorded
            parent_id = parent.span_id
        sp = Span(name=name, span_id=self.new_id(), parent_id=parent_id,
                  attributes=attributes, recorded=sampled)
        sp._tracer = self
        return sp

    def _record(self, sp: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(sp)

    def config(self) -> dict:
        """Picklable settings for re-creating this tracer in a pool worker."""
        return {"sample": self.sample, "detail": self.detail,
                "seed": self.seed, "max_spans": self.max_spans}


# -- process-local tracer ------------------------------------------------------------

_tracer: Tracer | None = None


def enable_tracing(sample: float = 1.0, detail: str = "newton", seed: int = 0,
                   max_spans: int = DEFAULT_MAX_SPANS,
                   id_prefix: str | None = None) -> Tracer:
    """Install (or replace) the process-local tracer and return it."""
    global _tracer
    _tracer = Tracer(sample=sample, detail=detail, seed=seed,
                     max_spans=max_spans, id_prefix=id_prefix)
    return _tracer


def disable_tracing() -> None:
    """Remove the process-local tracer; :func:`span` reverts to no-ops."""
    global _tracer
    _tracer = None


def active_tracer() -> Tracer | None:
    """The live tracer, or None when tracing is disabled (the default)."""
    return _tracer


def span(name: str, level: str = "phase", **attributes):
    """Open a span under the current one (``with span("chunk", chunk=3):``).

    The disabled-mode fast path — one global read, one shared no-op context
    manager — is what keeps production-default overhead inside the <3%
    budget; per-iteration hot loops should additionally pre-check
    ``active_tracer()``/:meth:`Tracer.wants` so even this call is skipped.
    """
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name, level, attributes)


def current_span_id() -> str | None:
    """The enclosing span's id, or None outside any span (or disabled)."""
    current = _current.get()
    return None if current is None else current.span_id


def elapsed(sp, start: float) -> float:
    """Phase duration from a finished span, else a perf-counter fallback.

    The single-timing-source contract: when tracing recorded ``sp``, its
    monotonic span clock *is* the telemetry phase time; with tracing off the
    caller's ``start`` anchor reproduces the pre-tracing measurement.
    """
    duration = getattr(sp, "duration", None)
    return duration if duration is not None else time.perf_counter() - start


# -- cross-process stitching ---------------------------------------------------------


def span_to_dict(sp: Span, tracer: Tracer) -> dict:
    """Serialize one span with times rebased to the wall clock.

    Monotonic clocks are per-process (arbitrary epoch), so exchanged spans
    carry wall-clock instants; :func:`adopt_spans` rebases them into the
    adopting tracer's monotonic timeline.
    """
    to_wall = tracer.epoch_wall - tracer.epoch_perf
    return {
        "name": sp.name,
        "span_id": sp.span_id,
        "parent_id": sp.parent_id,
        "start_wall": sp.start + to_wall,
        "end_wall": (sp.end if sp.end is not None else sp.start) + to_wall,
        "attributes": dict(sp.attributes),
        "events": [
            {**ev, "t": ev["t"] + to_wall} for ev in sp.events
        ],
    }


def snapshot_spans() -> list[dict]:
    """Serialize the live tracer's finished spans (worker -> parent payload)."""
    tracer = _tracer
    if tracer is None:
        return []
    return [span_to_dict(sp, tracer) for sp in tracer.spans]


def adopt_spans(payload: list[dict], parent_id: str | None = None) -> int:
    """Fold serialized spans from another process into the live tracer.

    Root spans of the payload (``parent_id`` None) are re-parented under
    ``parent_id`` — typically the span that dispatched the work — so the
    stitched trace nests exactly as if the tasks had run inline.  Returns
    the number of spans adopted (0 when tracing is disabled here).
    """
    tracer = _tracer
    if tracer is None or not payload:
        return 0
    to_perf = tracer.epoch_perf - tracer.epoch_wall
    adopted = 0
    for item in payload:
        sp = Span(
            name=item["name"],
            span_id=item["span_id"],
            parent_id=item["parent_id"] if item["parent_id"] is not None else parent_id,
            start=item["start_wall"] + to_perf,
            end=item["end_wall"] + to_perf,
            attributes=dict(item.get("attributes", {})),
            events=[{**ev, "t": ev["t"] + to_perf} for ev in item.get("events", [])],
        )
        tracer._record(sp)
        adopted += 1
    return adopted
