"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

:class:`~repro.spice.telemetry.SolverTelemetry` answers "how many" per run;
this registry answers "how are they *distributed*" across a whole session —
Newton iterations per solve, accepted step sizes, per-phase wall clock,
chunk retry latency — in a form Prometheus can scrape
(:func:`repro.observability.export.to_prometheus_text`).

Merge semantics mirror ``SolverTelemetry.merge`` so records compose the
same way across chunks, engines and process-pool workers: counters and
histograms sum element-wise; gauges take the incoming value (last write
wins in merge order).  Registries serialize to plain dicts
(:meth:`MetricsRegistry.as_dict`), ship across
:class:`~concurrent.futures.ProcessPoolExecutor` workers next to the
telemetry records, and fold back with :meth:`MetricsRegistry.merge_dict`.

Like tracing, the module-level helpers (:func:`inc`, :func:`observe`,
:func:`set_gauge`) are no-ops after a single global read while metrics are
disabled, so permanently-instrumented hot paths stay inside the <3%
disabled-overhead budget.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence

#: Default histogram buckets by metric name (upper bounds; +Inf implied).
#: Powers of two for iteration counts, log-spaced decades for seconds.
DEFAULT_BUCKETS: dict[str, tuple[float, ...]] = {
    "repro_newton_iterations_per_solve": (1, 2, 4, 8, 16, 32, 64),
    "repro_step_seconds": tuple(10.0 ** e for e in range(-15, -6)),
    "repro_phase_seconds": (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0),
    "repro_chunk_retry_latency_seconds": (1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0),
    "repro_checkpoint_write_seconds": (1e-4, 1e-3, 1e-2, 0.1, 1.0),
    "repro_service_request_seconds": (1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0),
}

#: Fallback buckets for histograms observed without a registered default.
GENERIC_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6
)


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclasses.dataclass
class Counter:
    """Monotonically increasing total (merge: sum)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """Last-observed value (merge: incoming value wins)."""

    value: float = 0.0
    is_set: bool = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.is_set = True


class Histogram:
    """Fixed-bucket histogram: cumulative-export compatible counts + sum.

    ``bounds`` are finite upper bucket edges; an implicit +Inf bucket
    catches the tail.  Counts are stored per-bucket (non-cumulative) and
    cumulated only at export, which keeps merging a plain element-wise sum.
    """

    def __init__(self, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate q-quantile from bucket midpoints (reporting only)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                if i == len(self.bounds):
                    return self.bounds[-1]
                return self.bounds[i]
        return self.bounds[-1]


class MetricsRegistry:
    """Name+labels keyed metric store with SolverTelemetry-style merging."""

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._help: dict[str, str] = {}

    # -- registration ----------------------------------------------------------------

    def _get(self, kind: str, name: str, labels, factory):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif type(metric).__name__.lower() != kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, labels: Mapping[str, str] | None = None,
                help: str = "") -> Counter:
        if help:
            self._help.setdefault(name, help)
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None,
              help: str = "") -> Gauge:
        if help:
            self._help.setdefault(name, help)
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, labels: Mapping[str, str] | None = None,
                  buckets: Sequence[float] | None = None,
                  help: str = "") -> Histogram:
        if help:
            self._help.setdefault(name, help)
        bounds = buckets or DEFAULT_BUCKETS.get(name, GENERIC_BUCKETS)
        return self._get("histogram", name, labels, lambda: Histogram(bounds))

    def help_text(self, name: str) -> str:
        return self._help.get(name, "")

    # -- access ----------------------------------------------------------------------

    def items(self):
        """(name, labels-tuple, metric) triples, sorted for stable export."""
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            yield name, labels, metric

    def get(self, name: str, labels: Mapping[str, str] | None = None):
        return self._metrics.get((name, _label_key(labels)))

    def quantile(self, name: str, q: float,
                 labels: Mapping[str, str] | None = None) -> float:
        """Approximate q-quantile of a histogram, NaN when never observed.

        The health surface's latency view: a missing metric (endpoint
        never hit) reports NaN rather than raising, so ``/statusz`` can
        render every known endpoint uniformly.
        """
        metric = self.get(name, labels)
        if metric is None:
            return math.nan
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is not a histogram")
        return metric.quantile(q)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- merge / serialization -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` in: counters/histograms sum, gauges overwrite."""
        return self.merge_dict(other.as_dict())

    def as_dict(self) -> dict:
        """JSON/pickle-friendly snapshot (ships across pool workers)."""
        out = []
        for name, labels, metric in self.items():
            entry: dict = {"name": name, "labels": list(labels)}
            if isinstance(metric, Counter):
                entry.update(kind="counter", value=metric.value)
            elif isinstance(metric, Gauge):
                entry.update(kind="gauge", value=metric.value, is_set=metric.is_set)
            else:
                entry.update(kind="histogram", bounds=list(metric.bounds),
                             counts=list(metric.counts), sum=metric.sum,
                             count=metric.count)
            out.append(entry)
        return {"metrics": out, "help": dict(self._help)}

    def merge_dict(self, data: dict) -> "MetricsRegistry":
        for name, text in data.get("help", {}).items():
            self._help.setdefault(name, text)
        for entry in data.get("metrics", []):
            labels = dict(entry.get("labels", []))
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], labels).inc(entry["value"])
            elif kind == "gauge":
                if entry.get("is_set", True):
                    self.gauge(entry["name"], labels).set(entry["value"])
            else:
                hist = self.histogram(entry["name"], labels,
                                      buckets=entry["bounds"])
                if tuple(hist.bounds) != tuple(entry["bounds"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket mismatch on merge"
                    )
                for i, n in enumerate(entry["counts"]):
                    hist.counts[i] += n
                hist.sum += entry["sum"]
                hist.count += entry["count"]
        return self

    def record_telemetry(self, telemetry) -> None:
        """Project a SolverTelemetry record into counters + phase histogram.

        Counter fields map to ``repro_<field>_total``; ``phase_seconds``
        entries are observed into ``repro_phase_seconds{phase=...}``.
        Merging two registries built this way equals building one from the
        merged telemetry — the compatibility contract with
        :meth:`repro.spice.telemetry.SolverTelemetry.merge`.
        """
        for field in dataclasses.fields(telemetry):
            if field.name in ("phase_seconds", "extras"):
                continue
            value = getattr(telemetry, field.name)
            if value:
                self.counter(f"repro_{field.name}_total").inc(value)
        for key, value in getattr(telemetry, "extras", {}).items():
            self.counter(f"repro_{key}_total").inc(value)
        for phase, seconds in telemetry.phase_seconds.items():
            self.histogram("repro_phase_seconds",
                           labels={"phase": phase}).observe(seconds)


# -- process-local registry ----------------------------------------------------------

_registry: MetricsRegistry | None = None


def enable_metrics() -> MetricsRegistry:
    """Install (or replace) the process-local registry and return it."""
    global _registry
    _registry = MetricsRegistry()
    return _registry


def disable_metrics() -> None:
    """Remove the process-local registry; the helpers revert to no-ops."""
    global _registry
    _registry = None


def active_registry() -> MetricsRegistry | None:
    """The live registry, or None when metrics are disabled (the default)."""
    return _registry


def inc(name: str, amount: float = 1.0,
        labels: Mapping[str, str] | None = None) -> None:
    """Bump a counter in the live registry (no-op while disabled)."""
    registry = _registry
    if registry is not None:
        registry.counter(name, labels).inc(amount)


def observe(name: str, value: float,
            labels: Mapping[str, str] | None = None,
            buckets: Sequence[float] | None = None) -> None:
    """Observe into a histogram in the live registry (no-op while disabled)."""
    registry = _registry
    if registry is not None:
        registry.histogram(name, labels, buckets=buckets).observe(value)


def set_gauge(name: str, value: float,
              labels: Mapping[str, str] | None = None) -> None:
    """Set a gauge in the live registry (no-op while disabled)."""
    registry = _registry
    if registry is not None:
        registry.gauge(name, labels).set(value)


def snapshot_metrics() -> dict | None:
    """Serialize the live registry (worker -> parent payload), or None."""
    registry = _registry
    return None if registry is None else registry.as_dict()
