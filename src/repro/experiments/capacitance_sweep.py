"""Experiment E17 — sweeping the ground capacitance itself.

Fig. 4 is reproduced in this repository with N as the damping knob (E4);
this companion sweeps C directly at fixed N — the literal reading of
Section 4 — and surfaces a design consequence the closed form makes
obvious but intuition misses:

*adding* capacitance on the bouncing node is not monotonically good.
Crossing C_crit (Eqn 27) moves the network under-damped, and the first
ringing peak ``Vss*(1 + e^{-a pi/w})`` can exceed the over-damped
boundary value — so a badly sized "decap" between the internal ground
and the reference *raises* the peak SSN before raising it enough to help
again.  The experiment maps peak SSN vs C from deep over-damped through
deep under-damped, checks the Table 1 model across the whole arc against
golden simulation, and locates the worst-case capacitance.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.damping import critical_capacitance
from ..core.ssn_lc import LcSsnModel
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, fitted_models, format_table


@dataclasses.dataclass(frozen=True)
class CapacitancePoint:
    """One swept capacitance value."""

    capacitance: float
    case_name: str
    simulated_peak: float
    model_peak: float
    extended_peak: float

    @property
    def percent_error(self) -> float:
        return 100.0 * (self.model_peak - self.simulated_peak) / self.simulated_peak

    @property
    def extended_percent_error(self) -> float:
        return 100.0 * (self.extended_peak - self.simulated_peak) / self.simulated_peak


@dataclasses.dataclass(frozen=True)
class CapacitanceSweepResult:
    """Peak SSN vs ground capacitance at fixed N."""

    technology_name: str
    n_drivers: int
    c_crit: float
    points: tuple[CapacitancePoint, ...]

    def worst_model_point(self) -> CapacitancePoint:
        """The capacitance the Table 1 model says is worst."""
        return max(self.points, key=lambda p: p.model_peak)

    def max_abs_error(self) -> float:
        return max(abs(p.percent_error) for p in self.points)

    def max_abs_extended_error(self) -> float:
        return max(abs(p.extended_percent_error) for p in self.points)

    def model_has_interior_maximum(self) -> bool:
        """True if peak SSN rises then falls along the C sweep."""
        peaks = [p.model_peak for p in self.points]
        worst = int(np.argmax(peaks))
        return 0 < worst < len(peaks) - 1

    def format_report(self) -> str:
        rows = [
            [f"{p.capacitance * 1e12:.2f}", p.case_name, f"{p.simulated_peak:.4f}",
             f"{p.model_peak:.4f}", f"{p.percent_error:+.1f}",
             f"{p.extended_peak:.4f}", f"{p.extended_percent_error:+.1f}"]
            for p in self.points
        ]
        worst = self.worst_model_point()
        return (
            f"Peak SSN vs ground capacitance, {self.technology_name}, "
            f"N = {self.n_drivers} (C_crit = {self.c_crit * 1e12:.2f} pF)\n"
            + format_table(
                ["C (pF)", "Table1 case", "sim (V)", "model (V)", "%err",
                 "extended (V)", "%err"],
                rows,
            )
            + f"\nWorst capacitance (model): {worst.capacitance * 1e12:.2f} pF "
            f"at {worst.model_peak:.4f} V — adding capacitance past C_crit "
            "under-damps the network and *raises* the peak before helping.\n"
        )


def run(
    technology_name: str = "tsmc018",
    n_drivers: int = 4,
    c_over_crit: Sequence[float] = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    inductance: float = NOMINAL_GROUND.inductance,
    rise_time: float = NOMINAL_RISE_TIME,
) -> CapacitanceSweepResult:
    """Sweep C across the damping boundary at fixed driver count."""
    models = fitted_models(technology_name)
    tech = models.technology
    c_crit = critical_capacitance(models.asdm, n_drivers, inductance)

    points = []
    for ratio in c_over_crit:
        c = ratio * c_crit
        model = LcSsnModel(models.asdm, n_drivers, inductance, c, tech.vdd, rise_time)
        sim = simulate_ssn(
            DriverBankSpec(
                technology=tech, n_drivers=n_drivers, inductance=inductance,
                capacitance=c, rise_time=rise_time,
            )
        )
        points.append(
            CapacitancePoint(
                capacitance=c,
                case_name=model.case.name,
                simulated_peak=sim.peak_voltage,
                model_peak=model.peak_voltage(),
                extended_peak=model.peak_voltage_extended(),
            )
        )
    return CapacitanceSweepResult(
        technology_name=technology_name,
        n_drivers=n_drivers,
        c_crit=c_crit,
        points=tuple(points),
    )
