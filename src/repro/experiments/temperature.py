"""Experiment E18 — SSN across temperature corners (extension).

The paper characterizes one (nominal) corner.  Sign-off needs the worst
case, and for ground bounce that is the *cold* corner: mobility rises as
T^-1.5 and |Vth| rises too slowly to compensate, so cold drivers are
stronger, switch harder, and bounce more.  This experiment:

* rebuilds the golden device at -40C / 27C / 125C junction temperatures,
* re-fits ASDM at each corner (K and V0 move with temperature; lambda
  barely does — it is a geometry/electrostatics ratio),
* predicts the peak SSN per corner with Eqn (7) and validates each
  against a golden simulation at that corner.

The method point: ASDM re-characterization per corner is one IV sweep and
a least-squares fit — corner coverage costs seconds, not SPICE nights.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.asdm import AsdmParameters
from ..core.fitting import fit_asdm
from ..core.ssn_inductive import InductiveSsnModel
from ..devices.sweep import sweep_id_vg
from ..packaging.parasitics import GroundPathParasitics
from ..process.library import get_technology
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, format_table

#: Junction-temperature corners in kelvin: -40C, 27C (reference), 125C.
CORNERS = (233.0, 300.0, 398.0)


@dataclasses.dataclass(frozen=True)
class TemperaturePoint:
    """One temperature corner."""

    temperature: float
    params: AsdmParameters
    modeled_peak: float
    simulated_peak: float

    @property
    def celsius(self) -> float:
        return self.temperature - 273.15

    @property
    def percent_error(self) -> float:
        return 100.0 * (self.modeled_peak - self.simulated_peak) / self.simulated_peak


@dataclasses.dataclass(frozen=True)
class TemperatureResult:
    """SSN and fitted parameters across the corners."""

    technology_name: str
    n_drivers: int
    points: tuple[TemperaturePoint, ...]

    def coldest(self) -> TemperaturePoint:
        return min(self.points, key=lambda p: p.temperature)

    def hottest(self) -> TemperaturePoint:
        return max(self.points, key=lambda p: p.temperature)

    def max_abs_error(self) -> float:
        return max(abs(p.percent_error) for p in self.points)

    def format_report(self) -> str:
        rows = [
            [f"{p.celsius:+.0f}", f"{p.params.k * 1e3:.2f}", f"{p.params.v0:.3f}",
             f"{p.params.lam:.3f}", f"{p.modeled_peak:.4f}",
             f"{p.simulated_peak:.4f}", f"{p.percent_error:+.1f}"]
            for p in sorted(self.points, key=lambda p: p.temperature)
        ]
        cold, hot = self.coldest(), self.hottest()
        swing = 100.0 * (cold.simulated_peak - hot.simulated_peak) / hot.simulated_peak
        return (
            f"SSN across temperature corners, {self.technology_name}, "
            f"N = {self.n_drivers}\n"
            + format_table(
                ["Tj (C)", "K (mA/V)", "V0 (V)", "lambda", "model (V)",
                 "sim (V)", "%err"],
                rows,
            )
            + f"\nCold corner bounces {swing:.0f}% harder than hot — the "
            "sign-off worst case is -40C, and one IV-sweep refit per corner "
            "keeps the closed form accurate there.\n"
        )


def run(
    technology_name: str = "tsmc018",
    n_drivers: int = 8,
    temperatures: Sequence[float] = CORNERS,
    ground: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
) -> TemperatureResult:
    """Fit, predict and validate the peak SSN at each temperature corner."""
    base = get_technology(technology_name)
    points = []
    for temperature in temperatures:
        tech = dataclasses.replace(
            base,
            nmos=base.nmos.scaled(temperature=temperature),
            pmos=base.pmos.scaled(temperature=temperature) if base.pmos else None,
        )
        surface = sweep_id_vg(tech.driver_device(), tech.vdd)
        params, _ = fit_asdm(surface)
        model = InductiveSsnModel(params, n_drivers, ground.inductance, tech.vdd, rise_time)
        sim = simulate_ssn(
            DriverBankSpec(
                technology=tech, n_drivers=n_drivers, inductance=ground.inductance,
                rise_time=rise_time,
            )
        )
        points.append(
            TemperaturePoint(
                temperature=float(temperature),
                params=params,
                modeled_peak=model.peak_voltage(),
                simulated_peak=sim.peak_voltage,
            )
        )
    return TemperatureResult(
        technology_name=technology_name, n_drivers=n_drivers, points=tuple(points)
    )
