"""Reproductions of every table and figure in the paper's evaluation.

One module per artifact (see DESIGN.md's per-experiment index):

* :mod:`.fig1_iv_fit`        — Fig. 1, IV curves vs the ASDM fit (E1).
* :mod:`.fig2_waveforms`     — Fig. 2, waveform-level validation (E2).
* :mod:`.fig3_model_comparison` — Fig. 3, model shoot-out vs N (E3).
* :mod:`.fig4_capacitance`   — Fig. 4, the capacitance effect (E4).
* :mod:`.table1_formulas`    — Table 1, the four peak formulas (E5).
* :mod:`.processes`          — 0.25/0.35 um repetition (E6).
* :mod:`.damping_map`        — Eqn 27 critical capacitance (E7).
* :mod:`.ablations`          — resistance/fit-floor/collapse ablations (E8).
* :mod:`.power_rail`         — power-supply dual + crowbar ablation (E10).
* :mod:`.mutual_coupling`    — coupled ground pins (E11).
* :mod:`.skew`               — skewed-bus schedule verification (E12).
* :mod:`.realistic_input`    — tapered-chain gate edges + PWL model (E13).
* :mod:`.impedance`          — ground-path impedance vs damping regions (E14).
* :mod:`.pattern_statistics` — random-data per-cycle SSN distribution (E15).
* :mod:`.delay_degradation`  — SSN-induced victim delay push-out (E16).
* :mod:`.capacitance_sweep`  — peak SSN vs C; worst-case decap (E17).
* :mod:`.temperature`        — SSN across temperature corners (E18).

Each module exposes ``run(...)`` returning a result object with a
``format_report()`` text rendering; the benchmarks print those reports.
"""

from . import (
    ablations,
    capacitance_sweep,
    damping_map,
    delay_degradation,
    fig1_iv_fit,
    fig2_waveforms,
    fig3_model_comparison,
    fig4_capacitance,
    impedance,
    mutual_coupling,
    pattern_statistics,
    power_rail,
    processes,
    realistic_input,
    skew,
    table1_formulas,
    temperature,
)

__all__ = [
    "ablations",
    "capacitance_sweep",
    "damping_map",
    "delay_degradation",
    "fig1_iv_fit",
    "fig2_waveforms",
    "fig3_model_comparison",
    "fig4_capacitance",
    "impedance",
    "mutual_coupling",
    "pattern_statistics",
    "power_rail",
    "processes",
    "realistic_input",
    "skew",
    "table1_formulas",
    "temperature",
]
