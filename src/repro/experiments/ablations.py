"""Ablation studies for the modeling choices the paper asserts.

Three choices the paper makes without a full quantitative defense, made
checkable here:

* **Series resistance neglected** — "it is a very good approximation to
  neglect the small resistance" (10 mOhm for a PGA path).  We simulate with
  R = 0, the quoted 10 mOhm, and a deliberately exaggerated value.
* **Fit-region floor** — ASDM is fitted only to the strongly-on region;
  how sensitive is the end-to-end SSN accuracy to where that floor sits?
* **Driver-bank collapse** — the golden harness merges N identical drivers
  into one scaled device; verified exactly equivalent to N explicit devices.
"""

from __future__ import annotations

import dataclasses

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.fitting import fit_asdm
from ..core.ssn_lc import LcSsnModel
from ..devices.sweep import sweep_id_vg
from ..process.library import get_technology
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, format_table


@dataclasses.dataclass(frozen=True)
class ResistanceAblation:
    """Peak SSN sensitivity to the neglected series resistance.

    Attributes:
        resistances: series R values simulated, ohms.
        peaks: corresponding simulated peak SSN, volts.
    """

    n_drivers: int
    resistances: tuple[float, ...]
    peaks: tuple[float, ...]

    def percent_shift(self, index: int) -> float:
        """Peak shift of resistances[index] relative to R = 0, percent."""
        return 100.0 * (self.peaks[index] - self.peaks[0]) / self.peaks[0]

    def format_report(self) -> str:
        rows = [
            [f"{r * 1e3:.0f}", f"{p:.5f}", f"{self.percent_shift(i):+.3f}"]
            for i, (r, p) in enumerate(zip(self.resistances, self.peaks))
        ]
        return (
            f"Series-resistance ablation (N={self.n_drivers})\n"
            + format_table(["R (mOhm)", "peak SSN (V)", "shift vs R=0 (%)"], rows)
            + "\n"
        )


def resistance_ablation(
    technology_name: str = "tsmc018",
    n_drivers: int = 8,
    resistances: tuple[float, ...] = (0.0, 10e-3, 100e-3, 1.0),
) -> ResistanceAblation:
    """Simulate the nominal bank with increasing ground-path resistance."""
    if resistances[0] != 0.0:
        raise ValueError("resistances must start at 0 (the reference)")
    tech = get_technology(technology_name)
    peaks = []
    for r in resistances:
        spec = DriverBankSpec(
            technology=tech,
            n_drivers=n_drivers,
            inductance=NOMINAL_GROUND.inductance,
            capacitance=NOMINAL_GROUND.capacitance,
            resistance=r,
            rise_time=NOMINAL_RISE_TIME,
        )
        peaks.append(simulate_ssn(spec).peak_voltage)
    return ResistanceAblation(
        n_drivers=n_drivers, resistances=tuple(resistances), peaks=tuple(peaks)
    )


@dataclasses.dataclass(frozen=True)
class FitFloorAblation:
    """End-to-end LC-model accuracy vs the ASDM fit floor."""

    floors: tuple[float, ...]
    v0_values: tuple[float, ...]
    percent_errors: tuple[float, ...]
    n_drivers: int

    def format_report(self) -> str:
        rows = [
            [f"{f:.2f}", f"{v0:.3f}", f"{e:+.2f}"]
            for f, v0, e in zip(self.floors, self.v0_values, self.percent_errors)
        ]
        return (
            f"ASDM fit-floor ablation (LC model, N={self.n_drivers})\n"
            + format_table(["floor frac", "fitted V0 (V)", "peak %err vs sim"], rows)
            + "\n"
        )


def fit_floor_ablation(
    technology_name: str = "tsmc018",
    n_drivers: int = 2,
    floors: tuple[float, ...] = (0.02, 0.05, 0.10, 0.20),
) -> FitFloorAblation:
    """Refit ASDM at several floors and measure LC-model peak error."""
    tech = get_technology(technology_name)
    surface = sweep_id_vg(tech.driver_device(), tech.vdd)
    spec = DriverBankSpec(
        technology=tech,
        n_drivers=n_drivers,
        inductance=NOMINAL_GROUND.inductance,
        capacitance=NOMINAL_GROUND.capacitance,
        rise_time=NOMINAL_RISE_TIME,
    )
    sim_peak = simulate_ssn(spec).peak_voltage
    v0s, errors = [], []
    for floor in floors:
        params, _ = fit_asdm(surface, floor_fraction=floor)
        model = LcSsnModel(
            params,
            n_drivers,
            NOMINAL_GROUND.inductance,
            NOMINAL_GROUND.capacitance,
            tech.vdd,
            NOMINAL_RISE_TIME,
        )
        v0s.append(params.v0)
        errors.append(100.0 * (model.peak_voltage() - sim_peak) / sim_peak)
    return FitFloorAblation(
        floors=tuple(floors),
        v0_values=tuple(v0s),
        percent_errors=tuple(errors),
        n_drivers=n_drivers,
    )


@dataclasses.dataclass(frozen=True)
class CollapseAblation:
    """Collapsed vs explicit N-driver simulation agreement."""

    n_drivers: int
    collapsed_peak: float
    explicit_peak: float
    max_waveform_diff: float

    @property
    def peak_diff_percent(self) -> float:
        return 100.0 * abs(self.collapsed_peak - self.explicit_peak) / self.explicit_peak

    def format_report(self) -> str:
        return (
            f"Driver-collapse ablation (N={self.n_drivers}): "
            f"collapsed peak {self.collapsed_peak:.5f} V, explicit {self.explicit_peak:.5f} V "
            f"({self.peak_diff_percent:.4f}% apart), "
            f"max SSN waveform difference {self.max_waveform_diff:.2e} V\n"
        )


def collapse_ablation(technology_name: str = "tsmc018", n_drivers: int = 4) -> CollapseAblation:
    """Simulate the same bank collapsed and explicit; compare waveforms."""
    tech = get_technology(technology_name)
    base = dict(
        technology=tech,
        n_drivers=n_drivers,
        inductance=NOMINAL_GROUND.inductance,
        capacitance=NOMINAL_GROUND.capacitance,
        rise_time=NOMINAL_RISE_TIME,
    )
    collapsed = simulate_ssn(DriverBankSpec(collapse=True, **base))
    explicit = simulate_ssn(DriverBankSpec(collapse=False, **base))
    diff = collapsed.ssn.max_abs_difference(explicit.ssn)
    return CollapseAblation(
        n_drivers=n_drivers,
        collapsed_peak=collapsed.peak_voltage,
        explicit_peak=explicit.peak_voltage,
        max_waveform_diff=diff,
    )
