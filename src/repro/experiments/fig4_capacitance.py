"""Experiment E4 — paper Fig. 4: the parasitic capacitance matters.

Four panels, two ground-pad configurations:

* (a)/(c): the nominal ground path (the paper's PGA values, L = 5 nH,
  C = 1 pF);
* (b)/(d): ground pads doubled — inductance halved, capacitance doubled.

For each configuration the driver count is swept so the network crosses
from the under-damped region (small N) into the over-damped region
(large N; the paper's C_crit ~ N^2 observation).  Panels (a)/(b) compare
peak SSN from the golden simulation against the L-only model (Eqn 7) and
the full LC model (Table 1); panels (c)/(d) show the relative errors.

Claims checked:

* the L-only model is adequate in the over-damped region,
* its error grows large in the under-damped region,
* the LC model stays within a few percent everywhere (paper: < 3% with
  the authors' BSIM3 fit; our substituted golden device is documented in
  EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.sweeps import SweepResult, sweep_driver_count
from ..core.ssn_inductive import InductiveSsnModel
from ..core.ssn_lc import LcSsnModel, Table1Case
from ..packaging.parasitics import GroundPathParasitics
from .plotting import ascii_chart
from .common import (
    NOMINAL_DRIVER_COUNTS,
    NOMINAL_GROUND,
    NOMINAL_LOAD,
    NOMINAL_RISE_TIME,
    FittedModels,
    fitted_models,
    format_table,
)

L_ONLY = "l-only"
WITH_C = "with-capacitance"


@dataclasses.dataclass(frozen=True)
class Fig4Panel:
    """One pad configuration: sweep plus per-point Table 1 case labels."""

    label: str
    ground: GroundPathParasitics
    sweep: SweepResult
    cases: tuple[Table1Case, ...]

    def max_abs_error(self, estimator: str) -> float:
        return max(abs(e) for e in self.sweep.percent_errors(estimator))

    def errors_by_region(self, estimator: str) -> dict[str, float]:
        """Worst |%err| split into under-damped vs over/critically damped."""
        under, over = 0.0, 0.0
        for point, case in zip(self.sweep.points, self.cases):
            err = abs(point.percent_error(estimator))
            if case in (Table1Case.UNDERDAMPED_FIRST_PEAK, Table1Case.UNDERDAMPED_BOUNDARY):
                under = max(under, err)
            else:
                over = max(over, err)
        return {"under-damped": under, "not-under-damped": over}


@dataclasses.dataclass(frozen=True)
class Fig4Result:
    """Both pad configurations of Fig. 4."""

    technology_name: str
    panels: tuple[Fig4Panel, ...]

    def format_report(self) -> str:
        blocks = [f"Fig. 4 — effect of the ground parasitic capacitance, {self.technology_name}"]
        for panel in self.panels:
            rows = []
            for point, case in zip(panel.sweep.points, panel.cases):
                rows.append(
                    [
                        f"{int(point.value)}",
                        case.name,
                        f"{point.simulated_peak:.4f}",
                        f"{point.estimates[WITH_C]:.4f}",
                        f"{point.percent_error(WITH_C):+.1f}",
                        f"{point.estimates[L_ONLY]:.4f}",
                        f"{point.percent_error(L_ONLY):+.1f}",
                    ]
                )
            table = format_table(
                ["N", "Table1 case", "sim (V)", "LC model", "%err", "L-only", "%err"], rows
            )
            chart = ascii_chart(
                panel.sweep.values(),
                {
                    "L-only": panel.sweep.estimate_series(L_ONLY),
                    "LC": panel.sweep.estimate_series(WITH_C),
                    "sim": panel.sweep.simulated_peaks(),
                },
                x_label="simultaneously switching drivers N",
                y_label="maximum SSN (V)",
            )
            lc_region = panel.errors_by_region(WITH_C)
            lo_region = panel.errors_by_region(L_ONLY)
            blocks.append(
                f"\n[{panel.label}] L = {panel.ground.inductance * 1e9:.2f} nH, "
                f"C = {panel.ground.capacitance * 1e12:.2f} pF\n"
                + table
                + "\n\n"
                + chart
                + "\n\nworst |%err| — LC model: "
                f"{lc_region['under-damped']:.1f}% under-damped / "
                f"{lc_region['not-under-damped']:.1f}% elsewhere; "
                f"L-only: {lo_region['under-damped']:.1f}% under-damped / "
                f"{lo_region['not-under-damped']:.1f}% elsewhere"
            )
        return "\n".join(blocks) + "\n"


def _run_panel(
    label: str,
    models: FittedModels,
    ground: GroundPathParasitics,
    driver_counts: Sequence[int],
    rise_time: float,
) -> Fig4Panel:
    tech = models.technology
    vdd = tech.vdd

    def lc_estimate(spec: DriverBankSpec) -> float:
        return LcSsnModel(
            models.asdm, spec.n_drivers, ground.inductance, ground.capacitance, vdd, spec.rise_time
        ).peak_voltage()

    def l_only_estimate(spec: DriverBankSpec) -> float:
        return InductiveSsnModel(
            models.asdm, spec.n_drivers, ground.inductance, vdd, spec.rise_time
        ).peak_voltage()

    base = DriverBankSpec(
        technology=tech,
        n_drivers=driver_counts[0],
        inductance=ground.inductance,
        capacitance=ground.capacitance,
        rise_time=rise_time,
        load_capacitance=NOMINAL_LOAD,
    )
    result = sweep_driver_count(
        base, driver_counts, {WITH_C: lc_estimate, L_ONLY: l_only_estimate}
    )
    cases = tuple(
        LcSsnModel(
            models.asdm, int(n), ground.inductance, ground.capacitance, vdd, rise_time
        ).case
        for n in result.values()
    )
    return Fig4Panel(label=label, ground=ground, sweep=result, cases=cases)


def run(
    technology_name: str = "tsmc018",
    driver_counts: Sequence[int] = NOMINAL_DRIVER_COUNTS,
    ground: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
) -> Fig4Result:
    """Regenerate Fig. 4: nominal pads and doubled pads."""
    models = fitted_models(technology_name)
    panels = (
        _run_panel("a/c: nominal ground pads", models, ground, driver_counts, rise_time),
        _run_panel(
            "b/d: ground pads doubled", models, ground.with_pads(2), driver_counts, rise_time
        ),
    )
    return Fig4Result(technology_name=technology_name, panels=panels)
