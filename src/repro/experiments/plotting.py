"""Terminal (ASCII) line charts for the experiment reports.

The paper's artifacts are figures; the benchmark harness regenerates
their *data* as tables, and this module renders the same series as plain-
text charts so a report file shows the curve shapes directly —
crossovers, saturation, resonance peaks — without a plotting stack.

Deterministic by construction (pure function of the data and canvas
size), so chart output is testable.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Marker characters assigned to series in insertion order.
MARKERS = "*o+x#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 1e-2 <= magnitude < 1e4:
        return f"{value:.3g}"
    return f"{value:.1e}"


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y(x) series as an ASCII chart.

    Args:
        x: shared x values (need not be uniform).
        series: name -> y values, each the same length as ``x``.  NaNs are
            skipped (model validity windows).
        width: plot-area width in characters.
        height: plot-area height in rows.
        x_label: caption under the x axis.
        y_label: caption above the y axis.

    Returns:
        The chart plus a marker legend, as a newline-joined string.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")
    if width < 16 or height < 4:
        raise ValueError("canvas too small to be readable")
    xs = [float(v) for v in x]
    if len(xs) < 2:
        raise ValueError("need at least two x samples")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(xs)} x values")

    finite = [
        float(v)
        for ys in series.values()
        for v in ys
        if v is not None and not math.isnan(float(v))
    ]
    if not finite:
        raise ValueError("all series values are NaN")
    y_min = min(finite + [0.0])  # anchor at zero for voltage-like data
    y_max = max(finite)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        raise ValueError("x values are all identical")

    grid = [[" "] * width for _ in range(height)]

    def col(xv: float) -> int:
        return round((xv - x_min) / (x_max - x_min) * (width - 1))

    def row(yv: float) -> int:
        return (height - 1) - round((yv - y_min) / (y_max - y_min) * (height - 1))

    for marker, (name, ys) in zip(MARKERS, series.items()):
        for xv, yv in zip(xs, ys):
            yv = float(yv)
            if math.isnan(yv):
                continue
            grid[row(yv)][col(float(xv))] = marker

    tick_width = max(len(_format_tick(v)) for v in (y_min, y_max)) + 1
    lines = []
    if y_label:
        lines.append(" " * tick_width + y_label)
    for r, cells in enumerate(grid):
        if r == 0:
            tick = _format_tick(y_max)
        elif r == height - 1:
            tick = _format_tick(y_min)
        else:
            tick = ""
        lines.append(tick.rjust(tick_width) + "|" + "".join(cells))
    lines.append(" " * tick_width + "+" + "-" * width)
    left = _format_tick(x_min)
    right = _format_tick(x_max)
    pad = width - len(left) - len(right)
    lines.append(" " * (tick_width + 1) + left + " " * max(pad, 1) + right)
    if x_label:
        lines.append(" " * (tick_width + 1) + x_label)
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series.keys())
    )
    lines.append(" " * (tick_width + 1) + legend)
    return "\n".join(lines)
