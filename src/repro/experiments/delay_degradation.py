"""Experiment E16 — SSN-induced delay degradation (extension).

The paper's introduction lists the damage SSN does: it "decreases the
effective driving strength of the circuits" and "causes output signal
distortion".  This experiment quantifies that for a victim driver whose
neighbors switch with it:

* simulate one victim pull-down discharging its load while N aggressors
  share its ground path, for increasing N;
* measure the victim's 50%-crossing fall delay;
* compare the delay push-out against a first-order ASDM prediction: the
  bounce steals ``delta_i(t) = K*lambda*Vn(t)`` of victim drive, so the
  missing charge by the crossing time divides by the instantaneous
  current to give

      delta_t ~ (K*lambda * integral of Vn dt) / i(t50).

The integral of Eqn (6) is closed-form:
``int Vn dt = Vss * [x + tau*(e^{-x/tau} - 1)]`` with ``x = t - t0``.

**Scope of the estimate** (measured in EXPERIMENTS.md): the 50% crossing
of a 10 pF load happens nanoseconds after the ramp, far outside the ASDM
validity window (the output has left the drain-high region and the ramp
forcing is over).  The first-order estimate therefore captures the onset
and the monotone trend — right order of magnitude, ~35% low at small N —
but undershoots progressively at large N.  A delay *model* would need
the triode region the paper's application-specific model deliberately
excludes; the experiment documents that boundary rather than hiding it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.ramps import crossing_time
from ..analysis.simulate import simulate_ssn
from ..core.ssn_inductive import InductiveSsnModel
from ..packaging.parasitics import GroundPathParasitics
from ..spice.waveform import Waveform
from .common import NOMINAL_GROUND, NOMINAL_LOAD, NOMINAL_RISE_TIME, fitted_models, format_table


def fall_delay(output: Waveform, vdd: float, reference: float = 0.5) -> float:
    """Time for a falling output to cross ``reference * vdd``.

    Measured from t = 0 (the input launch).
    """
    dropped = Waveform(output.t, vdd - output.y)  # falling edge as a rise
    return crossing_time(dropped, (1.0 - reference) * vdd)


@dataclasses.dataclass(frozen=True)
class DelayPoint:
    """Victim delay with N-1 aggressors sharing the ground path.

    The harness simulates N identical drivers (victim + aggressors all
    switching together — the worst-case alignment), so the victim's
    waveform is any driver's waveform.
    """

    n_drivers: int
    delay: float
    pushout: float
    predicted_pushout: float

    @property
    def prediction_error_percent(self) -> float:
        if self.pushout == 0.0:
            return 0.0
        return 100.0 * (self.predicted_pushout - self.pushout) / self.pushout


@dataclasses.dataclass(frozen=True)
class DelayDegradationResult:
    """Delay-vs-aggressor-count study."""

    technology_name: str
    baseline_delay: float
    points: tuple[DelayPoint, ...]

    def format_report(self) -> str:
        rows = [
            [f"{p.n_drivers}", f"{p.delay * 1e9:.4f}", f"{p.pushout * 1e12:.1f}",
             f"{p.predicted_pushout * 1e12:.1f}", f"{p.prediction_error_percent:+.0f}"]
            for p in self.points
        ]
        return (
            f"SSN-induced delay degradation, {self.technology_name} "
            f"(victim 50% fall delay; baseline N=1: {self.baseline_delay * 1e9:.4f} ns)\n"
            + format_table(
                ["N", "delay (ns)", "push-out (ps)", "ASDM estimate (ps)", "%err"],
                rows,
            )
            + "\nPush-out: extra delay vs the lone-driver baseline — the paper's\n"
            "'decreased effective driving strength', measured.\n"
        )


def _bounce_integral(model: InductiveSsnModel, t: float) -> float:
    """Closed-form integral of Eqn (6) from turn-on to min(t, ramp end).

    The post-ramp tail is neglected: Vn decays there, so truncating keeps
    the estimate first-order and conservative.
    """
    upper = min(t, model.ramp_end_time)
    x = max(upper - model.turn_on_time, 0.0)
    tau = model.time_constant
    return model.asymptotic_voltage * (x + tau * (math.exp(-x / tau) - 1.0))


def run(
    technology_name: str = "tsmc018",
    driver_counts: Sequence[int] = (1, 4, 8, 16),
    ground: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
    load_capacitance: float = NOMINAL_LOAD,
) -> DelayDegradationResult:
    """Measure victim fall delay vs simultaneous-switcher count."""
    if driver_counts[0] != 1:
        raise ValueError("driver_counts must start at 1 (the lone-victim baseline)")
    models = fitted_models(technology_name)
    tech = models.technology
    params = models.asdm

    sims = {}
    for n in driver_counts:
        spec = DriverBankSpec(
            technology=tech, n_drivers=n, inductance=ground.inductance,
            capacitance=ground.capacitance, rise_time=rise_time,
            load_capacitance=load_capacitance,
        )
        # Long enough for the 50% crossing of a 10 pF load.
        tstop = max(4e-9, 6.0 * rise_time)
        sims[n] = simulate_ssn(spec, tstop=tstop)

    baseline = fall_delay(sims[1].output_voltage, tech.vdd)
    points = []
    for n in driver_counts:
        delay = fall_delay(sims[n].output_voltage, tech.vdd)
        pushout = delay - baseline
        model = InductiveSsnModel(params, n, ground.inductance, tech.vdd, rise_time)
        single = InductiveSsnModel(params, 1, ground.inductance, tech.vdd, rise_time)
        # Missing charge = K*lambda * (integral of Vn_N - integral of Vn_1);
        # dividing by the crossing-time current gives the push-out.
        missing = params.k * params.lam * (
            _bounce_integral(model, delay) - _bounce_integral(single, delay)
        )
        i_cross = float(sims[n].driver_current.value_at(delay))
        predicted = missing / i_cross if i_cross > 0 else 0.0
        points.append(
            DelayPoint(
                n_drivers=n, delay=delay, pushout=pushout,
                predicted_pushout=predicted,
            )
        )
    return DelayDegradationResult(
        technology_name=technology_name,
        baseline_delay=baseline,
        points=tuple(points),
    )
