"""Experiment E3 — paper Fig. 3: peak SSN vs driver count, model shoot-out.

Sweeps the number of simultaneously switching drivers on the
inductance-only ground network and compares the golden-simulation peak SSN
against this work (Eqn 7) and the prior-art estimators (Vemuru 1996 and
Song 1999 as in the figure, plus Jou 1998 and Senthinathan 1991 as
extras).  The paper's claim: the ASDM-based formula is the most accurate
across the whole N range; we quantify that with per-estimator error
summaries.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.metrics import ErrorSummary
from ..analysis.sweeps import SweepResult, sweep_driver_count
from ..baselines import JouSsnModel, SenthinathanSsnModel, SongSsnModel, VemuruSsnModel
from ..core.ssn_inductive import InductiveSsnModel
from .plotting import ascii_chart
from .common import (
    NOMINAL_DRIVER_COUNTS,
    NOMINAL_GROUND,
    NOMINAL_LOAD,
    NOMINAL_RISE_TIME,
    FittedModels,
    fitted_models,
    format_table,
)

#: Estimator labels, in the order the report prints them.
THIS_WORK = "this-work"
ESTIMATOR_ORDER = (THIS_WORK, "vemuru-1996", "song-1999", "jou-1998", "senthinathan-1991")


@dataclasses.dataclass(frozen=True)
class Fig3Result:
    """Sweep data and per-estimator accuracy for Fig. 3."""

    technology_name: str
    sweep: SweepResult
    summaries: dict[str, ErrorSummary]

    def best_estimator(self) -> str:
        """The estimator with the lowest mean absolute error."""
        return min(self.summaries, key=lambda n: self.summaries[n].mean_abs_percent)

    def format_report(self) -> str:
        rows = []
        for point in self.sweep.points:
            row = [f"{int(point.value)}", f"{point.simulated_peak:.4f}"]
            for name in ESTIMATOR_ORDER:
                row.append(f"{point.estimates[name]:.4f}")
                row.append(f"{point.percent_error(name):+.1f}")
            rows.append(row)
        headers = ["N", "sim (V)"]
        for name in ESTIMATOR_ORDER:
            headers.extend([name, "%err"])
        table = format_table(headers, rows)
        summary_rows = [
            [
                name,
                f"{self.summaries[name].mean_abs_percent:.2f}",
                f"{self.summaries[name].max_abs_percent:.2f}",
                f"{self.summaries[name].bias_percent:+.2f}",
            ]
            for name in ESTIMATOR_ORDER
        ]
        summary = format_table(["estimator", "mean|%|", "max|%|", "bias%"], summary_rows)
        chart = ascii_chart(
            self.sweep.values(),
            {
                "vemuru": self.sweep.estimate_series("vemuru-1996"),
                "song": self.sweep.estimate_series("song-1999"),
                "this-work": self.sweep.estimate_series(THIS_WORK),
                "sim": self.sweep.simulated_peaks(),
            },
            x_label="simultaneously switching drivers N",
            y_label="maximum SSN (V)",
        )
        return (
            f"Fig. 3 — peak SSN vs driver count, {self.technology_name}\n"
            + table
            + "\n\n"
            + chart
            + "\n\nAccuracy summary (vs golden simulation):\n"
            + summary
            + f"\n\nMost accurate estimator: {self.best_estimator()}\n"
        )


def build_estimators(models: FittedModels, inductance: float):
    """Estimator callbacks keyed by label, all fitted to the same device."""
    vdd = models.technology.vdd

    def this_work(spec: DriverBankSpec) -> float:
        return InductiveSsnModel(
            models.asdm, spec.n_drivers, inductance, vdd, spec.rise_time
        ).peak_voltage()

    def vemuru(spec: DriverBankSpec) -> float:
        return VemuruSsnModel(
            models.alpha_power, spec.n_drivers, inductance, vdd, spec.rise_time
        ).peak_voltage()

    def song(spec: DriverBankSpec) -> float:
        return SongSsnModel(
            models.alpha_power, spec.n_drivers, inductance, vdd, spec.rise_time
        ).peak_voltage()

    def jou(spec: DriverBankSpec) -> float:
        return JouSsnModel(
            models.alpha_power, spec.n_drivers, inductance, vdd, spec.rise_time
        ).peak_voltage()

    def senthinathan(spec: DriverBankSpec) -> float:
        return SenthinathanSsnModel(
            models.square_law, spec.n_drivers, inductance, vdd, spec.rise_time
        ).peak_voltage()

    return {
        THIS_WORK: this_work,
        "vemuru-1996": vemuru,
        "song-1999": song,
        "jou-1998": jou,
        "senthinathan-1991": senthinathan,
    }


def run(
    technology_name: str = "tsmc018",
    driver_counts: Sequence[int] = NOMINAL_DRIVER_COUNTS,
    inductance: float = NOMINAL_GROUND.inductance,
    rise_time: float = NOMINAL_RISE_TIME,
) -> Fig3Result:
    """Regenerate Fig. 3 for one technology card."""
    models = fitted_models(technology_name)
    base = DriverBankSpec(
        technology=models.technology,
        n_drivers=driver_counts[0],
        inductance=inductance,
        rise_time=rise_time,
        load_capacitance=NOMINAL_LOAD,
    )
    result = sweep_driver_count(base, driver_counts, build_estimators(models, inductance))
    summaries = {
        name: ErrorSummary.from_pairs(result.estimate_series(name), result.simulated_peaks())
        for name in result.estimator_names
    }
    return Fig3Result(technology_name=technology_name, sweep=result, summaries=summaries)
