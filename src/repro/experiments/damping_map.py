"""Experiment E7 — Eqn (27) and the damping-region geography.

Validates the critical-capacitance formula and the paper's closing
observation of Section 4: C_crit grows quadratically with N, so systems
are "very likely in the under-damped region when N is small and in the
over-damped region when N gets large".

Checks performed:

* at C = C_crit(N) the damping ratio is exactly 1 (formula consistency);
* slightly above/below C_crit the model classifies under/over-damped;
* the classification is *behavioral*: the numerically integrated ODE shows
  an overshoot past the quasi-static level only in the under-damped case;
* a log-log fit of C_crit(N) has slope 2.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.asdm import AsdmParameters
from ..core.damping import DampingRegion, classify, critical_capacitance, damping_ratio
from ..core.ssn_lc import LcSsnModel
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, fitted_models, format_table

#: Relative offset used to probe just above/below the critical capacitance.
PROBE = 0.25


@dataclasses.dataclass(frozen=True)
class DampingMapRow:
    """Critical capacitance and probe classifications for one N."""

    n_drivers: int
    c_crit: float
    zeta_at_crit: float
    region_below: DampingRegion
    region_above: DampingRegion
    overshoot_below: float
    overshoot_above: float


@dataclasses.dataclass(frozen=True)
class DampingMapResult:
    """Eqn (27) validation across driver counts."""

    technology_name: str
    params: AsdmParameters
    inductance: float
    rows: tuple[DampingMapRow, ...]
    loglog_slope: float

    def format_report(self) -> str:
        body = [
            [
                f"{r.n_drivers}",
                f"{r.c_crit * 1e12:.3f}",
                f"{r.zeta_at_crit:.6f}",
                r.region_below.value,
                f"{r.overshoot_below:.4f}",
                r.region_above.value,
                f"{r.overshoot_above:.4f}",
            ]
            for r in self.rows
        ]
        table = format_table(
            ["N", "C_crit (pF)", "zeta@Ccrit", f"region C*{1 - PROBE:.2f}", "overshoot",
             f"region C*{1 + PROBE:.2f}", "overshoot"],
            body,
        )
        return (
            f"Eqn (27) damping map, {self.technology_name}, "
            f"L = {self.inductance * 1e9:.1f} nH\n"
            + table
            + f"\nlog-log slope of C_crit vs N: {self.loglog_slope:.4f} (expected 2)\n"
        )


def _ringing_overshoot(model: LcSsnModel) -> float:
    """Peak of the normalized step response over several natural periods.

    Values above 1 indicate overshoot (ringing); over-damped responses
    approach 1 from below.  Evaluated on the unconstrained response (the
    analytic continuation past the ramp window) because the region is a
    property of the network, not of the stimulus length.
    """
    horizon = 4.0 * 2.0 * np.pi / model.natural_frequency
    tau = np.linspace(0.0, horizon, 4000)
    return float(np.max(model.normalized_response(tau)))


def run(
    technology_name: str = "tsmc018",
    driver_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    inductance: float = NOMINAL_GROUND.inductance,
) -> DampingMapResult:
    """Validate the critical-capacitance law for one technology."""
    models = fitted_models(technology_name)
    params = models.asdm
    vdd = models.technology.vdd
    rows = []
    for n in driver_counts:
        c_crit = critical_capacitance(params, n, inductance)
        below = c_crit * (1.0 - PROBE)
        above = c_crit * (1.0 + PROBE)
        model_below = LcSsnModel(params, n, inductance, below, vdd, NOMINAL_RISE_TIME)
        model_above = LcSsnModel(params, n, inductance, above, vdd, NOMINAL_RISE_TIME)
        rows.append(
            DampingMapRow(
                n_drivers=n,
                c_crit=c_crit,
                zeta_at_crit=damping_ratio(params, n, inductance, c_crit),
                region_below=classify(params, n, inductance, below),
                region_above=classify(params, n, inductance, above),
                overshoot_below=_ringing_overshoot(model_below),
                overshoot_above=_ringing_overshoot(model_above),
            )
        )
    ns = np.log([r.n_drivers for r in rows])
    cs = np.log([r.c_crit for r in rows])
    slope = float(np.polyfit(ns, cs, 1)[0])
    return DampingMapResult(
        technology_name=technology_name,
        params=params,
        inductance=inductance,
        rows=tuple(rows),
        loglog_slope=slope,
    )
