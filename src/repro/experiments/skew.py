"""Experiment E12 — skewed-bus launch schedules, verified in simulation.

The paper's first design implication of Eqn (10): "reducing N in practice
means to make the drivers not switching simultaneously."  The
:func:`repro.core.design.skew_schedule` helper turns that into a staggered
launch plan; this experiment closes the loop by *simulating* the plan —
per-driver input sources with the scheduled offsets — and checking that:

* the simulated peak respects the budget (with the model's few-percent
  margin),
* the un-skewed bus would have violated it,
* skewing buys the predicted noise reduction at the predicted latency.
"""

from __future__ import annotations

import dataclasses

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.design import SkewSchedule, skew_schedule
from ..packaging.parasitics import GroundPathParasitics
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, fitted_models, format_table


@dataclasses.dataclass(frozen=True)
class SkewResult:
    """Planned vs simulated behaviour of one skewed bus."""

    technology_name: str
    n_total: int
    budget: float
    plan: SkewSchedule
    simulated_skewed_peak: float
    simulated_simultaneous_peak: float

    @property
    def noise_reduction_percent(self) -> float:
        return 100.0 * (
            self.simulated_simultaneous_peak - self.simulated_skewed_peak
        ) / self.simulated_simultaneous_peak

    def format_report(self) -> str:
        rows = [
            ["bus width", f"{self.n_total}"],
            ["budget", f"{self.budget:.3f} V"],
            ["plan", f"{self.plan.groups} groups of <= {self.plan.group_size}"],
            ["planned per-group peak", f"{self.plan.peak_noise:.4f} V"],
            ["simulated skewed peak", f"{self.simulated_skewed_peak:.4f} V"],
            ["simulated simultaneous peak", f"{self.simulated_simultaneous_peak:.4f} V"],
            ["noise reduction", f"{self.noise_reduction_percent:.1f} %"],
            ["added latency", f"{self.plan.added_latency * 1e9:.2f} ns"],
        ]
        return (
            f"Skewed-bus schedule verification, {self.technology_name}\n"
            + format_table(["quantity", "value"], rows)
            + "\n"
        )


def run(
    technology_name: str = "tsmc018",
    n_total: int = 16,
    budget: float = 0.45,
    ground: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
) -> SkewResult:
    """Plan a skewed launch and verify it against the golden simulation."""
    models = fitted_models(technology_name)
    tech = models.technology
    plan = skew_schedule(budget, models.asdm, n_total, ground.inductance, tech.vdd, rise_time)

    offsets = []
    for i in range(n_total):
        group = min(i // plan.group_size, plan.groups - 1)
        offsets.append(plan.group_offsets[group])

    skewed = simulate_ssn(
        DriverBankSpec(
            technology=tech,
            n_drivers=n_total,
            inductance=ground.inductance,
            rise_time=rise_time,
            input_offsets=tuple(offsets),
        )
    )
    simultaneous = simulate_ssn(
        DriverBankSpec(
            technology=tech,
            n_drivers=n_total,
            inductance=ground.inductance,
            rise_time=rise_time,
        )
    )
    return SkewResult(
        technology_name=technology_name,
        n_total=n_total,
        budget=budget,
        plan=plan,
        simulated_skewed_peak=skewed.peak_voltage,
        simulated_simultaneous_peak=simultaneous.peak_voltage,
    )
