"""Experiment E13 — realistic (tapered-pre-driver) gate edges (extension).

The paper's formulas assume an ideal linear input ramp.  Real output
drivers are fed by tapered inverter chains whose edges are fast in the
middle and slow at both ends.  This experiment drives the SSN bank through
an actual simulated pre-driver chain and compares four estimates of the
peak ground bounce:

1. naive — Eqn (7) with the chain-*input* rise time,
2. effective ramp — Eqn (7) with a ramp fitted to the measured final-gate
   edge over the SSN-relevant window [V0/VDD, 0.95],
3. PWL drive — the segment-wise closed form
   (:class:`repro.core.ssn_pwl.PwlDriveSsnModel`) fed the measured gate
   waveform,
4. the golden simulation itself.

Findings this encodes (see EXPERIMENTS.md): a tapered chain *sharpens*
the edge it forwards, so using the chain-input edge rate can underestimate
the noise (unsafe); the effective-ramp bridge overestimates by 15-25%
(safe but loose); the PWL extension recovers paper-level accuracy because
ASDM's linearity solves the ODE exactly for any piecewise-linear drive.
"""

from __future__ import annotations

import dataclasses

from ..analysis.buffer_chain import BufferChainSpec, simulate_buffer_chain
from ..analysis.ramps import extract_effective_ramp
from ..core.ssn_inductive import InductiveSsnModel
from ..core.ssn_pwl import PwlDriveSsnModel
from .common import format_table, fitted_models

#: Knots kept when feeding the measured gate waveform to the PWL model.
_PWL_KNOTS = 200


@dataclasses.dataclass(frozen=True)
class RealisticInputResult:
    """Peak-SSN estimates under a tapered-chain gate edge."""

    technology_name: str
    spec: BufferChainSpec
    simulated_peak: float
    naive_peak: float
    effective_ramp_peak: float
    effective_rise_time: float
    pwl_peak: float
    pwl_peak_time: float
    simulated_peak_time: float

    def percent_error(self, estimate: float) -> float:
        return 100.0 * (estimate - self.simulated_peak) / self.simulated_peak

    def format_report(self) -> str:
        rows = [
            ["golden simulation", f"{self.simulated_peak:.4f}", "-"],
            ["Eqn 7, chain-input tr", f"{self.naive_peak:.4f}",
             f"{self.percent_error(self.naive_peak):+.1f}"],
            [f"Eqn 7, effective ramp ({self.effective_rise_time * 1e9:.3f} ns)",
             f"{self.effective_ramp_peak:.4f}",
             f"{self.percent_error(self.effective_ramp_peak):+.1f}"],
            ["PWL-drive closed form", f"{self.pwl_peak:.4f}",
             f"{self.percent_error(self.pwl_peak):+.1f}"],
        ]
        return (
            f"Realistic gate edges ({self.spec.stages}-stage tapered chain, "
            f"taper {self.spec.taper}x), {self.technology_name}, "
            f"N={self.spec.n_drivers}\n"
            + format_table(["estimate", "peak SSN (V)", "%err"], rows)
            + f"\npeak time: PWL model {self.pwl_peak_time * 1e9:.3f} ns vs "
            f"simulation {self.simulated_peak_time * 1e9:.3f} ns\n"
        )


def run(
    technology_name: str = "tsmc018",
    n_drivers: int = 8,
    stages: int = 2,
    taper: float = 3.0,
    input_rise_time: float = 0.2e-9,
) -> RealisticInputResult:
    """Drive the bank through a real pre-driver chain; compare estimates."""
    models = fitted_models(technology_name)
    tech = models.technology
    spec = BufferChainSpec(
        technology=tech,
        n_drivers=n_drivers,
        stages=stages,
        taper=taper,
        input_rise_time=input_rise_time,
    )
    sim = simulate_buffer_chain(spec)
    vdd = tech.vdd

    naive = InductiveSsnModel(
        models.asdm, n_drivers, spec.inductance, vdd, input_rise_time
    ).peak_voltage()

    # Fit the effective ramp over the SSN-relevant part of the swing:
    # conduction starts near V0, and the last few percent carry no slope.
    low = models.asdm.v0 / vdd
    ramp = extract_effective_ramp(sim.final_gate, vdd, low_fraction=low, high_fraction=0.95)
    effective = InductiveSsnModel(
        models.asdm, n_drivers, spec.inductance, vdd, ramp.rise_time
    ).peak_voltage()

    step = max(1, len(sim.final_gate) // _PWL_KNOTS)
    pwl = PwlDriveSsnModel(
        models.asdm, n_drivers, spec.inductance,
        sim.final_gate.t[::step], sim.final_gate.y[::step],
    )

    return RealisticInputResult(
        technology_name=technology_name,
        spec=spec,
        simulated_peak=sim.peak_voltage,
        naive_peak=naive,
        effective_ramp_peak=effective,
        effective_rise_time=ramp.rise_time,
        pwl_peak=pwl.peak_voltage(),
        pwl_peak_time=pwl.peak_time(),
        simulated_peak_time=sim.ssn.peak()[0],
    )
