"""Shared experiment plumbing: nominal conditions and cached model fits.

The paper's evaluation fixes one nominal configuration (PGA-class ground
parasitics, sub-nanosecond input ramp, 10 pF pad loads) and varies one knob
per figure.  Exact values are unrecoverable from the scan, so DESIGN.md
documents the calibration: the nominal point below places the damping
crossover of Section 4 inside the swept N range, which is the structural
property Fig. 4 depends on.
"""

from __future__ import annotations

import dataclasses
import functools

from ..core.asdm import AsdmParameters
from ..core.fitting import (
    AlphaPowerSsnParameters,
    FitReport,
    SquareLawSsnParameters,
    fit_alpha_power,
    fit_asdm,
    fit_square_law,
)
from ..devices.sweep import sweep_id_vg
from ..packaging.parasitics import PGA
from ..process.library import get_technology
from ..process.technology import Technology

#: Nominal input ramp duration used across the experiments.
NOMINAL_RISE_TIME = 0.5e-9
#: Nominal per-driver output load.
NOMINAL_LOAD = 10e-12
#: Nominal ground-path parasitics (the paper's PGA numbers).
NOMINAL_GROUND = PGA.pin
#: Driver counts swept in the figures.
NOMINAL_DRIVER_COUNTS = (1, 2, 3, 4, 6, 8, 10, 12, 14, 16)


@dataclasses.dataclass(frozen=True)
class FittedModels:
    """All model parameters extracted from one device, plus fit reports."""

    technology: Technology
    asdm: AsdmParameters
    asdm_report: FitReport
    alpha_power: AlphaPowerSsnParameters
    alpha_power_report: FitReport
    square_law: SquareLawSsnParameters
    square_law_report: FitReport


@functools.lru_cache(maxsize=32)
def fitted_models(technology_name: str, strength: float = 1.0) -> FittedModels:
    """Fit ASDM, alpha-power and square-law models to one golden driver.

    Results are cached per (technology, strength): every experiment and
    benchmark compares models extracted from the *same* IV data, as the
    paper does.
    """
    tech = get_technology(technology_name)
    surface = sweep_id_vg(tech.driver_device(strength), tech.vdd)
    asdm, asdm_report = fit_asdm(surface)
    alpha, alpha_report = fit_alpha_power(surface)
    square, square_report = fit_square_law(surface)
    return FittedModels(
        technology=tech,
        asdm=asdm,
        asdm_report=asdm_report,
        alpha_power=alpha,
        alpha_power_report=alpha_report,
        square_law=square,
        square_law_report=square_report,
    )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table used by every experiment's report."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
