"""Experiment E11 — mutual inductance between parallel ground pins (extension).

The paper's Fig. 4(b) doubles the ground pads and halves the inductance —
the standard parallel rule.  Real adjacent package pins are magnetically
coupled: two pins of self-inductance L with coupling k carrying equal
currents present an effective inductance

    L_eff = L * (1 + k) / 2,

not L/2, so the parallel-pad payoff degrades as coupling grows.  This
experiment simulates a two-pin ground path at several coupling
coefficients and shows that (i) the naive L/2 model increasingly
underestimates the noise and (ii) the Table 1 model evaluated at L_eff
recovers its accuracy — i.e. the paper's formulas extend to coupled pins
by one substitution.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..core.ssn_lc import LcSsnModel
from ..packaging.parasitics import GroundPathParasitics
from ..process.library import get_technology
from ..process.technology import Technology
from ..spice.circuit import Circuit
from ..spice.sources import Ramp
from ..spice.transient import transient
from .common import NOMINAL_GROUND, NOMINAL_LOAD, NOMINAL_RISE_TIME, fitted_models, format_table


def build_two_pin_bank(
    tech: Technology,
    n_drivers: int,
    pin: GroundPathParasitics,
    coupling: float,
    rise_time: float,
    load_capacitance: float = NOMINAL_LOAD,
) -> Circuit:
    """N drivers returning through two coupled ground pins."""
    vdd = tech.vdd
    circuit = Circuit(f"two-pin bank, k={coupling}")
    circuit.vsource("Vin", "in", "0", Ramp(0.0, vdd, 0.0, rise_time))
    circuit.inductor("Lpin1", "ssn", "0", pin.inductance, ic=0.0)
    circuit.inductor("Lpin2", "ssn", "0", pin.inductance, ic=0.0)
    if coupling > 0.0:
        circuit.mutual("Kpins", "Lpin1", "Lpin2", coupling)
    circuit.capacitor("Cgnd", "ssn", "0", 2.0 * pin.capacitance, ic=0.0)
    circuit.capacitor("CL1", "out1", "0", load_capacitance * n_drivers, ic=vdd)
    circuit.mosfet("M1", "out1", "in", "ssn", "ssn", tech.driver_device(n_drivers))
    return circuit


@dataclasses.dataclass(frozen=True)
class CouplingPoint:
    """One coupling coefficient: simulation vs the two model variants."""

    coupling: float
    simulated_peak: float
    naive_model_peak: float      # Table 1 at L/2, ignoring coupling
    corrected_model_peak: float  # Table 1 at L*(1+k)/2

    @property
    def naive_percent_error(self) -> float:
        return 100.0 * (self.naive_model_peak - self.simulated_peak) / self.simulated_peak

    @property
    def corrected_percent_error(self) -> float:
        return 100.0 * (self.corrected_model_peak - self.simulated_peak) / self.simulated_peak


@dataclasses.dataclass(frozen=True)
class MutualCouplingResult:
    """Coupling sweep at one driver count."""

    technology_name: str
    n_drivers: int
    points: tuple[CouplingPoint, ...]

    def format_report(self) -> str:
        rows = [
            [f"{p.coupling:.2f}", f"{p.simulated_peak:.4f}",
             f"{p.naive_model_peak:.4f}", f"{p.naive_percent_error:+.1f}",
             f"{p.corrected_model_peak:.4f}", f"{p.corrected_percent_error:+.1f}"]
            for p in self.points
        ]
        return (
            f"Mutual coupling between two ground pins, {self.technology_name}, "
            f"N={self.n_drivers}\n"
            + format_table(
                ["k", "sim (V)", "L/2 model", "%err", "L(1+k)/2 model", "%err"], rows
            )
            + "\nThe naive parallel rule (L/2) drifts as k grows; substituting the\n"
            "coupled effective inductance restores the Table 1 model.\n"
        )


def run(
    technology_name: str = "tsmc018",
    n_drivers: int = 8,
    couplings: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
    pin: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
) -> MutualCouplingResult:
    """Sweep the pin-to-pin coupling coefficient at a fixed driver count."""
    models = fitted_models(technology_name)
    tech = models.technology
    total_c = 2.0 * pin.capacitance

    points = []
    for k in couplings:
        circuit = build_two_pin_bank(tech, n_drivers, pin, k, rise_time)
        dt = rise_time / 400.0
        result = transient(circuit, 2.0 * rise_time, dt)
        peak = result.voltage("ssn").peak()[1]

        naive = LcSsnModel(
            models.asdm, n_drivers, pin.inductance / 2.0, total_c, tech.vdd, rise_time
        ).peak_voltage()
        corrected = LcSsnModel(
            models.asdm, n_drivers, pin.inductance * (1.0 + k) / 2.0, total_c,
            tech.vdd, rise_time,
        ).peak_voltage()
        points.append(
            CouplingPoint(
                coupling=float(k),
                simulated_peak=peak,
                naive_model_peak=naive,
                corrected_model_peak=corrected,
            )
        )
    return MutualCouplingResult(
        technology_name=technology_name, n_drivers=n_drivers, points=tuple(points)
    )
