"""Experiment E15 — statistical SSN under random bus data (extension).

The paper computes the *worst case*: all N drivers switching together.
Real buses carry data; on a given cycle only the bits going 1 -> 0 fire
their pull-downs, and for independent equiprobable bits that count is
Binomial(W, 1/4).  Because Eqn (10) is closed-form, the full per-cycle
peak-SSN *distribution* follows immediately — no transient sweep:

    P(Vpeak = Vmax(n)) = C(W, n) (1/4)^n (3/4)^(W-n)

This experiment builds that distribution, spot-validates Vmax(n) against
golden simulations at a few driver counts, and reports the statistical
margin: how far the p99 cycle sits below the all-switch worst case the
paper (and conservative design) budgets for.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import stats

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.figure import circuit_figure, peak_noise_from_figure
from ..packaging.parasitics import GroundPathParasitics
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, fitted_models, format_table

#: Probability a bit fires its pull-down on a cycle (1 -> 0 transition).
FALL_PROBABILITY = 0.25


@dataclasses.dataclass(frozen=True)
class PatternStatisticsResult:
    """Per-cycle peak-SSN distribution of a random-data bus.

    Attributes:
        technology_name: process card used.
        bus_width: W, total bus bits.
        switch_counts: n = 0..W.
        probabilities: Binomial(W, 1/4) pmf over n.
        peaks: Eqn 10 peak SSN for each n (0 V at n = 0).
        mean_peak: expected per-cycle peak SSN.
        p99_peak: 99th-percentile per-cycle peak SSN.
        worst_case: all-switch (n = W) peak SSN.
        sim_checks: (n, simulated, modeled) spot validations.
    """

    technology_name: str
    bus_width: int
    switch_counts: np.ndarray
    probabilities: np.ndarray
    peaks: np.ndarray
    mean_peak: float
    p99_peak: float
    worst_case: float
    sim_checks: tuple[tuple[int, float, float], ...]

    @property
    def statistical_margin(self) -> float:
        """worst_case - p99: what all-switch budgeting over-provisions."""
        return self.worst_case - self.p99_peak

    def format_report(self) -> str:
        dist_rows = []
        for n in (0, 1, 2, 4, 8, self.bus_width // 2, self.bus_width):
            if n > self.bus_width:
                continue
            idx = int(n)
            dist_rows.append(
                [f"{idx}", f"{self.probabilities[idx]:.4f}", f"{self.peaks[idx]:.4f}"]
            )
        check_rows = [
            [f"{n}", f"{sim:.4f}", f"{model:.4f}",
             f"{100 * (model - sim) / sim:+.1f}"]
            for n, sim, model in self.sim_checks
        ]
        return (
            f"Random-data bus SSN statistics, {self.technology_name}, "
            f"W = {self.bus_width} bits, P(fall) = {FALL_PROBABILITY}\n"
            + format_table(["n switching", "P(n)", "Eqn10 peak (V)"], dist_rows)
            + f"\n\nmean per-cycle peak: {self.mean_peak:.4f} V\n"
            f"p99 per-cycle peak:  {self.p99_peak:.4f} V\n"
            f"all-switch worst case: {self.worst_case:.4f} V "
            f"(statistical margin {self.statistical_margin * 1e3:.0f} mV)\n\n"
            "Spot validation of Vmax(n) against golden simulation:\n"
            + format_table(["n", "sim (V)", "model (V)", "%err"], check_rows)
            + "\n"
        )


def run(
    technology_name: str = "tsmc018",
    bus_width: int = 32,
    ground: GroundPathParasitics = NOMINAL_GROUND,
    rise_time: float = NOMINAL_RISE_TIME,
    sim_check_counts: Sequence[int] = (4, 8, 16),
) -> PatternStatisticsResult:
    """Build the per-cycle SSN distribution and spot-validate it."""
    if bus_width < 1:
        raise ValueError("bus_width must be positive")
    models = fitted_models(technology_name)
    tech = models.technology
    slope = tech.vdd / rise_time

    counts = np.arange(bus_width + 1)
    pmf = stats.binom.pmf(counts, bus_width, FALL_PROBABILITY)
    peaks = np.zeros(bus_width + 1)
    for n in counts[1:]:
        z = circuit_figure(int(n), ground.inductance, slope)
        peaks[n] = peak_noise_from_figure(z, models.asdm, tech.vdd)

    cdf = np.cumsum(pmf)
    p99_idx = int(np.searchsorted(cdf, 0.99))
    sim_checks = []
    for n in sim_check_counts:
        if not 1 <= n <= bus_width:
            raise ValueError(f"sim check count {n} outside 1..{bus_width}")
        sim = simulate_ssn(
            DriverBankSpec(
                technology=tech, n_drivers=int(n), inductance=ground.inductance,
                rise_time=rise_time,
            )
        )
        sim_checks.append((int(n), sim.peak_voltage, float(peaks[n])))

    return PatternStatisticsResult(
        technology_name=technology_name,
        bus_width=bus_width,
        switch_counts=counts,
        probabilities=pmf,
        peaks=peaks,
        mean_peak=float(np.sum(pmf * peaks)),
        p99_peak=float(peaks[min(p99_idx, bus_width)]),
        worst_case=float(peaks[bus_width]),
        sim_checks=tuple(sim_checks),
    )
