"""Experiment E2 — paper Fig. 2: waveform-level model-vs-simulation match.

Reproduces the three panels for the nominal inductance-only configuration:

(a) simulated input ramp, output pad voltage and SSN voltage,
(b) simulated vs modeled (Eqn 6) SSN voltage,
(c) simulated vs modeled (Eqn 8) current through the ground inductor,

with the model evaluated only on its validity window (the input rise), as
the paper notes under Fig. 2.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.metrics import WaveformComparison, compare_waveforms
from ..analysis.simulate import SsnSimulation, simulate_ssn
from ..core.ssn_inductive import InductiveSsnModel
from ..spice.waveform import Waveform
from .common import NOMINAL_GROUND, NOMINAL_LOAD, NOMINAL_RISE_TIME, fitted_models, format_table
from .plotting import ascii_chart

#: Nominal driver count for the waveform figure.
FIG2_DRIVERS = 8


@dataclasses.dataclass(frozen=True)
class Fig2Result:
    """Waveforms and agreement metrics for Fig. 2.

    Attributes:
        simulation: golden transient run (panels' dashed curves).
        model: the closed-form Eqn 6/8 model.
        model_ssn: modeled SSN voltage on the simulation time grid.
        model_current: modeled inductor current on the same grid.
        ssn_match: model-vs-simulation agreement for the SSN voltage.
        current_match: agreement for the inductor current.
    """

    simulation: SsnSimulation
    model: InductiveSsnModel
    model_ssn: Waveform
    model_current: Waveform
    ssn_match: WaveformComparison
    current_match: WaveformComparison

    def format_report(self) -> str:
        spec = self.simulation.spec
        rows = []
        for t in np.linspace(0.0, spec.rise_time, 11):
            rows.append(
                [
                    f"{t * 1e9:.2f}",
                    f"{self.simulation.input_voltage.value_at(t):.3f}",
                    f"{self.simulation.output_voltage.value_at(t):.3f}",
                    f"{self.simulation.ssn.value_at(t):.4f}",
                    f"{self.model_ssn.value_at(t):.4f}",
                    f"{self.simulation.inductor_current.value_at(t) * 1e3:.2f}",
                    f"{self.model_current.value_at(t) * 1e3:.2f}",
                ]
            )
        table = format_table(
            ["t (ns)", "Vin", "Vout", "Vn sim", "Vn model", "iL sim (mA)", "iL model (mA)"],
            rows,
        )
        header = (
            f"Fig. 2 — waveforms, N={spec.n_drivers}, L={spec.inductance * 1e9:.1f} nH, "
            f"tr={spec.rise_time * 1e9:.2f} ns\n"
            f"SSN voltage: max |err| = {self.ssn_match.max_abs_error * 1e3:.1f} mV "
            f"({self.ssn_match.normalized_max_error * 100:.1f}% of peak)\n"
            f"inductor current: max |err| = {self.current_match.max_abs_error * 1e3:.2f} mA "
            f"({self.current_match.normalized_max_error * 100:.1f}% of peak)\n"
        )
        grid = np.linspace(0.0, spec.rise_time, 48)
        chart = ascii_chart(
            grid * 1e9,
            {
                "Vn-model": self.model_ssn.value_at(grid),
                "Vn-sim": self.simulation.ssn.value_at(grid),
            },
            x_label="time (ns), input rising",
            y_label="SSN voltage (V)",
        )
        return header + table + "\n\n" + chart


def run(
    technology_name: str = "tsmc018",
    n_drivers: int = FIG2_DRIVERS,
    inductance: float = NOMINAL_GROUND.inductance,
    rise_time: float = NOMINAL_RISE_TIME,
) -> Fig2Result:
    """Regenerate Fig. 2 for one configuration."""
    models = fitted_models(technology_name)
    tech = models.technology
    spec = DriverBankSpec(
        technology=tech,
        n_drivers=n_drivers,
        inductance=inductance,
        rise_time=rise_time,
        load_capacitance=NOMINAL_LOAD,
    )
    simulation = simulate_ssn(spec)
    model = InductiveSsnModel(models.asdm, n_drivers, inductance, tech.vdd, rise_time)

    # Evaluate the model on the simulation grid, restricted to its window.
    grid = simulation.ssn.t[simulation.ssn.t <= rise_time]
    model_ssn = Waveform(grid, np.asarray(model.voltage(grid)))
    model_current = Waveform(grid, np.asarray(model.total_current(grid)))

    return Fig2Result(
        simulation=simulation,
        model=model,
        model_ssn=model_ssn,
        model_current=model_current,
        ssn_match=compare_waveforms(model_ssn, simulation.ssn),
        current_match=compare_waveforms(model_current, simulation.inductor_current),
    )
