"""Experiment E1 — paper Fig. 1: golden IV curves vs the ASDM linear fit.

Reproduces the figure's content: ``Id(Vg)`` of an NFET with the drain at
VDD, at source voltages 0..0.8 V in 0.2 V steps, overlaid with the fitted
linear model.  The quantitative claims checked here:

* the curves are near-linear in Vg above threshold,
* they are (approximately) equally spaced in Vs — i.e. linear in Vs,
* the linear fit is good in the strongly-on region and poor only near
  threshold, where the current is too small to matter for SSN,
* the fitted V0 exceeds the device threshold voltage (0.61 V vs ~0.5 V in
  the paper's 0.18 um case).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.asdm import AsdmParameters
from ..core.fitting import FitReport, fit_asdm
from ..devices.sweep import IvSurface, sweep_id_vg
from ..process.library import get_technology
from .common import format_table

#: Device width used for the figure (the paper plots a small test device).
FIG1_WIDTH = 10e-6


@dataclasses.dataclass(frozen=True)
class Fig1Result:
    """Everything needed to regenerate Fig. 1.

    Attributes:
        technology_name: process card used.
        surface: golden-device IV samples (the dashed curves).
        modeled: ASDM currents on the same grid (the solid lines).
        params: fitted ASDM parameters.
        report: fit quality over the strongly-on region.
        device_vth: the golden device's zero-bias threshold, for the
            V0-vs-Vth observation.
    """

    technology_name: str
    surface: IvSurface
    modeled: np.ndarray
    params: AsdmParameters
    report: FitReport
    device_vth: float

    def curve_spacings(self) -> np.ndarray:
        """Vertical spacing between adjacent Vs curves at Vg = VDD (A).

        Near-equal spacings are the paper's evidence for linearity in Vs,
        read where every curve is strongly on (the right edge of Fig. 1).
        """
        return np.abs(np.diff(self.surface.ids[:, -1]))

    def format_report(self) -> str:
        """Fig. 1 as a text table: golden vs model at round gate voltages."""
        rows = []
        vg_samples = np.arange(0.8, self.surface.vdd + 1e-9, 0.2)
        for vs in self.surface.vs:
            golden = np.interp(vg_samples, self.surface.vg, self.surface.curve(vs))
            model = self.params.drain_current(vg_samples, vs)
            for vg, g, m in zip(vg_samples, golden, model):
                rows.append(
                    [f"{vs:.1f}", f"{vg:.1f}", f"{g * 1e3:.3f}", f"{m * 1e3:.3f}",
                     f"{(m - g) * 1e3:+.3f}"]
                )
        table = format_table(
            ["Vs (V)", "Vg (V)", "golden Id (mA)", "ASDM Id (mA)", "err (mA)"], rows
        )
        header = (
            f"Fig. 1 — ASDM fit, {self.technology_name}, W={FIG1_WIDTH * 1e6:.0f} um\n"
            f"K = {self.params.k * 1e3:.3f} mA/V, V0 = {self.params.v0:.3f} V "
            f"(device Vth0 = {self.device_vth:.2f} V), lambda = {self.params.lam:.3f}\n"
            f"fit max error = {self.report.max_relative_error * 100:.2f}% of peak current "
            f"over {self.report.n_points} strongly-on samples\n"
        )
        return header + table


def run(technology_name: str = "tsmc018", width: float = FIG1_WIDTH) -> Fig1Result:
    """Regenerate Fig. 1 for one technology card."""
    tech = get_technology(technology_name)
    device = tech.nmos_device(width)
    surface = sweep_id_vg(device, tech.vdd)
    params, report = fit_asdm(surface)
    vg_grid, vs_grid = np.meshgrid(surface.vg, surface.vs)
    modeled = params.drain_current(vg_grid, vs_grid)
    return Fig1Result(
        technology_name=technology_name,
        surface=surface,
        modeled=modeled,
        params=params,
        report=report,
        device_vth=tech.nmos.vth0,
    )
