"""Experiment E5 — paper Table 1: the four maximum-SSN formulas.

For each of the four cases (over-damped, critically damped, under-damped
with the first peak inside the ramp, under-damped with the ramp ending
first) this experiment:

1. picks a configuration that provably lands in that case,
2. integrates the exact second-order ODE (Eqn 13) numerically with scipy
   and checks the closed-form waveform against it (these must agree to
   solver precision — the paper's derivation is exact given ASDM),
3. checks the Table 1 peak formula against the numeric maximum, and
4. checks both against the golden circuit simulation (where the error is
   the ASDM modeling error, a few percent).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.integrate import solve_ivp

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.simulate import simulate_ssn
from ..core.asdm import AsdmParameters
from ..core.damping import critical_capacitance
from ..core.ssn_lc import LcSsnModel, Table1Case
from .common import NOMINAL_GROUND, NOMINAL_LOAD, NOMINAL_RISE_TIME, fitted_models, format_table


@dataclasses.dataclass(frozen=True)
class CaseConfig:
    """A (N, C, tr) configuration chosen to land in one Table 1 case."""

    case: Table1Case
    n_drivers: int
    capacitance: float
    rise_time: float


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """Validation numbers for one case.

    Attributes:
        config: the configuration exercised.
        model: the closed-form LC model.
        formula_peak: Table 1 closed-form maximum.
        ode_peak: maximum of the numerically integrated Eqn (13).
        sim_peak: golden-simulation maximum.
        extended_peak: post-ramp-continuation maximum (extension beyond
            the paper; matters in case 3b, where the physical peak lands
            just after the ramp).
        waveform_max_diff: max |closed form - ODE| over the window, volts.
    """

    config: CaseConfig
    model: LcSsnModel
    formula_peak: float
    ode_peak: float
    sim_peak: float
    extended_peak: float
    waveform_max_diff: float

    @property
    def formula_vs_ode_percent(self) -> float:
        return 100.0 * (self.formula_peak - self.ode_peak) / self.ode_peak

    @property
    def formula_vs_sim_percent(self) -> float:
        return 100.0 * (self.formula_peak - self.sim_peak) / self.sim_peak

    @property
    def extended_vs_sim_percent(self) -> float:
        return 100.0 * (self.extended_peak - self.sim_peak) / self.sim_peak


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """All four validated cases."""

    technology_name: str
    rows: tuple[Table1Row, ...]

    def format_report(self) -> str:
        body = []
        for row in self.rows:
            cfg = row.config
            body.append(
                [
                    cfg.case.name,
                    f"{cfg.n_drivers}",
                    f"{cfg.capacitance * 1e12:.2f}",
                    f"{cfg.rise_time * 1e9:.2f}",
                    f"{row.formula_peak:.4f}",
                    f"{row.ode_peak:.4f}",
                    f"{row.formula_vs_ode_percent:+.3f}",
                    f"{row.sim_peak:.4f}",
                    f"{row.formula_vs_sim_percent:+.2f}",
                    f"{row.extended_vs_sim_percent:+.2f}",
                    f"{row.waveform_max_diff:.2e}",
                ]
            )
        table = format_table(
            ["case", "N", "C (pF)", "tr (ns)", "formula (V)", "ODE (V)", "%vsODE",
             "sim (V)", "%vsSim", "ext%vsSim", "max|wf diff|"],
            body,
        )
        return f"Table 1 — maximum-SSN formulas, {self.technology_name}\n" + table + "\n"


def _select_configs(params: AsdmParameters, vdd: float, inductance: float) -> list[CaseConfig]:
    """Configurations guaranteed to land in each of the four cases."""
    nominal_c = NOMINAL_GROUND.capacitance
    critical_n = 8
    configs = [
        CaseConfig(Table1Case.OVERDAMPED, 12, nominal_c, NOMINAL_RISE_TIME),
        CaseConfig(
            Table1Case.CRITICALLY_DAMPED,
            critical_n,
            critical_capacitance(params, critical_n, inductance),
            NOMINAL_RISE_TIME,
        ),
        CaseConfig(Table1Case.UNDERDAMPED_FIRST_PEAK, 2, nominal_c, NOMINAL_RISE_TIME),
        CaseConfig(Table1Case.UNDERDAMPED_BOUNDARY, 2, nominal_c, 0.2e-9),
    ]
    for cfg in configs:
        model = LcSsnModel(params, cfg.n_drivers, inductance, cfg.capacitance, vdd, cfg.rise_time)
        if model.case is not cfg.case:
            raise RuntimeError(
                f"configuration {cfg} landed in {model.case}, expected {cfg.case}; "
                "recalibrate the nominal conditions"
            )
    return configs


def integrate_ode(model: LcSsnModel, samples: int = 4000) -> tuple[np.ndarray, np.ndarray]:
    """Numerically integrate Eqn (13) over the active window.

    Returns:
        (t, vn): times from turn-on to ramp end and the integrated SSN.
    """
    lc = model.inductance * model.capacitance
    two_a = 2.0 * model.decay_rate
    vss = model.asymptotic_voltage

    def rhs(_t, y):
        v, vdot = y
        return [vdot, (vss - v) / lc - two_a * vdot]

    t0, te = model.turn_on_time, model.ramp_end_time
    sol = solve_ivp(rhs, (t0, te), [0.0, 0.0], rtol=1e-11, atol=1e-15, dense_output=True)
    if not sol.success:
        raise RuntimeError(f"ODE integration failed: {sol.message}")
    t = np.linspace(t0, te, samples)
    return t, sol.sol(t)[0]


def run(technology_name: str = "tsmc018") -> Table1Result:
    """Validate all four Table 1 formulas for one technology."""
    models = fitted_models(technology_name)
    tech = models.technology
    inductance = NOMINAL_GROUND.inductance
    rows = []
    for cfg in _select_configs(models.asdm, tech.vdd, inductance):
        model = LcSsnModel(
            models.asdm, cfg.n_drivers, inductance, cfg.capacitance, tech.vdd, cfg.rise_time
        )
        t, vn = integrate_ode(model)
        closed = np.asarray(model.voltage(t))
        sim = simulate_ssn(
            DriverBankSpec(
                technology=tech,
                n_drivers=cfg.n_drivers,
                inductance=inductance,
                capacitance=cfg.capacitance,
                rise_time=cfg.rise_time,
                load_capacitance=NOMINAL_LOAD,
            )
        )
        rows.append(
            Table1Row(
                config=cfg,
                model=model,
                formula_peak=model.peak_voltage(),
                ode_peak=float(np.max(vn)),
                sim_peak=sim.peak_voltage,
                extended_peak=model.peak_voltage_extended(),
                waveform_max_diff=float(np.max(np.abs(closed - vn))),
            )
        )
    return Table1Result(technology_name=technology_name, rows=tuple(rows))
