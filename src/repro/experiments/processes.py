"""Experiment E6 — the paper's cross-process claim.

"Similar results are also observed using 0.25 um and 0.35 um processes"
(end of Section 3).  This experiment reruns the Fig. 3 model shoot-out on
every built-in technology card and summarizes each estimator's accuracy,
checking that the ASDM-based formula remains the most accurate on each.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..process.library import list_technologies
from . import fig3_model_comparison
from .common import format_table
from .fig3_model_comparison import ESTIMATOR_ORDER, Fig3Result


@dataclasses.dataclass(frozen=True)
class ProcessesResult:
    """Fig. 3 accuracy summaries across all technology cards."""

    results: dict[str, Fig3Result]

    def best_estimators(self) -> dict[str, str]:
        """Most accurate estimator per technology."""
        return {name: res.best_estimator() for name, res in self.results.items()}

    def format_report(self) -> str:
        rows = []
        for tech_name, res in sorted(self.results.items()):
            for estimator in ESTIMATOR_ORDER:
                summary = res.summaries[estimator]
                rows.append(
                    [
                        tech_name,
                        estimator,
                        f"{summary.mean_abs_percent:.2f}",
                        f"{summary.max_abs_percent:.2f}",
                        f"{summary.bias_percent:+.2f}",
                    ]
                )
        table = format_table(["process", "estimator", "mean|%|", "max|%|", "bias%"], rows)
        winners = ", ".join(f"{t}: {w}" for t, w in sorted(self.best_estimators().items()))
        return (
            "Cross-process model accuracy (Fig. 3 repeated per technology)\n"
            + table
            + f"\n\nMost accurate per process: {winners}\n"
        )


def run(
    technology_names: Sequence[str] | None = None,
    driver_counts: Sequence[int] = (2, 4, 8, 12, 16),
) -> ProcessesResult:
    """Rerun Fig. 3 on each technology card (a reduced N sweep by default)."""
    names = list(technology_names) if technology_names else list_technologies()
    results = {
        name: fig3_model_comparison.run(name, driver_counts=driver_counts) for name in names
    }
    return ProcessesResult(results=results)
