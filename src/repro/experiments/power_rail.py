"""Experiment E10 — the power-supply dual (extension of the paper's aside).

Section 2 of the paper: "For simplicity of presentation, only the noise at
the ground node is discussed.  The SSN at the power-supply node can be
analyzed similarly."  This experiment makes that sentence quantitative:

* fit ASDM to the pull-up PFET (mirrored coordinates),
* sweep N on the full two-rail CMOS bank with a *falling* input,
* compare the simulated VDD droop against the duality model
  (:class:`repro.core.ssn_power.PowerRailSsnModel`).

It also quantifies the paper's implicit rising-edge idealization — drivers
modeled as pull-downs only — by simulating the ground bounce with and
without the PMOS pull-ups present (the crowbar ablation).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.cmos_driver import CmosDriverBankSpec, simulate_cmos
from ..core.asdm import AsdmParameters
from ..core.ssn_power import PowerRailSsnModel, fit_pmos_asdm
from ..packaging.parasitics import GroundPathParasitics
from ..process.library import get_technology
from .common import NOMINAL_GROUND, NOMINAL_RISE_TIME, format_table


@dataclasses.dataclass(frozen=True)
class PowerRailPoint:
    """One driver count: simulated droop vs the duality model."""

    n_drivers: int
    simulated_droop: float
    modeled_droop: float
    case_name: str

    @property
    def percent_error(self) -> float:
        return 100.0 * (self.modeled_droop - self.simulated_droop) / self.simulated_droop


@dataclasses.dataclass(frozen=True)
class CrowbarPoint:
    """Rising-edge ground bounce with and without the PMOS pull-ups."""

    n_drivers: int
    bounce_with_pullup: float
    bounce_without_pullup: float

    @property
    def percent_effect(self) -> float:
        """How much including the pull-up changes the ground bounce."""
        return 100.0 * (
            self.bounce_with_pullup - self.bounce_without_pullup
        ) / self.bounce_without_pullup


@dataclasses.dataclass(frozen=True)
class PowerRailResult:
    """Duality validation plus the crowbar ablation."""

    technology_name: str
    pmos_params: AsdmParameters
    droop_points: tuple[PowerRailPoint, ...]
    crowbar_points: tuple[CrowbarPoint, ...]

    def max_droop_error(self) -> float:
        return max(abs(p.percent_error) for p in self.droop_points)

    def max_crowbar_effect(self) -> float:
        return max(abs(p.percent_effect) for p in self.crowbar_points)

    def format_report(self) -> str:
        droop_rows = [
            [f"{p.n_drivers}", p.case_name, f"{p.simulated_droop:.4f}",
             f"{p.modeled_droop:.4f}", f"{p.percent_error:+.1f}"]
            for p in self.droop_points
        ]
        crowbar_rows = [
            [f"{p.n_drivers}", f"{p.bounce_without_pullup:.4f}",
             f"{p.bounce_with_pullup:.4f}", f"{p.percent_effect:+.3f}"]
            for p in self.crowbar_points
        ]
        p = self.pmos_params
        return (
            f"Power-rail dual, {self.technology_name} "
            f"(PMOS ASDM: K={p.k * 1e3:.2f} mA/V, V0={p.v0:.3f} V, "
            f"lambda={p.lam:.3f})\n\n"
            "VDD droop, falling input — duality model vs two-rail simulation:\n"
            + format_table(
                ["N", "Table1 case", "sim droop (V)", "model (V)", "%err"], droop_rows
            )
            + "\n\nCrowbar ablation, rising input — ground bounce with/without pull-ups:\n"
            + format_table(
                ["N", "NMOS only (V)", "full CMOS (V)", "pull-up effect %"], crowbar_rows
            )
            + "\n"
        )


def run(
    technology_name: str = "tsmc018",
    driver_counts: Sequence[int] = (2, 4, 8, 12),
    ground: GroundPathParasitics = NOMINAL_GROUND,
    power: GroundPathParasitics = NOMINAL_GROUND,
    edge_time: float = NOMINAL_RISE_TIME,
) -> PowerRailResult:
    """Validate the power-rail duality and the pull-down-only idealization."""
    tech = get_technology(technology_name)
    pmos_params, _ = fit_pmos_asdm(tech.pullup_device(), tech.vdd)

    droop_points = []
    crowbar_points = []
    for n in driver_counts:
        fall = simulate_cmos(
            CmosDriverBankSpec(
                technology=tech, n_drivers=n, ground=ground, power=power,
                edge="fall", edge_time=edge_time,
            )
        )
        model = PowerRailSsnModel(
            pmos_params, n, power.inductance, tech.vdd, edge_time,
            capacitance=power.capacitance,
        )
        droop_points.append(
            PowerRailPoint(
                n_drivers=n,
                simulated_droop=fall.peak_vdd_droop,
                modeled_droop=model.peak_droop(),
                case_name=model.mirror.case.name,
            )
        )

        with_pullup = simulate_cmos(
            CmosDriverBankSpec(
                technology=tech, n_drivers=n, ground=ground, power=power,
                edge="rise", edge_time=edge_time,
            )
        )
        without_pullup = simulate_cmos(
            CmosDriverBankSpec(
                technology=tech, n_drivers=n, ground=ground, power=power,
                edge="rise", edge_time=edge_time, include_pullup=False,
            )
        )
        crowbar_points.append(
            CrowbarPoint(
                n_drivers=n,
                bounce_with_pullup=with_pullup.peak_ground_bounce,
                bounce_without_pullup=without_pullup.peak_ground_bounce,
            )
        )
    return PowerRailResult(
        technology_name=technology_name,
        pmos_params=pmos_params,
        droop_points=tuple(droop_points),
        crowbar_points=tuple(crowbar_points),
    )
