"""Experiment E14 — the ground network in the frequency domain (extension).

A modern power-delivery-network reading of the paper's Section 4.  Seen
from the internal ground node, the network is a parallel RLC: the package
L and C, damped by the conducting drivers, which present a small-signal
conductance

    dId/dVn = -(gm + gds + gmbs) ~ -N*K*lambda

(the very combination ASDM's lambda packages).  The parallel-RLC damping
ratio is then

    zeta = (1/(2R)) * sqrt(L/C) = (N*K*lambda/2) * sqrt(L/C)

— *identical* to the paper's Eqn (15)/(27) damping ratio.  So the time-
domain region classification must show up as impedance peaking:
under-damped configurations (small N) have a resonant bump near
``f0 = 1/(2*pi*sqrt(LC))``; over-damped ones (large N) are flat.  This
experiment measures |Z(f)| with the AC engine on a bias circuit that holds
the devices in their ASDM region (drain at VDD, gate mid-ramp) and checks
the correspondence quantitatively.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from ..core.damping import DampingRegion, classify
from ..packaging.parasitics import GroundPathParasitics
from ..spice.ac import driving_point_impedance
from ..spice.circuit import Circuit
from ..spice.sources import Dc
from .common import NOMINAL_GROUND, fitted_models, format_table
from .plotting import ascii_chart

#: Gate bias as a fraction of VDD (mid-ramp, devices strongly on).
GATE_BIAS_FRACTION = 0.75


def build_bias_circuit(tech, n_drivers: int, ground: GroundPathParasitics) -> Circuit:
    """Driver bank held at its SSN bias: drain at VDD, gate mid-ramp.

    Voltage sources pin the gate and drain so the small-signal model sees
    exactly the ASDM operating region; the ground path carries the L and C
    under test.
    """
    circuit = Circuit(f"ssn bias network, N={n_drivers}")
    circuit.vsource("Vg", "g", "0", Dc(GATE_BIAS_FRACTION * tech.vdd))
    circuit.vsource("Vd", "d", "0", Dc(tech.vdd))
    circuit.inductor("Lgnd", "ssn", "0", ground.inductance, ic=0.0)
    circuit.capacitor("Cgnd", "ssn", "0", ground.capacitance, ic=0.0)
    circuit.mosfet("M1", "d", "g", "ssn", "ssn", tech.driver_device(n_drivers))
    return circuit


@dataclasses.dataclass(frozen=True)
class ImpedancePoint:
    """Impedance profile summary for one driver count.

    Attributes:
        n_drivers: simultaneously conducting drivers.
        region: Eqn 27 classification from the fitted ASDM parameters.
        zeta: predicted damping ratio (Eqn 15).
        peak_impedance: max |Z| over the sweep, ohms.
        peak_frequency: frequency of that maximum, hertz.
        low_frequency_impedance: |Z| at the lowest swept frequency.
        peaking_ratio: peak_impedance / inductive baseline |Z(f_peak)| of
            the bare L — how strongly the network resonates.
    """

    n_drivers: int
    region: DampingRegion
    zeta: float
    peak_impedance: float
    peak_frequency: float
    low_frequency_impedance: float
    peaking_ratio: float


@dataclasses.dataclass(frozen=True)
class ImpedanceResult:
    """The frequency-domain view of the damping regions."""

    technology_name: str
    ground: GroundPathParasitics
    resonant_frequency: float
    points: tuple[ImpedancePoint, ...]
    frequencies: np.ndarray
    curves: dict[int, np.ndarray]

    def format_report(self) -> str:
        rows = [
            [f"{p.n_drivers}", p.region.value, f"{p.zeta:.2f}",
             f"{p.peak_impedance:.1f}", f"{p.peak_frequency / 1e9:.2f}",
             f"{p.peaking_ratio:.2f}"]
            for p in self.points
        ]
        n_lo = self.points[0].n_drivers
        n_hi = self.points[-1].n_drivers
        chart = ascii_chart(
            np.log10(self.frequencies),
            {
                f"N={n_lo}": self.curves[n_lo],
                f"N={n_hi}": self.curves[n_hi],
            },
            x_label="log10 frequency (Hz)",
            y_label="|Z| (ohm)",
        )
        return (
            f"Ground-path impedance vs driver count, {self.technology_name} "
            f"(L = {self.ground.inductance * 1e9:.1f} nH, "
            f"C = {self.ground.capacitance * 1e12:.1f} pF, "
            f"f0 = {self.resonant_frequency / 1e9:.2f} GHz)\n"
            + format_table(
                ["N", "Eqn 27 region", "zeta", "|Z|max (ohm)", "f_peak (GHz)",
                 "peaking"],
                rows,
            )
            + "\n\n"
            + chart
            + "\n\nUnder-damped rows resonate near f0; over-damped rows are flat —\n"
            "the paper's time-domain regions are the PDN impedance profile.\n"
        )


def run(
    technology_name: str = "tsmc018",
    driver_counts: Sequence[int] = (1, 2, 4, 8, 16),
    ground: GroundPathParasitics = NOMINAL_GROUND,
    points_per_decade: int = 100,
) -> ImpedanceResult:
    """Measure |Z(f)| at the internal ground node across driver counts."""
    models = fitted_models(technology_name)
    tech = models.technology
    f0 = 1.0 / (2.0 * math.pi * math.sqrt(ground.inductance * ground.capacitance))
    freqs = np.logspace(math.log10(f0) - 1.5, math.log10(f0) + 1.0,
                        int(2.5 * points_per_decade))

    points = []
    curves = {}
    for n in driver_counts:
        circuit = build_bias_circuit(tech, n, ground)
        z = driving_point_impedance(circuit, freqs, "ssn")
        mag = np.abs(z)
        curves[int(n)] = mag
        i_peak = int(np.argmax(mag))
        inductive_baseline = 2.0 * math.pi * freqs[i_peak] * ground.inductance
        points.append(
            ImpedancePoint(
                n_drivers=n,
                region=classify(models.asdm, n, ground.inductance, ground.capacitance),
                zeta=0.5 * n * models.asdm.k * models.asdm.lam
                * math.sqrt(ground.inductance / ground.capacitance),
                peak_impedance=float(mag[i_peak]),
                peak_frequency=float(freqs[i_peak]),
                low_frequency_impedance=float(mag[0]),
                peaking_ratio=float(mag[i_peak] / inductive_baseline),
            )
        )
    return ImpedanceResult(
        technology_name=technology_name,
        ground=ground,
        resonant_frequency=f0,
        points=tuple(points),
        frequencies=freqs,
        curves=curves,
    )
