"""repro — reproduction of Ding & Mazumder, DATE 2002.

"Accurate Estimating Simultaneous Switching Noises by Using Application
Specific Device Modeling": an application-specific MOSFET model (ASDM)
yielding exact closed-form formulas for simultaneous switching noise (SSN,
ground bounce) at chip I/O pads, with and without the package's parasitic
capacitance.

Package layout:

* :mod:`repro.core`       — ASDM, the SSN formulas, damping analysis,
  parameter extraction and design helpers (the paper's contribution).
* :mod:`repro.devices`    — MOSFET models (golden short-channel device,
  alpha-power law, square law).
* :mod:`repro.process`    — synthetic 0.18/0.25/0.35 um technology cards.
* :mod:`repro.packaging`  — package ground-path parasitics.
* :mod:`repro.spice`      — MNA transient circuit simulator (the HSPICE
  substitute used for golden validation).
* :mod:`repro.baselines`  — prior-art SSN estimators (Vemuru, Song, Jou,
  Senthinathan).
* :mod:`repro.analysis`   — golden-simulation harness, sweeps, metrics,
  Monte Carlo.
* :mod:`repro.experiments`— one module per paper table/figure.
* :mod:`repro.service`    — persistent content-addressed result store and
  the async HTTP serving layer (``python -m repro serve``).
* :mod:`repro.surrogate`  — auto-fitted closed-form surrogate tier with
  validity regions and error bounds (the microsecond answer path).

Quickstart: see ``examples/quickstart.py`` or :mod:`repro.core`.
"""

__version__ = "1.0.0"

import importlib

#: Subpackages resolved lazily (PEP 562).  The circuit engine
#: (:mod:`repro.spice`, :mod:`repro.devices`) treats scipy and numba as
#: soft dependencies with dense/numpy fallbacks; eager imports here would
#: defeat that by dragging in the scipy-hard analysis/fitting stack the
#: moment anything touched ``repro``.  Lazy resolution keeps
#: ``import repro.spice`` runnable on a numpy-only interpreter (exercised
#: by ``make softdep-smoke``) while ``repro.analysis`` et al. behave
#: exactly as before for everyone who has the full toolchain.
_SUBPACKAGES = (
    "analysis",
    "baselines",
    "core",
    "devices",
    "experiments",
    "packaging",
    "process",
    "service",
    "spice",
    "surrogate",
)

__all__ = ["__version__", *_SUBPACKAGES]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBPACKAGES))
