"""Auto-fitted surrogate tier: microsecond SSN answers with validity tracking.

The paper's thesis — a tiny fitted device model answers SSN questions in
closed form within a few percent of full simulation — turned into a
serving tier.  :func:`fit_surrogate` characterizes one technology over a
parameter box against the golden fast-path engines; the resulting
:class:`SurrogateModel` carries its validity region, operating regime and
``ErrorSummary`` error bounds; a :class:`SurrogateRegistry` routes
queries (hit / refusal / miss) with full metrics and trace coverage.

The :func:`default_registry` is what the engine ladder's ``surrogate``
rung (``simulate_many(engine="surrogate")``, ``--engine surrogate``)
consults; the HTTP service keeps its own per-server registry warmed from
the persistent store.  See ``docs/surrogate.md``.
"""

from .audit import AuditObservation, SurrogateAuditor
from .fit import fit_surrogate, training_specs
from .model import (
    REGIONS_BY_TOPOLOGY,
    SURROGATE_SCHEMA_VERSION,
    SurrogateAnswer,
    SurrogateModel,
    ValidityRegion,
    topology_signature,
)
from .registry import SurrogateRegistry, default_registry

__all__ = [
    "AuditObservation",
    "REGIONS_BY_TOPOLOGY",
    "SURROGATE_SCHEMA_VERSION",
    "SurrogateAnswer",
    "SurrogateAuditor",
    "SurrogateModel",
    "SurrogateRegistry",
    "ValidityRegion",
    "default_registry",
    "fit_surrogate",
    "topology_signature",
    "training_specs",
]
