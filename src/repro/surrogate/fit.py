"""Auto-fit one surrogate model from golden fast-path simulator data.

The fit recipe mirrors the paper's own characterization flow, then adds
the validity bookkeeping the serving tier needs:

1. **Device extraction** — sweep the technology's driver device
   (``Id(Vg; Vs)`` with the drain at VDD, the Fig. 1 surface) and extract
   ASDM ``(K, V0, lambda)`` with :func:`repro.core.fitting.fit_asdm`
   (pure-numpy least squares; no scipy on this path).
2. **Training grid** — the corners of the requested parameter box plus
   its center point, golden-simulated through
   :func:`repro.analysis.simulate.simulate_many` (batched by default, so
   the lockstep engine amortizes the Newton work).
3. **Peak calibration** — the IV-surface fit is *device*-accurate but the
   closed form carries a systematic, Z-dependent bias against the golden
   MNA transient (the formulas ignore output loading and the solver's
   exact device curves).  This is where the "application specific" of the
   paper's title earns its keep: the ASDM triple is refined against the
   golden *peaks* over the training grid, so the model is fitted for the
   question it will be asked, not just for the device's DC surface.
4. **Error bounds** — the closed-form peak at every training point
   against its golden peak, folded into an
   :class:`~repro.analysis.metrics.ErrorSummary`.  That summary ships
   with the model and is re-checked on every query: a fit whose
   worst-case training error exceeds the tolerance refuses to serve.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from ..analysis.driver_bank import DriverBankSpec
from ..core.asdm import AsdmParameters
from ..analysis.metrics import ErrorSummary
from ..analysis.simulate import simulate_many
from ..core.fitting import fit_asdm
from ..devices.sweep import sweep_id_vg
from ..observability import trace
from ..process import get_technology
from ..process.technology import Technology
from .model import REGIONS_BY_TOPOLOGY, SurrogateModel, ValidityRegion


def _knob_values(name: str, lo: float, hi: float, samples: int) -> list[float]:
    """Training values for one knob: an inclusive linspace over its interval.

    Driver counts are integers; their grid is rounded and deduplicated so a
    narrow box never trains the same corner twice.
    """
    values = np.linspace(lo, hi, samples)
    if name == "n_drivers":
        values = sorted({max(1, int(round(v))) for v in values})
    return [float(v) for v in values]


def training_specs(
    technology: Technology,
    region: ValidityRegion,
    *,
    capacitance_knob: bool,
    driver_strength: float,
    load_capacitance: float,
    samples_per_knob: int = 2,
) -> list[DriverBankSpec]:
    """The golden training grid: full factorial over the box, plus its center.

    ``samples_per_knob=2`` (the default) trains on the box corners —
    ``2^k`` simulations — and the center point makes the interior error
    observable too, so the recorded bound is not a pure-boundary artifact.
    """
    bounds = region.bounds()
    names = sorted(bounds)
    grids = [_knob_values(name, *bounds[name], samples_per_knob) for name in names]
    points = {tuple(p) for p in itertools.product(*grids)}
    center = []
    for name in names:
        lo, hi = bounds[name]
        mid = 0.5 * (lo + hi)
        center.append(float(max(1, int(round(mid)))) if name == "n_drivers" else mid)
    points.add(tuple(center))

    specs = []
    for point in sorted(points):
        knobs = dict(zip(names, point))
        knobs["n_drivers"] = int(knobs["n_drivers"])
        if not capacitance_knob:
            knobs.pop("capacitance", None)
        specs.append(DriverBankSpec(
            technology=technology,
            driver_strength=driver_strength,
            load_capacitance=load_capacitance,
            **knobs,
        ))
    return specs


def fit_surrogate(
    technology: Technology | str,
    *,
    n_drivers: tuple[float, float] = (2, 12),
    inductance: tuple[float, float] = (2e-9, 8e-9),
    rise_time: tuple[float, float] = (0.2e-9, 0.8e-9),
    capacitance: tuple[float, float] | None = None,
    guard: float = 0.0,
    calibrate: bool = True,
    tolerance_percent: float = 3.0,
    driver_strength: float = 1.0,
    load_capacitance: float = 10e-12,
    samples_per_knob: int = 2,
    engine: str | None = "batch",
) -> SurrogateModel:
    """Fit a surrogate for one technology over one parameter box.

    Args:
        technology: technology card or its name.
        n_drivers / inductance / rise_time: ``(lo, hi)`` intervals of the
            validity box.
        capacitance: ``(lo, hi)`` shunt-capacitance interval for an LC
            surrogate, or None (the default) for the inductance-only
            topology.
        guard: extrapolation allowance per knob, as a fraction of its span.
        calibrate: refine the ASDM triple against the golden training
            peaks (recommended; roughly halves the recorded error bound).
            Skipped silently when scipy is unavailable.
        tolerance_percent: worst-case peak error the model may serve under.
        driver_strength / load_capacitance: template fields frozen into
            the model (queries must match them exactly).
        samples_per_knob: training-grid density per knob (2 = corners).
        engine: execution engine for the golden training simulations
            (default ``"batch"``; never ``"surrogate"``).

    Returns:
        The fitted :class:`SurrogateModel`, error bounds included.  The
        model is *returned*, not registered — callers decide whether it
        goes into a registry, the service store, or both.
    """
    if isinstance(technology, str):
        technology = get_technology(technology)
    if engine == "surrogate":
        raise ValueError("training simulations must run on a full engine")
    if samples_per_knob < 2:
        raise ValueError("samples_per_knob must be at least 2")

    bounds = {"n_drivers": n_drivers, "inductance": inductance,
              "rise_time": rise_time}
    topology = "l"
    if capacitance is not None:
        bounds["capacitance"] = capacitance
        topology = "lc"
    region = ValidityRegion.from_bounds(guard=guard, **bounds)

    with trace.span("surrogate_fit", technology=technology.name,
                    topology=topology):
        surface = sweep_id_vg(technology.driver_device(driver_strength),
                              technology.vdd)
        asdm, fit_report = fit_asdm(surface)

        specs = training_specs(
            technology, region,
            capacitance_knob=capacitance is not None,
            driver_strength=driver_strength,
            load_capacitance=load_capacitance,
            samples_per_knob=samples_per_knob,
        )
        golden = simulate_many(specs, engine=engine)

        # A draft model (error bound filled in below) provides the
        # closed-form peaks and the operating-region classification.
        draft = SurrogateModel(
            technology=technology.name,
            vdd=technology.vdd,
            topology=topology,
            operating_region=REGIONS_BY_TOPOLOGY[topology][0],
            asdm=asdm,
            region=region,
            fit_report=fit_report,
            error=ErrorSummary(0.0, 0.0, 0.0, 0.0),
            tolerance_percent=tolerance_percent,
            driver_strength=driver_strength,
            load_capacitance=load_capacitance,
            n_training=len(specs),
        )
        operating_region = _classify_region(draft, specs)
        references = [sim.peak_voltage for sim in golden]
        if calibrate:
            draft = dataclasses.replace(
                draft, asdm=_calibrate_asdm(draft, specs, references))
        estimates = [draft.answer(spec).peak_voltage for spec in specs]
        error = ErrorSummary.from_pairs(estimates, references)

    return dataclasses.replace(draft, operating_region=operating_region,
                               error=error)


def _calibrate_asdm(draft: SurrogateModel, specs, references) -> AsdmParameters:
    """Refine (K, V0, lambda) against the golden peaks over the training grid.

    The IV-surface least squares leaves a systematic bias between the
    closed-form peak and the golden MNA transient (the formulas neglect
    output loading, and the solver integrates the exact device curves the
    ASDM plane only approximates).  A Nelder-Mead polish on the worst-case
    relative peak error — K and lambda in log-space to stay positive, V0
    additive — removes most of that bias; on the stock box it roughly
    halves the recorded error bound.  Falls back to the uncalibrated
    triple when scipy is missing or the polish fails to improve.
    """
    try:
        from scipy import optimize
    except ImportError:
        return draft.asdm

    golden = np.asarray(references, dtype=float)
    base = draft.asdm

    def relative_errors(params: AsdmParameters) -> np.ndarray:
        model = dataclasses.replace(draft, asdm=params)
        peaks = np.array([model.answer(s).peak_voltage for s in specs])
        return (peaks - golden) / golden

    def unpack(x) -> AsdmParameters:
        return AsdmParameters(
            k=float(base.k * np.exp(x[0])),
            v0=float(base.v0 + x[1]),
            lam=float(base.lam * np.exp(x[2])),
        )

    def cost(x) -> float:
        try:
            err = relative_errors(unpack(x))
        except ValueError:
            return 1e6  # invalid triple (e.g. V0 pushed past VDD)
        # Chebyshev objective (the serving gate is worst-case) with a
        # small RMS tiebreak so flat plateaus still drain the average.
        return float(np.max(np.abs(err))) + 0.1 * float(np.sqrt(np.mean(err**2)))

    result = optimize.minimize(
        cost, np.zeros(3), method="Nelder-Mead",
        options={"xatol": 1e-6, "fatol": 1e-8, "maxiter": 2000},
    )
    calibrated = unpack(result.x)
    before = float(np.max(np.abs(relative_errors(base))))
    after = float(np.max(np.abs(relative_errors(calibrated))))
    return calibrated if after < before else base


def _classify_region(draft: SurrogateModel, specs) -> str:
    """The fitted operating region: uniform over the training grid, or refuse.

    L-only networks are always first-order.  For LC, every training point
    is classified with the fitted ASDM; a box straddling a damping
    boundary has no single closed-form regime, so the fit raises rather
    than record a region half its box violates.
    """
    if draft.topology == "l":
        return "first_order"
    regions = {draft.ssn_model(spec).region.name.lower() for spec in specs}
    if len(regions) > 1:
        raise ValueError(
            "training box straddles damping regions "
            f"{sorted(regions)}; split the capacitance/inductance box so "
            "each surrogate covers one regime"
        )
    return next(iter(regions))
