"""The surrogate registry: lookup, routing decisions, and their telemetry.

A :class:`SurrogateRegistry` holds fitted :class:`SurrogateModel` s keyed
by (technology, topology signature, operating region) and turns a query
spec into one of three routing decisions:

* **hit** — some model's full validity contract accepts the spec; the
  closed-form answer is authoritative (within its recorded error bound).
* **refusal** — candidate models exist for the spec's (technology,
  topology) but every one declines: out of box, wrong damping regime,
  template mismatch, a violated error bound, or an audit **demotion**
  (the shadow monitor observed the model breaching its served tolerance
  and benched it; see :mod:`repro.surrogate.audit`).  The refusal
  *reason* is reported so callers can see why the fast path was not
  taken.
* **miss** — no model covers the (technology, topology) at all.

Refusals and misses both route to the full engines; the distinction
matters operationally (a refusal names a fittable gap, a miss an unfitted
space) and each decision increments its own ``repro_surrogate_*`` counter
and lands in a trace span.
"""

from __future__ import annotations

import threading

from ..analysis.driver_bank import DriverBankSpec
from ..observability import events as obs_events
from ..observability import metrics as obs_metrics
from ..observability import trace
from .model import SurrogateAnswer, SurrogateModel, topology_signature

#: Prometheus-side counters (``repro_surrogate_refusals_total`` additionally
#: carries a ``reason`` label with the refusal category).
HITS_METRIC = "repro_surrogate_hits_total"
MISSES_METRIC = "repro_surrogate_misses_total"
REFUSALS_METRIC = "repro_surrogate_refusals_total"
DEMOTIONS_METRIC = "repro_surrogate_audit_demotions_total"


def _reason_category(reason: str) -> str:
    """The metrics label of a refusal reason: the part before the colon."""
    return reason.split(":", 1)[0].strip()


class SurrogateRegistry:
    """Thread-safe collection of fitted surrogates with routing telemetry."""

    def __init__(self):
        self._models: dict[tuple[str, str, str], SurrogateModel] = {}
        self._demoted: dict[tuple[str, str, str], str] = {}
        self._lock = threading.Lock()

    def register(self, model: SurrogateModel) -> tuple[str, str, str]:
        """Add (or replace) the model under its (tech, topology, region) key.

        Re-registering a demoted slot reinstates it: a fresh fit replaces
        whatever evidence benched the old model.
        """
        with self._lock:
            self._models[model.key] = model
            self._demoted.pop(model.key, None)
        return model.key

    def models(self) -> list[SurrogateModel]:
        with self._lock:
            return list(self._models.values())

    def clear(self) -> None:
        with self._lock:
            self._models.clear()
            self._demoted.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # -- demotion (the audit monitor's enforcement half) -----------------------------

    def demote(self, key: tuple[str, str, str], reason: str) -> bool:
        """Bench one (technology, topology, region) slot.

        A demoted model stays registered but every lookup refuses it
        (category ``"demoted"``), so queries take the exact batch-rung
        path until a refit reinstates the slot.  Returns False when the
        slot was already demoted (idempotent — one breach, one event).
        """
        with self._lock:
            if key in self._demoted:
                return False
            self._demoted[key] = reason
        obs_metrics.inc(DEMOTIONS_METRIC)
        obs_events.emit(
            "surrogate_demoted", technology=key[0], topology=key[1],
            operating_region=key[2], reason=reason)
        return True

    def demoted(self) -> dict[tuple[str, str, str], str]:
        """The benched slots and why (key -> demotion reason)."""
        with self._lock:
            return dict(self._demoted)

    # -- routing ---------------------------------------------------------------------

    def lookup(self, spec: DriverBankSpec, options=None
               ) -> tuple[SurrogateModel | None, str | None]:
        """Route one query: ``(model, None)`` hit, ``(None, reason)`` refusal,
        ``(None, None)`` miss.

        Candidates are every registered model of the spec's (technology,
        topology signature), across operating regions; each applies its own
        validity contract.  The first acceptance wins; with none, the first
        candidate's reason is reported.  Every decision increments its
        ``repro_surrogate_*`` counter and is recorded in a trace span.
        """
        signature = topology_signature(spec)
        with self._lock:
            candidates = [m for (tech, topo, _), m in self._models.items()
                          if tech == spec.technology.name and topo == signature]
            demoted = dict(self._demoted)
        outcome, reason, model = "miss", None, None
        for candidate in candidates:
            if candidate.key in demoted:
                why = f"demoted: {demoted[candidate.key]}"
            else:
                why = candidate.validate(spec, options=options)
            if why is None:
                outcome, model = "hit", candidate
                break
            if reason is None:
                reason = why
        if model is None and reason is not None:
            outcome = "refusal"

        if outcome == "hit":
            obs_metrics.inc(HITS_METRIC)
        elif outcome == "refusal":
            obs_metrics.inc(REFUSALS_METRIC,
                            labels={"reason": _reason_category(reason)})
            obs_events.emit(
                "surrogate_refused", technology=spec.technology.name,
                topology=signature, reason=reason)
        else:
            obs_metrics.inc(MISSES_METRIC)
        with trace.span("surrogate_route", outcome=outcome,
                        technology=spec.technology.name, topology=signature,
                        reason=reason or ""):
            pass
        return model, reason

    def answer(self, spec: DriverBankSpec, options=None) -> SurrogateAnswer | None:
        """The microsecond peak answer, or None on refusal/miss."""
        model, _ = self.lookup(spec, options=options)
        if model is None:
            return None
        return model.answer(spec)

    def route_simulation(self, spec: DriverBankSpec, options=None):
        """``(simulation | None, outcome)`` for the engine-ladder integration.

        ``outcome`` is ``"hit"``/``"refusal"``/``"miss"``; the simulation is
        the synthesized closed-form :class:`SsnSimulation` on a hit, None
        otherwise (the caller falls back to a full engine and tags the
        fallback's telemetry with the outcome).
        """
        model, reason = self.lookup(spec, options=options)
        if model is not None:
            return model.simulation(spec), "hit"
        return None, "refusal" if reason is not None else "miss"


#: Process-wide default registry — what ``simulate_many(engine="surrogate")``
#: and the ``--engine surrogate`` CLI flag consult.  Empty until something
#: registers a fitted model, so the surrogate rung degrades to a pure
#: pass-through (every spec a miss) out of the box.
_default = SurrogateRegistry()


def default_registry() -> SurrogateRegistry:
    """The process-wide registry the surrogate engine rung consults."""
    return _default
