"""Fitted surrogate models: closed-form SSN answers with a validity contract.

The paper's economics — fit a tiny application-specific device model once,
answer in closed form, stay within a few percent of BSIM-level accuracy —
generalize into a serving tier: a :class:`SurrogateModel` bundles one
fitted :class:`~repro.core.asdm.AsdmParameters` set with everything needed
to decide *whether it may answer* a query at all:

* a **topology signature** (:func:`topology_signature`) — the ground-path
  shape the model was fitted for (``"l"`` or ``"lc"``; series resistance
  and skewed launches are outside the closed forms and signature-distinct);
* a **validity region** (:class:`ValidityRegion`) — the parameter box the
  training sweep spanned, plus an explicit extrapolation guard;
* an **operating region** — ``"first_order"`` for the inductance-only
  network, the damping classification (over/critically/under-damped) for
  LC; a query whose damping class differs from the fitted one is refused;
* **error bounds** — an :class:`~repro.analysis.metrics.ErrorSummary` of
  the closed-form peak against golden fast-path simulations over the
  training grid.  A model whose recorded worst-case error exceeds its
  tolerance refuses every query (bound violation), so a bad fit can never
  silently serve wrong numbers.

In-region answers go through the exact closed-form models of
:mod:`repro.core.ssn_inductive` / :mod:`repro.core.ssn_lc` — object
construction plus one ``expm1``/``exp`` evaluation, microseconds — and
:meth:`SurrogateModel.simulation` synthesizes a full
:class:`~repro.analysis.simulate.SsnSimulation` (waveforms on the model's
validity window, NaN beyond it, exactly the convention of the core
models) so surrogate answers plug into every consumer of golden results.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..analysis.driver_bank import DriverBankSpec
from ..analysis.metrics import ErrorSummary
from ..analysis.simulate import SsnSimulation, default_stop_time, default_time_step
from ..core.asdm import AsdmParameters
from ..core.fitting import FitReport
from ..core.ssn_inductive import InductiveSsnModel
from ..core.ssn_lc import LcSsnModel
from ..spice.telemetry import SolverTelemetry
from ..spice.waveform import Waveform

#: Bumped on incompatible payload-layout changes; a persisted model with
#: any other version fails to load (and the store record is recomputed).
SURROGATE_SCHEMA_VERSION = 1

#: Operating regions a model of each topology can be fitted in.
REGIONS_BY_TOPOLOGY = {
    "l": ("first_order",),
    "lc": ("overdamped", "critically_damped", "underdamped"),
}

#: Relative tolerance for matching a query's fixed template fields
#: (driver strength, per-driver load) against the fitted ones.
_TEMPLATE_RTOL = 1e-9


def _lc_extended_peak(model: LcSsnModel, horizon_periods: float = 3.0) -> tuple[float, float]:
    """(peak, time) of an LC response including the post-ramp continuation.

    Mirrors :meth:`LcSsnModel.peak_voltage_extended` but also locates the
    instant, which the serving answer reports.  The tail grid spans a few
    natural periods — every mode decays at the model's decay rate, so the
    global maximum cannot hide beyond it.
    """
    horizon = horizon_periods * 2.0 * math.pi / model.natural_frequency
    tail_t = model.ramp_end_time + np.linspace(0.0, horizon, 4000)
    tail_v = np.asarray(model.post_ramp_voltage(tail_t), dtype=float)
    i = int(np.argmax(tail_v))
    window_peak = float(model.peak_voltage())
    if float(tail_v[i]) > window_peak:
        return float(tail_v[i]), float(tail_t[i])
    return window_peak, float(model.peak_time())


def topology_signature(spec: DriverBankSpec) -> str:
    """The ground-path shape of a spec, as the surrogate registry keys it.

    ``"l"`` (Section 3, inductance only) or ``"lc"`` (Section 4, shunt
    capacitance), with ``"+r"`` appended for a series ground resistance
    and ``"+skew"`` for staggered launch schedules.  The closed forms
    cover only the bare ``"l"``/``"lc"`` shapes; the suffixed signatures
    exist so unsupported queries key to *no* model (a miss, routed to the
    full engines) rather than a wrong answer.
    """
    sig = "l" if spec.capacitance is None else "lc"
    if spec.resistance > 0:
        sig += "+r"
    if spec.input_offsets is not None:
        sig += "+skew"
    return sig


@dataclasses.dataclass(frozen=True)
class ValidityRegion:
    """Parameter box a surrogate was fitted over, plus extrapolation guard.

    Attributes:
        box: per-knob closed intervals, as a sorted tuple of
            ``(knob, lo, hi)`` triples (``n_drivers``/``inductance``/
            ``rise_time``, plus ``capacitance`` for LC models).
        guard: allowed extrapolation beyond the box per knob, as a
            fraction of that knob's span (0.0 = the box is strict).
    """

    box: tuple[tuple[str, float, float], ...]
    guard: float = 0.0

    def __post_init__(self):
        if self.guard < 0:
            raise ValueError("extrapolation guard must be non-negative")
        for knob, lo, hi in self.box:
            if not (math.isfinite(lo) and math.isfinite(hi)) or lo > hi:
                raise ValueError(f"invalid interval for {knob!r}: [{lo}, {hi}]")

    @classmethod
    def from_bounds(cls, guard: float = 0.0, **bounds) -> "ValidityRegion":
        """Build a region from ``knob=(lo, hi)`` keyword bounds."""
        box = tuple(sorted(
            (knob, float(lo), float(hi)) for knob, (lo, hi) in bounds.items()
        ))
        return cls(box=box, guard=float(guard))

    def bounds(self) -> dict[str, tuple[float, float]]:
        return {knob: (lo, hi) for knob, lo, hi in self.box}

    def check(self, spec: DriverBankSpec) -> str | None:
        """None when every boxed knob of ``spec`` is in-region, else why not.

        The guard widens each interval by ``guard * (hi - lo)`` on both
        sides — the recorded allowance for mild extrapolation — so the
        refusal reason always states the *guarded* interval it tested.
        """
        for knob, lo, hi in self.box:
            value = float(getattr(spec, knob))
            margin = self.guard * (hi - lo)
            if not (lo - margin <= value <= hi + margin):
                return (
                    f"validity-box: {knob}={value:.6g} outside "
                    f"[{lo - margin:.6g}, {hi + margin:.6g}]"
                )
        return None

    def as_payload(self) -> dict:
        return {"box": {knob: [lo, hi] for knob, lo, hi in self.box},
                "guard": self.guard}

    @classmethod
    def from_payload(cls, payload: dict) -> "ValidityRegion":
        return cls.from_bounds(
            guard=float(payload.get("guard", 0.0)),
            **{knob: (float(lo), float(hi))
               for knob, (lo, hi) in payload["box"].items()},
        )


@dataclasses.dataclass(frozen=True)
class SurrogateAnswer:
    """One in-region closed-form answer.

    Attributes:
        peak_voltage: maximum SSN voltage in volts (Eqn 7 / Table 1).
        peak_time: instant of that maximum in seconds.
        operating_region: the fitted region that answered.
        error_bound_percent: the model's recorded worst-case peak error
            against golden simulation over its training grid.
    """

    peak_voltage: float
    peak_time: float
    operating_region: str
    error_bound_percent: float


@dataclasses.dataclass(frozen=True)
class SurrogateModel:
    """One auto-fitted reduced model with its full validity contract.

    Attributes:
        technology: technology-card name the model was fitted on.
        vdd: that card's supply voltage (snapshotted: a query whose card
            disagrees is refused rather than mis-scaled).
        topology: :func:`topology_signature` the model covers.
        operating_region: fitted region (see :data:`REGIONS_BY_TOPOLOGY`).
        asdm: the fitted ASDM parameters (paper Eqn 3).
        region: the validity region (parameter box + guard).
        fit_report: IV-surface fit quality of the ASDM extraction.
        error: closed-form peak vs golden simulation over the training
            grid (the serving-time error bound).
        tolerance_percent: worst-case |error| the model may serve under;
            a model whose ``error.max_abs_percent`` exceeds this refuses
            every query.
        driver_strength / load_capacitance: template fields frozen at fit
            time; queries must match them (the ASDM absorbs the device
            width, and the closed forms assume the fitted loading class).
        n_training: golden simulations in the training grid.
    """

    technology: str
    vdd: float
    topology: str
    operating_region: str
    asdm: AsdmParameters
    region: ValidityRegion
    fit_report: FitReport
    error: ErrorSummary
    tolerance_percent: float = 3.0
    driver_strength: float = 1.0
    load_capacitance: float = 10e-12
    n_training: int = 0

    def __post_init__(self):
        if self.topology not in REGIONS_BY_TOPOLOGY:
            raise ValueError(
                f"unsupported topology {self.topology!r}; surrogates cover "
                f"{sorted(REGIONS_BY_TOPOLOGY)}"
            )
        if self.operating_region not in REGIONS_BY_TOPOLOGY[self.topology]:
            raise ValueError(
                f"operating region {self.operating_region!r} is not valid for "
                f"topology {self.topology!r}"
            )
        if self.tolerance_percent <= 0:
            raise ValueError("tolerance_percent must be positive")

    @property
    def key(self) -> tuple[str, str, str]:
        """The registry key: (technology, topology, operating region)."""
        return (self.technology, self.topology, self.operating_region)

    # -- the validity contract -------------------------------------------------------

    def validate(self, spec: DriverBankSpec, options=None) -> str | None:
        """None when the model may answer ``spec``, else the refusal reason.

        Reasons are ``"category: detail"`` strings; the category (the part
        before the colon) doubles as the metrics label.  Checks, in order:
        explicit solver options (a closed form has no solver to configure),
        technology identity, topology signature, the frozen template
        fields, the validity box, the operating region, and finally the
        model's own error bound.
        """
        if options is not None:
            return "options: explicit transient options request the full engine"
        if spec.technology.name != self.technology:
            return (f"technology: query is {spec.technology.name!r}, "
                    f"model fitted on {self.technology!r}")
        if not math.isclose(spec.technology.vdd, self.vdd, rel_tol=_TEMPLATE_RTOL):
            return (f"technology: vdd {spec.technology.vdd} differs from "
                    f"fitted {self.vdd}")
        signature = topology_signature(spec)
        if signature != self.topology:
            return (f"topology: query signature {signature!r}, "
                    f"model covers {self.topology!r}")
        if not math.isclose(spec.driver_strength, self.driver_strength,
                            rel_tol=_TEMPLATE_RTOL):
            return (f"template: driver_strength {spec.driver_strength} != "
                    f"fitted {self.driver_strength}")
        if not math.isclose(spec.load_capacitance, self.load_capacitance,
                            rel_tol=_TEMPLATE_RTOL):
            return (f"template: load_capacitance {spec.load_capacitance} != "
                    f"fitted {self.load_capacitance}")
        reason = self.region.check(spec)
        if reason is not None:
            return reason
        if self.topology == "lc":
            query_region = self.ssn_model(spec).region.name.lower()
            if query_region != self.operating_region:
                return (f"operating-region: query is {query_region}, "
                        f"model fitted {self.operating_region}")
        if self.error.max_abs_percent > self.tolerance_percent:
            return (f"error-bound: fitted worst-case error "
                    f"{self.error.max_abs_percent:.3g}% exceeds the "
                    f"{self.tolerance_percent:.3g}% tolerance")
        return None

    # -- answering -------------------------------------------------------------------

    def ssn_model(self, spec: DriverBankSpec):
        """The closed-form core model instance answering ``spec``."""
        if spec.capacitance is None:
            return InductiveSsnModel(self.asdm, spec.n_drivers, spec.inductance,
                                     self.vdd, spec.rise_time)
        return LcSsnModel(self.asdm, spec.n_drivers, spec.inductance,
                          spec.capacitance, self.vdd, spec.rise_time)

    def answer(self, spec: DriverBankSpec) -> SurrogateAnswer:
        """The microsecond path: peak voltage and time, closed form only.

        L-only networks peak exactly at the ramp end (Eqn 7).  LC networks
        use the post-ramp continuation (:meth:`LcSsnModel.peak_voltage_extended`):
        in the underdamped regimes the physical maximum often rings up
        *after* the ramp, and the golden simulations the error bound was
        taken against see that peak too.

        Callers must have validated the spec (:meth:`validate`); answering
        an out-of-region spec extrapolates silently.
        """
        model = self.ssn_model(spec)
        if spec.capacitance is None:
            peak, peak_time = float(model.peak_voltage()), float(model.peak_time())
        else:
            peak, peak_time = _lc_extended_peak(model)
        return SurrogateAnswer(
            peak_voltage=peak,
            peak_time=peak_time,
            operating_region=self.operating_region,
            error_bound_percent=float(self.error.max_abs_percent),
        )

    def simulation(self, spec: DriverBankSpec, tstop: float | None = None,
                   dt: float | None = None) -> SsnSimulation:
        """Synthesize a full :class:`SsnSimulation` from the closed forms.

        Waveforms follow the core models' validity convention — zero
        before turn-on, NaN after the ramp ends — on the same default time
        grid the golden engines would use, so downstream consumers
        (waveform comparison, serving payloads) need no special casing.
        The peak comes from the closed-form formulas, not from sampling.
        The attached telemetry is honest about the work done: zero solver
        counters, one ``surrogate_hits`` extra.
        """
        model = self.ssn_model(spec)
        tstop = default_stop_time(spec) if tstop is None else float(tstop)
        dt = default_time_step(spec) if dt is None else float(dt)
        t = np.arange(0.0, tstop + 0.5 * dt, dt)

        vn = np.asarray(model.voltage(t), dtype=float)
        slope = self.vdd / spec.rise_time
        vin = np.minimum(slope * t, self.vdd)
        # Per-driver channel current (Eqn 8); NaN propagates from vn past
        # the ramp, matching the SSN waveform's validity window.
        i_drv = self.asdm.k * (vin - self.asdm.v0 - self.asdm.lam * vn)
        i_drv = np.where(t < model.turn_on_time, 0.0, np.maximum(i_drv, 0.0))
        if spec.capacitance is None:
            i_l = spec.n_drivers * i_drv
        else:
            # KCL at the bouncing node (Eqn 11): the shunt C carries
            # C * dVn/dt of the total drive current.
            dvn = np.asarray(model.voltage_derivative(t), dtype=float)
            i_l = spec.n_drivers * i_drv - spec.capacitance * dvn
        # The closed forms assume the pads barely move during the ramp.
        vout = np.full_like(t, self.vdd)

        telemetry = SolverTelemetry()
        telemetry.extras["surrogate_hits"] = 1
        answer = self.answer(spec)
        return SsnSimulation(
            spec=spec,
            ssn=Waveform(t, vn),
            inductor_current=Waveform(t, i_l),
            driver_current=Waveform(t, i_drv),
            input_voltage=Waveform(t, vin),
            output_voltage=Waveform(t, vout),
            peak_voltage=answer.peak_voltage,
            peak_time=answer.peak_time,
            telemetry=telemetry,
        )

    # -- persistence -----------------------------------------------------------------

    def as_payload(self) -> dict:
        """JSON-able rendering (the service store's ``surrogate`` records)."""
        return {
            "surrogate_schema": SURROGATE_SCHEMA_VERSION,
            "technology": self.technology,
            "vdd": self.vdd,
            "topology": self.topology,
            "operating_region": self.operating_region,
            "asdm": {"k": self.asdm.k, "v0": self.asdm.v0, "lam": self.asdm.lam},
            "region": self.region.as_payload(),
            "fit_report": dataclasses.asdict(self.fit_report),
            "error": dataclasses.asdict(self.error),
            "tolerance_percent": self.tolerance_percent,
            "driver_strength": self.driver_strength,
            "load_capacitance": self.load_capacitance,
            "n_training": self.n_training,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SurrogateModel":
        """Rebuild a model from :meth:`as_payload` output (store warming)."""
        if payload.get("surrogate_schema") != SURROGATE_SCHEMA_VERSION:
            raise ValueError(
                f"surrogate payload schema {payload.get('surrogate_schema')!r} "
                f"!= supported {SURROGATE_SCHEMA_VERSION}"
            )
        return cls(
            technology=str(payload["technology"]),
            vdd=float(payload["vdd"]),
            topology=str(payload["topology"]),
            operating_region=str(payload["operating_region"]),
            asdm=AsdmParameters(**{k: float(v)
                                   for k, v in payload["asdm"].items()}),
            region=ValidityRegion.from_payload(payload["region"]),
            fit_report=FitReport(**payload["fit_report"]),
            error=ErrorSummary(**payload["error"]),
            tolerance_percent=float(payload["tolerance_percent"]),
            driver_strength=float(payload["driver_strength"]),
            load_capacitance=float(payload["load_capacitance"]),
            n_training=int(payload.get("n_training", 0)),
        )
