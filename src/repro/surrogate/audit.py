"""Shadow-audit accuracy monitor: re-check served surrogate bounds in flight.

A fitted surrogate serves a *frozen* error bound — measured against the
golden MNA at fit time, then trusted forever.  The paper's <3% claim is
only as good as that trust: device drift, a stale technology card, or a
query distribution creeping toward a region boundary can all push real
error past the served tolerance with no signal anywhere.  (ROADMAP calls
this out as the open surrogate headroom: store-driven error/age-triggered
refit.  This module is the observe-and-enforce half.)

The :class:`SurrogateAuditor` closes the loop without adding solver work:

1. **Deterministic sampling** — a configurable fraction of surrogate-served
   answers is selected by hashing the request's result key, so the same
   key is always either audited or not (reproducible across runs, no RNG
   state).
2. **Piggybacked references** — the service already schedules a background
   golden refinement behind every surrogate answer; the auditor simply
   captures the surrogate estimate when the answer is served and resolves
   it against the refined record's golden peak when that computation
   lands.  Zero extra simulations.
3. **Rolling error accounting** — each resolution folds into a
   per-(technology, topology, operating_region) window of
   (estimate, reference) pairs summarized by the same
   :class:`~repro.analysis.metrics.ErrorSummary` the fitter reports, and
   exports ``repro_surrogate_audit_*`` metrics.
4. **Auto-demotion** — when one observed error breaches the model's served
   ``tolerance_percent``, the slot is demoted in the registry (event
   ``surrogate_demoted``, counter
   ``repro_surrogate_audit_demotions_total``): subsequent queries take the
   exact batch-rung path until a refit reinstates it.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import zlib

from ..analysis.metrics import ErrorSummary
from ..observability import events as obs_events
from ..observability import metrics as obs_metrics
from .model import SurrogateModel
from .registry import SurrogateRegistry

#: Exported metric names (all carry technology/topology/operating_region
#: labels except the registry-owned demotions counter).
SAMPLES_METRIC = "repro_surrogate_audit_samples_total"
BREACHES_METRIC = "repro_surrogate_audit_breaches_total"
MAX_ERROR_METRIC = "repro_surrogate_audit_max_error_percent"

#: Default fraction of surrogate answers shadow-audited.
DEFAULT_AUDIT_FRACTION = 0.1

#: Default rolling window of (estimate, reference) pairs per region.
DEFAULT_WINDOW = 256


def _key_fraction(key: str) -> float:
    """Map a result key to a stable point in [0, 1) for sampling."""
    try:
        bits = int(key[:8], 16)
    except (TypeError, ValueError):
        bits = zlib.crc32(str(key).encode())
    return (bits & 0xFFFFFFFF) / 2.0 ** 32


@dataclasses.dataclass(frozen=True)
class AuditObservation:
    """One resolved audit: the served estimate vs the golden reference."""

    key: str
    technology: str
    topology: str
    operating_region: str
    estimate: float
    reference: float
    error_percent: float
    tolerance_percent: float
    breached: bool
    demoted: bool


class SurrogateAuditor:
    """Samples surrogate answers and folds golden re-checks into summaries."""

    def __init__(self, registry: SurrogateRegistry,
                 fraction: float = DEFAULT_AUDIT_FRACTION,
                 window: int = DEFAULT_WINDOW):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"audit fraction must be in [0, 1], got {fraction}")
        if window < 1:
            raise ValueError(f"audit window must be >= 1, got {window}")
        self.registry = registry
        self.fraction = fraction
        self.window = window
        self._pending: dict[str, tuple[SurrogateModel, float]] = {}
        self._pairs: dict[tuple[str, str, str],
                          collections.deque[tuple[float, float]]] = {}
        self._lock = threading.Lock()

    # -- sampling --------------------------------------------------------------------

    def should_sample(self, key: str) -> bool:
        """Whether this key's surrogate answer gets a shadow audit."""
        if self.fraction <= 0.0:
            return False
        return _key_fraction(key) < self.fraction

    def track(self, key: str, model: SurrogateModel, estimate: float) -> bool:
        """Capture a sampled answer awaiting its golden reference.

        Returns whether the key was actually enrolled (sampled and not
        already pending).  Call only when a background refinement was
        scheduled, so every tracked key eventually resolves or discards.
        """
        if not self.should_sample(key):
            return False
        with self._lock:
            if key in self._pending:
                return False
            self._pending[key] = (model, float(estimate))
        return True

    def discard(self, key: str) -> None:
        """Drop a pending audit whose reference computation failed."""
        with self._lock:
            self._pending.pop(key, None)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- resolution ------------------------------------------------------------------

    def resolve(self, key: str, reference: float) -> AuditObservation | None:
        """Fold one golden reference in; None when the key wasn't tracked.

        Updates the region's rolling window and metrics, and demotes the
        region in the registry when the observed error breaches the
        model's served tolerance.
        """
        with self._lock:
            tracked = self._pending.pop(key, None)
        if tracked is None:
            return None
        model, estimate = tracked
        reference = float(reference)
        if reference == 0.0:
            return None  # an undefined percent error teaches nothing
        error_percent = abs(estimate - reference) / abs(reference) * 100.0
        with self._lock:
            pairs = self._pairs.setdefault(
                model.key, collections.deque(maxlen=self.window))
            pairs.append((estimate, reference))
            summary = ErrorSummary.from_pairs(
                [e for e, _ in pairs], [r for _, r in pairs])
        labels = {"technology": model.technology, "topology": model.topology,
                  "operating_region": model.operating_region}
        obs_metrics.inc(SAMPLES_METRIC, labels=labels)
        obs_metrics.set_gauge(MAX_ERROR_METRIC, summary.max_abs_percent,
                              labels=labels)
        breached = error_percent > model.tolerance_percent
        demoted = False
        if breached:
            obs_metrics.inc(BREACHES_METRIC, labels=labels)
            reason = (
                f"audit observed {error_percent:.2f}% peak error, over the "
                f"served {model.tolerance_percent:g}% tolerance")
            demoted = self.registry.demote(model.key, reason)
        obs_events.emit(
            "surrogate_audited", key=key[:12], error_percent=error_percent,
            breached=breached, **labels)
        return AuditObservation(
            key=key, technology=model.technology, topology=model.topology,
            operating_region=model.operating_region, estimate=estimate,
            reference=reference, error_percent=error_percent,
            tolerance_percent=model.tolerance_percent, breached=breached,
            demoted=demoted)

    # -- reporting -------------------------------------------------------------------

    def summaries(self) -> dict[tuple[str, str, str], ErrorSummary]:
        """Rolling observed-error summaries per audited region."""
        with self._lock:
            snapshot = {k: list(pairs) for k, pairs in self._pairs.items()}
        return {
            k: ErrorSummary.from_pairs([e for e, _ in pairs],
                                       [r for _, r in pairs])
            for k, pairs in snapshot.items() if pairs
        }

    def as_payload(self) -> dict:
        """JSON view for ``/statusz``: per-region observed-error summaries."""
        regions = {}
        demoted = self.registry.demoted()
        for key, summary in sorted(self.summaries().items()):
            regions["/".join(key)] = {
                "samples": summary.n_points,
                "mean_abs_percent": summary.mean_abs_percent,
                "max_abs_percent": summary.max_abs_percent,
                "demoted": key in demoted,
            }
        return {
            "fraction": self.fraction,
            "window": self.window,
            "pending": self.pending_count(),
            "regions": regions,
            "demoted": [
                {"technology": key[0], "topology": key[1],
                 "operating_region": key[2], "reason": reason}
                for key, reason in sorted(demoted.items())
            ],
        }
