"""Jou et al. (1998) SSN estimator — Taylor-expanded alpha-power law.

Reference [7] of the paper: "Simultaneous Switching Noise Analysis and Low
Bouncing Buffer Design", CICC 1998.  The paper characterizes the approach
as Taylor-expanding the alpha-power drain current and *neglecting second
and higher order terms*.  Expanding ``Id = B*(Vgs - Vth)^alpha`` around the
middle of the conduction window ``M = (Vth + VDD)/2``:

    Id ~= I_M + g_M*(Vgs - M),
    I_M = B*(M - Vth)^alpha,    g_M = alpha*B*(M - Vth)^(alpha-1)

i.e. a linear drain-current model with slope ``g_M`` and effective turn-on
voltage ``Veff = M - I_M/g_M``.  The ground-node ODE then solves exactly as
in the ASDM/Vemuru derivations:

    Vmax = N*L*g_M*sr * (1 - exp(-(VDD - Veff)/(sr*N*L*g_M)))

The expansion point is the one free choice the paper's one-line description
leaves open; mid-window is the natural symmetric pick and is exposed as a
parameter for sensitivity studies.
"""

from __future__ import annotations

import math

from ..core.fitting import AlphaPowerSsnParameters


class JouSsnModel:
    """First-order-Taylor alpha-power SSN estimate.

    Args:
        expansion_fraction: where to linearize, as a fraction of the
            conduction window above Vth (0.5 = mid-window default).
    """

    name = "jou-1998"

    def __init__(
        self,
        params: AlphaPowerSsnParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        rise_time: float,
        expansion_fraction: float = 0.5,
    ):
        if n_drivers <= 0 or inductance <= 0 or rise_time <= 0:
            raise ValueError("n_drivers, inductance and rise_time must be positive")
        if vdd <= params.vth:
            raise ValueError("vdd must exceed the extracted threshold")
        if not 0.0 < expansion_fraction <= 1.0:
            raise ValueError("expansion_fraction must be in (0, 1]")
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.vdd = vdd
        self.rise_time = rise_time
        self.expansion_fraction = expansion_fraction

    @property
    def slope(self) -> float:
        return self.vdd / self.rise_time

    @property
    def expansion_point(self) -> float:
        """Gate voltage around which the current is linearized."""
        return self.params.vth + self.expansion_fraction * (self.vdd - self.params.vth)

    @property
    def linear_slope(self) -> float:
        """g_M: transconductance at the expansion point."""
        return float(self.params.transconductance(self.expansion_point))

    @property
    def effective_turn_on(self) -> float:
        """Veff: gate voltage where the linearized current crosses zero."""
        m = self.expansion_point
        i_m = float(self.params.saturation_current(m))
        return m - i_m / self.linear_slope

    def peak_voltage(self) -> float:
        """Maximum SSN voltage of the linearized model."""
        g = self.linear_slope
        tau = self.n_drivers * self.inductance * g
        window = (self.vdd - self.effective_turn_on) / self.slope
        return tau * self.slope * -math.expm1(-window / tau)
