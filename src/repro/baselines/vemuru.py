"""Vemuru (1996) SSN estimator — alpha-power law + constant-derivative trick.

Reference [6] of the paper: "Accurate Simultaneous Switching Noise
Estimation Including Velocity-Saturation Effects", IEEE Trans. CPMT-B.
The paper characterizes the approach by its key approximation: because the
alpha-power ODE has no closed solution, *the derivative of the drain
current with respect to the gate voltage is treated as a constant* for
submicron (alpha -> 1) processes.  Concretely, with the alpha-power
saturation law ``Id = B*(Vgs - Vth)^alpha`` driven by ``Vgs = sr*t - Vn``:

    dId/dt = alpha*B*(Vgs - Vth)^(alpha-1) * (sr - dVn/dt)
           ~= g * (sr - dVn/dt),   g = alpha*B*(VDD - Vth)^(alpha-1)

(the transconductance frozen at full overdrive).  The ground-node equation
``Vn = N*L*dId/dt`` then becomes the same first-order linear ODE as the
ASDM derivation with K -> g, lambda -> 1, V0 -> Vth, so

    Vn(t)  = N*L*g*sr * (1 - exp(-(t - Vth/sr)/(N*L*g)))
    Vmax   = N*L*g*sr * (1 - exp(-(VDD - Vth)/(sr*N*L*g)))

Exact published constants differ in secondary details we cannot verify
offline; what this reproduction preserves — and what the paper's Fig. 3
tests — is the approximation structure, which is where the accuracy gap
versus ASDM comes from.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.fitting import AlphaPowerSsnParameters


class VemuruSsnModel:
    """Constant-transconductance alpha-power SSN estimate.

    Args:
        params: alpha-power law of one driver (fit to the same silicon the
            competing models use).
        n_drivers: simultaneously switching driver count.
        inductance: ground inductance in henries.
        vdd: supply voltage in volts.
        rise_time: input ramp duration in seconds.
    """

    name = "vemuru-1996"

    def __init__(
        self,
        params: AlphaPowerSsnParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        rise_time: float,
    ):
        if n_drivers <= 0 or inductance <= 0 or rise_time <= 0:
            raise ValueError("n_drivers, inductance and rise_time must be positive")
        if vdd <= params.vth:
            raise ValueError("vdd must exceed the extracted threshold")
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.vdd = vdd
        self.rise_time = rise_time

    @property
    def slope(self) -> float:
        return self.vdd / self.rise_time

    @property
    def frozen_transconductance(self) -> float:
        """g = alpha*B*(VDD - Vth)^(alpha-1), the constant-derivative value."""
        return float(self.params.transconductance(self.vdd))

    @property
    def time_constant(self) -> float:
        return self.n_drivers * self.inductance * self.frozen_transconductance

    def voltage(self, t):
        """SSN waveform under the constant-derivative approximation."""
        t = np.asarray(t, dtype=float)
        t0 = self.params.vth / self.slope
        level = self.time_constant * self.slope
        v = level * -np.expm1(-np.maximum(t - t0, 0.0) / self.time_constant)
        v = np.where(t < t0, 0.0, v)
        v = np.where(t > self.rise_time * (1 + 1e-12), np.nan, v)
        if v.ndim == 0:
            return float(v)
        return v

    def peak_voltage(self) -> float:
        """Maximum SSN voltage at the end of the ramp."""
        window = (self.vdd - self.params.vth) / self.slope
        return self.time_constant * self.slope * -math.expm1(-window / self.time_constant)
