"""Senthinathan & Prince (1991) SSN estimator — square-law quasi-static peak.

Reference [4] of the paper: "Simultaneous Switching Ground Noise
Calculation for Packaged CMOS Devices", IEEE JSSC.  The classic long-
channel estimate: drivers obey the square law

    Id = beta/2 * (Vgs - Vth)^2,      Vgs = sr*t - Vn

so ``dId/dt = beta*(Vgs - Vth)*(sr - dVn/dt)``.  Evaluating at the end of
the ramp and dropping the (small) dVn/dt term — the quasi-static
approximation of the original work — turns ``Vn = N*L*dId/dt`` into a
linear equation for the peak:

    Vmax = N*L*beta*(VDD - Vth - Vmax)*sr
    =>  Vmax = N*L*beta*sr*(VDD - Vth) / (1 + N*L*beta*sr)

Included mainly as the long-channel anchor: on a velocity-saturated
process its square-law overdrive dependence systematically overestimates
the current swing, which is exactly why the alpha-power works (and then
ASDM) displaced it.
"""

from __future__ import annotations

from ..core.fitting import SquareLawSsnParameters


class SenthinathanSsnModel:
    """Quasi-static square-law SSN peak estimate."""

    name = "senthinathan-1991"

    def __init__(
        self,
        params: SquareLawSsnParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        rise_time: float,
    ):
        if n_drivers <= 0 or inductance <= 0 or rise_time <= 0:
            raise ValueError("n_drivers, inductance and rise_time must be positive")
        if vdd <= params.vth:
            raise ValueError("vdd must exceed the extracted threshold")
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.vdd = vdd
        self.rise_time = rise_time

    @property
    def slope(self) -> float:
        return self.vdd / self.rise_time

    def peak_voltage(self) -> float:
        """Closed-form quasi-static peak."""
        nlbs = self.n_drivers * self.inductance * self.params.beta * self.slope
        return nlbs * (self.vdd - self.params.vth) / (1.0 + nlbs)
