"""Song et al. (1999) SSN estimator — constant derivative + linear Vn(t).

Reference [8] of the paper: "Accurate Modeling of Simultaneous Switching
Noise in Low Voltage Digital VLSI", ISCAS 1999.  The paper characterizes
it by *two* assumptions layered on the alpha-power model:

1. the drain-current derivative is constant over the ramp, and
2. the SSN voltage is linear in time, ``Vn(t) = Vmax * (t - t0)/(te - t0)``.

Substituting both into the ground-node equation ``Vn = N*L*dId/dt``
evaluated at the end of the ramp (where the linear profile peaks) gives an
implicit scalar equation for the peak:

    Vmax = N*L * alpha*B*(VDD - Vth - Vmax)^(alpha-1)
               * (sr - Vmax * sr/(VDD - Vth))

The left side grows from 0 while the right side falls to below zero as
Vmax -> VDD - Vth, so a unique root exists; we solve it with Brent's
method.  As with the Vemuru baseline, secondary constants of the original
publication are unverifiable offline; the approximation structure is what
the comparison exercises.
"""

from __future__ import annotations

from scipy import optimize

from ..core.fitting import AlphaPowerSsnParameters


class SongSsnModel:
    """Implicit peak-SSN estimate with the linear-Vn assumption."""

    name = "song-1999"

    def __init__(
        self,
        params: AlphaPowerSsnParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        rise_time: float,
    ):
        if n_drivers <= 0 or inductance <= 0 or rise_time <= 0:
            raise ValueError("n_drivers, inductance and rise_time must be positive")
        if vdd <= params.vth:
            raise ValueError("vdd must exceed the extracted threshold")
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.vdd = vdd
        self.rise_time = rise_time

    @property
    def slope(self) -> float:
        return self.vdd / self.rise_time

    def _residual(self, vmax: float) -> float:
        p = self.params
        overdrive = self.vdd - p.vth
        g = p.transconductance(self.vdd - vmax)  # alpha*B*(VDD - Vth - Vmax)^(alpha-1)
        dvn_dt = vmax * self.slope / overdrive
        return self.n_drivers * self.inductance * float(g) * (self.slope - dvn_dt) - vmax

    def peak_voltage(self) -> float:
        """Root of the implicit peak equation on (0, VDD - Vth)."""
        overdrive = self.vdd - self.params.vth
        lo, hi = 0.0, overdrive * (1.0 - 1e-9)
        if self._residual(lo) <= 0.0:
            return 0.0
        return float(optimize.brentq(self._residual, lo, hi, xtol=1e-12))
