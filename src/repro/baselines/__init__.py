"""Prior-art SSN estimators the paper compares against (its Fig. 3).

Each baseline is reconstructed from the approximation the paper attributes
to it (the original closed-source derivations are unavailable offline; see
the module docstrings for the derivations used here):

* :class:`VemuruSsnModel` — alpha-power, constant dId/dVgs.
* :class:`SongSsnModel` — alpha-power, constant derivative + linear Vn(t).
* :class:`JouSsnModel` — alpha-power, first-order Taylor expansion.
* :class:`SenthinathanSsnModel` — square law, quasi-static peak.
"""

from .jou import JouSsnModel
from .senthinathan import SenthinathanSsnModel
from .song import SongSsnModel
from .vemuru import VemuruSsnModel

__all__ = [
    "JouSsnModel",
    "SenthinathanSsnModel",
    "SongSsnModel",
    "VemuruSsnModel",
]
