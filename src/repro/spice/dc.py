"""DC operating-point analysis.

Capacitors open, inductors short.  A plain Newton solve handles the gentle
circuits in this repository; if it fails, gmin stepping (progressively
relaxing a shunt conductance across the nonlinear devices) provides the
usual continuation fallback.
"""

from __future__ import annotations

import numpy as np

from .circuit import Circuit
from .mna import MnaSystem, StampContext
from .solver import ConvergenceError, newton_solve


class DcSolution:
    """Converged DC operating point with name-based accessors."""

    def __init__(self, circuit: Circuit, x: np.ndarray, ctx: StampContext):
        self._circuit = circuit
        self._x = x
        self._ctx = ctx

    def voltage(self, node_name: str) -> float:
        """Node voltage in volts."""
        return self._ctx.v(self._circuit.node_id(node_name))

    def current(self, element_name: str) -> float:
        """Element current (first node -> second node) in amperes."""
        el = self._circuit.element(element_name)
        if not hasattr(el, "current"):
            raise TypeError(f"element {element_name!r} has no defined branch current")
        return float(el.current(self._ctx))

    @property
    def unknowns(self) -> np.ndarray:
        return np.array(self._x)


def dc_operating_point(circuit: Circuit, t: float = 0.0, gmin: float = 1e-12) -> DcSolution:
    """Solve the DC operating point at source time ``t``.

    Tries a direct Newton solve first, then gmin stepping from 1e-3 S down
    to the target gmin, reusing each stage's solution as the next guess.
    """
    system = MnaSystem(circuit)
    x0 = np.zeros(system.size)
    try:
        x, ctx = newton_solve(system, "dc", t, dt=1.0, method="be", states={}, x0=x0, gmin=gmin)
        return DcSolution(circuit, x, ctx)
    except ConvergenceError:
        pass

    x = x0
    schedule = [10.0 ** (-k) for k in range(3, 13)]
    schedule = [g for g in schedule if g > gmin] + [gmin]
    for stage_gmin in schedule:
        x, ctx = newton_solve(
            system, "dc", t, dt=1.0, method="be", states={}, x0=x, gmin=stage_gmin
        )
    return DcSolution(circuit, x, ctx)
