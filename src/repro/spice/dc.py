"""DC operating-point analysis.

Capacitors open, inductors short.  A plain Newton solve handles the gentle
circuits in this repository; if it fails, gmin stepping (progressively
relaxing a shunt conductance across the nonlinear devices) provides the
usual continuation fallback.  Every solve records its counters — Newton
iterations, gmin stages, wall clock — into a
:class:`~repro.spice.telemetry.SolverTelemetry` exposed on the returned
:class:`DcSolution`; an unrecoverable failure raises ``ConvergenceError``
with the partial record attached as ``.telemetry``.
"""

from __future__ import annotations

import time

import numpy as np

from ..observability import trace
from .circuit import Circuit
from .mna import MnaSystem, StampContext
from .solver import ConvergenceError, newton_solve
from .telemetry import SolverTelemetry, record_session


class DcSolution:
    """Converged DC operating point with name-based accessors."""

    def __init__(self, circuit: Circuit, x: np.ndarray, ctx: StampContext,
                 telemetry: SolverTelemetry | None = None):
        self._circuit = circuit
        self._x = x
        self._ctx = ctx
        self.telemetry = telemetry if telemetry is not None else SolverTelemetry()

    def voltage(self, node_name: str) -> float:
        """Node voltage in volts."""
        return self._ctx.v(self._circuit.node_id(node_name))

    def current(self, element_name: str) -> float:
        """Element current (first node -> second node) in amperes."""
        el = self._circuit.element(element_name)
        if not hasattr(el, "current"):
            raise TypeError(f"element {element_name!r} has no defined branch current")
        return float(el.current(self._ctx))

    @property
    def unknowns(self) -> np.ndarray:
        return np.array(self._x)


def dc_operating_point(circuit: Circuit, t: float = 0.0, gmin: float = 1e-12,
                       telemetry: SolverTelemetry | None = None) -> DcSolution:
    """Solve the DC operating point at source time ``t``.

    Tries a direct Newton solve first, then gmin stepping from 1e-3 S down
    to the target gmin, reusing each stage's solution as the next guess.
    A stage that fails to converge is skipped (the continuation proceeds
    from the last good point); only a failure at the final, target-gmin
    stage is unrecoverable.

    Args:
        circuit: the netlist to solve (not mutated).
        t: evaluation time for the independent sources.
        gmin: target shunt conductance across nonlinear devices.
        telemetry: optional record to accumulate into; a fresh one is
            created (and attached to the solution) when omitted.
    """
    tel = telemetry if telemetry is not None else SolverTelemetry()
    wall_start = time.perf_counter()
    with trace.span("dc", t=t) as dsp:
        system = MnaSystem(circuit)
        x0 = np.zeros(system.size)
        try:
            x, ctx = newton_solve(system, "dc", t, dt=1.0, method="be", states={},
                                  x0=x0, gmin=gmin, telemetry=tel)
            return _finish(circuit, x, ctx, tel, wall_start, dsp)
        except ConvergenceError:
            pass

        x = x0
        ctx = None
        schedule = [10.0 ** (-k) for k in range(3, 13)]
        schedule = [g for g in schedule if g > gmin] + [gmin]
        for stage_gmin in schedule:
            tel.gmin_steps += 1
            try:
                x, ctx = newton_solve(
                    system, "dc", t, dt=1.0, method="be", states={}, x0=x,
                    gmin=stage_gmin, telemetry=tel,
                )
            except ConvergenceError as exc:
                if stage_gmin == gmin:
                    # The final target stage is the answer; nothing to skip to.
                    tel.unrecovered_failures += 1
                    tel.add_phase_seconds("dc", time.perf_counter() - wall_start)
                    record_session(tel)
                    exc.telemetry = tel
                    raise
                # Intermediate stage: continue the ladder from the last good x.
                tel.step_rejections += 1
                tel.step_retries += 1
        dsp.set_attribute("gmin_steps", tel.gmin_steps)
        return _finish(circuit, x, ctx, tel, wall_start, dsp)


def _finish(circuit: Circuit, x: np.ndarray, ctx: StampContext,
            tel: SolverTelemetry, wall_start: float, dsp=None) -> DcSolution:
    # The "dc" span is still open here (the caller's ``with`` closes it), so
    # trace.elapsed's fallback keeps the seed perf-counter measurement; the
    # span clock and this anchor share the same monotonic source.
    tel.add_phase_seconds("dc", trace.elapsed(dsp, wall_start))
    record_session(tel)
    return DcSolution(circuit, x, ctx, telemetry=tel)
