"""Transient analysis engine.

Fixed user-chosen base step with automatic halving on Newton failure and
re-growth afterwards; steps always land exactly on source breakpoints (ramp
corners) and on ``tstop``.  Integration is trapezoidal by default with a
backward-Euler first step after t=0 (no consistent history exists yet),
which is the standard SPICE ``UIC`` start-up.

Every accepted step records all node voltages and all element currents, so
results expose full waveforms by name.  Samples land in preallocated
capacity-doubling buffers (no per-step array allocation), and the Newton
solver runs the cached-assembly fast path unless
``TransientOptions(legacy_reference=True)`` selects the frozen seed engine
(kept for golden-parity tests and the perf benchmark).

Robustness & observability: a Newton failure (non-convergence or a
non-finite iterate) *rejects* the step — committed state is untouched — and
the engine retries at half the step, halving repeatedly down to
``TransientOptions.min_dt`` (default ``dt / 4096``) before giving up.  Every
run carries a :class:`~repro.spice.telemetry.SolverTelemetry` record on
``TransientResult.telemetry`` counting iterations, rejections/retries,
cache activity and per-phase wall clock; an unrecoverable failure raises
``ConvergenceError`` with the partial record attached as ``.telemetry``.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..observability import metrics as obs_metrics
from ..observability import trace
from .circuit import Circuit
from .mna import MnaSystem, resolve_sparse
from .solver import ConvergenceError, newton_solve
from .telemetry import SolverTelemetry, record_backend, record_session
from .waveform import Waveform

#: Refuse to shrink the step below base_dt / _MIN_STEP_DIVISOR.
_MIN_STEP_DIVISOR = 4096.0


@dataclasses.dataclass(frozen=True)
class TransientOptions:
    """Engine knobs.

    Attributes:
        method: "trap" (default) or "be" companion integration.
        gmin: shunt conductance across nonlinear devices.
        max_newton: Newton iteration budget per step.
        abstol: Newton absolute tolerance.
        reltol: Newton relative tolerance.
        adaptive: enable local-truncation-error step control via step
            doubling (one full step vs two half steps).  The ``dt``
            argument of :func:`transient` then acts as the *maximum* step;
            the engine shrinks and regrows within it.
        lte_rtol: relative LTE tolerance per accepted step (adaptive only).
        lte_atol: absolute LTE tolerance in volts/amperes (adaptive only).
        max_growth: largest per-step enlargement factor (adaptive only).
        min_dt: absolute floor for the Newton-failure recovery ladder (and
            the adaptive controller); ``None`` (default) keeps the seed
            behavior of ``dt / 4096``.  A rejection that would need a step
            below this floor is unrecoverable and raises.
        sparse: linear-algebra tier selection.  ``True`` forces CSC
            assembly plus ``scipy.sparse.linalg.splu`` factorization
            (degrading to dense with a warning when scipy is absent),
            ``False`` forces the dense LAPACK path, and ``"auto"`` (the
            default) engages sparse above
            :data:`repro.spice.mna.SPARSE_AUTO_THRESHOLD` unknowns —
            overridable process-wide via
            :func:`repro.spice.mna.set_default_sparse` or ``REPRO_SPARSE``.
        legacy_reference: run the frozen seed engine (full re-assembly at
            every Newton iterate, vectorized finite-difference device
            partials).  Slower; exists so the fast path can be regression-
            tested against unchanged seed numerics.
    """

    method: str = "trap"
    gmin: float = 1e-12
    max_newton: int = 100
    abstol: float = 1e-9
    reltol: float = 1e-6
    adaptive: bool = False
    lte_rtol: float = 1e-3
    lte_atol: float = 1e-6
    max_growth: float = 2.0
    min_dt: float | None = None
    sparse: bool | str = "auto"
    legacy_reference: bool = False

    def __post_init__(self):
        if self.method not in ("trap", "be"):
            raise ValueError(f"unknown integration method {self.method!r}")
        if self.sparse not in (True, False, "auto"):
            raise ValueError(
                f"sparse must be True, False or 'auto', not {self.sparse!r}"
            )
        if self.lte_rtol <= 0 or self.lte_atol <= 0:
            raise ValueError("LTE tolerances must be positive")
        if self.max_growth <= 1.0:
            raise ValueError("max_growth must exceed 1")
        if self.min_dt is not None and self.min_dt <= 0:
            raise ValueError("min_dt must be positive when given")


class TransientResult:
    """Waveforms of one transient run, addressable by node/element name.

    ``telemetry`` carries the run's solver counters (Newton iterations,
    step rejections/retries, cache activity, per-phase wall clock); a run
    that produced a result always has ``telemetry.unrecovered_failures == 0``.
    """

    def __init__(self, circuit: Circuit, times: np.ndarray,
                 node_samples: np.ndarray, current_samples: dict[str, np.ndarray],
                 telemetry: SolverTelemetry | None = None):
        self._circuit = circuit
        self.times = times
        self._nodes = node_samples  # shape (n_steps, n_nodes-1)
        self._currents = current_samples
        self.telemetry = telemetry if telemetry is not None else SolverTelemetry()

    def voltage(self, node_name: str) -> Waveform:
        """Waveform of a node voltage."""
        node = self._circuit.node_id(node_name)
        if node == 0:
            return Waveform(self.times, np.zeros_like(self.times))
        return Waveform(self.times, self._nodes[:, node - 1])

    def current(self, element_name: str) -> Waveform:
        """Waveform of an element current (first node -> second node)."""
        if element_name not in self._currents:
            known = ", ".join(sorted(self._currents))
            raise KeyError(f"no recorded current for {element_name!r}; have: {known}")
        return Waveform(self.times, self._currents[element_name])

    @property
    def node_names(self) -> list[str]:
        return [n for n in self._circuit.node_names if n != "0"]


class _SampleRecorder:
    """Capacity-doubling sample buffers for one transient run.

    Replaces the seed's per-step ``list.append(np.array(...))`` pattern: one
    time vector, one (steps, nodes) voltage block and one (steps, elements)
    current block, grown geometrically and trimmed once at the end.
    """

    def __init__(self, num_nodes: int, current_names: list[str], capacity: int = 256):
        self._n = 0
        self._times = np.empty(capacity)
        self._nodes = np.empty((capacity, num_nodes))
        self._names = current_names
        self._currents = np.empty((capacity, len(current_names)))

    def _grow(self) -> None:
        cap = 2 * len(self._times)
        self._times = np.resize(self._times, cap)
        self._nodes = np.resize(self._nodes, (cap, self._nodes.shape[1]))
        self._currents = np.resize(self._currents, (cap, self._currents.shape[1]))

    def append(self, t: float, node_x: np.ndarray, currents: list[float]) -> None:
        if self._n == len(self._times):
            self._grow()
        i = self._n
        self._times[i] = t
        self._nodes[i, :] = node_x
        self._currents[i, :] = currents
        self._n += 1

    def finish(self) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        n = self._n
        currents = {
            name: np.array(self._currents[:n, j]) for j, name in enumerate(self._names)
        }
        return np.array(self._times[:n]), np.array(self._nodes[:n, :]), currents


def transient(
    circuit: Circuit,
    tstop: float,
    dt: float,
    tstart: float = 0.0,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Run a transient analysis.

    Args:
        circuit: the netlist to simulate (not mutated).
        tstop: end time in seconds.
        dt: base time step in seconds; the engine may locally shrink it to
            land on breakpoints or to recover Newton convergence.
        tstart: start time (sources are evaluated from here).
        options: engine knobs; defaults are fine for the SSN circuits.

    Returns:
        A :class:`TransientResult` with node-voltage and element-current
        waveforms sampled at every accepted step (including t = tstart).
    """
    if tstop <= tstart:
        raise ValueError("tstop must be greater than tstart")
    if dt <= 0:
        raise ValueError("dt must be positive")
    opts = options or TransientOptions()
    fast = not opts.legacy_reference

    system = MnaSystem(circuit)
    states: dict = {}
    tel = SolverTelemetry()
    if fast and resolve_sparse(opts.sparse, system.size):
        system.sparse = True
    record_backend(tel, "sparse_splu" if system.sparse else "dense_lu")
    wall_start = time.perf_counter()

    with trace.span("transient", tstop=tstop, dt=dt, adaptive=opts.adaptive,
                    method=opts.method, sparse=system.sparse) as tsp:
        # t=0 consistency solve: capacitors forced to their ICs, inductors to
        # theirs.
        with trace.span("ic") as ic_sp:
            try:
                x, ctx = newton_solve(
                    system, "ic", tstart, dt=dt, method=opts.method, states=states,
                    x0=np.zeros(system.size), gmin=max(opts.gmin, 1e-9),
                    max_iter=opts.max_newton, abstol=opts.abstol, reltol=opts.reltol,
                    fast=fast, telemetry=tel,
                )
            except ConvergenceError as exc:
                _fail(exc, tel, wall_start)
        # Single timing source: the span's monotonic clock when tracing is
        # on, the seed's perf-counter anchor otherwise (trace.elapsed).
        tel.add_phase_seconds("ic", trace.elapsed(ic_sp, wall_start))
        for el in circuit.elements:
            el.init_state(ctx)

        breakpoints = [b for b in circuit.breakpoints() if tstart < b < tstop]
        breakpoints.append(tstop)

        measured = [el for el in circuit.elements if hasattr(el, "current")]
        recorder = _SampleRecorder(system.num_node_unknowns, [el.name for el in measured])
        # Element currents at t=0 come from the IC context (capacitor companion
        # models are undefined before the first step, so record zeros there).
        recorder.append(tstart, x[: system.num_node_unknowns],
                        [_safe_current(el, ctx) for el in measured])

        t = tstart
        h = dt
        bp_iter = iter(breakpoints)
        next_bp = next(bp_iter)
        min_h = opts.min_dt if opts.min_dt is not None else dt / _MIN_STEP_DIVISOR
        stepping_start = time.perf_counter()

        def solve_step(step_states, x0, t_target, h_target):
            return newton_solve(
                system, "tran", t_target, dt=h_target, method=opts.method,
                states=step_states, x0=x0, gmin=opts.gmin,
                max_iter=opts.max_newton, abstol=opts.abstol, reltol=opts.reltol,
                fast=fast, telemetry=tel,
            )

        def commit_all(ctx):
            for el in circuit.elements:
                el.commit(ctx)

        def snapshot():
            return {el: dict(state) for el, state in states.items()}

        with trace.span("stepping") as step_sp:
            while t < tstop - 1e-21:
                h_step = min(h, next_bp - t)

                if not opts.adaptive:
                    while True:
                        try:
                            x_new, step_ctx = solve_step(states, x, t + h_step, h_step)
                            break
                        except ConvergenceError as exc:
                            # Rejected step: committed state is untouched, so the
                            # retry at half the step restarts from clean history.
                            tel.step_rejections += 1
                            h_step /= 2.0
                            if h_step < min_h:
                                _fail(exc, tel, wall_start, stepping_start)
                            tel.step_retries += 1
                    # Record, then commit state (commit consumes the pre-step
                    # state).
                    step_currents = [_safe_current(el, step_ctx) for el in measured]
                    commit_all(step_ctx)
                    grown = min(dt, h_step * 2.0)
                else:
                    # Step doubling: one h step vs two h/2 steps; their gap
                    # estimates the local truncation error of the coarse step.
                    while True:
                        try:
                            big_states = snapshot()
                            x_big, _ = solve_step(big_states, x, t + h_step, h_step)

                            half_states = snapshot()
                            x_mid, ctx_mid = solve_step(
                                half_states, x, t + h_step / 2, h_step / 2
                            )
                            commit_all(ctx_mid)
                            x_new, step_ctx = solve_step(
                                half_states, x_mid, t + h_step, h_step / 2
                            )
                        except ConvergenceError as exc:
                            tel.step_rejections += 1
                            h_step /= 2.0
                            if h_step < min_h:
                                _fail(exc, tel, wall_start, stepping_start)
                            tel.step_retries += 1
                            continue
                        nn = system.num_node_unknowns
                        scale = opts.lte_atol + opts.lte_rtol * np.abs(x_new[:nn])
                        err = (float(np.max(np.abs(x_big[:nn] - x_new[:nn]) / scale))
                               if nn else 0.0)
                        if err <= 1.0:
                            break
                        tel.lte_rejections += 1
                        h_step = max(h_step * max(0.9 * err ** (-1.0 / 3.0), 0.25), min_h)
                        if h_step <= min_h:
                            break  # accept at the floor rather than stall
                    step_currents = [_safe_current(el, step_ctx) for el in measured]
                    commit_all(step_ctx)
                    states.clear()
                    states.update(half_states)
                    factor = 0.9 * err ** (-1.0 / 3.0) if err > 0 else opts.max_growth
                    grown = min(dt, h_step * min(max(factor, 0.25), opts.max_growth))

                t += h_step
                x = x_new
                tel.accepted_steps += 1
                obs_metrics.observe("repro_step_seconds", h_step)
                recorder.append(t, x[: system.num_node_unknowns], step_currents)

                if abs(t - next_bp) < 1e-21 or t >= next_bp:
                    # Source slope discontinuity: restart the integrator with a
                    # backward-Euler step, or the trapezoidal companion rings
                    # (i_new = -i_prev) on any element sitting across the corner.
                    for state in states.values():
                        if "first_step" in state:
                            state["first_step"] = True
                    try:
                        next_bp = next(bp_iter)
                    except StopIteration:
                        next_bp = tstop
                h = grown
            step_sp.set_attribute("accepted_steps", tel.accepted_steps)

        times, node_samples, currents = recorder.finish()
        tel.add_phase_seconds("stepping", trace.elapsed(step_sp, stepping_start))
    tel.add_phase_seconds("total", trace.elapsed(tsp, wall_start))
    record_session(tel)
    return TransientResult(circuit, times, node_samples, currents, telemetry=tel)


def _fail(exc: ConvergenceError, tel: SolverTelemetry, wall_start: float,
          stepping_start: float | None = None) -> None:
    """Mark a run unrecoverable and re-raise with its telemetry attached."""
    now = time.perf_counter()
    tel.unrecovered_failures += 1
    if stepping_start is not None:
        tel.add_phase_seconds("stepping", now - stepping_start)
    tel.add_phase_seconds("total", now - wall_start)
    record_session(tel)
    exc.telemetry = tel
    raise exc


def _safe_current(element, ctx) -> float:
    """Element current, tolerating elements whose current is undefined here.

    Expected gaps only: a companion model asked for state it does not have
    yet (``KeyError``, e.g. a capacitor at the t=0 IC sample) or an element
    family without the queried accessor/state machinery (``AttributeError``).
    Anything else — sign errors, bad indexing, model bugs — propagates, so
    real stamping defects surface instead of silently recording 0.0 A.
    """
    try:
        return float(element.current(ctx))
    except (KeyError, AttributeError):
        return 0.0
