"""Circuit netlist container.

A :class:`Circuit` interns node names (ground is ``"0"`` or ``"gnd"``),
owns the element list, and offers convenience constructors mirroring SPICE
cards (``resistor``, ``capacitor``, ``inductor``, ``vsource``, ``isource``,
``mosfet``).  Analyses (:mod:`repro.spice.dc`, :mod:`repro.spice.transient`)
consume it read-only; simulation state lives in the engines, so one circuit
can be analyzed many times.
"""

from __future__ import annotations

from .elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .mosfet import MosfetElement
from .sources import Dc, SourceShape

#: Node names treated as the reference (ground) node.
GROUND_NAMES = ("0", "gnd", "GND")


class Circuit:
    """A flat netlist of elements over named nodes."""

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: list[Element] = []
        self._names: set[str] = set()
        self._node_ids: dict[str, int] = {g: 0 for g in GROUND_NAMES}
        self._node_names: list[str] = ["0"]

    # -- nodes -------------------------------------------------------------------

    def node(self, name: str) -> int:
        """Intern a node name, returning its integer id (ground is 0)."""
        if name not in self._node_ids:
            self._node_ids[name] = len(self._node_names)
            self._node_names.append(name)
        return self._node_ids[name]

    def node_name(self, node_id: int) -> str:
        return self._node_names[node_id]

    def node_id(self, name: str) -> int:
        """Id of an existing node; raises KeyError for unknown names."""
        if name not in self._node_ids:
            known = ", ".join(self._node_names)
            raise KeyError(f"unknown node {name!r}; known nodes: {known}")
        return self._node_ids[name]

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes, including ground."""
        return len(self._node_names)

    @property
    def node_names(self) -> list[str]:
        return list(self._node_names)

    # -- elements ----------------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add a pre-built element (nodes must already be interned ids)."""
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)
        return element

    @property
    def elements(self) -> list[Element]:
        return list(self._elements)

    def element(self, name: str) -> Element:
        for el in self._elements:
            if el.name == name:
                return el
        raise KeyError(f"no element named {name!r}")

    def remove(self, name: str) -> Element:
        """Remove an element by name (e.g. a temporary measurement probe).

        Nodes stay interned; only the element list changes.
        """
        el = self.element(name)
        self._elements.remove(el)
        self._names.discard(name)
        return el

    # -- SPICE-card-style constructors --------------------------------------------

    def resistor(self, name: str, a: str, b: str, ohms: float) -> Resistor:
        return self.add(Resistor(name, self.node(a), self.node(b), ohms))

    def capacitor(self, name: str, a: str, b: str, farads: float, ic: float | None = None) -> Capacitor:
        return self.add(Capacitor(name, self.node(a), self.node(b), farads, ic))

    def inductor(self, name: str, a: str, b: str, henries: float, ic: float = 0.0) -> Inductor:
        return self.add(Inductor(name, self.node(a), self.node(b), henries, ic))

    def vsource(self, name: str, plus: str, minus: str, shape) -> VoltageSource:
        if not isinstance(shape, SourceShape):
            shape = Dc(float(shape))
        return self.add(VoltageSource(name, self.node(plus), self.node(minus), shape))

    def isource(self, name: str, frm: str, to: str, shape) -> CurrentSource:
        if not isinstance(shape, SourceShape):
            shape = Dc(float(shape))
        return self.add(CurrentSource(name, self.node(frm), self.node(to), shape))

    def mutual(self, name: str, inductor_a: str, inductor_b: str, coupling: float) -> MutualInductance:
        """Magnetically couple two previously added inductors by name."""
        la = self.element(inductor_a)
        lb = self.element(inductor_b)
        if not isinstance(la, Inductor) or not isinstance(lb, Inductor):
            raise TypeError(
                f"mutual coupling {name!r} requires two inductors, got "
                f"{type(la).__name__} and {type(lb).__name__}"
            )
        return self.add(MutualInductance(name, la, lb, coupling))

    def mosfet(self, name: str, drain: str, gate: str, source: str, bulk: str, model) -> MosfetElement:
        return self.add(
            MosfetElement(
                name, self.node(drain), self.node(gate), self.node(source), self.node(bulk), model
            )
        )

    # -- introspection -------------------------------------------------------------

    def breakpoints(self) -> list[float]:
        """Sorted union of all source breakpoint times."""
        times: set[float] = set()
        for el in self._elements:
            shape = getattr(el, "shape", None)
            if shape is not None:
                times.update(shape.breakpoints())
        return sorted(times)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.title!r}, nodes={self.num_nodes}, "
            f"elements={len(self._elements)})"
        )
