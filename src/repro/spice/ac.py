"""AC small-signal analysis.

Linearizes the circuit at a bias point (MOSFETs contribute their gm/gds/
gmbs at that bias) and solves the complex MNA system over a frequency
grid.  The SSN-relevant use is the *ground-path impedance*: inject a unit
AC current into the internal ground node and read the voltage — the
classic power-delivery-network view.  The LC network of the paper's
Section 4 shows up as a resonance at ``f0 = 1/(2*pi*sqrt(LC))`` whose
peaking tracks the damping regions of Eqn (27).

Element support mirrors the transient engine: R, L, C, V/I sources
(shorted/opened respectively unless designated as the stimulus), mutual
inductance, and MOSFETs (linearized).  AC stamping lives here, dispatched
on element type, so the element classes stay transient-focused.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .circuit import Circuit
from .dc import dc_operating_point
from .elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .mna import MnaSystem
from .mosfet import MosfetElement


@dataclasses.dataclass(frozen=True)
class AcResult:
    """Complex node responses over the analyzed frequency grid.

    Attributes:
        frequencies: analysis frequencies in hertz.
        responses: node name -> complex response array (phasor per
            frequency) for every non-ground node.
    """

    frequencies: np.ndarray
    responses: dict[str, np.ndarray]

    def voltage(self, node_name: str) -> np.ndarray:
        """Complex phasor of one node across the grid."""
        if node_name not in self.responses:
            known = ", ".join(sorted(self.responses))
            raise KeyError(f"unknown node {node_name!r}; known nodes: {known}")
        return self.responses[node_name]

    def magnitude(self, node_name: str) -> np.ndarray:
        return np.abs(self.voltage(node_name))

    def phase(self, node_name: str) -> np.ndarray:
        """Phase in radians."""
        return np.angle(self.voltage(node_name))


class _AcStamper:
    """Builds the complex MNA system at one angular frequency."""

    def __init__(self, circuit: Circuit, bias):
        self.circuit = circuit
        self.system = MnaSystem(circuit)
        self.bias = bias  # DcSolution or None (cold linearization)

    def _bias_voltage(self, node: int) -> float:
        if self.bias is None or node == 0:
            return 0.0
        return self.bias.voltage(self.circuit.node_name(node))

    def assemble(self, omega: float, stimulus: str, stimulus_value: complex):
        n = self.system.size
        nn = self.system.num_node_unknowns
        a = np.zeros((n, n), dtype=complex)
        z = np.zeros(n, dtype=complex)

        def node_idx(node):
            return node - 1 if node else None

        def add(i, j, val):
            if i is not None and j is not None:
                a[i, j] += val

        def stamp_admittance(na, nb, y):
            ia, ib = node_idx(na), node_idx(nb)
            add(ia, ia, y)
            add(ib, ib, y)
            add(ia, ib, -y)
            add(ib, ia, -y)

        for el in self.circuit.elements:
            if isinstance(el, Resistor):
                stamp_admittance(el.nodes[0], el.nodes[1], 1.0 / el.ohms)
            elif isinstance(el, Capacitor):
                stamp_admittance(el.nodes[0], el.nodes[1], 1j * omega * el.farads)
            elif isinstance(el, Inductor):
                row = nn + el.branch_start
                ia, ib = node_idx(el.nodes[0]), node_idx(el.nodes[1])
                add(ia, row, 1.0)
                add(ib, row, -1.0)
                add(row, ia, 1.0)
                add(row, ib, -1.0)
                a[row, row] += -1j * omega * el.henries
            elif isinstance(el, MutualInductance):
                row_a = nn + el.la.branch_start
                row_b = nn + el.lb.branch_start
                m = el.mutual
                a[row_a, row_b] += -1j * omega * m
                a[row_b, row_a] += -1j * omega * m
            elif isinstance(el, VoltageSource):
                row = nn + el.branch_start
                ia, ib = node_idx(el.nodes[0]), node_idx(el.nodes[1])
                add(ia, row, 1.0)
                add(ib, row, -1.0)
                add(row, ia, 1.0)
                add(row, ib, -1.0)
                if el.name == stimulus:
                    z[row] += stimulus_value
            elif isinstance(el, CurrentSource):
                if el.name == stimulus:
                    ia, ib = node_idx(el.nodes[0]), node_idx(el.nodes[1])
                    if ia is not None:
                        z[ia] -= stimulus_value
                    if ib is not None:
                        z[ib] += stimulus_value
            elif isinstance(el, MosfetElement):
                d, g, s, b = el.nodes
                vs = self._bias_voltage(s)
                op = el.model.partials(
                    self._bias_voltage(g) - vs,
                    self._bias_voltage(d) - vs,
                    self._bias_voltage(b) - vs,
                )
                gsum = op.gm + op.gds + op.gmbs
                di, gi, si, bi = (node_idx(x) for x in (d, g, s, b))
                add(di, gi, op.gm)
                add(di, di, op.gds)
                add(di, bi, op.gmbs)
                add(di, si, -gsum)
                add(si, gi, -op.gm)
                add(si, di, -op.gds)
                add(si, bi, -op.gmbs)
                add(si, si, gsum)
            else:
                raise TypeError(f"element {el.name!r} has no AC stamp")
        return a, z


def ac_analysis(
    circuit: Circuit,
    frequencies,
    stimulus: str,
    stimulus_value: complex = 1.0,
    bias_time: float | None = 0.0,
) -> AcResult:
    """Small-signal frequency sweep.

    Args:
        circuit: the netlist.  Non-stimulus V-sources are AC-shorted and
            I-sources AC-opened, per standard practice.
        frequencies: analysis frequencies in hertz (array-like, > 0).
        stimulus: name of the V- or I-source carrying the AC excitation.
        stimulus_value: complex amplitude of the excitation (1.0 default).
        bias_time: evaluate the DC operating point at this source time to
            linearize nonlinear devices; None linearizes at 0 V everywhere
            (useful for purely passive networks).

    Returns:
        Complex node responses per frequency.
    """
    freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")
    circuit.element(stimulus)  # raises KeyError for unknown stimulus

    bias = dc_operating_point(circuit, t=bias_time) if bias_time is not None else None
    stamper = _AcStamper(circuit, bias)

    names = [name for name in circuit.node_names if name != "0"]
    out = {name: np.empty(len(freqs), dtype=complex) for name in names}
    for i, f in enumerate(freqs):
        a, z = stamper.assemble(2.0 * np.pi * f, stimulus, stimulus_value)
        x = np.linalg.solve(a, z)
        for name in names:
            out[name][i] = x[circuit.node_id(name) - 1]
    return AcResult(frequencies=freqs, responses=out)


def driving_point_impedance(
    circuit: Circuit,
    frequencies,
    node: str,
    probe_name: str = "_Zprobe",
    bias_time: float | None = 0.0,
) -> np.ndarray:
    """Complex driving-point impedance seen into ``node`` vs frequency.

    Temporarily injects a 1 A AC current source from ground into the node;
    the node phasor then *is* the impedance.  The probe is appended to the
    circuit's element list for the call and removed afterwards.
    """
    circuit.isource(probe_name, "0", node, 0.0)
    try:
        result = ac_analysis(circuit, frequencies, probe_name, 1.0, bias_time)
        return result.voltage(node)
    finally:
        circuit.remove(probe_name)
