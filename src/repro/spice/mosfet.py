"""Nonlinear MOSFET element wrapping any :class:`~repro.devices.base.MosfetModel`.

The element contributes the drain-source channel current linearized at the
present Newton iterate:

    Id  ~=  Id0 + gm*(vgs - vgs0) + gds*(vds - vds0) + gmbs*(vbs - vbs0)

which stamps the three conductances plus an equivalent current source.  A
small ``gmin`` between drain and source keeps the Jacobian nonsingular when
the device is cut off.  Per-iteration gate/drain voltage limiting (a light
version of SPICE's ``pnjlim``/``fetlim``) is handled globally by the Newton
damping in :mod:`repro.spice.solver`.

Device parasitic capacitances are intentionally not modeled: the SSN
networks of the paper are dominated by multi-picofarad pad loads and the
nanohenry ground inductance, three orders of magnitude above the
femtofarad-scale channel capacitances of the drivers (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..devices.base import OperatingPoint, reference_partials
from ..devices.bsim_like import BsimLikeMosfet, stack_models
from ..devices.kernels import compiled_partials
from .elements import Element


class MosfetElement(Element):
    """Four-terminal NMOS: (drain, gate, source, bulk)."""

    nonlinear = True

    def __init__(self, name: str, drain: int, gate: int, source: int, bulk: int, model):
        super().__init__(name, (drain, gate, source, bulk))
        self.model = model

    def _bias(self, ctx) -> tuple[float, float, float]:
        d, g, s, b = self.nodes
        vs = ctx.v(s)
        return ctx.v(g) - vs, ctx.v(d) - vs, ctx.v(b) - vs

    def stamp(self, ctx) -> None:
        d, g, s, b = self.nodes
        vgs, vds, vbs = self._bias(ctx)
        if ctx.fast:
            op = self.model.partials(vgs, vds, vbs)
        else:
            # Legacy reference engine: finite differences through the
            # vectorized ids(), exactly as the seed simulator stamped.
            op = reference_partials(self.model, vgs, vds, vbs)
        ieq = op.ids - op.gm * vgs - op.gds * vds - op.gmbs * vbs

        gsum = op.gm + op.gds + op.gmbs
        # KCL at drain: +Id; at source: -Id.
        ctx.add_node_entry(d, g, op.gm)
        ctx.add_node_entry(d, d, op.gds)
        ctx.add_node_entry(d, b, op.gmbs)
        ctx.add_node_entry(d, s, -gsum)
        ctx.add_node_entry(s, g, -op.gm)
        ctx.add_node_entry(s, d, -op.gds)
        ctx.add_node_entry(s, b, -op.gmbs)
        ctx.add_node_entry(s, s, gsum)
        ctx.add_rhs_current(d, s, ieq)

        ctx.add_conductance(d, s, ctx.gmin)

    def current(self, ctx) -> float:
        """Channel current drain -> source at the present iterate."""
        vgs, vds, vbs = self._bias(ctx)
        if ctx.fast:
            return self.model.ids_scalar(vgs, vds, vbs)
        return float(self.model.ids(vgs, vds, vbs))


class MosfetBank:
    """Array-in/array-out view of one MOSFET position across B instances.

    The batched ensemble engine (:mod:`repro.spice.batch`) simulates B
    same-topology circuits in lockstep; at each Newton iterate it needs the
    operating points of "the same" device in every instance — devices that
    share terminals and model family but may differ in parameter values
    (width in a driver-count sweep, threshold/mobility in a Monte Carlo
    fleet).  A bank evaluates all B at once:

    * all instances share one model object: evaluate it directly on
      ``(B,)`` bias arrays (every model's :meth:`ids` is vectorized);
    * all instances use the golden BSIM-like model: stack the parameter
      fields into ``(B,)`` arrays (:func:`repro.devices.bsim_like.stack_models`)
      and evaluate the stacked model once;
    * anything else: a per-instance Python loop — correct for arbitrary
      model mixes, just not vectorized.

    Partials use the same central-difference step as the scalar fast path
    (:meth:`~repro.devices.base.MosfetModel.partials`), so batched Newton
    iterates track the scalar engine's to floating-point noise.
    """

    def __init__(self, elements: list[MosfetElement]):
        if not elements:
            raise ValueError("a MosfetBank needs at least one element")
        self.nodes = elements[0].nodes
        self.name = elements[0].name
        models = [el.model for el in elements]
        self._models: list | None = None
        if all(m is models[0] for m in models):
            self._model = models[0]
        elif all(isinstance(m, BsimLikeMosfet) for m in models):
            self._model = stack_models(models)
        else:
            self._model = None
            self._models = models
        # Compiled seven-point stencil (numba soft dependency); ``None``
        # keeps the pure-numpy partials_array path — always the case when
        # numba is absent, REPRO_NO_NUMBA is set, or the parameters are
        # stacked per instance (see repro.devices.kernels).
        self._kernel = (
            compiled_partials(self._model) if self._model is not None else None
        )

    @property
    def kernel_engaged(self) -> bool:
        """Whether operating points run through the compiled numba stencil."""
        return self._kernel is not None

    def partials(self, vgs, vds, vbs) -> OperatingPoint:
        """Per-instance operating points; fields are ``(B,)`` arrays."""
        if self._kernel is not None:
            return self._kernel(vgs, vds, vbs)
        if self._model is not None:
            return self._model.partials_array(vgs, vds, vbs)
        ops = [m.partials(float(g), float(d), float(b))
               for m, g, d, b in zip(self._models, vgs, vds, vbs)]
        return OperatingPoint(
            ids=np.array([op.ids for op in ops]),
            gm=np.array([op.gm for op in ops]),
            gds=np.array([op.gds for op in ops]),
            gmbs=np.array([op.gmbs for op in ops]),
        )

    def ids(self, vgs, vds, vbs) -> np.ndarray:
        """Per-instance channel currents drain -> source, shape ``(B,)``."""
        if self._model is not None:
            return np.asarray(self._model.ids(vgs, vds, vbs), dtype=float)
        return np.array([
            m.ids_scalar(float(g), float(d), float(b))
            for m, g, d, b in zip(self._models, vgs, vds, vbs)
        ])
