"""Nonlinear MOSFET element wrapping any :class:`~repro.devices.base.MosfetModel`.

The element contributes the drain-source channel current linearized at the
present Newton iterate:

    Id  ~=  Id0 + gm*(vgs - vgs0) + gds*(vds - vds0) + gmbs*(vbs - vbs0)

which stamps the three conductances plus an equivalent current source.  A
small ``gmin`` between drain and source keeps the Jacobian nonsingular when
the device is cut off.  Per-iteration gate/drain voltage limiting (a light
version of SPICE's ``pnjlim``/``fetlim``) is handled globally by the Newton
damping in :mod:`repro.spice.solver`.

Device parasitic capacitances are intentionally not modeled: the SSN
networks of the paper are dominated by multi-picofarad pad loads and the
nanohenry ground inductance, three orders of magnitude above the
femtofarad-scale channel capacitances of the drivers (see DESIGN.md).
"""

from __future__ import annotations

from ..devices.base import reference_partials
from .elements import Element


class MosfetElement(Element):
    """Four-terminal NMOS: (drain, gate, source, bulk)."""

    nonlinear = True

    def __init__(self, name: str, drain: int, gate: int, source: int, bulk: int, model):
        super().__init__(name, (drain, gate, source, bulk))
        self.model = model

    def _bias(self, ctx) -> tuple[float, float, float]:
        d, g, s, b = self.nodes
        vs = ctx.v(s)
        return ctx.v(g) - vs, ctx.v(d) - vs, ctx.v(b) - vs

    def stamp(self, ctx) -> None:
        d, g, s, b = self.nodes
        vgs, vds, vbs = self._bias(ctx)
        if ctx.fast:
            op = self.model.partials(vgs, vds, vbs)
        else:
            # Legacy reference engine: finite differences through the
            # vectorized ids(), exactly as the seed simulator stamped.
            op = reference_partials(self.model, vgs, vds, vbs)
        ieq = op.ids - op.gm * vgs - op.gds * vds - op.gmbs * vbs

        gsum = op.gm + op.gds + op.gmbs
        # KCL at drain: +Id; at source: -Id.
        ctx.add_node_entry(d, g, op.gm)
        ctx.add_node_entry(d, d, op.gds)
        ctx.add_node_entry(d, b, op.gmbs)
        ctx.add_node_entry(d, s, -gsum)
        ctx.add_node_entry(s, g, -op.gm)
        ctx.add_node_entry(s, d, -op.gds)
        ctx.add_node_entry(s, b, -op.gmbs)
        ctx.add_node_entry(s, s, gsum)
        ctx.add_rhs_current(d, s, ieq)

        ctx.add_conductance(d, s, ctx.gmin)

    def current(self, ctx) -> float:
        """Channel current drain -> source at the present iterate."""
        vgs, vds, vbs = self._bias(ctx)
        if ctx.fast:
            return self.model.ids_scalar(vgs, vds, vbs)
        return float(self.model.ids(vgs, vds, vbs))
