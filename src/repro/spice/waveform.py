"""Time-series container returned by the transient engine.

A :class:`Waveform` is an immutable (time, value) pair with the operations
the SSN experiments need: interpolation, global and windowed peaks, local
maxima (for counting under-damped ringing peaks), and comparison metrics.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Waveform:
    """A sampled signal ``y(t)`` on a strictly increasing time grid."""

    t: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        t = np.asarray(self.t, dtype=float)
        y = np.asarray(self.y, dtype=float)
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "y", y)
        if t.ndim != 1 or y.ndim != 1 or len(t) != len(y):
            raise ValueError("t and y must be 1-D arrays of equal length")
        if len(t) < 2:
            raise ValueError("a waveform needs at least two samples")
        if np.any(np.diff(t) <= 0):
            raise ValueError("time grid must be strictly increasing")

    # -- basic queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.t)

    @property
    def tstart(self) -> float:
        return float(self.t[0])

    @property
    def tstop(self) -> float:
        return float(self.t[-1])

    def value_at(self, time):
        """Linear interpolation; clamps outside the sampled span."""
        return np.interp(time, self.t, self.y)

    def window(self, t0: float, t1: float) -> "Waveform":
        """The sub-waveform on [t0, t1], with interpolated end samples."""
        if t1 <= t0:
            raise ValueError("window requires t1 > t0")
        inside = (self.t > t0) & (self.t < t1)
        t = np.concatenate(([t0], self.t[inside], [t1]))
        y = np.concatenate(([self.value_at(t0)], self.y[inside], [self.value_at(t1)]))
        return Waveform(t, y)

    # -- extrema ---------------------------------------------------------------

    def peak(self) -> tuple[float, float]:
        """(time, value) of the global maximum sample."""
        i = int(np.argmax(self.y))
        return float(self.t[i]), float(self.y[i])

    def trough(self) -> tuple[float, float]:
        """(time, value) of the global minimum sample."""
        i = int(np.argmin(self.y))
        return float(self.t[i]), float(self.y[i])

    def local_maxima(self) -> list[tuple[float, float]]:
        """Interior local maxima as (time, value) pairs, in time order."""
        y = self.y
        rising = y[1:-1] > y[:-2]
        falling = y[1:-1] >= y[2:]
        idx = np.flatnonzero(rising & falling) + 1
        return [(float(self.t[i]), float(y[i])) for i in idx]

    # -- calculus / metrics ------------------------------------------------------

    def derivative(self) -> "Waveform":
        """Numerical dy/dt on the same grid (second-order interior stencil)."""
        return Waveform(self.t, np.gradient(self.y, self.t))

    def integral(self) -> float:
        """Trapezoidal integral of y over the full time span."""
        return float(np.trapezoid(self.y, self.t))

    def resample(self, times) -> "Waveform":
        """The waveform linearly interpolated onto a new grid."""
        times = np.asarray(times, dtype=float)
        return Waveform(times, self.value_at(times))

    def to_csv(self, path, header: str = "t,y") -> None:
        """Write the samples as two-column CSV (for external plotting)."""
        data = np.column_stack([self.t, self.y])
        np.savetxt(path, data, delimiter=",", header=header, comments="")

    @classmethod
    def from_csv(cls, path) -> "Waveform":
        """Read a waveform written by :meth:`to_csv`."""
        data = np.loadtxt(path, delimiter=",", skiprows=1)
        return cls(data[:, 0], data[:, 1])

    def rms_difference(self, other: "Waveform") -> float:
        """RMS of (self - other), compared on self's time grid."""
        diff = self.y - other.value_at(self.t)
        return float(np.sqrt(np.mean(np.square(diff))))

    def max_abs_difference(self, other: "Waveform") -> float:
        """Max |self - other| on self's time grid."""
        return float(np.max(np.abs(self.y - other.value_at(self.t))))
