"""Minimal SPICE-class circuit simulator (the HSPICE substitute).

Dense MNA, damped Newton-Raphson, trapezoidal/backward-Euler transient with
breakpoint handling — everything the paper's validation circuits need, and
nothing proprietary.  Public surface:

* :class:`Circuit` — netlist builder.
* :func:`dc_operating_point` — DC analysis.
* :func:`transient` — transient analysis returning :class:`Waveform` s.
* source shapes: :class:`Dc`, :class:`Ramp`, :class:`Pulse`, :class:`Pwl`.
"""

from .ac import AcResult, ac_analysis, driving_point_impedance
from .circuit import Circuit
from .dc import DcSolution, dc_operating_point
from .elements import MutualInductance
from .netlist import from_spice, to_spice
from .solver import ConvergenceError
from .sources import Dc, Pulse, Pwl, Ramp, SourceShape
from .transient import TransientOptions, TransientResult, transient
from .waveform import Waveform

__all__ = [
    "AcResult",
    "Circuit",
    "ConvergenceError",
    "Dc",
    "DcSolution",
    "MutualInductance",
    "Pulse",
    "Pwl",
    "Ramp",
    "SourceShape",
    "TransientOptions",
    "TransientResult",
    "Waveform",
    "ac_analysis",
    "dc_operating_point",
    "driving_point_impedance",
    "from_spice",
    "to_spice",
    "transient",
]
