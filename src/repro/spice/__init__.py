"""Minimal SPICE-class circuit simulator (the HSPICE substitute).

Dense MNA, damped Newton-Raphson, trapezoidal/backward-Euler transient with
breakpoint handling — everything the paper's validation circuits need, and
nothing proprietary.  Public surface:

* :class:`Circuit` — netlist builder.
* :func:`dc_operating_point` — DC analysis.
* :func:`transient` — transient analysis returning :class:`Waveform` s.
* source shapes: :class:`Dc`, :class:`Ramp`, :class:`Pulse`, :class:`Pwl`.
"""

from .ac import AcResult, ac_analysis, driving_point_impedance
from .batch import BatchIncompatibleError, batch_transient, lockstep_signature
from .circuit import Circuit
from .dc import DcSolution, dc_operating_point
from .elements import MutualInductance
from .netlist import from_spice, to_spice
from .solver import ConvergenceError
from .sources import Dc, Pulse, Pwl, Ramp, SourceShape
from .telemetry import (
    SolverTelemetry,
    disable_session_telemetry,
    enable_session_telemetry,
    session_telemetry,
)
from .transient import TransientOptions, TransientResult, transient
from .waveform import Waveform

__all__ = [
    "AcResult",
    "BatchIncompatibleError",
    "Circuit",
    "ConvergenceError",
    "Dc",
    "DcSolution",
    "MutualInductance",
    "Pulse",
    "Pwl",
    "Ramp",
    "SolverTelemetry",
    "SourceShape",
    "TransientOptions",
    "TransientResult",
    "Waveform",
    "ac_analysis",
    "batch_transient",
    "dc_operating_point",
    "disable_session_telemetry",
    "driving_point_impedance",
    "enable_session_telemetry",
    "from_spice",
    "lockstep_signature",
    "session_telemetry",
    "to_spice",
    "transient",
]
