"""Solver observability: counters and timings for one (or many) runs.

Every Newton solve, transient run and DC analysis threads a
:class:`SolverTelemetry` record through the engine.  The record answers the
questions the fast-path caches (PR 1) made otherwise unanswerable — how
many LU factorizations were reused vs. recomputed, how many Newton
iterations each phase burned, and whether any time step had to be rejected
and retried — so an experiment can assert "0 unrecovered failures, N
recovered retries" instead of merely not crashing.

Records are plain dataclasses of ints/floats (plus one ``phase_seconds``
dict), so they pickle across :class:`~concurrent.futures.ProcessPoolExecutor`
workers and merge associatively: per-run records ride on
``TransientResult.telemetry`` / ``DcSolution.telemetry`` /
``SsnSimulation.telemetry``, and the analysis layer aggregates them with
:meth:`SolverTelemetry.aggregate` (sweeps, Monte Carlo, ``simulate_many``).

For end-to-end CLI observability there is additionally a *session*
aggregator: :func:`enable_session_telemetry` turns on a process-local
accumulator that every completed engine run merges into, and the CLI's
``--telemetry`` / ``--telemetry-json`` flags print or dump it.  Session
telemetry is process-local; pool-parallel runs are folded back in by
``simulate_many`` from the records returned by the workers.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Iterable, Optional

#: Keys :meth:`SolverTelemetry.as_dict` derives from counters rather than
#: storing; never round-tripped into ``extras``.
_DERIVED_KEYS = frozenset({"ok", "recovered_rejections"})

#: ``extras`` keys this version itself produces (the engaged linear-algebra
#: backends); round-tripped through :meth:`from_dict` without the
#: newer-producer warning.
BACKEND_PREFIX = "backend_"

#: Surrogate-tier routing decisions (``surrogate_hits`` /
#: ``surrogate_misses`` / ``surrogate_refusals``), likewise written by this
#: version and round-tripped silently.
SURROGATE_PREFIX = "surrogate_"

#: Unknown-counter names already warned about in this process (warn once).
_warned_extras: set[str] = set()


@dataclasses.dataclass
class SolverTelemetry:
    """Counters and wall-clock phases of one engine run (mutable, mergeable).

    Attributes:
        newton_solves: calls into :func:`repro.spice.solver.newton_solve`.
        newton_iterations: total Newton iterations across all solves
            (damped sub-steps count; linear direct solves count zero).
        accepted_steps: transient time steps committed to the result.
        step_rejections: solve attempts rejected by non-convergence or a
            non-finite iterate (includes any final, unrecovered one).
        step_retries: rejected steps re-attempted at a halved ``dt``
            (the *recovered* rejections, when the retry ultimately lands).
        lte_rejections: adaptive-mode steps redone because the local
            truncation error estimate exceeded tolerance (not failures).
        unrecovered_failures: rejections that exhausted the retry ladder
            (the run raised ``ConvergenceError``); 0 on any run that
            returned a result.
        gmin_steps: gmin-stepping continuation stages run by the DC solver.
        lu_cache_hits / lu_cache_misses: linear-circuit LU factorization
            reuses vs. (re)factorizations.
        lu_cache_invalidations: cached factors dropped because the
            assembled matrix no longer matched the cached one (staleness
            guard) despite an identical cache key.
        sparse_factorizations: sparse ``splu`` factorizations computed by
            the sparse MNA tier (:mod:`repro.spice.mna`); each one replaces
            a dense ``O(n^3)`` LAPACK factorization.
        sparse_pattern_reuses: sparse assemblies that reused a cached
            symbolic pattern (cursor fill + ``bincount`` accumulation)
            instead of re-recording the stamp coordinates.
        mask_steps: masked lockstep rounds an instance participated in
            inside the batched *adaptive* engine (each adaptive step is a
            big/half/half phase triple over per-instance step masks);
            0 on the scalar path and on fixed-step lockstep runs.
        base_assemblies: linear-base stamp passes (once per fast solve).
        nonlinear_restamps: nonlinear-device restamp passes (once per
            fast Newton iterate).
        full_assemblies: full re-assemblies (reference engine only).
        batch_fallbacks: instances that left the batched ensemble engine
            for the scalar path (Newton failure needing the step-halving /
            gmin recovery ladder); the scalar re-run's counters replace the
            instance's partial batched ones.
        retries: failed campaign attempts re-executed at the same engine
            rung after a backoff (see ``repro.analysis.campaign``); distinct
            from ``step_retries``, which counts time-step halvings inside
            one transient run.
        degradations: execution-path downgrades taken to keep a workload
            alive: a campaign chunk or instance dropping one rung of the
            batch -> scalar -> legacy engine ladder, or a broken process
            pool falling back to the serial path
            (:func:`repro.analysis.parallel.parallel_map`).
        chunks_failed: campaign chunks whose bulk execution exhausted its
            retry budget and entered per-instance recovery; a chunk that
            ultimately recovers still counts here (``unrecovered_failures``
            stays 0 unless recovery itself failed).
        checkpoint_writes: atomic campaign-checkpoint files committed via
            ``os.replace`` (one per completed chunk plus the final state).
        extras: numeric counters from *newer* producers that this version
            does not know as fields.  :meth:`from_dict` preserves them here
            (warning once per process per counter name) instead of silently
            dropping them, :meth:`merge` sums them per key, and
            :meth:`as_dict` re-emits them at the top level, so journals
            written by a newer version survive a round trip through an
            older one without losing counts.
        phase_seconds: wall-clock seconds per named phase ("ic", "dc",
            "stepping", "total", ...); merged by summing per key.  The
            batched engine splits its shared wall clock evenly across the
            per-instance records, so aggregates still sum to real time.
            When tracing is enabled (:mod:`repro.observability.trace`) the
            engine derives these values from the recorded span timings, so
            spans and telemetry report one consistent clock.
    """

    newton_solves: int = 0
    newton_iterations: int = 0
    accepted_steps: int = 0
    step_rejections: int = 0
    step_retries: int = 0
    lte_rejections: int = 0
    unrecovered_failures: int = 0
    gmin_steps: int = 0
    lu_cache_hits: int = 0
    lu_cache_misses: int = 0
    lu_cache_invalidations: int = 0
    sparse_factorizations: int = 0
    sparse_pattern_reuses: int = 0
    mask_steps: int = 0
    base_assemblies: int = 0
    nonlinear_restamps: int = 0
    full_assemblies: int = 0
    batch_fallbacks: int = 0
    retries: int = 0
    degradations: int = 0
    chunks_failed: int = 0
    checkpoint_writes: int = 0
    extras: dict = dataclasses.field(default_factory=dict)
    phase_seconds: dict = dataclasses.field(default_factory=dict)

    @property
    def recovered_rejections(self) -> int:
        """Rejected steps that the retry ladder ultimately recovered."""
        return self.step_rejections - self.unrecovered_failures

    def add_phase_seconds(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock time into one named phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def merge(self, other: "SolverTelemetry") -> "SolverTelemetry":
        """Fold ``other``'s counters into this record (returns self)."""
        for f in dataclasses.fields(self):
            if f.name == "phase_seconds":
                for phase, seconds in other.phase_seconds.items():
                    self.add_phase_seconds(phase, seconds)
            elif f.name == "extras":
                for key, value in other.extras.items():
                    self.extras[key] = self.extras.get(key, 0) + value
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def aggregate(cls, records: Iterable[Optional["SolverTelemetry"]]) -> "SolverTelemetry":
        """Sum of many per-run records (``None`` entries are skipped)."""
        total = cls()
        for rec in records:
            if rec is not None:
                total.merge(rec)
        return total

    @classmethod
    def from_dict(cls, data: dict) -> "SolverTelemetry":
        """Rebuild a record from :meth:`as_dict` output (journal round trip).

        The derived ``ok`` / ``recovered_rejections`` entries ``as_dict``
        adds are skipped.  Any *other* unknown key — a counter written by a
        newer producer — is preserved in :attr:`extras` (numeric values
        only) with a once-per-process warning per counter name, so loading
        a newer journal degrades loudly and losslessly instead of silently
        dropping counts.
        """
        tel = cls()
        known = {f.name for f in dataclasses.fields(cls)}
        for f in dataclasses.fields(cls):
            if f.name == "phase_seconds":
                tel.phase_seconds = dict(data.get("phase_seconds", {}))
            elif f.name == "extras":
                pass  # never written as a wrapper; see as_dict
            elif f.name in data:
                setattr(tel, f.name, int(data[f.name]))
        unknown = {k: v for k, v in data.items()
                   if k not in known and k not in _DERIVED_KEYS}
        dropped = []
        for key, value in unknown.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                tel.extras[key] = tel.extras.get(key, 0) + value
            else:
                dropped.append(key)
        # Backend and surrogate-routing counters are extras this version
        # writes itself — they round-trip silently, not as newer-producer
        # surprises.
        unknown = {k: v for k, v in unknown.items()
                   if not k.startswith((BACKEND_PREFIX, SURROGATE_PREFIX))}
        fresh = sorted(set(unknown) - _warned_extras)
        if fresh:
            _warned_extras.update(fresh)
            kept = [k for k in fresh if k not in dropped]
            message = ("SolverTelemetry.from_dict: unknown counters from a "
                       f"newer producer: kept {kept} in extras")
            if dropped:
                message += f", dropped non-numeric {sorted(dropped)}"
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        return tel

    def as_dict(self) -> dict:
        """Machine-readable summary (JSON-serializable).

        ``extras`` counters are re-emitted at the top level (not under a
        wrapper key), so a round trip through this version hands a newer
        consumer back the exact counters its producer wrote.
        """
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in ("phase_seconds", "extras")
        }
        out.update(self.extras)
        out["recovered_rejections"] = self.recovered_rejections
        out["phase_seconds"] = dict(self.phase_seconds)
        out["ok"] = self.unrecovered_failures == 0
        return out

    def format_report(self) -> str:
        """Human-readable multi-line summary (the CLI ``--telemetry`` view)."""
        lines = [
            "solver telemetry:",
            f"  newton solves / iterations:   {self.newton_solves} / {self.newton_iterations}",
            f"  accepted steps:               {self.accepted_steps}",
            f"  step rejections (recovered):  {self.step_rejections} ({self.recovered_rejections})",
            f"  LTE rejections (adaptive):    {self.lte_rejections}",
            f"  unrecovered failures:         {self.unrecovered_failures}",
            f"  gmin continuation stages:     {self.gmin_steps}",
            f"  LU cache hits / misses:       {self.lu_cache_hits} / {self.lu_cache_misses}"
            + (f" (+{self.lu_cache_invalidations} staleness drops)"
               if self.lu_cache_invalidations else ""),
            f"  assemblies (base/nonlin/full): {self.base_assemblies} / "
            f"{self.nonlinear_restamps} / {self.full_assemblies}",
        ]
        if self.sparse_factorizations or self.sparse_pattern_reuses:
            lines.append(
                f"  sparse splu / pattern reuse:  {self.sparse_factorizations}"
                f" / {self.sparse_pattern_reuses}"
            )
        if self.mask_steps:
            lines.append(f"  adaptive-batch mask steps:    {self.mask_steps}")
        backends = {k[len(BACKEND_PREFIX):]: v for k, v in self.extras.items()
                    if k.startswith(BACKEND_PREFIX)}
        if backends:
            used = ", ".join(f"{k}={v}" for k, v in sorted(backends.items()))
            lines.append(f"  linear-algebra backends:      {used}")
        if self.batch_fallbacks:
            lines.append(f"  batch -> scalar fallbacks:    {self.batch_fallbacks}")
        if self.retries or self.degradations or self.chunks_failed:
            lines.append(
                f"  campaign retries/degrades:    {self.retries} / {self.degradations}"
                f" ({self.chunks_failed} chunks needed recovery)"
            )
        if self.checkpoint_writes:
            lines.append(f"  checkpoint commits:           {self.checkpoint_writes}")
        foreign = {k: v for k, v in self.extras.items()
                   if not k.startswith(BACKEND_PREFIX)}
        if foreign:
            extras = ", ".join(f"{k}={v}" for k, v in sorted(foreign.items()))
            lines.append(f"  newer-producer counters:      {extras}")
        if self.phase_seconds:
            phases = ", ".join(
                f"{name} {secs:.3g}s" for name, secs in sorted(self.phase_seconds.items())
            )
            lines.append(f"  wall clock: {phases}")
        return "\n".join(lines)


def record_backend(telemetry: SolverTelemetry | None, backend: str) -> None:
    """Count one run's engaged linear-algebra backend in ``extras``.

    ``backend`` is one of ``"dense_lu"``, ``"sparse_splu"`` or
    ``"numba_kernel"`` (a run can engage several, e.g. a sparse solve with
    the compiled device kernel).  Stored as ``backend_<name>`` counters so
    :meth:`SolverTelemetry.merge` sums them across runs and benchmark
    reports are self-describing about what actually executed.
    """
    if telemetry is not None:
        key = BACKEND_PREFIX + backend
        telemetry.extras[key] = telemetry.extras.get(key, 0) + 1


# -- session aggregation (process-local) -------------------------------------------

_session: SolverTelemetry | None = None


def enable_session_telemetry() -> SolverTelemetry:
    """Start (or restart) the process-local session aggregator.

    Returns the live record; every engine run completing in this process
    merges into it until :func:`disable_session_telemetry`.
    """
    global _session
    _session = SolverTelemetry()
    return _session


def disable_session_telemetry() -> None:
    """Stop session aggregation (per-run records are unaffected)."""
    global _session
    _session = None


def session_telemetry() -> SolverTelemetry | None:
    """The live session aggregator, or None when disabled (the default)."""
    return _session


def record_session(telemetry: SolverTelemetry | None) -> None:
    """Merge one finished run's record into the session aggregator, if on."""
    if _session is not None and telemetry is not None and telemetry is not _session:
        _session.merge(telemetry)
