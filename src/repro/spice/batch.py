"""Batched ensemble transient engine: B same-topology circuits in lockstep.

The paper's headline results are *ensembles* of structurally identical SSN
circuits differing only in parameter values — the Fig. 3 driver-count sweep
(one circuit per N, widths and loads scale), the capacitance studies, Monte
Carlo fleets over process spread.  The scalar engine (:mod:`.transient`)
simulates them one at a time; this module simulates the whole ensemble in
one vectorized Newton loop:

* **Batched MNA assembly** — element *banks* (one per template element
  position, holding that element's B per-instance values and companion
  states as ``(B,)`` arrays) stamp the linear part into a cached
  ``(B, n, n)`` matrix stack keyed on ``(mode, dt, method-phase)`` and the
  per-step right-hand sides into a ``(B, n)`` stack.
* **Batched device evaluation** — every MOSFET position is evaluated for
  all instances at once through :class:`~repro.spice.mosfet.MosfetBank`
  (stacked golden-model parameters, vectorized finite-difference operating
  points with the scalar fast path's step).
* **Batched Newton loop** — one ``numpy.linalg.solve`` on the active
  ``(a, n, n)`` sub-stack per iterate, per-instance damping and a
  per-instance convergence mask; converged instances leave the active set
  so they stop iterating at exactly the point the scalar loop would.
* **Scalar fallback** — an instance whose Newton solve fails (the batch
  never halves the shared step) leaves the ensemble and is re-simulated by
  the scalar engine, which owns the step-halving/gmin recovery ladder and
  its telemetry (PR 2).  The instance's record gets ``batch_fallbacks = 1``.

Numerics: the lockstep loop reproduces the scalar fast path's step
sequence (breakpoint landing, post-breakpoint BE restart, step regrowth)
and Newton iteration (same damping cap, same convergence test, same
finite-difference partials step), so batched waveforms agree with the
scalar engine to floating-point noise — the golden-parity suite bounds the
difference at 1e-9 V/A, the same contract the fast path honors against the
seed engine.  Results are bitwise-deterministic: identical inputs produce
identical ensembles regardless of how instances converge or fall back.

Memory: the engine holds ``O(B * n^2)`` for the matrix stacks plus
``O(steps * B * n)`` recorded samples; callers batching thousands of
instances should chunk (the analysis layer does, see
``repro.analysis.simulate``).
"""

from __future__ import annotations

import time

import numpy as np

from ..observability import trace
from .circuit import Circuit
from .elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .mna import MnaSystem
from .mosfet import MosfetBank, MosfetElement
from .solver import DEFAULT_MAX_UPDATE
from .telemetry import SolverTelemetry, record_session
from .transient import TransientOptions, TransientResult, transient

#: Conductance forcing a capacitor to its initial condition in "ic" mode
#: (mirrors repro.spice.elements._IC_FORCE_CONDUCTANCE).
_IC_FORCE = 1e3
#: Stiff-Thevenin resistance of the inductor "ic" stamp (see elements.py).
_IC_INDUCTOR_R = 1e-3


class BatchIncompatibleError(ValueError):
    """The given circuits (or options) cannot run in lockstep.

    Raised for mixed topologies, mismatched source breakpoints, element
    types the batched engine does not stamp, or option modes it does not
    implement (adaptive stepping, the frozen legacy engine).  Callers
    route such ensembles to the scalar engine instead.
    """


def lockstep_signature(circuit: Circuit) -> tuple:
    """Structural key under which circuits can share one lockstep batch.

    Two circuits with equal signatures have the same nodes, the same
    element list (types, names, terminals, branch layout), the same
    source breakpoint times and compatible device-model families — they
    differ only in parameter *values*, which is exactly what the banks
    vectorize over.

    Raises:
        BatchIncompatibleError: if the circuit contains an element type
            the batched engine cannot stamp.
    """
    position = {id(el): k for k, el in enumerate(circuit.elements)}
    sig: list = [circuit.num_nodes]
    for el in circuit.elements:
        if isinstance(el, Resistor):
            sig.append(("R", el.name, el.nodes))
        elif isinstance(el, Capacitor):
            sig.append(("C", el.name, el.nodes, el.ic is None))
        elif isinstance(el, Inductor):
            sig.append(("L", el.name, el.nodes))
        elif isinstance(el, MutualInductance):
            sig.append(("K", el.name, position[id(el.la)], position[id(el.lb)]))
        elif isinstance(el, (VoltageSource, CurrentSource)):
            kind = "V" if isinstance(el, VoltageSource) else "I"
            sig.append((kind, el.name, el.nodes, tuple(el.shape.breakpoints())))
        elif isinstance(el, MosfetElement):
            sig.append(("M", el.name, el.nodes, type(el.model).__name__))
        else:
            raise BatchIncompatibleError(
                f"element {el.name!r} ({type(el).__name__}) has no batched stamp"
            )
    return tuple(sig)


def _require_finite(name: str, param: str, values) -> np.ndarray:
    """Validate one element position's parameter bank at construction.

    The scalar element constructors only reject non-*positive* values, so a
    NaN/inf slips through (``nan <= 0`` is False) and would otherwise fail
    deep inside the lockstep Newton loop as an opaque non-finite iterate.
    Catching it here names the offending element, parameter and instance.

    Raises:
        BatchIncompatibleError: if any entry is NaN or infinite.
    """
    arr = np.asarray(values, dtype=float)
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise BatchIncompatibleError(
            f"element {name!r}: non-finite {param} in batch instance {bad} "
            f"({arr[bad]!r}); fix the parameter bank before simulating"
        )
    return arr


# -- element banks ------------------------------------------------------------------
#
# One bank per template element position.  Matrix scatters write A[:, r, c]
# with 0-based unknown indices (ground rows/columns eliminated); the sign
# conventions mirror StampContext exactly.


def _v(x: np.ndarray, node: int) -> np.ndarray:
    """Per-instance voltage of one node; ground is 0 V.  ``x`` is (B, n)."""
    if node == 0:
        return np.zeros(len(x))
    return x[:, node - 1]


def _add(A: np.ndarray, r: int, c: int, value) -> None:
    """A[:, r-1, c-1] += value for two node ids, skipping ground."""
    if r == 0 or c == 0:
        return
    A[:, r - 1, c - 1] += value


def _add_conductance(A: np.ndarray, a: int, b: int, g) -> None:
    _add(A, a, a, g)
    _add(A, b, b, g)
    _add(A, a, b, -g)
    _add(A, b, a, -g)


def _add_rhs_current(z: np.ndarray, frm: int, to: int, i) -> None:
    """A current ``i`` forced from node ``frm`` to node ``to``; z is (B, n)."""
    if frm != 0:
        z[:, frm - 1] -= i
    if to != 0:
        z[:, to - 1] += i


class _Bank:
    """Base bank: B aligned instances of one template element position."""

    #: Whether the underlying element family records a current waveform.
    has_current = False
    #: Whether the bank restamps at every Newton iterate (devices only).
    nonlinear = False

    def __init__(self, elements, system: MnaSystem):
        self.elements = elements
        self.name = elements[0].name
        self.nodes = elements[0].nodes
        self.system = system

    def stamp_matrix(self, A, mode: str, dt: float, trap: bool) -> None:
        """Linear matrix contribution (constant across Newton iterates)."""

    def stamp_rhs(self, z, mode: str, t: float, dt: float, trap: bool) -> None:
        """Per-step right-hand-side contribution."""

    def init_state(self, x) -> None:
        """Initialize companion state from the (B, n) IC solution."""

    def commit(self, x, dt: float, trap: bool) -> None:
        """Roll companion state after an accepted step."""

    def current(self, x, mode: str, dt: float, trap: bool) -> np.ndarray:
        raise NotImplementedError


class _ResistorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        ohms = _require_finite(self.name, "resistance", [el.ohms for el in elements])
        self.g = _require_finite(self.name, "conductance", 1.0 / ohms)

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        _add_conductance(A, a, b, self.g)

    def current(self, x, mode, dt, trap):
        a, b = self.nodes
        return (_v(x, a) - _v(x, b)) * self.g


class _CapacitorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.farads = _require_finite(
            self.name, "capacitance", [el.farads for el in elements]
        )
        self.ic = None if elements[0].ic is None else _require_finite(
            self.name, "initial condition", [el.ic for el in elements]
        )
        self.v = np.zeros(len(elements))
        self.i = np.zeros(len(elements))

    def _geq(self, dt: float, trap: bool) -> np.ndarray:
        return (2.0 * self.farads / dt) if trap else (self.farads / dt)

    def _companion(self, dt: float, trap: bool):
        geq = self._geq(dt, trap)
        ieq = geq * self.v + self.i if trap else geq * self.v
        return geq, ieq

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        if mode == "dc":
            return
        if mode == "ic":
            if self.ic is not None:
                _add_conductance(A, a, b, _IC_FORCE)
            return
        _add_conductance(A, a, b, self._geq(dt, trap))

    def stamp_rhs(self, z, mode, t, dt, trap):
        a, b = self.nodes
        if mode == "dc":
            return
        if mode == "ic":
            if self.ic is not None:
                _add_rhs_current(z, b, a, _IC_FORCE * self.ic)
            return
        _, ieq = self._companion(dt, trap)
        _add_rhs_current(z, b, a, ieq)

    def init_state(self, x):
        a, b = self.nodes
        self.v = self.ic.copy() if self.ic is not None else _v(x, a) - _v(x, b)
        self.i = np.zeros(len(self.elements))

    def commit(self, x, dt, trap):
        a, b = self.nodes
        geq, ieq = self._companion(dt, trap)
        v = _v(x, a) - _v(x, b)
        self.i = geq * v - ieq
        self.v = np.array(v)

    def current(self, x, mode, dt, trap):
        # The t=0 sample runs through the backward-Euler first-step
        # companion exactly as the scalar recorder does (trap is False on
        # the first step by construction).
        a, b = self.nodes
        geq, ieq = self._companion(dt, trap)
        return geq * (_v(x, a) - _v(x, b)) - ieq


class _InductorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.henries = _require_finite(
            self.name, "inductance", [el.henries for el in elements]
        )
        self.ic = _require_finite(
            self.name, "initial condition", [el.ic for el in elements]
        )
        self.row = system.branch_row_of(elements[0])
        self.i = np.zeros(len(elements))
        self.v = np.zeros(len(elements))

    def _req(self, dt: float, trap: bool) -> np.ndarray:
        return (2.0 * self.henries / dt) if trap else (self.henries / dt)

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        row = self.row
        if a != 0:
            A[:, a - 1, row] += 1.0
        if b != 0:
            A[:, b - 1, row] -= 1.0
        if a != 0:
            A[:, row, a - 1] += 1.0
        if b != 0:
            A[:, row, b - 1] -= 1.0
        if mode == "dc":
            return
        if mode == "ic":
            A[:, row, row] += -_IC_INDUCTOR_R
            return
        A[:, row, row] += -self._req(dt, trap)

    def stamp_rhs(self, z, mode, t, dt, trap):
        if mode == "dc":
            return
        if mode == "ic":
            z[:, self.row] += -_IC_INDUCTOR_R * self.ic
            return
        req = self._req(dt, trap)
        veq = (-self.v - req * self.i) if trap else (-req * self.i)
        z[:, self.row] += veq

    def init_state(self, x):
        a, b = self.nodes
        self.i = self.ic.copy()
        self.v = _v(x, a) - _v(x, b)

    def commit(self, x, dt, trap):
        a, b = self.nodes
        self.i = np.array(x[:, self.row])
        self.v = _v(x, a) - _v(x, b)

    def current(self, x, mode, dt, trap):
        if mode == "ic":
            # The t=0 consistency stamp is a stiff short whose branch
            # unknown is not the inductor current; the state *is* ic.
            return self.ic.copy()
        return np.array(x[:, self.row])


class _MutualBank(_Bank):
    def __init__(self, elements, system, inductor_banks):
        super().__init__(elements, system)
        self.mutual = _require_finite(
            self.name, "mutual inductance", [el.mutual for el in elements]
        )
        self.pair = inductor_banks  # (bank of la, bank of lb)

    def _factor(self, dt: float, trap: bool) -> np.ndarray:
        return (2.0 * self.mutual / dt) if trap else (self.mutual / dt)

    def stamp_matrix(self, A, mode, dt, trap):
        if mode != "tran":
            return
        factor = self._factor(dt, trap)
        for own, other in (self.pair, self.pair[::-1]):
            A[:, own.row, other.row] += -factor

    def stamp_rhs(self, z, mode, t, dt, trap):
        if mode != "tran":
            return
        factor = self._factor(dt, trap)
        for own, other in (self.pair, self.pair[::-1]):
            z[:, own.row] += -factor * other.i


class _VoltageSourceBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.row = system.branch_row_of(elements[0])
        shapes = [el.shape for el in elements]
        # Shared-shape fast path: the frozen shape dataclasses compare by
        # value, so identical stimuli are evaluated once per step.
        self.shared = shapes[0] if all(s == shapes[0] for s in shapes[1:]) else None
        self.shapes = shapes

    def _value(self, t: float):
        if self.shared is not None:
            return self.shared(t)
        return np.array([s(t) for s in self.shapes])

    def stamp_matrix(self, A, mode, dt, trap):
        plus, minus = self.nodes
        row = self.row
        if plus != 0:
            A[:, plus - 1, row] += 1.0
            A[:, row, plus - 1] += 1.0
        if minus != 0:
            A[:, minus - 1, row] -= 1.0
            A[:, row, minus - 1] -= 1.0

    def stamp_rhs(self, z, mode, t, dt, trap):
        z[:, self.row] += self._value(t)

    def current(self, x, mode, dt, trap):
        return np.array(x[:, self.row])


class _CurrentSourceBank(_Bank):
    def __init__(self, elements, system):
        super().__init__(elements, system)
        shapes = [el.shape for el in elements]
        self.shared = shapes[0] if all(s == shapes[0] for s in shapes[1:]) else None
        self.shapes = shapes

    def stamp_rhs(self, z, mode, t, dt, trap):
        frm, to = self.nodes
        value = self.shared(t) if self.shared is not None else np.array(
            [s(t) for s in self.shapes]
        )
        _add_rhs_current(z, frm, to, value)


class _MosfetBankAdapter(_Bank):
    """Nonlinear bank: restamped per Newton iterate via :class:`MosfetBank`."""

    has_current = True
    nonlinear = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.bank = MosfetBank(elements)

    def _bias(self, x):
        d, g, s, b = self.nodes
        vs = _v(x, s)
        return _v(x, g) - vs, _v(x, d) - vs, _v(x, b) - vs

    def stamp_matrix(self, A, mode, dt, trap, gmin: float = 0.0):
        # The gmin shunt is stamped by the device in the scalar engine but
        # is constant across iterates, so it lives in the cached linear
        # stack here (gmin differs between "ic" and "tran" solves; the
        # cache is keyed on mode).
        d, _, s, _ = self.nodes
        _add_conductance(A, d, s, gmin)

    def stamp_iterate(self, A, z, x) -> None:
        """Linearized device stamps for the whole ensemble.

        ``A``/``z`` are the full ``(B, n, n)``/``(B, n)`` work stacks;
        operating points are evaluated for every instance in one vectorized
        pass (instances share the stacked model's parameter axis).  Rows of
        instances that already converged or failed are stamped too — their
        solutions are simply never applied — because masking the math would
        cost more than the redundant flops at ensemble sizes where the
        per-operation overhead dominates.
        """
        d, g, s, b = self.nodes
        vgs, vds, vbs = self._bias(x)
        op = self.bank.partials(vgs, vds, vbs)
        gm, gds, gmbs = op.gm, op.gds, op.gmbs
        ieq = op.ids - gm * vgs - gds * vds - gmbs * vbs
        gsum = gm + gds + gmbs
        # KCL at drain: +Id; at source: -Id (mirrors MosfetElement.stamp).
        _add(A, d, g, gm)
        _add(A, d, d, gds)
        _add(A, d, b, gmbs)
        _add(A, d, s, -gsum)
        _add(A, s, g, -gm)
        _add(A, s, d, -gds)
        _add(A, s, b, -gmbs)
        _add(A, s, s, gsum)
        _add_rhs_current(z, d, s, ieq)

    def current(self, x, mode, dt, trap):
        return self.bank.ids(*self._bias(x))


class _Rank1Lane:
    """Sherman-Morrison Newton solves for the single-device common case.

    A MOSFET's linearized stamp touches only the drain and source KCL rows,
    and those two rows carry the *same* four-entry conductance row vector
    with opposite signs.  With one device bank the per-iterate matrix is
    therefore a rank-1 update of the cached linear stack:

        A_iter = A_lin + u v^T,    u = e_d - e_s (constant),
                                   v = per-iterate conductances,

    and with ``W = A_lin^{-1}`` (inverted once per ``(mode, dt, trap,
    gmin)`` cache key) each Newton iterate's dense solve collapses to a
    handful of O(B n) operations:

        x = y - (W u) (v^T y) / (1 + v^T W u),    y = W (z - ieq u).

    Since ``z`` is constant within one solve, ``W z`` is computed once per
    solve and the iterate only folds in the ``ieq`` term.  This removes the
    linear-stack copy, the device scatter and the batched LAPACK solve from
    the Newton loop entirely — the dominant per-iterate costs after device
    evaluation.

    The lane is numerically a *different* solver than LAPACK's LU, so
    iterates differ from the scalar engine's at rounding level; Newton
    contraction pins the converged points back together (the golden-parity
    suite bounds the waveform difference under the same 1e-9 contract).
    If the linear stack is singular (floating subcircuits) the inverse
    does not exist: the lane reports unavailable and the caller uses the
    dense batched solve, preserving the least-squares degradation path.
    """

    def __init__(self, adapter: _MosfetBankAdapter):
        self.adapter = adapter
        d, g, s, b = adapter.nodes
        # 0-based unknown columns; -1 marks ground (term dropped).
        self.dc = d - 1
        self.gc = g - 1
        self.sc = s - 1
        self.bc = b - 1
        self._key: tuple | None = None
        self._W: np.ndarray | None = None
        self.wu: np.ndarray | None = None

    def prepare(self, A: np.ndarray, key: tuple, alive: np.ndarray,
                identity: np.ndarray) -> np.ndarray | None:
        """The cached inverse stack for this key, or None if singular."""
        if key != self._key:
            self._key = key
            src = A
            if not alive.all():
                # Failed instances may have any linear stamp; keep the
                # stack invertible by swapping their rows for identity.
                src = A.copy()
                src[~alive] = identity
            try:
                W = np.linalg.inv(src)
            except np.linalg.LinAlgError:
                self._W = None
                self.wu = None
                return None
            if not np.isfinite(W).all():
                self._W = None
                self.wu = None
                return None
            self._W = W
            if self.dc >= 0 and self.sc >= 0:
                self.wu = W[:, :, self.dc] - W[:, :, self.sc]
            elif self.dc >= 0:
                self.wu = W[:, :, self.dc].copy()
            elif self.sc >= 0:
                self.wu = -W[:, :, self.sc]
            else:  # degenerate d == s == ground: no device coupling at all
                self.wu = np.zeros(A.shape[:2])
        return self._W

    def bias(self, x: np.ndarray):
        """(vgs, vds, vbs) per instance, without per-node helper calls."""
        vs = x[:, self.sc] if self.sc >= 0 else 0.0
        vg = x[:, self.gc] if self.gc >= 0 else 0.0
        vd = x[:, self.dc] if self.dc >= 0 else 0.0
        vb = x[:, self.bc] if self.bc >= 0 else 0.0
        return vg - vs, vd - vs, vb - vs

    def vdot(self, m: np.ndarray, gm, gds, gmbs, gsum):
        """``v^T m`` per instance: v has entries only at g, d, b, s."""
        acc = None
        if self.gc >= 0:
            acc = gm * m[:, self.gc]
        if self.dc >= 0:
            t = gds * m[:, self.dc]
            acc = t if acc is None else acc + t
        if self.bc >= 0:
            t = gmbs * m[:, self.bc]
            acc = t if acc is None else acc + t
        if self.sc >= 0:
            t = gsum * m[:, self.sc]
            acc = -t if acc is None else acc - t
        return 0.0 if acc is None else acc


def _build_banks(circuits: list[Circuit], system: MnaSystem) -> list[_Bank]:
    """One bank per template element position, instances column-aligned."""
    columns = [c.elements for c in circuits]
    banks: list[_Bank] = []
    by_position: dict[int, _Bank] = {}
    template = columns[0]
    position = {id(el): k for k, el in enumerate(template)}
    for k, el in enumerate(template):
        instances = [col[k] for col in columns]
        if isinstance(el, Resistor):
            bank = _ResistorBank(instances, system)
        elif isinstance(el, Capacitor):
            bank = _CapacitorBank(instances, system)
        elif isinstance(el, Inductor):
            bank = _InductorBank(instances, system)
        elif isinstance(el, MutualInductance):
            pair = (by_position[position[id(el.la)]], by_position[position[id(el.lb)]])
            bank = _MutualBank(instances, system, pair)
        elif isinstance(el, VoltageSource):
            bank = _VoltageSourceBank(instances, system)
        elif isinstance(el, CurrentSource):
            bank = _CurrentSourceBank(instances, system)
        elif isinstance(el, MosfetElement):
            bank = _MosfetBankAdapter(instances, system)
        else:  # pragma: no cover - lockstep_signature rejects these first
            raise BatchIncompatibleError(
                f"element {el.name!r} ({type(el).__name__}) has no batched stamp"
            )
        by_position[k] = bank
        banks.append(bank)
    return banks


class _BatchRecorder:
    """Capacity-doubling (steps, B, ...) sample buffers for one ensemble."""

    def __init__(self, batch: int, num_nodes: int, num_currents: int,
                 capacity: int = 256):
        self._n = 0
        self._times = np.empty(capacity)
        self._nodes = np.empty((capacity, batch, num_nodes))
        self._currents = np.empty((capacity, batch, num_currents))

    def append(self, t: float, node_x: np.ndarray, currents: np.ndarray) -> None:
        if self._n == len(self._times):
            cap = 2 * len(self._times)
            self._times = np.resize(self._times, cap)
            self._nodes = np.resize(self._nodes, (cap,) + self._nodes.shape[1:])
            self._currents = np.resize(self._currents, (cap,) + self._currents.shape[1:])
        i = self._n
        self._times[i] = t
        self._nodes[i] = node_x
        self._currents[i] = currents
        self._n += 1

    def finish(self):
        n = self._n
        return (np.array(self._times[:n]), self._nodes[:n], self._currents[:n])


def batch_transient(
    circuits,
    tstop: float,
    dt: float,
    tstart: float = 0.0,
    options: TransientOptions | None = None,
) -> list[TransientResult]:
    """Simulate an ensemble of same-topology circuits in lockstep.

    Args:
        circuits: the ensemble (not mutated); all members must share one
            :func:`lockstep_signature` — same topology, element names and
            source breakpoints, differing only in parameter values.
        tstop: shared end time in seconds.
        dt: shared base time step in seconds.
        tstart: shared start time.
        options: engine knobs; ``adaptive`` and ``legacy_reference`` are
            not implemented in lockstep and raise.

    Returns:
        One :class:`~repro.spice.transient.TransientResult` per circuit, in
        input order, each with its own per-instance telemetry record.
        Instances that needed the step-halving/gmin recovery ladder are
        transparently re-run on the scalar engine (their telemetry carries
        ``batch_fallbacks == 1``).

    Raises:
        BatchIncompatibleError: mixed topologies or unsupported options.
        ConvergenceError: an instance failed even on the scalar ladder.
    """
    if tstop <= tstart:
        raise ValueError("tstop must be greater than tstart")
    if dt <= 0:
        raise ValueError("dt must be positive")
    opts = options or TransientOptions()
    if opts.adaptive:
        raise BatchIncompatibleError("adaptive stepping is not batchable; "
                                     "use the scalar engine")
    if opts.legacy_reference:
        raise BatchIncompatibleError("the frozen legacy engine has no batched form")

    circuits = list(circuits)
    if not circuits:
        return []
    sig = lockstep_signature(circuits[0])
    for c in circuits[1:]:
        if lockstep_signature(c) != sig:
            raise BatchIncompatibleError(
                f"circuit {c.title!r} does not share the ensemble topology"
            )

    batch = len(circuits)
    systems = [MnaSystem(c) for c in circuits]  # assigns branch layout
    system = systems[0]
    n = system.size
    nn = system.num_node_unknowns
    if n == 0:
        raise BatchIncompatibleError("circuit has no unknowns")
    banks = _build_banks(circuits, system)
    linear_banks = [b for b in banks if not b.nonlinear]
    device_banks = [b for b in banks if b.nonlinear]
    measured = [b for b in banks if b.has_current]
    # One nonlinear device: its stamp is a rank-1 matrix update, so Newton
    # iterates can reuse a cached inverse of the linear stack (see
    # _Rank1Lane).  Multi-device ensembles use the dense batched solve.
    rank1 = _Rank1Lane(device_banks[0]) if len(device_banks) == 1 else None

    method = opts.method
    wall_start = time.perf_counter()

    # Vectorized per-instance telemetry counters (folded into real
    # SolverTelemetry records at the end; python-object updates per step
    # would cost more than the solves).
    # One linear-base assembly per solve and one device restamp per iterate
    # (exactly the scalar fast path's counting), so base_assemblies aliases
    # newton_solves and nonlinear_restamps aliases newton_iterations.
    c_solves = np.zeros(batch, dtype=int)
    c_iters = np.zeros(batch, dtype=int)
    c_steps = np.zeros(batch, dtype=int)

    alive = np.ones(batch, dtype=bool)      # still simulated in lockstep
    fallback = np.zeros(batch, dtype=bool)  # needs the scalar engine

    x = np.zeros((batch, n))

    # Cached linear stack: constant while (mode, dt, trap-phase, gmin) are.
    lin_A = np.zeros((batch, n, n))
    lin_z = np.zeros((batch, n))
    lin_key: tuple | None = None

    def linear_matrix(mode: str, dt_now: float, trap: bool, gmin: float) -> np.ndarray:
        nonlocal lin_key
        key = (mode, dt_now, trap, gmin)
        if key != lin_key:
            lin_A[:] = 0.0
            for bank in linear_banks:
                bank.stamp_matrix(lin_A, mode, dt_now, trap)
            for bank in device_banks:
                bank.stamp_matrix(lin_A, mode, dt_now, trap, gmin=gmin)
            lin_key = key
        return lin_A

    def linear_rhs(mode: str, t_now: float, dt_now: float, trap: bool) -> np.ndarray:
        lin_z[:] = 0.0
        for bank in linear_banks:
            bank.stamp_rhs(lin_z, mode, t_now, dt_now, trap)
        return lin_z

    # Preallocated per-iterate work stacks (copied from the cached linear
    # part, then restamped by the device banks).
    work_A = np.empty((batch, n, n))
    work_z = np.empty((batch, n))
    identity = np.eye(n)

    def mark_failed(bad: np.ndarray) -> None:
        alive[bad] = False
        fallback[bad] = True

    def newton_batch(mode: str, t_now: float, dt_now: float, trap: bool,
                     gmin: float) -> None:
        """One lockstep solve; failing instances leave the ensemble.

        The whole ensemble is computed unconditionally every iterate and
        per-instance masks gate only the *bookkeeping* (which rows accept
        the update, which count an iteration): at ensemble sizes where
        numpy's per-operation dispatch dominates, redundant flops on
        settled rows are cheaper than gather/scatter index machinery.
        """
        nonlocal x
        if not alive.any():
            return
        np.add(c_solves, alive, out=c_solves)
        A = linear_matrix(mode, dt_now, trap, gmin)
        z = linear_rhs(mode, t_now, dt_now, trap)
        any_dead = not alive.all()

        if not device_banks:
            # Purely linear lockstep: the Newton map is affine, one direct
            # batched solve lands on the solution (iteration count stays 0,
            # matching the scalar direct-solve path).
            np.copyto(work_A, A)
            np.copyto(work_z, z)
            if any_dead:
                work_A[~alive] = identity
                work_z[~alive] = 0.0
            xn = _solve_stack(work_A, work_z)
            finite = np.isfinite(xn).all(axis=1)
            x = np.where((alive & finite)[:, None], xn, x)
            bad = alive & ~finite
            if bad.any():
                mark_failed(bad)
            return

        active = alive.copy()
        all_active = not any_dead
        lane_W = None
        if rank1 is not None:
            lane_W = rank1.prepare(A, (mode, dt_now, trap, gmin), alive, identity)
            if lane_W is not None:
                # z is constant within the solve; only the ieq term of the
                # device RHS varies per iterate, folded in below.
                y_base = np.matmul(lane_W, z[:, :, None])[:, :, 0]
                wu = rank1.wu
                dev = rank1.adapter
        for _ in range(opts.max_newton):
            np.add(c_iters, active, out=c_iters)
            if lane_W is not None:
                vgs, vds, vbs = rank1.bias(x)
                op = dev.bank.partials(vgs, vds, vbs)
                gm, gds, gmbs = op.gm, op.gds, op.gmbs
                ieq = op.ids - gm * vgs - gds * vds - gmbs * vbs
                gsum = gm + gds + gmbs
                y = y_base - ieq[:, None] * wu
                vy = rank1.vdot(y, gm, gds, gmbs, gsum)
                vwu = rank1.vdot(wu, gm, gds, gmbs, gsum)
                # A near-singular update (1 + v^T W u ~ 0) yields non-finite
                # rows, caught below and routed to the scalar ladder.
                xn = y - wu * (vy / (1.0 + vwu))[:, None]
            else:
                np.copyto(work_A, A)
                np.copyto(work_z, z)
                for bank in device_banks:
                    bank.stamp_iterate(work_A, work_z, x)
                if any_dead:
                    # Keep the stack solvable: failed instances' rows may
                    # hold garbage stamps, so overwrite them with a trivial
                    # system.
                    dead = ~alive
                    work_A[dead] = identity
                    work_z[dead] = 0.0
                xn = _solve_stack(work_A, work_z)
            if not np.isfinite(xn).all():
                finite = np.isfinite(xn).all(axis=1)
                bad = active & ~finite
                if bad.any():
                    mark_failed(bad)
                    active = active & finite
                    any_dead = True
                    all_active = False
                    if not active.any():
                        return
                # Neutralize the non-finite rows so the update arithmetic
                # below stays warning-free (their x must not move anyway).
                xn = np.where(finite[:, None], xn, x)
            dx = xn - x
            adx = np.abs(dx)
            step = adx.max(axis=1)
            damped = step > DEFAULT_MAX_UPDATE
            if damped.any():
                scale = DEFAULT_MAX_UPDATE / np.maximum(step, DEFAULT_MAX_UPDATE)
                moved = np.where(damped[:, None], x + dx * scale[:, None], xn)
                none_damped = False
            else:
                moved = xn
                none_damped = True
            x = moved if all_active else np.where(active[:, None], moved, x)
            # Same test as the scalar loop: damped iterations never declare
            # convergence; undamped ones converge when the update is small.
            conv = (adx <= opts.abstol + opts.reltol * np.abs(xn)).all(axis=1)
            settled = (active & conv) if none_damped else (active & ~damped & conv)
            if settled.any():
                active = active & ~settled
                all_active = False
                if not active.any():
                    return
        # Iteration budget exhausted: remaining active instances would need
        # the recovery ladder — hand them to the scalar engine.
        mark_failed(active)

    # -- t=0 consistency solve -------------------------------------------------------
    # The surrounding span carries the whole-ensemble run; with tracing on,
    # the ic/stepping phase shares below derive from the sub-span clocks
    # (trace.elapsed), otherwise from the seed perf-counter anchors.
    with trace.span("batch_transient", batch=batch, tstop=tstop, dt=dt) as bsp:
        with trace.span("ic") as ic_sp:
            newton_batch("ic", tstart, dt, trap=False, gmin=max(opts.gmin, 1e-9))
        ic_elapsed = trace.elapsed(ic_sp, wall_start)
        for bank in banks:
            bank.init_state(x)

        template_circuit = circuits[0]
        breakpoints = [b for b in template_circuit.breakpoints() if tstart < b < tstop]
        breakpoints.append(tstop)

        recorder = _BatchRecorder(batch, nn, len(measured))
        current_block = np.empty((batch, len(measured)))

        def sample_currents(mode: str, dt_now: float, trap: bool) -> np.ndarray:
            for j, bank in enumerate(measured):
                current_block[:, j] = bank.current(x, mode, dt_now, trap)
            return current_block

        recorder.append(tstart, x[:, :nn], sample_currents("ic", dt, trap=False))

        t = tstart
        h = dt
        bp_iter = iter(breakpoints)
        next_bp = next(bp_iter)
        first_step = True
        stepping_start = time.perf_counter()

        with trace.span("stepping") as step_sp:
            while t < tstop - 1e-21 and alive.any():
                h_step = min(h, next_bp - t)
                trap = method == "trap" and not first_step
                newton_batch("tran", t + h_step, h_step, trap, opts.gmin)
                # Record, then commit state (commit consumes the pre-step
                # state).
                sample_currents("tran", h_step, trap)
                for bank in banks:
                    bank.commit(x, h_step, trap)
                first_step = False
                grown = min(dt, h_step * 2.0)

                t += h_step
                c_steps[alive] += 1
                recorder.append(t, x[:, :nn], current_block)

                if abs(t - next_bp) < 1e-21 or t >= next_bp:
                    # Source slope discontinuity: restart the integrator with
                    # a backward-Euler step (see the scalar engine).
                    first_step = True
                    try:
                        next_bp = next(bp_iter)
                    except StopIteration:
                        next_bp = tstop
                h = grown

        now = time.perf_counter()
        times, node_block, current_block_all = recorder.finish()
        current_names = [b.name for b in measured]

        # Shared wall clock is split evenly across instance records so that
        # aggregated telemetry still sums to real elapsed time.
        ic_share = ic_elapsed / batch
        stepping_share = trace.elapsed(step_sp, stepping_start) / batch
        total_share = (now - wall_start) / batch

        results: list[TransientResult | None] = [None] * batch
        for b in range(batch):
            if not alive[b]:
                continue
            tel = SolverTelemetry(
                newton_solves=int(c_solves[b]),
                newton_iterations=int(c_iters[b]),
                accepted_steps=int(c_steps[b]),
                base_assemblies=int(c_solves[b]),
                nonlinear_restamps=int(c_iters[b]),
            )
            tel.add_phase_seconds("ic", ic_share)
            tel.add_phase_seconds("stepping", stepping_share)
            tel.add_phase_seconds("total", total_share)
            record_session(tel)
            currents = {
                name: np.array(current_block_all[:, b, j])
                for j, name in enumerate(current_names)
            }
            results[b] = TransientResult(
                circuits[b], times, np.array(node_block[:, b, :]), currents,
                telemetry=tel,
            )

        bsp.set_attribute("fallbacks", int(fallback.sum()))
        for b in np.flatnonzero(fallback):
            # This instance needed the recovery ladder: the scalar engine
            # owns step halving, gmin stepping and their telemetry.  Its
            # partial batched work is discarded (and not attributed).
            result = transient(circuits[b], tstop, dt, tstart=tstart, options=opts)
            result.telemetry.batch_fallbacks += 1
            record_session(SolverTelemetry(batch_fallbacks=1))
            results[b] = result

    return results


def _solve_stack(A: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Batched dense solve with the scalar engine's singular fallback.

    ``numpy.linalg.solve`` rejects the whole stack when any one matrix is
    singular; the scalar path degrades that instance to least squares
    (floating subcircuits), so mirror it per instance on failure.
    """
    try:
        # NumPy >= 2.0 treats a 2-D ``b`` as one matrix, not a vector
        # stack, so carry an explicit trailing axis.
        return np.linalg.solve(A, z[..., None])[..., 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(z)
        for k in range(len(A)):
            try:
                out[k] = np.linalg.solve(A[k], z[k])
            except np.linalg.LinAlgError:
                out[k], *_ = np.linalg.lstsq(A[k], z[k], rcond=None)
        return out
