"""Batched ensemble transient engine: B same-topology circuits in lockstep.

The paper's headline results are *ensembles* of structurally identical SSN
circuits differing only in parameter values — the Fig. 3 driver-count sweep
(one circuit per N, widths and loads scale), the capacitance studies, Monte
Carlo fleets over process spread.  The scalar engine (:mod:`.transient`)
simulates them one at a time; this module simulates the whole ensemble in
one vectorized Newton loop:

* **Batched MNA assembly** — element *banks* (one per template element
  position, holding that element's B per-instance values and companion
  states as ``(B,)`` arrays) stamp the linear part into a cached
  ``(B, n, n)`` matrix stack keyed on ``(mode, dt, method-phase)`` and the
  per-step right-hand sides into a ``(B, n)`` stack.
* **Batched device evaluation** — every MOSFET position is evaluated for
  all instances at once through :class:`~repro.spice.mosfet.MosfetBank`
  (stacked golden-model parameters, vectorized finite-difference operating
  points with the scalar fast path's step).
* **Batched Newton loop** — one ``numpy.linalg.solve`` on the active
  ``(a, n, n)`` sub-stack per iterate, per-instance damping and a
  per-instance convergence mask; converged instances leave the active set
  so they stop iterating at exactly the point the scalar loop would.
* **Scalar fallback** — an instance whose Newton solve fails (the batch
  never halves the shared step) leaves the ensemble and is re-simulated by
  the scalar engine, which owns the step-halving/gmin recovery ladder and
  its telemetry (PR 2).  The instance's record gets ``batch_fallbacks = 1``.

Numerics: the lockstep loop reproduces the scalar fast path's step
sequence (breakpoint landing, post-breakpoint BE restart, step regrowth)
and Newton iteration (same damping cap, same convergence test, same
finite-difference partials step), so batched waveforms agree with the
scalar engine to floating-point noise — the golden-parity suite bounds the
difference at 1e-9 V/A, the same contract the fast path honors against the
seed engine.  Results are bitwise-deterministic: identical inputs produce
identical ensembles regardless of how instances converge or fall back.

Memory: the engine holds ``O(B * n^2)`` for the matrix stacks plus
``O(steps * B * n)`` recorded samples; callers batching thousands of
instances should chunk (the analysis layer does, see
``repro.analysis.simulate``).
"""

from __future__ import annotations

import time
import warnings

import numpy as np

try:  # scipy is an optional accelerator, not a hard dependency
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
except Exception:  # pragma: no cover - exercised via the no-scipy CI leg
    _lu_factor = None
    _lu_solve = None

from ..observability import trace
from .circuit import Circuit
from .elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .mna import MnaSystem
from .mosfet import MosfetBank, MosfetElement
from .solver import DEFAULT_MAX_UPDATE
from .telemetry import SolverTelemetry, record_backend, record_session
from .transient import (
    _MIN_STEP_DIVISOR,
    _SampleRecorder,
    TransientOptions,
    TransientResult,
    transient,
)

#: Conductance forcing a capacitor to its initial condition in "ic" mode
#: (mirrors repro.spice.elements._IC_FORCE_CONDUCTANCE).
_IC_FORCE = 1e3
#: Stiff-Thevenin resistance of the inductor "ic" stamp (see elements.py).
_IC_INDUCTOR_R = 1e-3


class BatchIncompatibleError(ValueError):
    """The given circuits (or options) cannot run in lockstep.

    Raised for mixed topologies, mismatched source breakpoints, element
    types the batched engine does not stamp, or option modes it does not
    implement (the frozen legacy engine).  Callers route such ensembles to
    the scalar engine instead.
    """


def lockstep_signature(circuit: Circuit) -> tuple:
    """Structural key under which circuits can share one lockstep batch.

    Two circuits with equal signatures have the same nodes, the same
    element list (types, names, terminals, branch layout), the same
    source breakpoint times and compatible device-model families — they
    differ only in parameter *values*, which is exactly what the banks
    vectorize over.

    Raises:
        BatchIncompatibleError: if the circuit contains an element type
            the batched engine cannot stamp.
    """
    position = {id(el): k for k, el in enumerate(circuit.elements)}
    sig: list = [circuit.num_nodes]
    for el in circuit.elements:
        if isinstance(el, Resistor):
            sig.append(("R", el.name, el.nodes))
        elif isinstance(el, Capacitor):
            sig.append(("C", el.name, el.nodes, el.ic is None))
        elif isinstance(el, Inductor):
            sig.append(("L", el.name, el.nodes))
        elif isinstance(el, MutualInductance):
            sig.append(("K", el.name, position[id(el.la)], position[id(el.lb)]))
        elif isinstance(el, (VoltageSource, CurrentSource)):
            kind = "V" if isinstance(el, VoltageSource) else "I"
            sig.append((kind, el.name, el.nodes, tuple(el.shape.breakpoints())))
        elif isinstance(el, MosfetElement):
            sig.append(("M", el.name, el.nodes, type(el.model).__name__))
        else:
            raise BatchIncompatibleError(
                f"element {el.name!r} ({type(el).__name__}) has no batched stamp"
            )
    return tuple(sig)


def _require_finite(name: str, param: str, values) -> np.ndarray:
    """Validate one element position's parameter bank at construction.

    The scalar element constructors only reject non-*positive* values, so a
    NaN/inf slips through (``nan <= 0`` is False) and would otherwise fail
    deep inside the lockstep Newton loop as an opaque non-finite iterate.
    Catching it here names the offending element, parameter and instance.

    Raises:
        BatchIncompatibleError: if any entry is NaN or infinite.
    """
    arr = np.asarray(values, dtype=float)
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise BatchIncompatibleError(
            f"element {name!r}: non-finite {param} in batch instance {bad} "
            f"({arr[bad]!r}); fix the parameter bank before simulating"
        )
    return arr


# -- element banks ------------------------------------------------------------------
#
# One bank per template element position.  Matrix scatters write A[:, r, c]
# with 0-based unknown indices (ground rows/columns eliminated); the sign
# conventions mirror StampContext exactly.


def _v(x: np.ndarray, node: int) -> np.ndarray:
    """Per-instance voltage of one node; ground is 0 V.  ``x`` is (B, n)."""
    if node == 0:
        return np.zeros(len(x))
    return x[:, node - 1]


def _add(A: np.ndarray, r: int, c: int, value) -> None:
    """A[:, r-1, c-1] += value for two node ids, skipping ground."""
    if r == 0 or c == 0:
        return
    A[:, r - 1, c - 1] += value


def _add_conductance(A: np.ndarray, a: int, b: int, g) -> None:
    _add(A, a, a, g)
    _add(A, b, b, g)
    _add(A, a, b, -g)
    _add(A, b, a, -g)


def _add_rhs_current(z: np.ndarray, frm: int, to: int, i) -> None:
    """A current ``i`` forced from node ``frm`` to node ``to``; z is (B, n)."""
    if frm != 0:
        z[:, frm - 1] -= i
    if to != 0:
        z[:, to - 1] += i


class _Bank:
    """Base bank: B aligned instances of one template element position.

    ``dt`` and ``trap`` arguments are scalars on the fixed-step lockstep
    path (every instance shares the grid) and per-instance ``(B,)`` arrays
    on the adaptive path, where each instance carries its own step and
    integrator phase; the companion formulas select per instance with the
    same float operations either way, so a lane's values are bitwise those
    the scalar engine would produce.
    """

    #: Whether the underlying element family records a current waveform.
    has_current = False
    #: Whether the bank restamps at every Newton iterate (devices only).
    nonlinear = False

    def __init__(self, elements, system: MnaSystem):
        self.elements = elements
        self.name = elements[0].name
        self.nodes = elements[0].nodes
        self.system = system

    def stamp_matrix(self, A, mode: str, dt, trap) -> None:
        """Linear matrix contribution (constant across Newton iterates)."""

    def stamp_rhs(self, z, mode: str, t, dt, trap) -> None:
        """Per-step right-hand-side contribution."""

    def init_state(self, x) -> None:
        """Initialize companion state from the (B, n) IC solution."""

    def commit(self, x, dt, trap) -> None:
        """Roll companion state after an accepted step."""

    def state_snapshot(self):
        """Copies of the mutable companion state (None when stateless)."""
        return None

    def state_restore(self, snap, mask) -> None:
        """Restore the masked instances' state from a snapshot."""

    def current(self, x, mode: str, dt, trap) -> np.ndarray:
        raise NotImplementedError


def _per_instance(trap, when_trap, when_be):
    """Select companion values by integrator phase, scalar or per-instance.

    The fixed lockstep path passes a python bool (one phase for the whole
    ensemble) and gets the single branch, exactly as before; the adaptive
    path passes a ``(B,)`` bool mask and gets an elementwise select whose
    chosen lane is the same IEEE arithmetic as the scalar branch.
    """
    if trap is True:
        return when_trap()
    if trap is False:
        return when_be()
    return np.where(trap, when_trap(), when_be())


class _ResistorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        ohms = _require_finite(self.name, "resistance", [el.ohms for el in elements])
        self.g = _require_finite(self.name, "conductance", 1.0 / ohms)

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        _add_conductance(A, a, b, self.g)

    def current(self, x, mode, dt, trap):
        a, b = self.nodes
        return (_v(x, a) - _v(x, b)) * self.g


class _CapacitorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.farads = _require_finite(
            self.name, "capacitance", [el.farads for el in elements]
        )
        self.ic = None if elements[0].ic is None else _require_finite(
            self.name, "initial condition", [el.ic for el in elements]
        )
        self.v = np.zeros(len(elements))
        self.i = np.zeros(len(elements))

    def _geq(self, dt, trap) -> np.ndarray:
        return _per_instance(
            trap,
            lambda: 2.0 * self.farads / dt,
            lambda: self.farads / dt,
        )

    def _companion(self, dt, trap):
        geq = self._geq(dt, trap)
        ieq = _per_instance(
            trap,
            lambda: geq * self.v + self.i,
            lambda: geq * self.v,
        )
        return geq, ieq

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        if mode == "dc":
            return
        if mode == "ic":
            if self.ic is not None:
                _add_conductance(A, a, b, _IC_FORCE)
            return
        _add_conductance(A, a, b, self._geq(dt, trap))

    def stamp_rhs(self, z, mode, t, dt, trap):
        a, b = self.nodes
        if mode == "dc":
            return
        if mode == "ic":
            if self.ic is not None:
                _add_rhs_current(z, b, a, _IC_FORCE * self.ic)
            return
        _, ieq = self._companion(dt, trap)
        _add_rhs_current(z, b, a, ieq)

    def init_state(self, x):
        a, b = self.nodes
        self.v = self.ic.copy() if self.ic is not None else _v(x, a) - _v(x, b)
        self.i = np.zeros(len(self.elements))

    def commit(self, x, dt, trap):
        a, b = self.nodes
        geq, ieq = self._companion(dt, trap)
        v = _v(x, a) - _v(x, b)
        self.i = geq * v - ieq
        self.v = np.array(v)

    def current(self, x, mode, dt, trap):
        # The t=0 sample runs through the backward-Euler first-step
        # companion exactly as the scalar recorder does (trap is False on
        # the first step by construction).
        a, b = self.nodes
        geq, ieq = self._companion(dt, trap)
        return geq * (_v(x, a) - _v(x, b)) - ieq

    def state_snapshot(self):
        return self.v.copy(), self.i.copy()

    def state_restore(self, snap, mask):
        self.v[mask] = snap[0][mask]
        self.i[mask] = snap[1][mask]


class _InductorBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.henries = _require_finite(
            self.name, "inductance", [el.henries for el in elements]
        )
        self.ic = _require_finite(
            self.name, "initial condition", [el.ic for el in elements]
        )
        self.row = system.branch_row_of(elements[0])
        self.i = np.zeros(len(elements))
        self.v = np.zeros(len(elements))

    def _req(self, dt, trap) -> np.ndarray:
        return _per_instance(
            trap,
            lambda: 2.0 * self.henries / dt,
            lambda: self.henries / dt,
        )

    def stamp_matrix(self, A, mode, dt, trap):
        a, b = self.nodes
        row = self.row
        if a != 0:
            A[:, a - 1, row] += 1.0
        if b != 0:
            A[:, b - 1, row] -= 1.0
        if a != 0:
            A[:, row, a - 1] += 1.0
        if b != 0:
            A[:, row, b - 1] -= 1.0
        if mode == "dc":
            return
        if mode == "ic":
            A[:, row, row] += -_IC_INDUCTOR_R
            return
        A[:, row, row] += -self._req(dt, trap)

    def stamp_rhs(self, z, mode, t, dt, trap):
        if mode == "dc":
            return
        if mode == "ic":
            z[:, self.row] += -_IC_INDUCTOR_R * self.ic
            return
        req = self._req(dt, trap)
        veq = _per_instance(
            trap,
            lambda: -self.v - req * self.i,
            lambda: -req * self.i,
        )
        z[:, self.row] += veq

    def init_state(self, x):
        a, b = self.nodes
        self.i = self.ic.copy()
        self.v = _v(x, a) - _v(x, b)

    def commit(self, x, dt, trap):
        a, b = self.nodes
        self.i = np.array(x[:, self.row])
        self.v = _v(x, a) - _v(x, b)

    def current(self, x, mode, dt, trap):
        if mode == "ic":
            # The t=0 consistency stamp is a stiff short whose branch
            # unknown is not the inductor current; the state *is* ic.
            return self.ic.copy()
        return np.array(x[:, self.row])

    def state_snapshot(self):
        return self.i.copy(), self.v.copy()

    def state_restore(self, snap, mask):
        self.i[mask] = snap[0][mask]
        self.v[mask] = snap[1][mask]


class _MutualBank(_Bank):
    def __init__(self, elements, system, inductor_banks):
        super().__init__(elements, system)
        self.mutual = _require_finite(
            self.name, "mutual inductance", [el.mutual for el in elements]
        )
        self.pair = inductor_banks  # (bank of la, bank of lb)

    def _factor(self, dt, trap) -> np.ndarray:
        return _per_instance(
            trap,
            lambda: 2.0 * self.mutual / dt,
            lambda: self.mutual / dt,
        )

    def stamp_matrix(self, A, mode, dt, trap):
        if mode != "tran":
            return
        factor = self._factor(dt, trap)
        for own, other in (self.pair, self.pair[::-1]):
            A[:, own.row, other.row] += -factor

    def stamp_rhs(self, z, mode, t, dt, trap):
        if mode != "tran":
            return
        factor = self._factor(dt, trap)
        for own, other in (self.pair, self.pair[::-1]):
            z[:, own.row] += -factor * other.i


class _VoltageSourceBank(_Bank):
    has_current = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.row = system.branch_row_of(elements[0])
        shapes = [el.shape for el in elements]
        # Shared-shape fast path: the frozen shape dataclasses compare by
        # value, so identical stimuli are evaluated once per step.
        self.shared = shapes[0] if all(s == shapes[0] for s in shapes[1:]) else None
        self.shapes = shapes

    def _value(self, t):
        if isinstance(t, np.ndarray):
            # Adaptive lockstep: every instance sits at its own time.  The
            # shape dataclasses are scalar piecewise evaluators, so walk the
            # batch (sources are few; the loop is invisible next to solves).
            if self.shared is not None:
                return np.array([self.shared(tb) for tb in t])
            return np.array([s(tb) for s, tb in zip(self.shapes, t)])
        if self.shared is not None:
            return self.shared(t)
        return np.array([s(t) for s in self.shapes])

    def stamp_matrix(self, A, mode, dt, trap):
        plus, minus = self.nodes
        row = self.row
        if plus != 0:
            A[:, plus - 1, row] += 1.0
            A[:, row, plus - 1] += 1.0
        if minus != 0:
            A[:, minus - 1, row] -= 1.0
            A[:, row, minus - 1] -= 1.0

    def stamp_rhs(self, z, mode, t, dt, trap):
        z[:, self.row] += self._value(t)

    def current(self, x, mode, dt, trap):
        return np.array(x[:, self.row])


class _CurrentSourceBank(_Bank):
    def __init__(self, elements, system):
        super().__init__(elements, system)
        shapes = [el.shape for el in elements]
        self.shared = shapes[0] if all(s == shapes[0] for s in shapes[1:]) else None
        self.shapes = shapes

    def stamp_rhs(self, z, mode, t, dt, trap):
        frm, to = self.nodes
        if isinstance(t, np.ndarray):
            if self.shared is not None:
                value = np.array([self.shared(tb) for tb in t])
            else:
                value = np.array([s(tb) for s, tb in zip(self.shapes, t)])
        elif self.shared is not None:
            value = self.shared(t)
        else:
            value = np.array([s(t) for s in self.shapes])
        _add_rhs_current(z, frm, to, value)


class _MosfetBankAdapter(_Bank):
    """Nonlinear bank: restamped per Newton iterate via :class:`MosfetBank`."""

    has_current = True
    nonlinear = True

    def __init__(self, elements, system):
        super().__init__(elements, system)
        self.bank = MosfetBank(elements)

    def _bias(self, x):
        d, g, s, b = self.nodes
        vs = _v(x, s)
        return _v(x, g) - vs, _v(x, d) - vs, _v(x, b) - vs

    def stamp_matrix(self, A, mode, dt, trap, gmin: float = 0.0):
        # The gmin shunt is stamped by the device in the scalar engine but
        # is constant across iterates, so it lives in the cached linear
        # stack here (gmin differs between "ic" and "tran" solves; the
        # cache is keyed on mode).
        d, _, s, _ = self.nodes
        _add_conductance(A, d, s, gmin)

    def stamp_iterate(self, A, z, x) -> None:
        """Linearized device stamps for the whole ensemble.

        ``A``/``z`` are the full ``(B, n, n)``/``(B, n)`` work stacks;
        operating points are evaluated for every instance in one vectorized
        pass (instances share the stacked model's parameter axis).  Rows of
        instances that already converged or failed are stamped too — their
        solutions are simply never applied — because masking the math would
        cost more than the redundant flops at ensemble sizes where the
        per-operation overhead dominates.
        """
        d, g, s, b = self.nodes
        vgs, vds, vbs = self._bias(x)
        op = self.bank.partials(vgs, vds, vbs)
        gm, gds, gmbs = op.gm, op.gds, op.gmbs
        ieq = op.ids - gm * vgs - gds * vds - gmbs * vbs
        gsum = gm + gds + gmbs
        # KCL at drain: +Id; at source: -Id (mirrors MosfetElement.stamp).
        _add(A, d, g, gm)
        _add(A, d, d, gds)
        _add(A, d, b, gmbs)
        _add(A, d, s, -gsum)
        _add(A, s, g, -gm)
        _add(A, s, d, -gds)
        _add(A, s, b, -gmbs)
        _add(A, s, s, gsum)
        _add_rhs_current(z, d, s, ieq)

    def current(self, x, mode, dt, trap):
        return self.bank.ids(*self._bias(x))


class _Rank1Lane:
    """Sherman-Morrison Newton solves for the single-device common case.

    A MOSFET's linearized stamp touches only the drain and source KCL rows,
    and those two rows carry the *same* four-entry conductance row vector
    with opposite signs.  With one device bank the per-iterate matrix is
    therefore a rank-1 update of the cached linear stack:

        A_iter = A_lin + u v^T,    u = e_d - e_s (constant),
                                   v = per-iterate conductances,

    and with per-instance LU factorizations of ``A_lin`` (computed once per
    ``(mode, dt, trap, gmin)`` cache key, never forming the inverse
    explicitly) each Newton iterate's dense solve collapses to a handful of
    O(B n) operations:

        x = y - (Wu) (v^T y) / (1 + v^T Wu),    y = A_lin^{-1} (z - ieq u),

    where ``Wu = A_lin^{-1} u`` is one triangular solve per key and ``y``
    one per solve (``z`` is constant within a solve; only the ``ieq`` term
    varies per iterate and folds in as a rank-1 correction).  Backward
    substitution against the cached factors replaces the seed's explicit
    ``np.linalg.inv`` — same flop class per key, but no O(n^3)
    inverse-matrix product, and the triangular solves keep the error bound
    of pivoted LU instead of amplifying through an explicitly formed
    inverse on ill-conditioned stacks (stiff IC stamps).

    The lane is numerically a *different* solver than the batched LAPACK
    path, so iterates differ from the scalar engine's at rounding level;
    Newton contraction pins the converged points back together (the
    golden-parity suite bounds the waveform difference under the same 1e-9
    contract).  If the linear stack is singular (floating subcircuits) a
    zero pivot surfaces in the factors: the lane reports unavailable and
    the caller uses the dense batched solve, preserving the least-squares
    degradation path.  Without scipy there is no factorized solve; the
    lane stands down and the dense batched path (pure numpy) serves.
    """

    def __init__(self, adapter: _MosfetBankAdapter):
        self.adapter = adapter
        d, g, s, b = adapter.nodes
        # 0-based unknown columns; -1 marks ground (term dropped).
        self.dc = d - 1
        self.gc = g - 1
        self.sc = s - 1
        self.bc = b - 1
        self._key: tuple | None = None
        self._factors: list | None = None
        self.wu: np.ndarray | None = None

    def prepare(self, A: np.ndarray, key: tuple, alive: np.ndarray,
                identity: np.ndarray):
        """A solve handle (``self``) for this key, or None if unavailable."""
        if _lu_factor is None:
            return None
        if key != self._key:
            self._key = key
            self._factors = None
            self.wu = None
            src = A
            if not alive.all():
                # Failed instances may have any linear stamp; keep the
                # stack factorizable by swapping their rows for identity.
                src = A.copy()
                src[~alive] = identity
            factors = []
            with warnings.catch_warnings():
                # Exact singularity raises/warns depending on the scipy
                # version; both routes end in "lane unavailable".
                warnings.simplefilter("ignore")
                for k in range(len(src)):
                    try:
                        lu, piv = _lu_factor(src[k], check_finite=False)
                    except (ValueError, np.linalg.LinAlgError):
                        return None
                    if not np.isfinite(lu).all() or (
                        np.abs(np.diagonal(lu)) == 0.0
                    ).any():
                        return None
                    factors.append((lu, piv))
            if self.dc < 0 and self.sc < 0:
                # Degenerate d == s == ground: no device coupling at all.
                wu = np.zeros(A.shape[:2])
            else:
                u = np.zeros(A.shape[1])
                if self.dc >= 0:
                    u[self.dc] += 1.0
                if self.sc >= 0:
                    u[self.sc] -= 1.0
                wu = np.stack(
                    [_lu_solve(f, u, check_finite=False) for f in factors]
                )
                if not np.isfinite(wu).all():
                    return None
            self._factors = factors
            self.wu = wu
        return self if self._factors is not None else None

    def solve(self, z: np.ndarray) -> np.ndarray:
        """``A_lin^{-1} z`` per instance through the cached factorizations."""
        return np.stack(
            [_lu_solve(f, z[k], check_finite=False)
             for k, f in enumerate(self._factors)]
        )

    def bias(self, x: np.ndarray):
        """(vgs, vds, vbs) per instance, without per-node helper calls."""
        vs = x[:, self.sc] if self.sc >= 0 else 0.0
        vg = x[:, self.gc] if self.gc >= 0 else 0.0
        vd = x[:, self.dc] if self.dc >= 0 else 0.0
        vb = x[:, self.bc] if self.bc >= 0 else 0.0
        return vg - vs, vd - vs, vb - vs

    def vdot(self, m: np.ndarray, gm, gds, gmbs, gsum):
        """``v^T m`` per instance: v has entries only at g, d, b, s."""
        acc = None
        if self.gc >= 0:
            acc = gm * m[:, self.gc]
        if self.dc >= 0:
            t = gds * m[:, self.dc]
            acc = t if acc is None else acc + t
        if self.bc >= 0:
            t = gmbs * m[:, self.bc]
            acc = t if acc is None else acc + t
        if self.sc >= 0:
            t = gsum * m[:, self.sc]
            acc = -t if acc is None else acc - t
        return 0.0 if acc is None else acc


def _build_banks(circuits: list[Circuit], system: MnaSystem) -> list[_Bank]:
    """One bank per template element position, instances column-aligned."""
    columns = [c.elements for c in circuits]
    banks: list[_Bank] = []
    by_position: dict[int, _Bank] = {}
    template = columns[0]
    position = {id(el): k for k, el in enumerate(template)}
    for k, el in enumerate(template):
        instances = [col[k] for col in columns]
        if isinstance(el, Resistor):
            bank = _ResistorBank(instances, system)
        elif isinstance(el, Capacitor):
            bank = _CapacitorBank(instances, system)
        elif isinstance(el, Inductor):
            bank = _InductorBank(instances, system)
        elif isinstance(el, MutualInductance):
            pair = (by_position[position[id(el.la)]], by_position[position[id(el.lb)]])
            bank = _MutualBank(instances, system, pair)
        elif isinstance(el, VoltageSource):
            bank = _VoltageSourceBank(instances, system)
        elif isinstance(el, CurrentSource):
            bank = _CurrentSourceBank(instances, system)
        elif isinstance(el, MosfetElement):
            bank = _MosfetBankAdapter(instances, system)
        else:  # pragma: no cover - lockstep_signature rejects these first
            raise BatchIncompatibleError(
                f"element {el.name!r} ({type(el).__name__}) has no batched stamp"
            )
        by_position[k] = bank
        banks.append(bank)
    return banks


class _BatchRecorder:
    """Capacity-doubling (steps, B, ...) sample buffers for one ensemble."""

    def __init__(self, batch: int, num_nodes: int, num_currents: int,
                 capacity: int = 256):
        self._n = 0
        self._times = np.empty(capacity)
        self._nodes = np.empty((capacity, batch, num_nodes))
        self._currents = np.empty((capacity, batch, num_currents))

    def append(self, t: float, node_x: np.ndarray, currents: np.ndarray) -> None:
        if self._n == len(self._times):
            cap = 2 * len(self._times)
            self._times = np.resize(self._times, cap)
            self._nodes = np.resize(self._nodes, (cap,) + self._nodes.shape[1:])
            self._currents = np.resize(self._currents, (cap,) + self._currents.shape[1:])
        i = self._n
        self._times[i] = t
        self._nodes[i] = node_x
        self._currents[i] = currents
        self._n += 1

    def finish(self):
        n = self._n
        return (np.array(self._times[:n]), self._nodes[:n], self._currents[:n])


def batch_transient(
    circuits,
    tstop: float,
    dt: float,
    tstart: float = 0.0,
    options: TransientOptions | None = None,
) -> list[TransientResult]:
    """Simulate an ensemble of same-topology circuits in lockstep.

    Args:
        circuits: the ensemble (not mutated); all members must share one
            :func:`lockstep_signature` — same topology, element names and
            source breakpoints, differing only in parameter values.
        tstop: shared end time in seconds.
        dt: shared base time step in seconds.
        tstart: shared start time.
        options: engine knobs; ``adaptive`` routes to the per-instance
            LTE-masked lockstep (each instance walks its *own* accepted
            step sequence, bit-identical to the scalar controller's);
            ``legacy_reference`` has no batched form and raises.

    Returns:
        One :class:`~repro.spice.transient.TransientResult` per circuit, in
        input order, each with its own per-instance telemetry record.
        Instances that needed the step-halving/gmin recovery ladder are
        transparently re-run on the scalar engine (their telemetry carries
        ``batch_fallbacks == 1``).

    Raises:
        BatchIncompatibleError: mixed topologies or unsupported options.
        ConvergenceError: an instance failed even on the scalar ladder.
    """
    if tstop <= tstart:
        raise ValueError("tstop must be greater than tstart")
    if dt <= 0:
        raise ValueError("dt must be positive")
    opts = options or TransientOptions()
    if opts.legacy_reference:
        raise BatchIncompatibleError("the frozen legacy engine has no batched form")

    circuits = list(circuits)
    if not circuits:
        return []
    sig = lockstep_signature(circuits[0])
    for c in circuits[1:]:
        if lockstep_signature(c) != sig:
            raise BatchIncompatibleError(
                f"circuit {c.title!r} does not share the ensemble topology"
            )

    batch = len(circuits)
    systems = [MnaSystem(c) for c in circuits]  # assigns branch layout
    system = systems[0]
    n = system.size
    nn = system.num_node_unknowns
    if n == 0:
        raise BatchIncompatibleError("circuit has no unknowns")
    banks = _build_banks(circuits, system)
    linear_banks = [b for b in banks if not b.nonlinear]
    device_banks = [b for b in banks if b.nonlinear]
    measured = [b for b in banks if b.has_current]
    # One nonlinear device: its stamp is a rank-1 matrix update, so Newton
    # iterates can reuse a cached inverse of the linear stack (see
    # _Rank1Lane).  Multi-device ensembles use the dense batched solve.
    rank1 = _Rank1Lane(device_banks[0]) if len(device_banks) == 1 else None

    method = opts.method
    wall_start = time.perf_counter()

    if opts.adaptive:
        return _adaptive_lockstep(circuits, system, banks, opts, tstop, dt,
                                  tstart, wall_start)

    # Vectorized per-instance telemetry counters (folded into real
    # SolverTelemetry records at the end; python-object updates per step
    # would cost more than the solves).
    # One linear-base assembly per solve and one device restamp per iterate
    # (exactly the scalar fast path's counting), so base_assemblies aliases
    # newton_solves and nonlinear_restamps aliases newton_iterations.
    c_solves = np.zeros(batch, dtype=int)
    c_iters = np.zeros(batch, dtype=int)
    c_steps = np.zeros(batch, dtype=int)

    alive = np.ones(batch, dtype=bool)      # still simulated in lockstep
    fallback = np.zeros(batch, dtype=bool)  # needs the scalar engine

    x = np.zeros((batch, n))

    # Cached linear stack: constant while (mode, dt, trap-phase, gmin) are.
    lin_A = np.zeros((batch, n, n))
    lin_z = np.zeros((batch, n))
    lin_key: tuple | None = None

    def linear_matrix(mode: str, dt_now: float, trap: bool, gmin: float) -> np.ndarray:
        nonlocal lin_key
        key = (mode, dt_now, trap, gmin)
        if key != lin_key:
            lin_A[:] = 0.0
            for bank in linear_banks:
                bank.stamp_matrix(lin_A, mode, dt_now, trap)
            for bank in device_banks:
                bank.stamp_matrix(lin_A, mode, dt_now, trap, gmin=gmin)
            lin_key = key
        return lin_A

    def linear_rhs(mode: str, t_now: float, dt_now: float, trap: bool) -> np.ndarray:
        lin_z[:] = 0.0
        for bank in linear_banks:
            bank.stamp_rhs(lin_z, mode, t_now, dt_now, trap)
        return lin_z

    # Preallocated per-iterate work stacks (copied from the cached linear
    # part, then restamped by the device banks).
    work_A = np.empty((batch, n, n))
    work_z = np.empty((batch, n))
    identity = np.eye(n)

    def mark_failed(bad: np.ndarray) -> None:
        alive[bad] = False
        fallback[bad] = True

    def newton_batch(mode: str, t_now: float, dt_now: float, trap: bool,
                     gmin: float) -> None:
        """One lockstep solve; failing instances leave the ensemble.

        The whole ensemble is computed unconditionally every iterate and
        per-instance masks gate only the *bookkeeping* (which rows accept
        the update, which count an iteration): at ensemble sizes where
        numpy's per-operation dispatch dominates, redundant flops on
        settled rows are cheaper than gather/scatter index machinery.
        """
        nonlocal x
        if not alive.any():
            return
        np.add(c_solves, alive, out=c_solves)
        A = linear_matrix(mode, dt_now, trap, gmin)
        z = linear_rhs(mode, t_now, dt_now, trap)
        any_dead = not alive.all()

        if not device_banks:
            # Purely linear lockstep: the Newton map is affine, one direct
            # batched solve lands on the solution (iteration count stays 0,
            # matching the scalar direct-solve path).
            np.copyto(work_A, A)
            np.copyto(work_z, z)
            if any_dead:
                work_A[~alive] = identity
                work_z[~alive] = 0.0
            xn = _solve_stack(work_A, work_z)
            finite = np.isfinite(xn).all(axis=1)
            x = np.where((alive & finite)[:, None], xn, x)
            bad = alive & ~finite
            if bad.any():
                mark_failed(bad)
            return

        active = alive.copy()
        all_active = not any_dead
        lane = None
        if rank1 is not None:
            lane = rank1.prepare(A, (mode, dt_now, trap, gmin), alive, identity)
            if lane is not None:
                # z is constant within the solve; only the ieq term of the
                # device RHS varies per iterate, folded in below.
                y_base = lane.solve(z)
                wu = lane.wu
                dev = rank1.adapter
        for _ in range(opts.max_newton):
            np.add(c_iters, active, out=c_iters)
            if lane is not None:
                vgs, vds, vbs = rank1.bias(x)
                op = dev.bank.partials(vgs, vds, vbs)
                gm, gds, gmbs = op.gm, op.gds, op.gmbs
                ieq = op.ids - gm * vgs - gds * vds - gmbs * vbs
                gsum = gm + gds + gmbs
                y = y_base - ieq[:, None] * wu
                vy = rank1.vdot(y, gm, gds, gmbs, gsum)
                vwu = rank1.vdot(wu, gm, gds, gmbs, gsum)
                # A near-singular update (1 + v^T W u ~ 0) yields non-finite
                # rows, caught below and routed to the scalar ladder.
                xn = y - wu * (vy / (1.0 + vwu))[:, None]
            else:
                np.copyto(work_A, A)
                np.copyto(work_z, z)
                for bank in device_banks:
                    bank.stamp_iterate(work_A, work_z, x)
                if any_dead:
                    # Keep the stack solvable: failed instances' rows may
                    # hold garbage stamps, so overwrite them with a trivial
                    # system.
                    dead = ~alive
                    work_A[dead] = identity
                    work_z[dead] = 0.0
                xn = _solve_stack(work_A, work_z)
            if not np.isfinite(xn).all():
                finite = np.isfinite(xn).all(axis=1)
                bad = active & ~finite
                if bad.any():
                    mark_failed(bad)
                    active = active & finite
                    any_dead = True
                    all_active = False
                    if not active.any():
                        return
                # Neutralize the non-finite rows so the update arithmetic
                # below stays warning-free (their x must not move anyway).
                xn = np.where(finite[:, None], xn, x)
            dx = xn - x
            adx = np.abs(dx)
            step = adx.max(axis=1)
            damped = step > DEFAULT_MAX_UPDATE
            if damped.any():
                scale = DEFAULT_MAX_UPDATE / np.maximum(step, DEFAULT_MAX_UPDATE)
                moved = np.where(damped[:, None], x + dx * scale[:, None], xn)
                none_damped = False
            else:
                moved = xn
                none_damped = True
            x = moved if all_active else np.where(active[:, None], moved, x)
            # Same test as the scalar loop: damped iterations never declare
            # convergence; undamped ones converge when the update is small.
            conv = (adx <= opts.abstol + opts.reltol * np.abs(xn)).all(axis=1)
            settled = (active & conv) if none_damped else (active & ~damped & conv)
            if settled.any():
                active = active & ~settled
                all_active = False
                if not active.any():
                    return
        # Iteration budget exhausted: remaining active instances would need
        # the recovery ladder — hand them to the scalar engine.
        mark_failed(active)

    # -- t=0 consistency solve -------------------------------------------------------
    # The surrounding span carries the whole-ensemble run; with tracing on,
    # the ic/stepping phase shares below derive from the sub-span clocks
    # (trace.elapsed), otherwise from the seed perf-counter anchors.
    with trace.span("batch_transient", batch=batch, tstop=tstop, dt=dt) as bsp:
        with trace.span("ic") as ic_sp:
            newton_batch("ic", tstart, dt, trap=False, gmin=max(opts.gmin, 1e-9))
        ic_elapsed = trace.elapsed(ic_sp, wall_start)
        for bank in banks:
            bank.init_state(x)

        template_circuit = circuits[0]
        breakpoints = [b for b in template_circuit.breakpoints() if tstart < b < tstop]
        breakpoints.append(tstop)

        recorder = _BatchRecorder(batch, nn, len(measured))
        current_block = np.empty((batch, len(measured)))

        def sample_currents(mode: str, dt_now: float, trap: bool) -> np.ndarray:
            for j, bank in enumerate(measured):
                current_block[:, j] = bank.current(x, mode, dt_now, trap)
            return current_block

        recorder.append(tstart, x[:, :nn], sample_currents("ic", dt, trap=False))

        t = tstart
        h = dt
        bp_iter = iter(breakpoints)
        next_bp = next(bp_iter)
        first_step = True
        stepping_start = time.perf_counter()

        with trace.span("stepping") as step_sp:
            while t < tstop - 1e-21 and alive.any():
                h_step = min(h, next_bp - t)
                trap = method == "trap" and not first_step
                newton_batch("tran", t + h_step, h_step, trap, opts.gmin)
                # Record, then commit state (commit consumes the pre-step
                # state).
                sample_currents("tran", h_step, trap)
                for bank in banks:
                    bank.commit(x, h_step, trap)
                first_step = False
                grown = min(dt, h_step * 2.0)

                t += h_step
                c_steps[alive] += 1
                recorder.append(t, x[:, :nn], current_block)

                if abs(t - next_bp) < 1e-21 or t >= next_bp:
                    # Source slope discontinuity: restart the integrator with
                    # a backward-Euler step (see the scalar engine).
                    first_step = True
                    try:
                        next_bp = next(bp_iter)
                    except StopIteration:
                        next_bp = tstop
                h = grown

        now = time.perf_counter()
        times, node_block, current_block_all = recorder.finish()
        current_names = [b.name for b in measured]

        # Shared wall clock is split evenly across instance records so that
        # aggregated telemetry still sums to real elapsed time.
        ic_share = ic_elapsed / batch
        stepping_share = trace.elapsed(step_sp, stepping_start) / batch
        total_share = (now - wall_start) / batch

        kernel_on = any(b.bank.kernel_engaged for b in device_banks)
        results: list[TransientResult | None] = [None] * batch
        for b in range(batch):
            if not alive[b]:
                continue
            tel = SolverTelemetry(
                newton_solves=int(c_solves[b]),
                newton_iterations=int(c_iters[b]),
                accepted_steps=int(c_steps[b]),
                base_assemblies=int(c_solves[b]),
                nonlinear_restamps=int(c_iters[b]),
            )
            record_backend(tel, "dense_lu")
            if kernel_on:
                record_backend(tel, "numba_kernel")
            tel.add_phase_seconds("ic", ic_share)
            tel.add_phase_seconds("stepping", stepping_share)
            tel.add_phase_seconds("total", total_share)
            record_session(tel)
            currents = {
                name: np.array(current_block_all[:, b, j])
                for j, name in enumerate(current_names)
            }
            results[b] = TransientResult(
                circuits[b], times, np.array(node_block[:, b, :]), currents,
                telemetry=tel,
            )

        bsp.set_attribute("fallbacks", int(fallback.sum()))
        for b in np.flatnonzero(fallback):
            # This instance needed the recovery ladder: the scalar engine
            # owns step halving, gmin stepping and their telemetry.  Its
            # partial batched work is discarded (and not attributed).
            result = transient(circuits[b], tstop, dt, tstart=tstart, options=opts)
            result.telemetry.batch_fallbacks += 1
            record_session(SolverTelemetry(batch_fallbacks=1))
            results[b] = result

    return results


def _adaptive_lockstep(circuits, system: MnaSystem, banks, opts, tstop: float,
                       dt: float, tstart: float, wall_start: float):
    """LTE-controlled lockstep: every instance walks its own step sequence.

    The fixed-step lockstep shares one grid across the ensemble; the
    adaptive controller cannot, because each instance's local truncation
    error drives its own step sizes.  Instead of serializing, the engine
    keeps the ensemble *phase-aligned*: every outer round runs the step-
    doubling triplet — one full ``h`` step (BIG), two ``h/2`` steps (MID,
    HALF2) — for all unfinished instances at once, each at its **own**
    ``(t, h, integrator-phase)`` carried as per-instance arrays.  A
    participation mask gates which rows of each vectorized solve are real;
    masked-out lanes get identity rows and their results are discarded.

    Parity contract: the controller is the scalar engine's, executed
    elementwise — the same companion arithmetic per lane (``np.where``
    blends preserve the selected branch bitwise), the same Newton damping
    and convergence tests, the same LTE formula, the same
    shrink/floor-accept/regrow float expressions, the same breakpoint
    landing rules.  Each instance therefore accepts and rejects *exactly*
    the steps the scalar engine would, with identical telemetry counts
    (``newton_solves``/``iterations``, ``accepted_steps``,
    ``step_rejections``/``retries``, ``lte_rejections``); ``mask_steps``
    additionally counts the instance's masked solve participations —
    a batch-only diagnostic of lockstep efficiency.

    Newton failure handling is per instance: a failing lane halves its own
    step without disturbing its neighbours; only a lane that bottoms out
    below ``min_dt`` leaves the ensemble for the scalar engine (which owns
    the terminal ConvergenceError and its telemetry; the record carries
    ``batch_fallbacks = 1`` like the fixed path's ladder exits).
    """
    batch = len(circuits)
    n = system.size
    nn = system.num_node_unknowns
    linear_banks = [b for b in banks if not b.nonlinear]
    device_banks = [b for b in banks if b.nonlinear]
    measured = [b for b in banks if b.has_current]
    stateful = [b for b in banks if b.state_snapshot() is not None]
    method_trap = opts.method == "trap"
    min_h = opts.min_dt if opts.min_dt is not None else dt / _MIN_STEP_DIVISOR

    # Vectorized per-instance telemetry (same counting points as the scalar
    # adaptive loop; folded into SolverTelemetry records at the end).
    c_solves = np.zeros(batch, dtype=int)
    c_iters = np.zeros(batch, dtype=int)
    c_steps = np.zeros(batch, dtype=int)
    c_rej = np.zeros(batch, dtype=int)
    c_retry = np.zeros(batch, dtype=int)
    c_lte = np.zeros(batch, dtype=int)
    c_mask = np.zeros(batch, dtype=int)

    alive = np.ones(batch, dtype=bool)
    fallback = np.zeros(batch, dtype=bool)
    x_acc = np.zeros((batch, n))

    lin_A = np.zeros((batch, n, n))
    lin_z = np.zeros((batch, n))
    lin_key: tuple | None = None
    work_A = np.empty((batch, n, n))
    work_z = np.empty((batch, n))
    identity = np.eye(n)

    def linear_matrix(mode, dt_arr, trap_arr, gmin):
        nonlocal lin_key
        # Per-instance steps and phases enter the cache key by value; the
        # stack is reused whenever a whole round repeats them (e.g. every
        # instance regrowing at the cap).
        key = (mode, dt_arr.tobytes(), trap_arr.tobytes(), gmin)
        if key != lin_key:
            lin_A[:] = 0.0
            for bank in linear_banks:
                bank.stamp_matrix(lin_A, mode, dt_arr, trap_arr)
            for bank in device_banks:
                bank.stamp_matrix(lin_A, mode, dt_arr, trap_arr, gmin=gmin)
            lin_key = key
        return lin_A

    def linear_rhs(mode, t_arr, dt_arr, trap_arr):
        lin_z[:] = 0.0
        for bank in linear_banks:
            bank.stamp_rhs(lin_z, mode, t_arr, dt_arr, trap_arr)
        return lin_z

    def newton_round(mode, t_arr, dt_arr, trap_arr, gmin, mask, x0):
        """One phase solve over the masked instances.

        Returns ``(x, failed)``: rows outside ``mask`` keep ``x0``'s
        values, ``failed`` flags masked instances whose solve did not
        converge (budget exhausted or a non-finite iterate) — the
        per-instance analogue of the scalar engine's ConvergenceError.
        """
        failed = np.zeros(batch, dtype=bool)
        x = x0.copy()
        if not mask.any():
            return x, failed
        np.add(c_solves, mask, out=c_solves)
        A = linear_matrix(mode, dt_arr, trap_arr, gmin)
        z = linear_rhs(mode, t_arr, dt_arr, trap_arr)

        if not device_banks:
            # Affine system: one direct batched solve, iterations stay 0
            # (matching the scalar direct-solve path).
            np.copyto(work_A, A)
            np.copyto(work_z, z)
            off = ~mask
            if off.any():
                work_A[off] = identity
                work_z[off] = 0.0
            xn = _solve_stack(work_A, work_z)
            finite = np.isfinite(xn).all(axis=1)
            x = np.where((mask & finite)[:, None], xn, x)
            failed = mask & ~finite
            return x, failed

        active = mask.copy()
        for _ in range(opts.max_newton):
            np.add(c_iters, active, out=c_iters)
            np.copyto(work_A, A)
            np.copyto(work_z, z)
            for bank in device_banks:
                bank.stamp_iterate(work_A, work_z, x)
            off = ~active
            if off.any():
                work_A[off] = identity
                work_z[off] = 0.0
            xn = _solve_stack(work_A, work_z)
            finite = np.isfinite(xn).all(axis=1)
            bad = active & ~finite
            if bad.any():
                failed |= bad
                active = active & finite
                if not active.any():
                    return x, failed
                xn = np.where(finite[:, None], xn, x)
            dx = xn - x
            adx = np.abs(dx)
            step = adx.max(axis=1)
            damped = step > DEFAULT_MAX_UPDATE
            if damped.any():
                scale = DEFAULT_MAX_UPDATE / np.maximum(step, DEFAULT_MAX_UPDATE)
                moved = np.where(damped[:, None], x + dx * scale[:, None], xn)
            else:
                moved = xn
            x = np.where(active[:, None], moved, x)
            conv = (adx <= opts.abstol + opts.reltol * np.abs(xn)).all(axis=1)
            settled = active & ~damped & conv
            if settled.any():
                active = active & ~settled
                if not active.any():
                    return x, failed
        failed |= active
        return x, failed

    results: list[TransientResult | None] = [None] * batch
    with trace.span("batch_transient", batch=batch, tstop=tstop, dt=dt,
                    adaptive=True) as bsp:
        # -- t=0 consistency solve ---------------------------------------------------
        dt0 = np.full(batch, dt)
        no_trap = np.zeros(batch, dtype=bool)
        with trace.span("ic") as ic_sp:
            x_acc, ic_failed = newton_round(
                "ic", np.full(batch, tstart), dt0, no_trap,
                max(opts.gmin, 1e-9), alive, x_acc)
            if ic_failed.any():
                alive[ic_failed] = False
                fallback[ic_failed] = True
        ic_elapsed = trace.elapsed(ic_sp, wall_start)
        for bank in banks:
            bank.init_state(x_acc)

        bps = [b for b in circuits[0].breakpoints() if tstart < b < tstop]
        bps.append(tstop)
        bp_arr = np.array(bps)
        bp_idx = np.zeros(batch, dtype=int)
        last_bp = len(bps) - 1

        current_names = [b.name for b in measured]
        recorders = [_SampleRecorder(nn, current_names) for _ in range(batch)]
        cur_block = np.empty((batch, len(measured)))

        def sample_currents(mode, dt_now, trap_now, x):
            for j, bank in enumerate(measured):
                cur_block[:, j] = bank.current(x, mode, dt_now, trap_now)
            return cur_block

        sample_currents("ic", dt, False, x_acc)
        for b in np.flatnonzero(alive):
            recorders[b].append(tstart, x_acc[b, :nn], cur_block[b])

        # Per-instance integrator state.
        t_i = np.full(batch, tstart)
        h_i = np.full(batch, dt)
        # A pending reject-retry overrides the min(h, breakpoint-gap)
        # clamp: the scalar controller does not re-clamp a halved/shrunk
        # step within the retry loop.  NaN means "no retry pending".
        retry_h = np.full(batch, np.nan)
        first_step = np.ones(batch, dtype=bool)
        stepping_start = time.perf_counter()

        with trace.span("stepping") as step_sp:
            while True:
                pending = alive & (t_i < tstop - 1e-21)
                if not pending.any():
                    break
                np.add(c_mask, pending, out=c_mask)
                gap = bp_arr[bp_idx] - t_i
                h_step = np.where(np.isnan(retry_h),
                                  np.minimum(h_i, gap), retry_h)
                # Finished/fallen-back lanes ride along with a harmless
                # dummy step (their results are never consumed; the dummy
                # keeps the vectorized companion math division-safe).
                h_step = np.where(pending, h_step, 1.0)
                if method_trap:
                    trap_big = pending & ~first_step
                else:
                    trap_big = no_trap

                # Step-doubling triplet, every lane at its own (t, h).
                x_big, fail_big = newton_round(
                    "tran", t_i + h_step, h_step, trap_big, opts.gmin,
                    pending, x_acc)
                ok = pending & ~fail_big

                half = h_step / 2.0
                x_mid, fail_mid = newton_round(
                    "tran", t_i + half, half, trap_big, opts.gmin, ok, x_acc)
                ok = ok & ~fail_mid

                # Mid-point commit for lanes still in flight; the snapshot
                # restores every other lane afterwards (commit is all-lane
                # vectorized math) and, at the end of the round, every lane
                # that did not accept.
                snaps = [bank.state_snapshot() for bank in stateful]
                for bank in banks:
                    bank.commit(x_mid, half, trap_big)
                not_ok = ~ok
                for bank, snap in zip(stateful, snaps):
                    bank.state_restore(snap, not_ok)

                # The second half step always runs on post-commit history
                # (the scalar engine's mid-commit clears first_step).
                trap_h2 = np.full(batch, method_trap)
                x_new, fail_h2 = newton_round(
                    "tran", t_i + h_step, half, trap_h2, opts.gmin, ok, x_mid)
                ok = ok & ~fail_h2

                # Newton failures: per-instance step halving, scalar-engine
                # fallback once a lane's ladder bottoms out.
                nfail = pending & ~ok
                if nfail.any():
                    np.add(c_rej, nfail, out=c_rej)
                    h_next = h_step / 2.0
                    dead = nfail & (h_next < min_h)
                    if dead.any():
                        alive[dead] = False
                        fallback[dead] = True
                    retrying = nfail & ~dead
                    np.add(c_retry, retrying, out=c_retry)
                    retry_h[retrying] = h_next[retrying]

                # LTE control (scalar formulas, elementwise).
                err = np.zeros(batch)
                if nn and ok.any():
                    scale = opts.lte_atol + opts.lte_rtol * np.abs(x_new[:, :nn])
                    err = np.max(
                        np.abs(x_big[:, :nn] - x_new[:, :nn]) / scale, axis=1)
                lte_bad = ok & (err > 1.0)
                np.add(c_lte, lte_bad, out=c_lte)
                pos = err > 0.0
                inv_cbrt = np.ones(batch)
                inv_cbrt[pos] = err[pos] ** (-1.0 / 3.0)
                h_shrunk = np.maximum(
                    h_step * np.maximum(0.9 * inv_cbrt, 0.25), min_h)
                # Accept-at-the-floor quirk: a shrink clamped to min_h is
                # accepted with the *old* step's solutions but advances t
                # by the *new* (floored) step — exactly the scalar loop's
                # reassign-then-break.
                floor_acc = lte_bad & (h_shrunk <= min_h)
                accepted = (ok & ~lte_bad) | floor_acc
                lte_retry = lte_bad & ~floor_acc
                retry_h[lte_retry] = h_shrunk[lte_retry]

                # Currents sample the pre-commit (mid-committed) history,
                # then the final half-step commit lands; every lane that
                # did not accept is rolled back to its pre-round state.
                sample_currents("tran", half, trap_h2, x_new)
                for bank in banks:
                    bank.commit(x_new, half, trap_h2)
                not_acc = ~accepted
                for bank, snap in zip(stateful, snaps):
                    bank.state_restore(snap, not_acc)

                if accepted.any():
                    h_used = np.where(floor_acc, h_shrunk, h_step)
                    # Regrowth from the rejecting err on floor-accepts,
                    # from the accepted err otherwise — scalar's `factor`.
                    factor = np.full(batch, opts.max_growth)
                    factor[pos] = 0.9 * inv_cbrt[pos]
                    grown = np.minimum(dt, h_used * np.minimum(
                        np.maximum(factor, 0.25), opts.max_growth))
                    t_i = np.where(accepted, t_i + h_used, t_i)
                    x_acc = np.where(accepted[:, None], x_new, x_acc)
                    np.add(c_steps, accepted, out=c_steps)
                    h_i = np.where(accepted, grown, h_i)
                    retry_h[accepted] = np.nan
                    first_step = first_step & ~accepted
                    nbp = bp_arr[bp_idx]
                    landed = accepted & (
                        (np.abs(t_i - nbp) < 1e-21) | (t_i >= nbp))
                    if landed.any():
                        # Source slope discontinuity: restart the lane's
                        # integrator with a backward-Euler step.
                        first_step = first_step | landed
                        bp_idx = np.where(
                            landed, np.minimum(bp_idx + 1, last_bp), bp_idx)
                    for b in np.flatnonzero(accepted):
                        recorders[b].append(t_i[b], x_new[b, :nn], cur_block[b])

        now = time.perf_counter()
        ic_share = ic_elapsed / batch
        stepping_share = trace.elapsed(step_sp, stepping_start) / batch
        total_share = (now - wall_start) / batch

        kernel_on = any(b.bank.kernel_engaged for b in device_banks)
        for b in range(batch):
            if not alive[b]:
                continue
            times, nodes, currents = recorders[b].finish()
            tel = SolverTelemetry(
                newton_solves=int(c_solves[b]),
                newton_iterations=int(c_iters[b]),
                accepted_steps=int(c_steps[b]),
                step_rejections=int(c_rej[b]),
                step_retries=int(c_retry[b]),
                lte_rejections=int(c_lte[b]),
                base_assemblies=int(c_solves[b]),
                nonlinear_restamps=int(c_iters[b]),
                mask_steps=int(c_mask[b]),
            )
            record_backend(tel, "dense_lu")
            if kernel_on:
                record_backend(tel, "numba_kernel")
            tel.add_phase_seconds("ic", ic_share)
            tel.add_phase_seconds("stepping", stepping_share)
            tel.add_phase_seconds("total", total_share)
            record_session(tel)
            results[b] = TransientResult(circuits[b], times, nodes, currents,
                                         telemetry=tel)

        bsp.set_attribute("fallbacks", int(fallback.sum()))
        for b in np.flatnonzero(fallback):
            # This lane needed the scalar engine's recovery ladder (or its
            # terminal ConvergenceError); partial batched work is discarded.
            result = transient(circuits[b], tstop, dt, tstart=tstart,
                               options=opts)
            result.telemetry.batch_fallbacks += 1
            record_session(SolverTelemetry(batch_fallbacks=1))
            results[b] = result

    return results


def _solve_stack(A: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Batched dense solve with the scalar engine's singular fallback.

    ``numpy.linalg.solve`` rejects the whole stack when any one matrix is
    singular; the scalar path degrades that instance to least squares
    (floating subcircuits), so mirror it per instance on failure.  Instead
    of serializing the entire batch, one vectorized ``slogdet`` over the
    stack screens the singular lanes up front: the solvable majority gets a
    single batched re-solve and only the degenerate few pay the per-lane
    least-squares path — one bad instance no longer turns the whole
    ensemble's iterate into B sequential LAPACK calls.
    """
    try:
        # NumPy >= 2.0 treats a 2-D ``b`` as one matrix, not a vector
        # stack, so carry an explicit trailing axis.
        return np.linalg.solve(A, z[..., None])[..., 0]
    except np.linalg.LinAlgError:
        sign, _ = np.linalg.slogdet(A)
        good = sign != 0
        out = np.empty_like(z)
        if good.any():
            try:
                out[good] = np.linalg.solve(A[good], z[good, :, None])[..., 0]
            except np.linalg.LinAlgError:
                # The determinant screen can miss a pivot-level breakdown;
                # only then serialize the screened lanes.
                for k in np.flatnonzero(good):
                    try:
                        out[k] = np.linalg.solve(A[k], z[k])
                    except np.linalg.LinAlgError:
                        out[k], *_ = np.linalg.lstsq(A[k], z[k], rcond=None)
        for k in np.flatnonzero(~good):
            out[k], *_ = np.linalg.lstsq(A[k], z[k], rcond=None)
        return out
