"""Source waveform shapes for independent V/I sources.

Each shape is a callable ``value(t)`` plus a ``breakpoints()`` list of corner
times; the transient engine forces time steps to land exactly on breakpoints
so that piecewise-linear corners (e.g. the end of the input ramp, where the
maximum SSN occurs) are never straddled.
"""

from __future__ import annotations

import dataclasses

import numpy as np


class SourceShape:
    """Base class for source waveforms."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> list[float]:
        """Times at which the waveform has slope discontinuities."""
        return []


@dataclasses.dataclass(frozen=True)
class Dc(SourceShape):
    """Constant value."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclasses.dataclass(frozen=True)
class Ramp(SourceShape):
    """Linear ramp from v0 to v1 starting at ``t_start``, lasting ``t_rise``.

    This is the paper's input stimulus: ``Vin(t) = sr * t`` with slope
    ``sr = (v1 - v0) / t_rise``, held at ``v1`` afterwards.
    """

    v0: float
    v1: float
    t_start: float
    t_rise: float

    def __post_init__(self):
        if self.t_rise <= 0:
            raise ValueError("ramp rise time must be positive")

    @property
    def slope(self) -> float:
        return (self.v1 - self.v0) / self.t_rise

    def __call__(self, t: float) -> float:
        if t <= self.t_start:
            return self.v0
        if t >= self.t_start + self.t_rise:
            return self.v1
        return self.v0 + self.slope * (t - self.t_start)

    def breakpoints(self) -> list[float]:
        return [self.t_start, self.t_start + self.t_rise]


@dataclasses.dataclass(frozen=True)
class Pulse(SourceShape):
    """SPICE-style pulse: delay, rise, width, fall, period (single period)."""

    v0: float
    v1: float
    delay: float
    rise: float
    width: float
    fall: float

    def __post_init__(self):
        if min(self.rise, self.fall) <= 0 or self.width < 0:
            raise ValueError("pulse rise/fall must be positive and width >= 0")

    def __call__(self, t: float) -> float:
        t = t - self.delay
        if t <= 0:
            return self.v0
        if t < self.rise:
            return self.v0 + (self.v1 - self.v0) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v1
        t -= self.width
        if t < self.fall:
            return self.v1 + (self.v0 - self.v1) * t / self.fall
        return self.v0

    def breakpoints(self) -> list[float]:
        edges = np.cumsum([self.delay, self.rise, self.width, self.fall])
        return [float(e) for e in edges]


class Pwl(SourceShape):
    """Piecewise-linear waveform through (t, v) points; flat outside."""

    def __init__(self, points):
        pts = [(float(t), float(v)) for t, v in points]
        if len(pts) < 2:
            raise ValueError("a PWL source needs at least two points")
        times = [t for t, _ in pts]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self._t = np.array(times)
        self._v = np.array([v for _, v in pts])

    def __call__(self, t: float) -> float:
        return float(np.interp(t, self._t, self._v))

    def breakpoints(self) -> list[float]:
        return [float(t) for t in self._t]
