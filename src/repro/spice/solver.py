"""Damped Newton-Raphson solve of one assembled MNA system.

Used by both the DC/IC analyses and every transient time step.  The solver
re-stamps the (possibly nonlinear) system at each iterate, solves the dense
linearized system, damps oversized updates (the MOSFET subthreshold
exponential punishes full steps from a bad guess), and declares convergence
when the update is small in the usual mixed absolute/relative sense.
"""

from __future__ import annotations

import numpy as np

from .mna import MnaSystem, StampContext


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


def newton_solve(
    system: MnaSystem,
    mode: str,
    t: float,
    dt: float,
    method: str,
    states: dict,
    x0: np.ndarray,
    gmin: float = 1e-12,
    max_iter: int = 100,
    abstol: float = 1e-9,
    reltol: float = 1e-6,
    max_update: float = 0.5,
) -> tuple[np.ndarray, StampContext]:
    """Solve the circuit equations for one (mode, t) point.

    Args:
        system: assembled MNA bookkeeping for the circuit.
        mode: "dc", "ic" or "tran" (see :mod:`repro.spice.elements`).
        t: evaluation time for the independent sources.
        dt: time-step length (ignored outside "tran").
        method: "be" or "trap" companion models (ignored outside "tran").
        states: engine-owned per-element state dicts.
        x0: initial guess for the unknown vector.
        gmin: minimum conductance added across nonlinear devices.
        max_iter: Newton iteration budget.
        abstol: absolute convergence tolerance on every unknown.
        reltol: relative convergence tolerance on every unknown.
        max_update: per-iteration cap on the infinity norm of the update.

    Returns:
        (x, ctx): the converged unknowns and a context assembled *at* the
        converged point, ready for state commits and current extraction.

    Raises:
        ConvergenceError: if the iteration budget is exhausted or the
            linearized system is singular beyond recovery.
    """
    x = np.array(x0, dtype=float)
    for _ in range(max_iter):
        ctx = system.context(mode, t, dt, method, states, x, gmin)
        system.assemble(ctx)
        try:
            x_new = np.linalg.solve(ctx.A, ctx.z)
        except np.linalg.LinAlgError:
            x_new, *_ = np.linalg.lstsq(ctx.A, ctx.z, rcond=None)
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(f"non-finite solution while solving at t={t}")

        dx = x_new - x
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        if step > max_update:
            x = x + dx * (max_update / step)
            continue
        x = x_new
        if np.all(np.abs(dx) <= abstol + reltol * np.abs(x)):
            final = system.context(mode, t, dt, method, states, x, gmin)
            system.assemble(final)
            return x, final
    raise ConvergenceError(f"Newton failed to converge in {max_iter} iterations at t={t}")
