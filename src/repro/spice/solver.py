"""Damped Newton-Raphson solve of one assembled MNA system.

Used by both the DC/IC analyses and every transient time step.  The solver
stamps the (possibly nonlinear) system at each iterate, solves the dense
linearized system, damps oversized updates (the MOSFET subthreshold
exponential punishes full steps from a bad guess), and declares convergence
when the update is small in the usual mixed absolute/relative sense.

Two assembly strategies exist:

* **fast** (default): the linear elements are stamped once per call into a
  cached base matrix/RHS (they cannot change while ``(mode, t, dt, method)``
  and the element states are fixed); each Newton iterate copies the base
  into preallocated work buffers and restamps only the nonlinear devices.
  After convergence the last iterate's context is reused with ``x`` updated
  to the converged point — the redundant full re-assembly the reference
  path performs is skipped, because state commits and current extraction
  read only ``x``/``dt``/``method``/states, never ``A``/``z``.  Circuits
  with no nonlinear elements collapse to a single direct solve with an LU
  factorization cached across calls (see :mod:`repro.spice.mna`).
* **reference** (``fast=False``): the frozen seed behavior — full
  re-assembly of every element at every iterate plus a final assembly at
  the converged point.  Kept verbatim so golden-parity tests and the perf
  benchmark can compare against unchanged seed numerics.
"""

from __future__ import annotations

import numpy as np

from ..observability import metrics as obs_metrics
from ..observability import trace
from ..observability.trace import NOOP_SPAN
from ..testing.faults import fire as _fire_fault
from .mna import MnaSystem, StampContext, _dense_fallback_solve
from .telemetry import SolverTelemetry

#: Per-iteration cap on the infinity norm of the Newton update; shared with
#: the batched ensemble engine (:mod:`repro.spice.batch`) so both paths damp
#: identically.
DEFAULT_MAX_UPDATE = 0.5


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge.

    When raised from within a transient run, the engine attaches the run's
    partial :class:`~repro.spice.telemetry.SolverTelemetry` as a
    ``telemetry`` attribute so callers can see how far recovery got.
    """

    telemetry: SolverTelemetry | None = None


def newton_solve(
    system: MnaSystem,
    mode: str,
    t: float,
    dt: float,
    method: str,
    states: dict,
    x0: np.ndarray,
    gmin: float = 1e-12,
    max_iter: int = 100,
    abstol: float = 1e-9,
    reltol: float = 1e-6,
    max_update: float = DEFAULT_MAX_UPDATE,
    fast: bool = True,
    telemetry: SolverTelemetry | None = None,
) -> tuple[np.ndarray, StampContext]:
    """Solve the circuit equations for one (mode, t) point.

    Args:
        system: assembled MNA bookkeeping for the circuit.
        mode: "dc", "ic" or "tran" (see :mod:`repro.spice.elements`).
        t: evaluation time for the independent sources.
        dt: time-step length (ignored outside "tran").
        method: "be" or "trap" companion models (ignored outside "tran").
        states: engine-owned per-element state dicts.
        x0: initial guess for the unknown vector.
        gmin: minimum conductance added across nonlinear devices.
        max_iter: Newton iteration budget.
        abstol: absolute convergence tolerance on every unknown.
        reltol: relative convergence tolerance on every unknown.
        max_update: per-iteration cap on the infinity norm of the update.
        fast: use the cached-base incremental assembly (default); False
            selects the frozen seed reference path.
        telemetry: optional counters record; iteration, assembly and
            LU-cache activity of this solve are added to it.

    Returns:
        (x, ctx): the converged unknowns and a context positioned *at* the
        converged point, ready for state commits and current extraction.

    Raises:
        ConvergenceError: if the iteration budget is exhausted or the
            linearized system is singular beyond recovery.
    """
    system.telemetry = telemetry
    if telemetry is not None:
        telemetry.newton_solves += 1
    if _fire_fault("newton") is not None:
        # Deterministic fault injection (repro.testing.faults): report this
        # solve as diverged so the recovery ladders above get exercised.
        raise ConvergenceError(f"injected Newton divergence at t={t}")

    # Per-iteration spans (assembly / lu_solve) exist only at "full" trace
    # detail and are gated on one bool so the disabled-tracing inner loop
    # pays a single module-global read per *solve*, not per iterate.
    tracer = trace.active_tracer()
    detailed = tracer is not None and tracer.wants("full")
    with trace.span("newton_solve", level="newton", mode=mode, t=t) as nsp:
        if not fast:
            return _newton_solve_reference(
                system, mode, t, dt, method, states, x0, gmin,
                max_iter, abstol, reltol, max_update, telemetry, nsp,
            )
        if system.sparse:
            return _newton_solve_sparse(
                system, mode, t, dt, method, states, x0, gmin,
                max_iter, abstol, reltol, max_update, telemetry, nsp, detailed,
            )

        x = np.array(x0, dtype=float)
        base_A, base_z, work_A, work_z = system.assembly_buffers()

        # Linear base: stamped once — nothing in it can change across iterates.
        base_ctx = system.context(mode, t, dt, method, states, x, gmin,
                                  buffers=(base_A, base_z))
        with trace.span("assembly", level="full") if detailed else NOOP_SPAN:
            system.assemble_base(base_ctx)

        ctx = system.context(mode, t, dt, method, states, x, gmin,
                             buffers=(work_A, work_z))

        if not system.nonlinear_elements:
            # Purely linear: the Newton map is affine with a constant matrix,
            # so the damped iteration lands exactly on the direct solution;
            # solve once, reusing the cached LU factors when the matrix is
            # unchanged.
            np.copyto(work_A, base_A)
            np.copyto(work_z, base_z)
            key = system.linear_matrix_key(mode, dt, method, states)
            with trace.span("lu_solve", level="full") if detailed else NOOP_SPAN:
                x_new = system.solve_linear_cached(key, work_A, work_z)
            if not np.all(np.isfinite(x_new)):
                raise ConvergenceError(f"non-finite solution while solving at t={t}")
            ctx.x = x_new
            nsp.set_attribute("iterations", 0)
            obs_metrics.observe("repro_newton_iterations_per_solve", 0)
            return x_new, ctx

        iterations = 0
        for _ in range(max_iter):
            iterations += 1
            if telemetry is not None:
                telemetry.newton_iterations += 1
            np.copyto(work_A, base_A)
            np.copyto(work_z, base_z)
            ctx.x = x
            with trace.span("assembly", level="full") if detailed else NOOP_SPAN:
                system.assemble_nonlinear(ctx)
            with trace.span("lu_solve", level="full") if detailed else NOOP_SPAN:
                try:
                    x_new = np.linalg.solve(work_A, work_z)
                except np.linalg.LinAlgError:
                    x_new, *_ = np.linalg.lstsq(work_A, work_z, rcond=None)
            if not np.all(np.isfinite(x_new)):
                raise ConvergenceError(f"non-finite solution while solving at t={t}")

            dx = x_new - x
            step = float(np.max(np.abs(dx))) if dx.size else 0.0
            if step > max_update:
                x = x + dx * (max_update / step)
                continue
            x = x_new
            if np.all(np.abs(dx) <= abstol + reltol * np.abs(x)):
                # Reuse the last iterate's context: only ``x`` needs to move
                # to the converged point (A/z stay one Newton update behind,
                # which downstream state commits and current reads never
                # consult).
                ctx.x = x
                nsp.set_attribute("iterations", iterations)
                obs_metrics.observe("repro_newton_iterations_per_solve", iterations)
                return x, ctx
        raise ConvergenceError(
            f"Newton failed to converge in {max_iter} iterations at t={t}"
        )


def _newton_solve_sparse(
    system: MnaSystem,
    mode: str,
    t: float,
    dt: float,
    method: str,
    states: dict,
    x0: np.ndarray,
    gmin: float,
    max_iter: int,
    abstol: float,
    reltol: float,
    max_update: float,
    telemetry: SolverTelemetry | None,
    nsp,
    detailed: bool,
) -> tuple[np.ndarray, StampContext]:
    """The fast path's Newton loop over the sparse CSC tier.

    Same partition, damping and convergence logic as the dense fast path;
    only the linear algebra differs: the linear base assembles once into a
    cached-pattern CSC matrix, each iterate restamps the nonlinear devices
    into their own (tiny) CSC pattern and factors the sum with ``splu`` —
    O(nnz) work on the near-banded matrices MNA produces, against the dense
    lane's O(n^3) per-iterate factorization.  Linear-only circuits reuse
    the cached ``splu`` factors under the ``matrix_state_keys`` contract.
    """
    x = np.array(x0, dtype=float)
    n = system.size
    base_z = np.empty(n)
    work_z = np.empty(n)

    with trace.span("assembly", level="full") if detailed else NOOP_SPAN:
        base_A, base_ctx = system.assemble_sparse(
            "base", system.linear_elements, mode, t, dt, method, states, x,
            gmin, base_z,
        )

    if not system.nonlinear_elements:
        # Purely linear: one direct solve, reusing cached splu factors.
        np.copyto(work_z, base_z)
        key = system.linear_matrix_key(mode, dt, method, states)
        with trace.span("lu_solve", level="full") if detailed else NOOP_SPAN:
            x_new = system.solve_sparse_cached(key, base_A, work_z)
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(f"non-finite solution while solving at t={t}")
        base_ctx.x = x_new
        nsp.set_attribute("iterations", 0)
        obs_metrics.observe("repro_newton_iterations_per_solve", 0)
        return x_new, base_ctx

    iterations = 0
    for _ in range(max_iter):
        iterations += 1
        if telemetry is not None:
            telemetry.newton_iterations += 1
        with trace.span("assembly", level="full") if detailed else NOOP_SPAN:
            nl_A, ctx = system.assemble_sparse(
                "nonlinear", system.nonlinear_elements, mode, t, dt, method,
                states, x, gmin, work_z,
            )
            work_z += base_z
        with trace.span("lu_solve", level="full") if detailed else NOOP_SPAN:
            A_iter = base_A + nl_A
            lu = system.sparse_factorize(A_iter)
            if lu is not None:
                x_new = lu.solve(work_z)
            else:
                x_new = _dense_fallback_solve(A_iter, work_z)
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(f"non-finite solution while solving at t={t}")

        dx = x_new - x
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        if step > max_update:
            x = x + dx * (max_update / step)
            continue
        x = x_new
        if np.all(np.abs(dx) <= abstol + reltol * np.abs(x)):
            ctx.x = x
            nsp.set_attribute("iterations", iterations)
            obs_metrics.observe("repro_newton_iterations_per_solve", iterations)
            return x, ctx
    raise ConvergenceError(
        f"Newton failed to converge in {max_iter} iterations at t={t}"
    )


def _newton_solve_reference(
    system: MnaSystem,
    mode: str,
    t: float,
    dt: float,
    method: str,
    states: dict,
    x0: np.ndarray,
    gmin: float,
    max_iter: int,
    abstol: float,
    reltol: float,
    max_update: float,
    telemetry: SolverTelemetry | None = None,
    nsp=NOOP_SPAN,
) -> tuple[np.ndarray, StampContext]:
    """The seed engine's Newton loop, byte-for-byte (full assembly per iterate).

    Telemetry/observability counting is the only addition; the numerics are
    untouched.
    """
    x = np.array(x0, dtype=float)
    iterations = 0
    for _ in range(max_iter):
        iterations += 1
        if telemetry is not None:
            telemetry.newton_iterations += 1
        ctx = system.context(mode, t, dt, method, states, x, gmin, fast=False)
        system.assemble(ctx)
        try:
            x_new = np.linalg.solve(ctx.A, ctx.z)
        except np.linalg.LinAlgError:
            x_new, *_ = np.linalg.lstsq(ctx.A, ctx.z, rcond=None)
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(f"non-finite solution while solving at t={t}")

        dx = x_new - x
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        if step > max_update:
            x = x + dx * (max_update / step)
            continue
        x = x_new
        if np.all(np.abs(dx) <= abstol + reltol * np.abs(x)):
            final = system.context(mode, t, dt, method, states, x, gmin, fast=False)
            system.assemble(final)
            nsp.set_attribute("iterations", iterations)
            obs_metrics.observe("repro_newton_iterations_per_solve", iterations)
            return x, final
    raise ConvergenceError(f"Newton failed to converge in {max_iter} iterations at t={t}")
