"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` owns the unknown ordering — node voltages for every
non-ground node, followed by one branch current per voltage source and
inductor — and rebuilds the dense ``A x = z`` system from the element
stamps at each Newton iterate.  Circuits in this repository are small
(tens of nodes), so dense LAPACK solves beat any sparse machinery.

:class:`StampContext` is the façade elements stamp through; it hides the
ground-row elimination and the node-vs-branch index arithmetic.
"""

from __future__ import annotations

import numpy as np

from .circuit import Circuit


class StampContext:
    """Mutable assembly state handed to each element's ``stamp``."""

    def __init__(self, system: "MnaSystem", mode: str, t: float, dt: float,
                 method: str, states: dict, x: np.ndarray, gmin: float):
        self.system = system
        self.mode = mode
        self.t = t
        self.dt = dt
        self.method = method
        self.x = x
        self.gmin = gmin
        self._states = states
        n = system.size
        self.A = np.zeros((n, n))
        self.z = np.zeros(n)

    # -- state & values -----------------------------------------------------------

    def state(self, element) -> dict:
        """The engine-owned mutable state dict for this element."""
        return self._states.setdefault(element, {})

    def v(self, node: int) -> float:
        """Voltage of a node at the present iterate (ground is 0 V)."""
        if node == 0:
            return 0.0
        return float(self.x[node - 1])

    def branch_value(self, element, k: int = 0) -> float:
        """Branch current unknown k of the element at the present iterate."""
        return float(self.x[self.branch_row(element, k)])

    def branch_row(self, element, k: int = 0) -> int:
        """Global row/column index of the element's k-th branch unknown."""
        if element.branch_start is None:
            raise RuntimeError(f"element {element.name} has no assigned branches")
        return self.system.num_node_unknowns + element.branch_start + k

    # -- stamping primitives --------------------------------------------------------

    def add_node_entry(self, row_node: int, col_node: int, value: float) -> None:
        """A[row, col] += value for two node ids, skipping ground."""
        if row_node == 0 or col_node == 0:
            return
        self.A[row_node - 1, col_node - 1] += value

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Standard two-terminal conductance stamp between nodes a and b."""
        self.add_node_entry(a, a, g)
        self.add_node_entry(b, b, g)
        self.add_node_entry(a, b, -g)
        self.add_node_entry(b, a, -g)

    def add_rhs_current(self, frm: int, to: int, i: float) -> None:
        """A current ``i`` forced from node ``frm`` to node ``to``."""
        if frm != 0:
            self.z[frm - 1] -= i
        if to != 0:
            self.z[to - 1] += i

    def add_branch_kcl(self, a: int, b: int, row: int) -> None:
        """KCL coupling of a branch current flowing a -> b."""
        if a != 0:
            self.A[a - 1, row] += 1.0
        if b != 0:
            self.A[b - 1, row] -= 1.0

    def add_branch_voltage(self, row: int, plus: int, minus: int) -> None:
        """Branch-equation terms ``+v(plus) - v(minus)`` on the given row."""
        if plus != 0:
            self.A[row, plus - 1] += 1.0
        if minus != 0:
            self.A[row, minus - 1] -= 1.0

    def clear_branch_equation(self, row: int) -> None:
        self.A[row, :] = 0.0
        self.z[row] = 0.0

    def set_branch_entry(self, row: int, col: int, value: float) -> None:
        self.A[row, col] += value

    def set_branch_rhs(self, row: int, value: float) -> None:
        self.z[row] += value


class MnaSystem:
    """Unknown ordering and assembly for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.num_node_unknowns = circuit.num_nodes - 1
        nb = 0
        for el in circuit.elements:
            el.branch_start = nb if el.nbranches else None
            nb += el.nbranches
        self.num_branch_unknowns = nb
        self.size = self.num_node_unknowns + nb
        self._elements = circuit.elements

    def context(self, mode: str, t: float, dt: float, method: str,
                states: dict, x: np.ndarray, gmin: float) -> StampContext:
        return StampContext(self, mode, t, dt, method, states, x, gmin)

    def assemble(self, ctx: StampContext) -> None:
        """Fill ``ctx.A`` and ``ctx.z`` from every element's stamp."""
        for el in self._elements:
            el.stamp(ctx)
