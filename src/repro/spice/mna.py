"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` owns the unknown ordering — node voltages for every
non-ground node, followed by one branch current per voltage source and
inductor — and rebuilds the ``A x = z`` system from the element stamps at
each Newton iterate.  The SSN driver banks are small (tens of nodes), where
dense LAPACK solves beat any sparse machinery; larger interconnect networks
(hundreds of nodes and up) hit the dense path's ``O(n^3)`` wall, so a
sparse CSC tier sits alongside it (see below).

:class:`StampContext` is the façade elements stamp through; it hides the
ground-row elimination and the node-vs-branch index arithmetic.

Fast-path assembly
------------------

Only the MOSFETs are nonlinear: every other stamp is independent of the
Newton iterate ``x``.  The solver therefore partitions the element list
(:attr:`MnaSystem.linear_elements` / :attr:`MnaSystem.nonlinear_elements`),
stamps the linear part **once** per ``(mode, t, dt, method)`` into a cached
base matrix/RHS pair, and per Newton iterate copies the base into
preallocated work buffers and restamps only the nonlinear devices.  The
buffers are owned by the system and reused across every time step, so the
steady-state allocation rate of a transient run is zero.

For circuits with no nonlinear elements at all, the matrix additionally
depends only on ``(mode, dt, method)`` plus each companion element's
``first_step`` flag (trapezoidal vs backward-Euler stamps differ), so its
LU factorization is cached across time steps and invalidated exactly when
that key changes — see ``docs/performance.md`` for the invariants.

Sparse tier
-----------

Above :data:`SPARSE_AUTO_THRESHOLD` unknowns (or on explicit request via
``TransientOptions(sparse=True)``) assembly and factorization switch to
compressed sparse column form.  :class:`SparseStampContext` records each
element's matrix writes as triplets through the *same* stamping primitives;
the first pass per ``(kind, mode)`` builds a symbolic CSC pattern (sorted
unique coordinates plus a permutation from write order to data slots), and
every later pass cursor-fills a preallocated value array and accumulates
duplicates with one ``np.bincount`` — no python-level index work repeats.
Factorization uses ``scipy.sparse.linalg.splu``; linear-only circuits cache
the factorization under the same ``matrix_state_keys`` contract (and the
same staleness guard) as the dense LU cache.  Everything degrades to the
dense path when scipy is absent, and singular systems fall back to dense
least squares exactly like the dense lane.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

try:  # pragma: no cover - exercised indirectly by the linear-circuit tests
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
except ImportError:  # pragma: no cover
    _lu_factor = _lu_solve = None

try:  # pragma: no cover - absence covered by the no-scipy fallback tests
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover
    _sparse = _splu = None

from .circuit import Circuit

#: Unknown-count above which ``sparse="auto"`` engages the CSC tier.  The
#: crossover is where one dense O(n^3) factorization per Newton iterate
#: starts losing to splu on the near-banded matrices MNA produces; measured
#: on the RC-ladder scaling benchmark the break-even sits near 150 unknowns
#: (the SSN driver banks all sit far below, large interconnect ladders far
#: above).
SPARSE_AUTO_THRESHOLD = 150

#: Environment variable consulted by ``sparse="auto"`` when no process
#: default is installed: "on", "off" or "auto".
SPARSE_ENV = "REPRO_SPARSE"

SPARSE_MODES = ("auto", "on", "off")

_default_sparse: str | None = None


def sparse_available() -> bool:
    """Whether the scipy.sparse backend is importable in this process."""
    return _splu is not None


def set_default_sparse(mode: str | None) -> None:
    """Install a process-wide default for ``sparse="auto"`` resolution.

    ``"on"`` / ``"off"`` force the tier regardless of circuit size,
    ``"auto"`` (or ``None``) restores the size-threshold heuristic.  Sits
    between explicit ``TransientOptions(sparse=...)`` values and the
    ``REPRO_SPARSE`` environment variable, mirroring the engine-selection
    precedence of :mod:`repro.analysis.engine`; the CLI's ``--sparse`` flag
    is a thin wrapper around this.
    """
    global _default_sparse
    if mode is not None and mode not in SPARSE_MODES:
        raise ValueError(f"unknown sparse mode {mode!r}; choose from {SPARSE_MODES}")
    _default_sparse = mode


def default_sparse_mode() -> str:
    """The effective process-wide ``sparse="auto"`` default mode.

    Pure read of the :func:`set_default_sparse` / ``REPRO_SPARSE``
    precedence chain, normalized to one of :data:`SPARSE_MODES`.  An
    invalid environment value silently maps to ``"auto"`` here — the
    :class:`RuntimeWarning` for it belongs to :func:`resolve_sparse` at
    simulation time, not to every cache-key derivation.  Result-cache keys
    fold this in so flipping the default between calls can never return a
    stale-keyed hit.
    """
    mode = _default_sparse
    if mode is None:
        mode = os.environ.get(SPARSE_ENV) or "auto"
        if mode not in SPARSE_MODES:
            mode = "auto"
    return mode


def resolve_sparse(option, size: int) -> bool:
    """Resolve a ``TransientOptions.sparse`` request to a concrete bool.

    ``True``/``False`` are explicit; ``"auto"`` consults the process
    default (:func:`set_default_sparse`), then ``REPRO_SPARSE``, then the
    :data:`SPARSE_AUTO_THRESHOLD` size heuristic.  A sparse request
    without scipy degrades to dense with a ``RuntimeWarning`` — never an
    error, so option sets stay portable across environments.
    """
    if option == "auto":
        mode = _default_sparse
        if mode is None:
            mode = os.environ.get(SPARSE_ENV) or "auto"
            if mode not in SPARSE_MODES:
                warnings.warn(
                    f"ignoring invalid {SPARSE_ENV}={mode!r}; "
                    f"choose from {SPARSE_MODES}",
                    RuntimeWarning, stacklevel=2,
                )
                mode = "auto"
        if mode == "on":
            option = True
        elif mode == "off":
            option = False
        else:
            option = size >= SPARSE_AUTO_THRESHOLD
    if option and not sparse_available():
        warnings.warn(
            "scipy.sparse is unavailable; falling back to dense MNA assembly",
            RuntimeWarning, stacklevel=2,
        )
        return False
    return bool(option)


class StampContext:
    """Mutable assembly state handed to each element's ``stamp``.

    ``A``/``z`` may be caller-owned reusable buffers (fast path) or freshly
    allocated (default).  After a fast-path Newton solve converges, the
    returned context's ``x`` holds the *converged* unknowns while ``A``/``z``
    still hold the last iterate's assembly — state commits and current
    extraction only read ``x``, ``dt``, ``method`` and the element states,
    so this is safe by construction (and bounded by the Newton tolerance).
    """

    def __init__(self, system: "MnaSystem", mode: str, t: float, dt: float,
                 method: str, states: dict, x: np.ndarray, gmin: float,
                 fast: bool = True, buffers: tuple | None = None):
        self.system = system
        self.mode = mode
        self.t = t
        self.dt = dt
        self.method = method
        self.x = x
        self.gmin = gmin
        self.fast = fast
        self._states = states
        if buffers is None:
            n = system.size
            self.A = np.zeros((n, n))
            self.z = np.zeros(n)
        else:
            self.A, self.z = buffers

    # -- state & values -----------------------------------------------------------

    def state(self, element) -> dict:
        """The engine-owned mutable state dict for this element."""
        return self._states.setdefault(element, {})

    def v(self, node: int) -> float:
        """Voltage of a node at the present iterate (ground is 0 V)."""
        if node == 0:
            return 0.0
        return float(self.x[node - 1])

    def branch_value(self, element, k: int = 0) -> float:
        """Branch current unknown k of the element at the present iterate."""
        return float(self.x[self.branch_row(element, k)])

    def branch_row(self, element, k: int = 0) -> int:
        """Global row/column index of the element's k-th branch unknown."""
        return self.system.branch_row_of(element, k)

    # -- stamping primitives --------------------------------------------------------

    def add_node_entry(self, row_node: int, col_node: int, value: float) -> None:
        """A[row, col] += value for two node ids, skipping ground."""
        if row_node == 0 or col_node == 0:
            return
        self.A[row_node - 1, col_node - 1] += value

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Standard two-terminal conductance stamp between nodes a and b."""
        self.add_node_entry(a, a, g)
        self.add_node_entry(b, b, g)
        self.add_node_entry(a, b, -g)
        self.add_node_entry(b, a, -g)

    def add_rhs_current(self, frm: int, to: int, i: float) -> None:
        """A current ``i`` forced from node ``frm`` to node ``to``."""
        if frm != 0:
            self.z[frm - 1] -= i
        if to != 0:
            self.z[to - 1] += i

    def add_branch_kcl(self, a: int, b: int, row: int) -> None:
        """KCL coupling of a branch current flowing a -> b."""
        if a != 0:
            self.A[a - 1, row] += 1.0
        if b != 0:
            self.A[b - 1, row] -= 1.0

    def add_branch_voltage(self, row: int, plus: int, minus: int) -> None:
        """Branch-equation terms ``+v(plus) - v(minus)`` on the given row."""
        if plus != 0:
            self.A[row, plus - 1] += 1.0
        if minus != 0:
            self.A[row, minus - 1] -= 1.0

    def clear_branch_equation(self, row: int) -> None:
        self.A[row, :] = 0.0
        self.z[row] = 0.0

    def set_branch_entry(self, row: int, col: int, value: float) -> None:
        self.A[row, col] += value

    def set_branch_rhs(self, row: int, value: float) -> None:
        self.z[row] += value


class _SparsePattern:
    """Cached symbolic CSC structure of one deterministic stamp pass.

    Element stamping is a fixed call sequence per ``(kind, mode)`` — which
    entries are written depends only on the circuit structure and the
    analysis mode, never on the iterate or the step — so the coordinate
    stream of the first pass describes every later one.  The pattern stores
    the sorted-unique CSC skeleton plus the permutation mapping write-order
    positions to data slots; refills are a cursor write per stamp plus one
    ``bincount`` to fold duplicates.
    """

    __slots__ = ("n", "count", "nnz", "perm", "indices", "indptr", "vals")

    def __init__(self, n: int, rows: list, cols: list):
        lin = np.asarray(cols, dtype=np.int64) * n + np.asarray(rows, dtype=np.int64)
        uniq, perm = np.unique(lin, return_inverse=True)
        self.n = n
        self.count = len(lin)
        self.nnz = len(uniq)
        self.perm = perm
        self.indices = (uniq % n).astype(np.int32)
        self.indptr = np.searchsorted(uniq // n, np.arange(n + 1)).astype(np.int32)
        self.vals = np.empty(self.count)

    def matrix(self):
        """The CSC matrix of the currently filled value array."""
        data = np.bincount(self.perm, weights=self.vals, minlength=self.nnz)
        return _sparse.csc_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )


class SparseStampContext(StampContext):
    """Stamp context recording matrix writes as sparse triplets.

    Elements stamp through the exact primitives of :class:`StampContext`;
    only the matrix-touching ones are rerouted (the right-hand side stays a
    dense vector — it is dense by nature and every solve reads it whole).
    With no ``pattern`` the context records coordinates for a first-pass
    symbolic analysis; with one it cursor-fills the pattern's value slots,
    and the caller verifies the write count afterwards so any structural
    drift rebuilds the pattern instead of corrupting the matrix.
    """

    def __init__(self, system: "MnaSystem", mode: str, t: float, dt: float,
                 method: str, states: dict, x: np.ndarray, gmin: float,
                 z: np.ndarray, pattern: _SparsePattern | None = None):
        super().__init__(system, mode, t, dt, method, states, x, gmin,
                         buffers=(None, z))
        self.pattern = pattern
        self.cursor = 0
        if pattern is None:
            self.rows: list = []
            self.cols: list = []
            self.vals: list = []

    # -- matrix writes, rerouted ----------------------------------------------------

    def _entry(self, row: int, col: int, value: float) -> None:
        pattern = self.pattern
        if pattern is None:
            self.rows.append(row)
            self.cols.append(col)
            self.vals.append(value)
            return
        k = self.cursor
        self.cursor = k + 1
        if k < pattern.count:  # overflow detected by the caller's count check
            pattern.vals[k] = value

    def add_node_entry(self, row_node: int, col_node: int, value: float) -> None:
        if row_node == 0 or col_node == 0:
            return
        self._entry(row_node - 1, col_node - 1, value)

    def add_branch_kcl(self, a: int, b: int, row: int) -> None:
        if a != 0:
            self._entry(a - 1, row, 1.0)
        if b != 0:
            self._entry(b - 1, row, -1.0)

    def add_branch_voltage(self, row: int, plus: int, minus: int) -> None:
        if plus != 0:
            self._entry(row, plus - 1, 1.0)
        if minus != 0:
            self._entry(row, minus - 1, -1.0)

    def set_branch_entry(self, row: int, col: int, value: float) -> None:
        self._entry(row, col, value)

    def clear_branch_equation(self, row: int) -> None:
        raise NotImplementedError(
            "row clearing is not expressible in triplet form; "
            "run this circuit on the dense path (sparse=False)"
        )

    def finish(self, kind: str, mode: str) -> bool:
        """Close one stamp pass; True when the pattern is valid and filled."""
        pattern = self.pattern
        system = self.system
        if pattern is None:
            pattern = _SparsePattern(system.size, self.rows, self.cols)
            pattern.vals[:] = self.vals
            system._sparse_patterns[(kind, mode)] = pattern
            self.pattern = pattern
            return True
        return self.cursor == pattern.count


class MnaSystem:
    """Unknown ordering and assembly for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.num_node_unknowns = circuit.num_nodes - 1
        nb = 0
        for el in circuit.elements:
            el.branch_start = nb if el.nbranches else None
            nb += el.nbranches
        self.num_branch_unknowns = nb
        self.size = self.num_node_unknowns + nb
        self._elements = circuit.elements
        #: Elements whose stamps never read the Newton iterate ``x``.
        self.linear_elements = [el for el in self._elements if not el.nonlinear]
        #: Elements restamped at every Newton iterate (MOSFETs).
        self.nonlinear_elements = [el for el in self._elements if el.nonlinear]
        # Reusable fast-path buffers, allocated on first use.
        self._base_A: np.ndarray | None = None
        self._base_z: np.ndarray | None = None
        self._work_A: np.ndarray | None = None
        self._work_z: np.ndarray | None = None
        # LU cache for linear-only circuits: key -> LAPACK getrf factors,
        # plus a copy of the factored matrix guarding against key collisions
        # (two circuits/element values sharing one (mode, dt, method, flags)).
        self._lu_key = None
        self._lu = None
        self._lu_A: np.ndarray | None = None
        #: Whether solves route through the sparse CSC tier (set by the
        #: transient engine after resolving ``TransientOptions.sparse``).
        self.sparse = False
        # Symbolic patterns keyed (kind, mode) plus the splu analogue of
        # the dense LU cache (same key contract, data-array staleness guard).
        self._sparse_patterns: dict = {}
        self._splu_key = None
        self._splu = None
        self._splu_data: np.ndarray | None = None
        #: Optional SolverTelemetry the current solve records into.
        self.telemetry = None

    def branch_row_of(self, element, k: int = 0) -> int:
        """Global row/column index of an element's k-th branch unknown.

        Shared by :class:`StampContext` and the batched ensemble engine
        (:mod:`repro.spice.batch`), which scatters per-instance stamps by
        the same unknown ordering.
        """
        if element.branch_start is None:
            raise RuntimeError(f"element {element.name} has no assigned branches")
        return self.num_node_unknowns + element.branch_start + k

    def context(self, mode: str, t: float, dt: float, method: str,
                states: dict, x: np.ndarray, gmin: float,
                fast: bool = True, buffers: tuple | None = None) -> StampContext:
        return StampContext(self, mode, t, dt, method, states, x, gmin,
                            fast=fast, buffers=buffers)

    def assemble(self, ctx: StampContext) -> None:
        """Fill ``ctx.A`` and ``ctx.z`` from every element's stamp."""
        if self.telemetry is not None:
            self.telemetry.full_assemblies += 1
        for el in self._elements:
            el.stamp(ctx)

    # -- fast-path assembly ---------------------------------------------------------

    def assembly_buffers(self):
        """The system-owned (base_A, base_z, work_A, work_z) scratch buffers."""
        if self._base_A is None:
            n = self.size
            self._base_A = np.zeros((n, n))
            self._base_z = np.zeros(n)
            self._work_A = np.zeros((n, n))
            self._work_z = np.zeros(n)
        return self._base_A, self._base_z, self._work_A, self._work_z

    def assemble_base(self, ctx: StampContext) -> None:
        """Stamp only the linear elements into ``ctx`` (buffers pre-zeroed)."""
        if self.telemetry is not None:
            self.telemetry.base_assemblies += 1
        ctx.A[:] = 0.0
        ctx.z[:] = 0.0
        for el in self.linear_elements:
            el.stamp(ctx)

    def assemble_nonlinear(self, ctx: StampContext) -> None:
        """Stamp only the nonlinear elements on top of the copied base."""
        if self.telemetry is not None:
            self.telemetry.nonlinear_restamps += 1
        for el in self.nonlinear_elements:
            el.stamp(ctx)

    # -- linear-circuit LU reuse ---------------------------------------------------

    def linear_matrix_key(self, mode: str, dt: float, method: str, states: dict):
        """Cache key under which a linear-only circuit's matrix is constant.

        The matrix depends on the analysis mode, the companion step ``dt``
        and method, and — per element — the state keys it declares in
        ``matrix_state_keys`` (the trap/BE ``first_step`` restart flag).
        Any ``dt`` change, method change, or breakpoint restart therefore
        produces a new key and invalidates the cached factorization.
        """
        flags = tuple(
            states.get(el, {}).get(key, True)
            for el in self.linear_elements
            for key in el.matrix_state_keys
        )
        return (mode, dt, method, flags)

    def solve_linear_cached(self, key, A: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Solve ``A x = z`` reusing the LU factors when ``key`` repeats.

        The key alone is not trusted: reuse additionally requires the
        assembled matrix to equal the one that was factored (an O(n^2)
        compare versus the O(n^3) factorization), so a different circuit —
        or the same circuit with mutated element values — sharing an
        identical ``(mode, dt, method, flags)`` key can never pick up a
        stale factorization.

        Falls back to ``np.linalg.solve`` when scipy is unavailable and to
        least squares when the matrix is singular (floating subcircuits),
        mirroring the plain Newton path's behavior.
        """
        tel = self.telemetry
        if _lu_factor is not None:
            with warnings.catch_warnings():
                # Exactly singular matrices (floating subcircuits) fall back
                # to least squares below, as the plain path does — silence
                # scipy's LinAlgWarning on the zero pivot.
                warnings.simplefilter("ignore")
                stale = (
                    key == self._lu_key
                    and self._lu_A is not None
                    and not np.array_equal(A, self._lu_A)
                )
                if stale and tel is not None:
                    tel.lu_cache_invalidations += 1
                if key != self._lu_key or stale:
                    if tel is not None:
                        tel.lu_cache_misses += 1
                    try:
                        self._lu = _lu_factor(A)
                        self._lu_key = key
                        self._lu_A = A.copy()
                    except (ValueError, np.linalg.LinAlgError):
                        self._lu = None
                        self._lu_key = None
                        self._lu_A = None
                elif tel is not None:
                    tel.lu_cache_hits += 1
                if self._lu is not None:
                    x = _lu_solve(self._lu, z)
                    if np.all(np.isfinite(x)):
                        return x
                    # Singular or near-singular: drop the cache entry and
                    # fall through to the reference solve path.
                    self._lu = None
                    self._lu_key = None
                    self._lu_A = None
        try:
            return np.linalg.solve(A, z)
        except np.linalg.LinAlgError:
            x, *_ = np.linalg.lstsq(A, z, rcond=None)
            return x

    # -- sparse tier ----------------------------------------------------------------

    def assemble_sparse(self, kind: str, elements, mode: str, t: float,
                        dt: float, method: str, states: dict, x: np.ndarray,
                        gmin: float, z: np.ndarray):
        """One sparse stamp pass over ``elements``.

        ``kind`` ("base" or "nonlinear") scopes the cached symbolic
        pattern; ``z`` is the caller's dense right-hand-side buffer, zeroed
        here so a pattern rebuild can restamp cleanly.  Returns ``(A, ctx)``
        with ``A`` the assembled CSC matrix.
        """
        tel = self.telemetry
        if tel is not None:
            if kind == "base":
                tel.base_assemblies += 1
            else:
                tel.nonlinear_restamps += 1
        pattern = self._sparse_patterns.get((kind, mode))
        for _ in range(2):
            z[:] = 0.0
            ctx = SparseStampContext(self, mode, t, dt, method, states, x,
                                     gmin, z, pattern=pattern)
            for el in elements:
                el.stamp(ctx)
            if ctx.finish(kind, mode):
                if pattern is not None and tel is not None:
                    tel.sparse_pattern_reuses += 1
                return ctx.pattern.matrix(), ctx
            # Structural drift (a stamp wrote more or fewer entries than
            # the recorded pass): rebuild the pattern from scratch.
            pattern = None
        raise RuntimeError("sparse pattern failed to stabilize after a rebuild")

    def solve_sparse_cached(self, key, A, z: np.ndarray) -> np.ndarray:
        """Sparse analogue of :meth:`solve_linear_cached`.

        Reuses the cached ``splu`` factorization when ``key`` repeats *and*
        the assembled data array matches the factored one (the same
        staleness guard as the dense LU cache, O(nnz) instead of O(n^2)).
        Singular systems fall back to dense least squares, mirroring the
        dense lane's degradation.
        """
        tel = self.telemetry
        stale = (
            key == self._splu_key
            and self._splu_data is not None
            and not np.array_equal(A.data, self._splu_data)
        )
        if stale and tel is not None:
            tel.lu_cache_invalidations += 1
        if key != self._splu_key or stale:
            if tel is not None:
                tel.lu_cache_misses += 1
            self._splu = self.sparse_factorize(A)
            if self._splu is not None:
                self._splu_key = key
                self._splu_data = A.data.copy()
            else:
                self._splu_key = None
                self._splu_data = None
        elif tel is not None:
            tel.lu_cache_hits += 1
        if self._splu is not None:
            x = self._splu.solve(z)
            if np.all(np.isfinite(x)):
                return x
            # Near-singular factors: drop the cache entry and degrade.
            self._splu = None
            self._splu_key = None
            self._splu_data = None
        return _dense_fallback_solve(A, z)

    def sparse_factorize(self, A):
        """``splu(A)`` with the singular-matrix degradation, or None."""
        if _splu is None:
            return None
        try:
            with warnings.catch_warnings():
                # Singular/ill-conditioned factorizations degrade below, as
                # the dense lane does; silence SuperLU's condition warnings.
                warnings.simplefilter("ignore")
                lu = _splu(A)
        except (RuntimeError, ValueError):
            return None
        if self.telemetry is not None:
            self.telemetry.sparse_factorizations += 1
        return lu


def _dense_fallback_solve(A, z: np.ndarray) -> np.ndarray:
    """Densify and solve, degrading to least squares — the singular path."""
    dense = A.toarray()
    try:
        return np.linalg.solve(dense, z)
    except np.linalg.LinAlgError:
        x, *_ = np.linalg.lstsq(dense, z, rcond=None)
        return x
