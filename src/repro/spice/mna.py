"""Modified-nodal-analysis system assembly.

:class:`MnaSystem` owns the unknown ordering — node voltages for every
non-ground node, followed by one branch current per voltage source and
inductor — and rebuilds the dense ``A x = z`` system from the element
stamps at each Newton iterate.  Circuits in this repository are small
(tens of nodes), so dense LAPACK solves beat any sparse machinery.

:class:`StampContext` is the façade elements stamp through; it hides the
ground-row elimination and the node-vs-branch index arithmetic.

Fast-path assembly
------------------

Only the MOSFETs are nonlinear: every other stamp is independent of the
Newton iterate ``x``.  The solver therefore partitions the element list
(:attr:`MnaSystem.linear_elements` / :attr:`MnaSystem.nonlinear_elements`),
stamps the linear part **once** per ``(mode, t, dt, method)`` into a cached
base matrix/RHS pair, and per Newton iterate copies the base into
preallocated work buffers and restamps only the nonlinear devices.  The
buffers are owned by the system and reused across every time step, so the
steady-state allocation rate of a transient run is zero.

For circuits with no nonlinear elements at all, the matrix additionally
depends only on ``(mode, dt, method)`` plus each companion element's
``first_step`` flag (trapezoidal vs backward-Euler stamps differ), so its
LU factorization is cached across time steps and invalidated exactly when
that key changes — see ``docs/performance.md`` for the invariants.
"""

from __future__ import annotations

import warnings

import numpy as np

try:  # pragma: no cover - exercised indirectly by the linear-circuit tests
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
except ImportError:  # pragma: no cover
    _lu_factor = _lu_solve = None

from .circuit import Circuit


class StampContext:
    """Mutable assembly state handed to each element's ``stamp``.

    ``A``/``z`` may be caller-owned reusable buffers (fast path) or freshly
    allocated (default).  After a fast-path Newton solve converges, the
    returned context's ``x`` holds the *converged* unknowns while ``A``/``z``
    still hold the last iterate's assembly — state commits and current
    extraction only read ``x``, ``dt``, ``method`` and the element states,
    so this is safe by construction (and bounded by the Newton tolerance).
    """

    def __init__(self, system: "MnaSystem", mode: str, t: float, dt: float,
                 method: str, states: dict, x: np.ndarray, gmin: float,
                 fast: bool = True, buffers: tuple | None = None):
        self.system = system
        self.mode = mode
        self.t = t
        self.dt = dt
        self.method = method
        self.x = x
        self.gmin = gmin
        self.fast = fast
        self._states = states
        if buffers is None:
            n = system.size
            self.A = np.zeros((n, n))
            self.z = np.zeros(n)
        else:
            self.A, self.z = buffers

    # -- state & values -----------------------------------------------------------

    def state(self, element) -> dict:
        """The engine-owned mutable state dict for this element."""
        return self._states.setdefault(element, {})

    def v(self, node: int) -> float:
        """Voltage of a node at the present iterate (ground is 0 V)."""
        if node == 0:
            return 0.0
        return float(self.x[node - 1])

    def branch_value(self, element, k: int = 0) -> float:
        """Branch current unknown k of the element at the present iterate."""
        return float(self.x[self.branch_row(element, k)])

    def branch_row(self, element, k: int = 0) -> int:
        """Global row/column index of the element's k-th branch unknown."""
        return self.system.branch_row_of(element, k)

    # -- stamping primitives --------------------------------------------------------

    def add_node_entry(self, row_node: int, col_node: int, value: float) -> None:
        """A[row, col] += value for two node ids, skipping ground."""
        if row_node == 0 or col_node == 0:
            return
        self.A[row_node - 1, col_node - 1] += value

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Standard two-terminal conductance stamp between nodes a and b."""
        self.add_node_entry(a, a, g)
        self.add_node_entry(b, b, g)
        self.add_node_entry(a, b, -g)
        self.add_node_entry(b, a, -g)

    def add_rhs_current(self, frm: int, to: int, i: float) -> None:
        """A current ``i`` forced from node ``frm`` to node ``to``."""
        if frm != 0:
            self.z[frm - 1] -= i
        if to != 0:
            self.z[to - 1] += i

    def add_branch_kcl(self, a: int, b: int, row: int) -> None:
        """KCL coupling of a branch current flowing a -> b."""
        if a != 0:
            self.A[a - 1, row] += 1.0
        if b != 0:
            self.A[b - 1, row] -= 1.0

    def add_branch_voltage(self, row: int, plus: int, minus: int) -> None:
        """Branch-equation terms ``+v(plus) - v(minus)`` on the given row."""
        if plus != 0:
            self.A[row, plus - 1] += 1.0
        if minus != 0:
            self.A[row, minus - 1] -= 1.0

    def clear_branch_equation(self, row: int) -> None:
        self.A[row, :] = 0.0
        self.z[row] = 0.0

    def set_branch_entry(self, row: int, col: int, value: float) -> None:
        self.A[row, col] += value

    def set_branch_rhs(self, row: int, value: float) -> None:
        self.z[row] += value


class MnaSystem:
    """Unknown ordering and assembly for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.num_node_unknowns = circuit.num_nodes - 1
        nb = 0
        for el in circuit.elements:
            el.branch_start = nb if el.nbranches else None
            nb += el.nbranches
        self.num_branch_unknowns = nb
        self.size = self.num_node_unknowns + nb
        self._elements = circuit.elements
        #: Elements whose stamps never read the Newton iterate ``x``.
        self.linear_elements = [el for el in self._elements if not el.nonlinear]
        #: Elements restamped at every Newton iterate (MOSFETs).
        self.nonlinear_elements = [el for el in self._elements if el.nonlinear]
        # Reusable fast-path buffers, allocated on first use.
        self._base_A: np.ndarray | None = None
        self._base_z: np.ndarray | None = None
        self._work_A: np.ndarray | None = None
        self._work_z: np.ndarray | None = None
        # LU cache for linear-only circuits: key -> LAPACK getrf factors,
        # plus a copy of the factored matrix guarding against key collisions
        # (two circuits/element values sharing one (mode, dt, method, flags)).
        self._lu_key = None
        self._lu = None
        self._lu_A: np.ndarray | None = None
        #: Optional SolverTelemetry the current solve records into.
        self.telemetry = None

    def branch_row_of(self, element, k: int = 0) -> int:
        """Global row/column index of an element's k-th branch unknown.

        Shared by :class:`StampContext` and the batched ensemble engine
        (:mod:`repro.spice.batch`), which scatters per-instance stamps by
        the same unknown ordering.
        """
        if element.branch_start is None:
            raise RuntimeError(f"element {element.name} has no assigned branches")
        return self.num_node_unknowns + element.branch_start + k

    def context(self, mode: str, t: float, dt: float, method: str,
                states: dict, x: np.ndarray, gmin: float,
                fast: bool = True, buffers: tuple | None = None) -> StampContext:
        return StampContext(self, mode, t, dt, method, states, x, gmin,
                            fast=fast, buffers=buffers)

    def assemble(self, ctx: StampContext) -> None:
        """Fill ``ctx.A`` and ``ctx.z`` from every element's stamp."""
        if self.telemetry is not None:
            self.telemetry.full_assemblies += 1
        for el in self._elements:
            el.stamp(ctx)

    # -- fast-path assembly ---------------------------------------------------------

    def assembly_buffers(self):
        """The system-owned (base_A, base_z, work_A, work_z) scratch buffers."""
        if self._base_A is None:
            n = self.size
            self._base_A = np.zeros((n, n))
            self._base_z = np.zeros(n)
            self._work_A = np.zeros((n, n))
            self._work_z = np.zeros(n)
        return self._base_A, self._base_z, self._work_A, self._work_z

    def assemble_base(self, ctx: StampContext) -> None:
        """Stamp only the linear elements into ``ctx`` (buffers pre-zeroed)."""
        if self.telemetry is not None:
            self.telemetry.base_assemblies += 1
        ctx.A[:] = 0.0
        ctx.z[:] = 0.0
        for el in self.linear_elements:
            el.stamp(ctx)

    def assemble_nonlinear(self, ctx: StampContext) -> None:
        """Stamp only the nonlinear elements on top of the copied base."""
        if self.telemetry is not None:
            self.telemetry.nonlinear_restamps += 1
        for el in self.nonlinear_elements:
            el.stamp(ctx)

    # -- linear-circuit LU reuse ---------------------------------------------------

    def linear_matrix_key(self, mode: str, dt: float, method: str, states: dict):
        """Cache key under which a linear-only circuit's matrix is constant.

        The matrix depends on the analysis mode, the companion step ``dt``
        and method, and — per element — the state keys it declares in
        ``matrix_state_keys`` (the trap/BE ``first_step`` restart flag).
        Any ``dt`` change, method change, or breakpoint restart therefore
        produces a new key and invalidates the cached factorization.
        """
        flags = tuple(
            states.get(el, {}).get(key, True)
            for el in self.linear_elements
            for key in el.matrix_state_keys
        )
        return (mode, dt, method, flags)

    def solve_linear_cached(self, key, A: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Solve ``A x = z`` reusing the LU factors when ``key`` repeats.

        The key alone is not trusted: reuse additionally requires the
        assembled matrix to equal the one that was factored (an O(n^2)
        compare versus the O(n^3) factorization), so a different circuit —
        or the same circuit with mutated element values — sharing an
        identical ``(mode, dt, method, flags)`` key can never pick up a
        stale factorization.

        Falls back to ``np.linalg.solve`` when scipy is unavailable and to
        least squares when the matrix is singular (floating subcircuits),
        mirroring the plain Newton path's behavior.
        """
        tel = self.telemetry
        if _lu_factor is not None:
            with warnings.catch_warnings():
                # Exactly singular matrices (floating subcircuits) fall back
                # to least squares below, as the plain path does — silence
                # scipy's LinAlgWarning on the zero pivot.
                warnings.simplefilter("ignore")
                stale = (
                    key == self._lu_key
                    and self._lu_A is not None
                    and not np.array_equal(A, self._lu_A)
                )
                if stale and tel is not None:
                    tel.lu_cache_invalidations += 1
                if key != self._lu_key or stale:
                    if tel is not None:
                        tel.lu_cache_misses += 1
                    try:
                        self._lu = _lu_factor(A)
                        self._lu_key = key
                        self._lu_A = A.copy()
                    except (ValueError, np.linalg.LinAlgError):
                        self._lu = None
                        self._lu_key = None
                        self._lu_A = None
                elif tel is not None:
                    tel.lu_cache_hits += 1
                if self._lu is not None:
                    x = _lu_solve(self._lu, z)
                    if np.all(np.isfinite(x)):
                        return x
                    # Singular or near-singular: drop the cache entry and
                    # fall through to the reference solve path.
                    self._lu = None
                    self._lu_key = None
                    self._lu_A = None
        try:
            return np.linalg.solve(A, z)
        except np.linalg.LinAlgError:
            x, *_ = np.linalg.lstsq(A, z, rcond=None)
            return x
