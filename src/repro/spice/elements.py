"""Linear circuit elements and their MNA stamps.

All elements stamp into a :class:`~repro.spice.mna.StampContext` that
encapsulates the MNA matrix, right-hand side, current Newton iterate and
integration mode:

* ``mode="dc"``   — capacitors open, inductors short; used for operating points.
* ``mode="ic"``   — t=0 consistency solve: capacitors with an ``ic`` are
  forced to that voltage (stiff Norton), inductors are forced to carry their
  ``ic`` current; this yields consistent initial node voltages (SPICE ``UIC``).
* ``mode="tran"`` — companion models (backward Euler or trapezoidal) built
  from per-element state held by the engine.

Sign conventions: MNA rows are KCL "sum of currents leaving the node = 0"
moved so that ``A x = z``; branch currents flow from the element's first
node to its second.
"""

from __future__ import annotations

from .sources import SourceShape

#: Conductance used to force a capacitor to its initial condition in "ic" mode.
_IC_FORCE_CONDUCTANCE = 1e3


class Element:
    """Base class: a named element over integer node ids."""

    #: Number of extra MNA branch-current unknowns this element introduces.
    nbranches = 0

    #: True when ``stamp`` reads the Newton iterate ``x`` — such elements
    #: are restamped at every iterate; all others stamp once per solve into
    #: the cached base matrix (see :class:`repro.spice.mna.MnaSystem`).
    nonlinear = False

    #: State-dict keys whose values change this element's *matrix* stamp
    #: (not just the RHS).  The linear-circuit LU cache keys on these; an
    #: element whose matrix stamp depends on state it does not declare here
    #: would silently break that cache.
    matrix_state_keys: tuple[str, ...] = ()

    def __init__(self, name: str, nodes: tuple[int, ...]):
        self.name = name
        self.nodes = nodes
        # Assigned by MnaSystem before any analysis.
        self.branch_start: int | None = None

    def stamp(self, ctx) -> None:
        """Add this element's contribution for the current iterate/mode."""
        raise NotImplementedError

    def commit(self, ctx) -> None:
        """Roll per-element state after an accepted time step."""

    def init_state(self, ctx) -> None:
        """Initialize per-element state from the t=0 consistency solution."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Element):
    """Linear resistor."""

    def __init__(self, name: str, a: int, b: int, ohms: float):
        if ohms <= 0:
            raise ValueError(f"resistor {name}: resistance must be positive, got {ohms}")
        super().__init__(name, (a, b))
        self.ohms = ohms

    def stamp(self, ctx) -> None:
        a, b = self.nodes
        ctx.add_conductance(a, b, 1.0 / self.ohms)

    def current(self, ctx) -> float:
        """Current a->b at the present iterate."""
        a, b = self.nodes
        return (ctx.v(a) - ctx.v(b)) / self.ohms


class Capacitor(Element):
    """Linear capacitor with optional initial voltage."""

    matrix_state_keys = ("first_step",)

    def __init__(self, name: str, a: int, b: int, farads: float, ic: float | None = None):
        if farads <= 0:
            raise ValueError(f"capacitor {name}: capacitance must be positive, got {farads}")
        super().__init__(name, (a, b))
        self.farads = farads
        self.ic = ic
        # One-slot companion-conductance cache: step halving/regrowth in the
        # transient engine revisits the same few dt values, and the division
        # shows up in profiles at ~1e5 stamps per run.
        self._geq_key: tuple[float, bool] | None = None
        self._geq: float = 0.0

    def _conductance(self, dt: float, trap: bool) -> float:
        """geq for the active companion method, cached per (dt, method)."""
        key = (dt, trap)
        if key != self._geq_key:
            self._geq = (2.0 * self.farads / dt) if trap else (self.farads / dt)
            self._geq_key = key
        return self._geq

    def _companion(self, ctx) -> tuple[float, float]:
        """(geq, ieq) such that i(a->b) = geq * v - ieq for the active method."""
        state = ctx.state(self)
        if ctx.method == "trap" and not state.get("first_step", True):
            geq = self._conductance(ctx.dt, True)
            ieq = geq * state["v"] + state["i"]
        else:
            # Backward Euler; also used for the first step after a restart,
            # where no consistent previous current exists yet.
            geq = self._conductance(ctx.dt, False)
            ieq = geq * state["v"]
        return geq, ieq

    def stamp(self, ctx) -> None:
        a, b = self.nodes
        if ctx.mode == "dc":
            return  # open circuit
        if ctx.mode == "ic":
            if self.ic is not None:
                ctx.add_conductance(a, b, _IC_FORCE_CONDUCTANCE)
                ctx.add_rhs_current(b, a, _IC_FORCE_CONDUCTANCE * self.ic)
            return
        geq, ieq = self._companion(ctx)
        ctx.add_conductance(a, b, geq)
        ctx.add_rhs_current(b, a, ieq)

    def init_state(self, ctx) -> None:
        a, b = self.nodes
        v = self.ic if self.ic is not None else ctx.v(a) - ctx.v(b)
        ctx.state(self).update(v=float(v), i=0.0, first_step=True)

    def commit(self, ctx) -> None:
        a, b = self.nodes
        state = ctx.state(self)
        geq, ieq = self._companion(ctx)
        v = ctx.v(a) - ctx.v(b)
        state["i"] = geq * v - ieq
        state["v"] = v
        state["first_step"] = False

    def current(self, ctx) -> float:
        """Capacitor current a->b at the present iterate (tran mode only)."""
        a, b = self.nodes
        geq, ieq = self._companion(ctx)
        return geq * (ctx.v(a) - ctx.v(b)) - ieq


class Inductor(Element):
    """Linear inductor; its branch current is an MNA unknown."""

    nbranches = 1
    matrix_state_keys = ("first_step",)

    def __init__(self, name: str, a: int, b: int, henries: float, ic: float = 0.0):
        if henries <= 0:
            raise ValueError(f"inductor {name}: inductance must be positive, got {henries}")
        super().__init__(name, (a, b))
        self.henries = henries
        self.ic = ic
        self._req_key: tuple[float, bool] | None = None
        self._req: float = 0.0

    def _resistance(self, dt: float, trap: bool) -> float:
        """req for the active companion method, cached per (dt, method)."""
        key = (dt, trap)
        if key != self._req_key:
            self._req = (2.0 * self.henries / dt) if trap else (self.henries / dt)
            self._req_key = key
        return self._req

    def stamp(self, ctx) -> None:
        a, b = self.nodes
        row = ctx.branch_row(self)
        # KCL: branch current leaves a, enters b.
        ctx.add_branch_kcl(a, b, row)
        # Branch equation.
        ctx.add_branch_voltage(row, a, b)
        if ctx.mode == "dc":
            return  # v_a - v_b = 0 (short)
        if ctx.mode == "ic":
            # A bare current constraint (i = ic) would leave nodes whose only
            # DC path to ground runs through this inductor floating.  Stamp a
            # stiff Thevenin instead: v = R_small * (i - ic).  Node voltages
            # then initialize as if the inductor were a short, while the
            # inductor *state* still starts at exactly ic (see init_state).
            r_small = 1e-3
            ctx.set_branch_entry(row, row, -r_small)
            ctx.set_branch_rhs(row, -r_small * self.ic)
            return
        state = ctx.state(self)
        if ctx.method == "trap" and not state.get("first_step", True):
            req = self._resistance(ctx.dt, True)
            veq = -state["v"] - req * state["i"]
        else:
            req = self._resistance(ctx.dt, False)
            veq = -req * state["i"]
        ctx.set_branch_entry(row, row, -req)
        ctx.set_branch_rhs(row, veq)

    def init_state(self, ctx) -> None:
        a, b = self.nodes
        ctx.state(self).update(i=float(self.ic), v=ctx.v(a) - ctx.v(b), first_step=True)

    def commit(self, ctx) -> None:
        a, b = self.nodes
        state = ctx.state(self)
        state["i"] = ctx.branch_value(self)
        state["v"] = ctx.v(a) - ctx.v(b)
        state["first_step"] = False

    def current(self, ctx) -> float:
        if ctx.mode == "ic":
            # The t=0 consistency stamp is a stiff short whose branch
            # unknown is not the inductor current; the state *is* ic.
            return self.ic
        return ctx.branch_value(self)


class MutualInductance(Element):
    """Magnetic coupling between two inductors (e.g. adjacent package pins).

    Adds the cross terms of the coupled branch equations

        v_a = La*dia/dt + M*dib/dt,     v_b = Lb*dib/dt + M*dia/dt,

    with ``M = coupling * sqrt(La * Lb)``.  Each inductor keeps stamping
    its own self term; this element augments both branch rows with the
    mutual term using the *same* companion method (BE/trap, including the
    first-step restart) the partner rows use, so the pair stays consistent.
    DC and IC modes need no contribution (the inductors stamp as shorts).
    """

    def __init__(self, name: str, la: "Inductor", lb: "Inductor", coupling: float):
        if not 0.0 < coupling < 1.0:
            raise ValueError(
                f"mutual coupling {name}: coefficient must be in (0, 1), got {coupling}"
            )
        if la is lb:
            raise ValueError(f"mutual coupling {name}: needs two distinct inductors")
        super().__init__(name, la.nodes + lb.nodes)
        self.la = la
        self.lb = lb
        self.coupling = coupling
        self._factor_key: tuple[float, bool] | None = None
        self._factor: float = 0.0

    @property
    def mutual(self) -> float:
        """M in henries."""
        return self.coupling * (self.la.henries * self.lb.henries) ** 0.5

    def _mutual_factor(self, dt: float, trap: bool) -> float:
        key = (dt, trap)
        if key != self._factor_key:
            m = self.mutual
            self._factor = (2.0 * m / dt) if trap else (m / dt)
            self._factor_key = key
        return self._factor

    def stamp(self, ctx) -> None:
        if ctx.mode != "tran":
            return
        for own, other in ((self.la, self.lb), (self.lb, self.la)):
            row = ctx.branch_row(own)
            col = ctx.branch_row(other)
            own_state = ctx.state(own)
            other_state = ctx.state(other)
            trap = ctx.method == "trap" and not own_state.get("first_step", True)
            factor = self._mutual_factor(ctx.dt, trap)
            ctx.set_branch_entry(row, col, -factor)
            ctx.set_branch_rhs(row, -factor * other_state.get("i", 0.0))


class VoltageSource(Element):
    """Independent voltage source with a time-dependent shape."""

    nbranches = 1

    def __init__(self, name: str, plus: int, minus: int, shape: SourceShape):
        super().__init__(name, (plus, minus))
        self.shape = shape

    def stamp(self, ctx) -> None:
        plus, minus = self.nodes
        row = ctx.branch_row(self)
        ctx.add_branch_kcl(plus, minus, row)
        ctx.add_branch_voltage(row, plus, minus)
        ctx.set_branch_rhs(row, self.shape(ctx.t))

    def current(self, ctx) -> float:
        """Current flowing plus -> minus through the source."""
        return ctx.branch_value(self)


class CurrentSource(Element):
    """Independent current source pushing current from ``frm`` to ``to``."""

    def __init__(self, name: str, frm: int, to: int, shape: SourceShape):
        super().__init__(name, (frm, to))
        self.shape = shape

    def stamp(self, ctx) -> None:
        frm, to = self.nodes
        ctx.add_rhs_current(frm, to, self.shape(ctx.t))
