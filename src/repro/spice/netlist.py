"""SPICE-format netlist export and import.

Interoperability layer for the simulator substrate: write a
:class:`~repro.spice.circuit.Circuit` as SPICE cards so it can be checked
against an external simulator, and parse the supported subset back in.

Supported cards (case-insensitive, SPICE engineering suffixes accepted):

* ``R<name> a b value``
* ``C<name> a b value [IC=v]``
* ``L<name> a b value [IC=i]``
* ``K<name> Lxxx Lyyy k``
* ``V<name> p n DC v`` / ``... PWL(t1 v1 t2 v2 ...)`` /
  ``... PULSE(v0 v1 delay rise fall width)``
* ``I<name> a b DC v``
* ``M<name> d g s b model_ref`` — devices cannot live in text, so the
  parser resolves ``model_ref`` through a caller-supplied registry.

Comments (``*``), continuation of blank lines and the leading title /
trailing ``.END`` follow SPICE conventions.  Export/import round-trips
exactly for the supported elements (verified by property tests).
"""

from __future__ import annotations

import re

from .circuit import Circuit
from .elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from .mosfet import MosfetElement
from .sources import Dc, Pulse, Pwl, Ramp, SourceShape

#: SPICE engineering suffixes (femto..tera; MEG before M).
_SUFFIXES = [
    ("MEG", 1e6), ("T", 1e12), ("G", 1e9), ("K", 1e3),
    ("M", 1e-3), ("U", 1e-6), ("N", 1e-9), ("P", 1e-12), ("F", 1e-15),
]


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    token = token.strip().upper()
    for suffix, scale in _SUFFIXES:
        if token.endswith(suffix):
            return float(token[: -len(suffix)]) * scale
    return float(token)


def format_value(value: float) -> str:
    """Render a float compactly (plain scientific; always re-parseable)."""
    return f"{value:.12g}"


def _shape_card(shape: SourceShape) -> str:
    if isinstance(shape, Dc):
        return f"DC {format_value(shape.value)}"
    if isinstance(shape, Ramp):
        # A ramp is a 2-point PWL held flat outside.
        t0, t1 = shape.t_start, shape.t_start + shape.t_rise
        return (
            f"PWL({format_value(t0)} {format_value(shape.v0)} "
            f"{format_value(t1)} {format_value(shape.v1)})"
        )
    if isinstance(shape, Pwl):
        pairs = " ".join(
            f"{format_value(t)} {format_value(v)}" for t, v in zip(shape._t, shape._v)
        )
        return f"PWL({pairs})"
    if isinstance(shape, Pulse):
        return (
            f"PULSE({format_value(shape.v0)} {format_value(shape.v1)} "
            f"{format_value(shape.delay)} {format_value(shape.rise)} "
            f"{format_value(shape.fall)} {format_value(shape.width)})"
        )
    raise TypeError(f"source shape {type(shape).__name__} has no SPICE card")


def card_name(element, letter: str) -> str:
    """The element's SPICE card name: its own name, type-letter-prefixed
    only when the name does not already start with that letter."""
    if element.name[:1].upper() == letter:
        return element.name
    return f"{letter}{element.name}"


def to_spice(circuit: Circuit) -> str:
    """Render the circuit as a SPICE netlist string.

    Card names follow :func:`card_name`; parsing the output back yields
    elements named by their full card names.
    """
    lines = [f"* {circuit.title or 'repro netlist'}"]
    name = circuit.node_name
    for el in circuit.elements:
        if isinstance(el, Resistor):
            lines.append(f"{card_name(el, 'R')} {name(el.nodes[0])} {name(el.nodes[1])} "
                         f"{format_value(el.ohms)}")
        elif isinstance(el, Capacitor):
            card = (f"{card_name(el, 'C')} {name(el.nodes[0])} {name(el.nodes[1])} "
                    f"{format_value(el.farads)}")
            if el.ic is not None:
                card += f" IC={format_value(el.ic)}"
            lines.append(card)
        elif isinstance(el, Inductor):
            card = (f"{card_name(el, 'L')} {name(el.nodes[0])} {name(el.nodes[1])} "
                    f"{format_value(el.henries)}")
            if el.ic:
                card += f" IC={format_value(el.ic)}"
            lines.append(card)
        elif isinstance(el, MutualInductance):
            lines.append(f"{card_name(el, 'K')} {card_name(el.la, 'L')} "
                         f"{card_name(el.lb, 'L')} {format_value(el.coupling)}")
        elif isinstance(el, VoltageSource):
            lines.append(f"{card_name(el, 'V')} {name(el.nodes[0])} {name(el.nodes[1])} "
                         f"{_shape_card(el.shape)}")
        elif isinstance(el, CurrentSource):
            lines.append(f"{card_name(el, 'I')} {name(el.nodes[0])} {name(el.nodes[1])} "
                         f"{_shape_card(el.shape)}")
        elif isinstance(el, MosfetElement):
            d, g, s, b = (name(n) for n in el.nodes)
            lines.append(f"{card_name(el, 'M')} {d} {g} {s} {b} {el.model.name}")
        else:
            raise TypeError(f"element {el.name!r} has no SPICE card")
    lines.append(".END")
    return "\n".join(lines) + "\n"


_PAREN = re.compile(r"(PWL|PULSE)\s*\(([^)]*)\)", re.IGNORECASE)


def _parse_shape(rest: str) -> SourceShape:
    match = _PAREN.search(rest)
    if match:
        kind = match.group(1).upper()
        values = [parse_value(tok) for tok in match.group(2).split()]
        if kind == "PWL":
            if len(values) < 4 or len(values) % 2:
                raise ValueError(f"malformed PWL card: {rest!r}")
            return Pwl(list(zip(values[::2], values[1::2])))
        if len(values) != 6:
            raise ValueError(f"malformed PULSE card: {rest!r}")
        v0, v1, delay, rise, fall, width = values
        return Pulse(v0=v0, v1=v1, delay=delay, rise=rise, width=width, fall=fall)
    tokens = rest.split()
    if tokens and tokens[0].upper() == "DC":
        tokens = tokens[1:]
    if len(tokens) != 1:
        raise ValueError(f"malformed source card tail: {rest!r}")
    return Dc(parse_value(tokens[0]))


def from_spice(text: str, models: dict | None = None) -> Circuit:
    """Parse a netlist of the supported subset back into a Circuit.

    Args:
        text: the netlist (first line is treated as the title iff it is
            not itself a card).
        models: registry resolving MOSFET card model references to
            :class:`~repro.devices.base.MosfetModel` instances.

    Returns:
        The reconstructed circuit.

    Raises:
        ValueError: on malformed or unsupported cards.
        KeyError: for an M card whose model is not in the registry.
    """
    models = models or {}
    circuit = None
    deferred_mutuals = []

    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("*")]
    if lines and lines[0][0].upper() not in "RCLKVIM.":
        circuit = Circuit(lines[0])
        lines = lines[1:]
    if circuit is None:
        circuit = Circuit("parsed netlist")

    for line in lines:
        upper = line.upper()
        if upper.startswith(".END"):
            break
        kind = upper[0]
        tokens = line.split()
        name = tokens[0]  # elements are named by their full card name
        if kind == "R":
            circuit.resistor(name, tokens[1], tokens[2], parse_value(tokens[3]))
        elif kind == "C":
            ic = None
            if len(tokens) > 4 and tokens[4].upper().startswith("IC="):
                ic = parse_value(tokens[4][3:])
            circuit.capacitor(name, tokens[1], tokens[2], parse_value(tokens[3]), ic=ic)
        elif kind == "L":
            ic = 0.0
            if len(tokens) > 4 and tokens[4].upper().startswith("IC="):
                ic = parse_value(tokens[4][3:])
            circuit.inductor(name, tokens[1], tokens[2], parse_value(tokens[3]), ic=ic)
        elif kind == "K":
            # Inductors may appear later in the deck; resolve at the end.
            deferred_mutuals.append((name, tokens[1], tokens[2],
                                     parse_value(tokens[3])))
        elif kind == "V":
            circuit.vsource(name, tokens[1], tokens[2],
                            _parse_shape(line.split(None, 3)[3]))
        elif kind == "I":
            circuit.isource(name, tokens[1], tokens[2],
                            _parse_shape(line.split(None, 3)[3]))
        elif kind == "M":
            model_ref = tokens[5]
            if model_ref not in models:
                raise KeyError(
                    f"M card {tokens[0]} references model {model_ref!r}; "
                    "pass it via the models registry"
                )
            circuit.mosfet(name, tokens[1], tokens[2], tokens[3], tokens[4],
                           models[model_ref])
        else:
            raise ValueError(f"unsupported card: {line!r}")

    for name, la, lb, k in deferred_mutuals:
        circuit.mutual(name, la, lb, k)
    return circuit
