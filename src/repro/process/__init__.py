"""Process technology cards (synthetic TSMC 0.18/0.25/0.35 um equivalents)."""

from .io import load_technology, save_technology
from .library import TSMC018, TSMC025, TSMC035, get_technology, list_technologies
from .technology import Technology

__all__ = [
    "TSMC018",
    "TSMC025",
    "TSMC035",
    "Technology",
    "get_technology",
    "list_technologies",
    "load_technology",
    "save_technology",
]
