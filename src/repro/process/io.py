"""Technology-card serialization.

Lets users carry their own process cards as JSON files instead of editing
the built-in library — the usual workflow when characterizing a new node:

    tech = load_technology("my_node.json")
    params, report = fit_asdm(sweep_id_vg(tech.driver_device(), tech.vdd))

The format mirrors the dataclasses one-to-one; unknown keys are rejected
so typos fail loudly rather than silently falling back to defaults.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from ..devices.bsim_like import BsimLikeParameters
from .technology import Technology

#: Schema version written into every file.
FORMAT_VERSION = 1


def technology_to_dict(tech: Technology) -> dict:
    """The JSON-ready representation of a technology card."""
    out = {
        "format_version": FORMAT_VERSION,
        "name": tech.name,
        "node": tech.node,
        "vdd": tech.vdd,
        "reference_width": tech.reference_width,
        "pmos_width_ratio": tech.pmos_width_ratio,
        "nmos": dataclasses.asdict(tech.nmos),
    }
    if tech.pmos is not None:
        out["pmos"] = dataclasses.asdict(tech.pmos)
    return out


def _device_params(data: dict, field: str) -> BsimLikeParameters:
    known = {f.name for f in dataclasses.fields(BsimLikeParameters)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {field} parameter(s): {sorted(unknown)}")
    return BsimLikeParameters(**data)


def technology_from_dict(data: dict) -> Technology:
    """Rebuild a technology card from its dict form.

    Raises:
        ValueError: on schema-version mismatch or unknown keys.
    """
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported technology format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    known = {"format_version", "name", "node", "vdd", "reference_width",
             "pmos_width_ratio", "nmos", "pmos"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown technology field(s): {sorted(unknown)}")
    return Technology(
        name=data["name"],
        node=float(data["node"]),
        vdd=float(data["vdd"]),
        nmos=_device_params(data["nmos"], "nmos"),
        reference_width=float(data["reference_width"]),
        pmos=_device_params(data["pmos"], "pmos") if "pmos" in data else None,
        pmos_width_ratio=float(data.get("pmos_width_ratio", 2.2)),
    )


def save_technology(tech: Technology, path) -> None:
    """Write a technology card as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(technology_to_dict(tech), indent=2) + "\n"
    )


def load_technology(path) -> Technology:
    """Read a technology card written by :func:`save_technology`."""
    return technology_from_dict(json.loads(pathlib.Path(path).read_text()))
