"""Built-in technology cards for the three nodes the paper evaluates.

Values are synthetic but representative of published foundry data for each
node (oxide thickness, threshold, mobility, velocity-saturation field).
Every experiment resolves its process through :func:`get_technology` so that
swapping in a different card reruns the whole study on new silicon.
"""

from __future__ import annotations

from ..devices.bsim_like import BsimLikeParameters
from .technology import Technology

#: 0.18 um / 1.8 V node — the paper's primary process (TSMC 0.18 um).
TSMC018 = Technology(
    name="tsmc018",
    node=0.18e-6,
    vdd=1.8,
    nmos=BsimLikeParameters(
        vth0=0.48,
        gamma=0.45,
        phi=0.85,
        sigma=0.02,
        n=1.4,
        mu0=0.032,
        theta=0.25,
        ec=5.0e6,
        cox=8.4e-3,
        w=10e-6,
        l=0.18e-6,
        lam=0.04,
    ),
    reference_width=15e-6,
    pmos=BsimLikeParameters(
        vth0=0.45,
        gamma=0.42,
        phi=0.85,
        sigma=0.02,
        n=1.4,
        mu0=0.011,
        theta=0.22,
        ec=1.3e7,
        cox=8.4e-3,
        w=10e-6,
        l=0.18e-6,
        lam=0.05,
    ),
)

#: 0.25 um / 2.5 V node.
TSMC025 = Technology(
    name="tsmc025",
    node=0.25e-6,
    vdd=2.5,
    nmos=BsimLikeParameters(
        vth0=0.55,
        gamma=0.50,
        phi=0.87,
        sigma=0.015,
        n=1.45,
        mu0=0.036,
        theta=0.22,
        ec=4.5e6,
        cox=6.1e-3,
        w=10e-6,
        l=0.25e-6,
        lam=0.05,
    ),
    reference_width=20e-6,
    pmos=BsimLikeParameters(
        vth0=0.55,
        gamma=0.47,
        phi=0.87,
        sigma=0.015,
        n=1.45,
        mu0=0.013,
        theta=0.20,
        ec=1.2e7,
        cox=6.1e-3,
        w=10e-6,
        l=0.25e-6,
        lam=0.06,
    ),
)

#: 0.35 um / 3.3 V node.
TSMC035 = Technology(
    name="tsmc035",
    node=0.35e-6,
    vdd=3.3,
    nmos=BsimLikeParameters(
        vth0=0.60,
        gamma=0.55,
        phi=0.90,
        sigma=0.010,
        n=1.5,
        mu0=0.040,
        theta=0.20,
        ec=4.0e6,
        cox=4.5e-3,
        w=10e-6,
        l=0.35e-6,
        lam=0.06,
    ),
    reference_width=25e-6,
    pmos=BsimLikeParameters(
        vth0=0.62,
        gamma=0.52,
        phi=0.90,
        sigma=0.010,
        n=1.5,
        mu0=0.015,
        theta=0.18,
        ec=1.1e7,
        cox=4.5e-3,
        w=10e-6,
        l=0.35e-6,
        lam=0.07,
    ),
)

_REGISTRY = {tech.name: tech for tech in (TSMC018, TSMC025, TSMC035)}


def get_technology(name: str) -> Technology:
    """Look up a built-in technology card by name.

    Raises:
        KeyError: with the list of known cards, if the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown technology {name!r}; known cards: {known}") from None


def list_technologies() -> list[str]:
    """Names of all built-in technology cards."""
    return sorted(_REGISTRY)
