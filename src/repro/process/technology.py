"""Technology cards: everything process-dependent in one dataclass.

The paper reports results on TSMC 0.18, 0.25 and 0.35 um processes.  The
real SPICE decks are proprietary, so a :class:`Technology` bundles synthetic
but realistic parameters for each node (threshold, oxide, mobility, velocity
saturation, rails) and acts as the single factory for device-model instances
so that simulator, ASDM fit and baselines all see the *same* silicon.
"""

from __future__ import annotations

import dataclasses

from ..devices.bsim_like import BsimLikeMosfet, BsimLikeParameters
from ..devices.pmos import ComplementaryMosfet, pmos_from_parameters


@dataclasses.dataclass(frozen=True)
class Technology:
    """A CMOS process node as used by the SSN experiments.

    Attributes:
        name: card name, e.g. ``"tsmc018"``.
        node: drawn channel length in meters.
        vdd: nominal supply voltage in volts.
        nmos: golden NMOS parameters at a reference width
            (use :meth:`nmos_device` to instantiate at any width).
        reference_width: width (meters) the experiments treat as a "1x"
            output-driver pull-down.
        pmos: golden PMOS parameters in magnitude space (|Vth|, hole
            mobility, ...), or None for NMOS-only cards.
        pmos_width_ratio: pull-up width relative to the pull-down at the
            same drive strength (holes are slower; 2-2.5x is typical).
    """

    name: str
    node: float
    vdd: float
    nmos: BsimLikeParameters
    reference_width: float
    pmos: BsimLikeParameters | None = None
    pmos_width_ratio: float = 2.2

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.node <= 0:
            raise ValueError("node length must be positive")
        if abs(self.nmos.l - self.node) > 1e-12:
            raise ValueError(
                f"nmos channel length {self.nmos.l} disagrees with node {self.node}"
            )
        if self.pmos is not None and abs(self.pmos.l - self.node) > 1e-12:
            raise ValueError(
                f"pmos channel length {self.pmos.l} disagrees with node {self.node}"
            )
        if self.pmos_width_ratio <= 0:
            raise ValueError("pmos_width_ratio must be positive")

    def nmos_device(self, width: float | None = None) -> BsimLikeMosfet:
        """A golden NMOS instance at the given width (default: reference)."""
        width = self.reference_width if width is None else width
        if width <= 0:
            raise ValueError("device width must be positive")
        return BsimLikeMosfet(self.nmos.scaled(w=width))

    def driver_device(self, strength: float = 1.0) -> BsimLikeMosfet:
        """Pull-down NFET of an output driver, ``strength`` x the reference."""
        if strength <= 0:
            raise ValueError("driver strength must be positive")
        return self.nmos_device(self.reference_width * strength)

    def pmos_device(self, width: float | None = None) -> ComplementaryMosfet:
        """A golden PMOS instance at the given width.

        Default width: the reference pull-down width times
        ``pmos_width_ratio`` (a matched-strength pull-up).
        """
        if self.pmos is None:
            raise ValueError(f"technology {self.name!r} has no PMOS card")
        width = self.reference_width * self.pmos_width_ratio if width is None else width
        if width <= 0:
            raise ValueError("device width must be positive")
        return pmos_from_parameters(self.pmos.scaled(w=width))

    def pullup_device(self, strength: float = 1.0) -> ComplementaryMosfet:
        """Pull-up PFET of an output driver, ``strength`` x the reference."""
        if strength <= 0:
            raise ValueError("driver strength must be positive")
        return self.pmos_device(self.reference_width * self.pmos_width_ratio * strength)
