"""Synthetic large-N netlist generators for scaling tests and benchmarks.

The SSN driver banks of the paper top out at tens of unknowns — far below
where the sparse MNA tier earns its keep — so the sparse-scaling parity
tests and ``BENCH_perf.json``'s ``sparse_scaling`` section build their own
workloads here: RC/RLC transmission-line ladders in the spirit of the
interconnect crosstalk networks of Hunagund & Kalpana (PAPERS.md), with an
optional MOSFET driver at the head so the Newton loop actually iterates
(a purely linear ladder collapses to one cached factorization per step and
would not exercise the per-iterate factorization path at all).

These are *generators*, not fixtures: they live in the package so the
benchmark harness, the test suite and CI smoke jobs all build bitwise
identical circuits from the same parameters.
"""

from __future__ import annotations

from ..devices.bsim_like import BsimLikeMosfet, BsimLikeParameters
from ..spice import Circuit, Ramp


def ladder_circuit(
    sections: int,
    resistance: float = 25.0,
    capacitance: float = 0.05e-12,
    vdd: float = 1.8,
    rise_time: float = 0.2e-9,
    driver: bool = True,
    width: float = 40e-6,
) -> Circuit:
    """An N-section RC ladder, optionally driven through a MOSFET.

    With ``driver=True`` (the default) the input ramp drives the gate of
    an NMOS whose drain feeds the ladder head through a pull-up resistor —
    one nonlinear device, so every transient step runs real Newton
    iterations over the full matrix.  With ``driver=False`` the ramp drives
    the ladder head directly and the circuit is purely linear (the cached-
    factorization fast path).

    The circuit has ``sections + 2`` nodes plus one branch unknown (the
    source), so ``sections=500`` exercises a ~503-unknown system — the
    regime where the dense O(n^3) per-step cost dominates a transient run.

    Args:
        sections: number of RC sections (>= 1).
        resistance: series resistance per section in ohms.
        capacitance: shunt capacitance per section in farads.
        vdd: supply/ramp amplitude in volts.
        rise_time: input ramp rise time in seconds.
        driver: insert the MOSFET driver stage at the ladder head.
        width: driver channel width in meters (ignored without ``driver``).

    Returns:
        The assembled :class:`~repro.spice.Circuit`.
    """
    if sections < 1:
        raise ValueError("a ladder needs at least one section")
    c = Circuit(f"ladder-{sections}")
    c.vsource("Vin", "in", "0", Ramp(0.0, vdd, 0.1e-9, rise_time))
    head = "n0"
    if driver:
        # Inverter-style stage: ramp on the gate, drain loaded by a pull-up
        # modeled as a resistor to a DC-stiff node held by the source value
        # at t=0 (keeps the topology source+R+M without a second source).
        model = BsimLikeMosfet(BsimLikeParameters(w=width))
        c.resistor("Rpu", "in", head, 2e3)
        c.mosfet("M1", head, "in", "0", "0", model)
    else:
        head = "in"
    prev = head
    for k in range(1, sections + 1):
        node = f"n{k}"
        c.resistor(f"R{k}", prev, node, resistance)
        c.capacitor(f"C{k}", node, "0", capacitance, ic=0.0)
        prev = node
    return c
