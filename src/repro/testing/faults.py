"""Deterministic, scoped fault injection for the recovery-path test suite.

Every recovery path in the campaign runner — step-halving inside a
transient, per-chunk retries, the batch -> scalar -> legacy engine ladder,
broken-process-pool fallback, checkpoint/resume after an interrupt — must
be *exercised*, not trusted.  This module plants cheap probes at the
engine's failure-sensitive sites; with no plan installed (the production
default) every probe is a handful of nanoseconds and a ``None`` check.

A **plan** is a list of :class:`FaultRule` entries, each naming a fault
*kind* and the scope it fires in.  Rules are installed per process via
:func:`install_faults`, which also mirrors the spec into the
``REPRO_FAULTS`` environment variable so process-pool workers (fork *or*
spawn start methods) observe the same plan.  Firing is fully deterministic:
a rule fires exactly when its scope selectors match the current execution
scope (chunk index, task index, attempt number, ladder phase, engine rung)
and, optionally, only on its ``at``-th matching probe.

Kinds and the sites they fire at:

==============  ============  ====================================================
kind            probe site    effect when fired
==============  ============  ====================================================
``newton``      ``newton``    the Newton solver raises ``ConvergenceError``
``worker``      ``worker``    a pool worker process dies (``os._exit``); no-op
                              outside a worker so serial fallbacks recover
``stall``       ``task``      sleeps ``seconds`` so a task misses its deadline
``interrupt``   ``chunk``     raises ``KeyboardInterrupt`` (SIGINT semantics)
``crash-write`` ``checkpoint``raises :class:`InjectedCrash` mid checkpoint write
``engine``      ``engine``    raises :class:`InjectedFault` before a bulk chunk
                              executes (typically scoped ``engine=batch``)
==============  ============  ====================================================

Spec strings are compact and shell-friendly, e.g.::

    install_faults("newton:chunk=1:phase=bulk, worker:task=0")
    install_faults("stall:task=2:seconds=0.05:engine=scalar")
    install_faults("interrupt:chunk=2:at=0")

The campaign runner (and the parallel-map worker shim) publish the current
scope with the :func:`scope` context manager; scope is carried in a
contextvar, so it nests naturally and forks into pool workers on
fork-start platforms.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import multiprocessing
import os
import time

#: Environment variable mirroring the installed plan into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code of a worker killed by the ``worker`` fault (visible in logs).
_WORKER_EXIT_CODE = 13

#: kind -> probe site it fires at.
_SITE_OF = {
    "newton": "newton",
    "worker": "worker",
    "stall": "task",
    "interrupt": "chunk",
    "crash-write": "checkpoint",
    "engine": "engine",
}

#: Scope selector keys a rule may constrain (all optional).
_INT_KEYS = ("chunk", "task")
_STR_KEYS = ("phase", "engine")


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault injector."""


class InjectedCrash(InjectedFault):
    """A simulated hard crash (used to test checkpoint-write atomicity)."""


@dataclasses.dataclass
class FaultRule:
    """One armed fault: a kind plus the scope selectors that trigger it.

    Attributes:
        kind: one of ``newton``/``worker``/``stall``/``interrupt``/
            ``crash-write``/``engine``.
        chunk, task: fire only when the current scope carries this chunk /
            task index (``None`` matches any).
        attempts: fire only on these attempt numbers (``None`` = all).
        phase: fire only in this campaign phase (``"bulk"``/``"instance"``).
        engine: fire only on this engine rung (``"batch"``/``"scalar"``/
            ``"legacy"``).
        at: fire only on the N-th (0-based) scope-matching probe; ``None``
            fires on every match.
        seconds: sleep duration of a ``stall`` rule.
        hits: scope-matching probes seen so far (mutable bookkeeping).
        fired: times the rule actually fired.
    """

    kind: str
    chunk: int | None = None
    task: int | None = None
    attempts: tuple[int, ...] | None = None
    phase: str | None = None
    engine: str | None = None
    at: int | None = None
    seconds: float = 0.0
    hits: int = 0
    fired: int = 0

    def __post_init__(self):
        if self.kind not in _SITE_OF:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(_SITE_OF)}"
            )

    @property
    def site(self) -> str:
        return _SITE_OF[self.kind]

    def matches(self, scope_now: dict) -> bool:
        """Whether this rule's selectors all hold in the given scope."""
        for key in _INT_KEYS + _STR_KEYS:
            want = getattr(self, key)
            if want is not None and scope_now.get(key) != want:
                return False
        if self.attempts is not None and scope_now.get("attempt") not in self.attempts:
            return False
        return True


def parse_faults(spec: str) -> list[FaultRule]:
    """Parse a comma-separated plan spec into rules.

    Each entry is ``kind[:key=value]...``; integer keys take comma-free
    values except ``attempts``, which accepts ``attempts=0+1`` (the ``+``
    keeps entry splitting unambiguous).
    """
    rules = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        kwargs: dict = {}
        for part in parts[1:]:
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key in _INT_KEYS or key == "at":
                kwargs[key] = int(value)
            elif key == "attempts" or key == "attempt":
                kwargs["attempts"] = tuple(int(v) for v in value.split("+"))
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            elif key in _STR_KEYS:
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault selector {key!r} in {entry!r}")
        rules.append(FaultRule(kind=parts[0].strip(), **kwargs))
    return rules


def format_faults(rules: list[FaultRule]) -> str:
    """Inverse of :func:`parse_faults` (selectors only, no counters)."""
    entries = []
    for rule in rules:
        parts = [rule.kind]
        for key in _INT_KEYS + _STR_KEYS + ("at",):
            value = getattr(rule, key)
            if value is not None:
                parts.append(f"{key}={value}")
        if rule.attempts is not None:
            parts.append("attempts=" + "+".join(str(a) for a in rule.attempts))
        if rule.seconds:
            parts.append(f"seconds={rule.seconds!r}")
        entries.append(":".join(parts))
    return ",".join(entries)


# -- plan and scope state ------------------------------------------------------------

_plan_var: contextvars.ContextVar[list[FaultRule] | None] = contextvars.ContextVar(
    "repro_fault_plan", default=None
)
_scope_var: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_fault_scope", default={}
)
#: Per-process cache of the plan parsed from the environment: (spec, rules).
_env_plan: tuple[str, list[FaultRule]] | None = None


def install_faults(spec: str | list[FaultRule], mirror_env: bool = True) -> list[FaultRule]:
    """Arm a fault plan in this process (and, via env, in future workers).

    Returns the live rule list so tests can assert ``fired`` counts.
    """
    rules = parse_faults(spec) if isinstance(spec, str) else list(spec)
    _plan_var.set(rules)
    if mirror_env:
        os.environ[FAULTS_ENV] = (
            spec if isinstance(spec, str) else format_faults(rules)
        )
    return rules


def clear_faults() -> None:
    """Disarm all faults (contextvar and environment mirror)."""
    global _env_plan
    _plan_var.set(None)
    _env_plan = None
    os.environ.pop(FAULTS_ENV, None)


def _active_plan() -> list[FaultRule] | None:
    """The armed rules, if any: contextvar first, then the env mirror.

    The env path makes plans visible to spawn-start pool workers (which
    inherit the environment but not contextvars); the parsed rules are
    cached per process keyed on the spec string, so their ``at`` counters
    stay deterministic within one worker.
    """
    plan = _plan_var.get()
    if plan is not None:
        return plan
    global _env_plan
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    if _env_plan is None or _env_plan[0] != spec:
        _env_plan = (spec, parse_faults(spec))
    return _env_plan[1]


@contextlib.contextmanager
def scope(**updates):
    """Push execution-scope keys (chunk/task/attempt/phase/engine) for probes."""
    merged = dict(_scope_var.get())
    merged.update({k: v for k, v in updates.items() if v is not None})
    token = _scope_var.set(merged)
    try:
        yield merged
    finally:
        _scope_var.reset(token)


def current_scope() -> dict:
    """The merged scope dict probes match against (read-only view)."""
    return dict(_scope_var.get())


def fire(site: str) -> FaultRule | None:
    """The rule firing at ``site`` under the current scope, or None.

    Consumes one matching probe per armed rule (for ``at=`` counting) and
    returns the first rule that fires.  Callers that need a non-default
    effect (the Newton solver raising its own ``ConvergenceError``) use
    this directly; everything else goes through :func:`probe`.
    """
    plan = _active_plan()
    if not plan:
        return None
    scope_now = _scope_var.get()
    hit = None
    for rule in plan:
        if rule.site != site or not rule.matches(scope_now):
            continue
        position = rule.hits
        rule.hits += 1
        if rule.at is not None and rule.at != position:
            continue
        if hit is None:
            rule.fired += 1
            hit = rule
    return hit


def probe(site: str) -> None:
    """Fire-and-act probe for one site (no-op when nothing matches).

    Effects by kind: ``worker`` hard-kills the current *pool worker*
    process (a no-op in the main process, so serial fallbacks always
    recover); ``stall`` sleeps; ``interrupt`` raises ``KeyboardInterrupt``;
    ``crash-write`` raises :class:`InjectedCrash`; ``engine`` raises
    :class:`InjectedFault`.
    """
    rule = fire(site)
    if rule is None:
        return
    if rule.kind == "worker":
        if multiprocessing.parent_process() is not None:
            os._exit(_WORKER_EXIT_CODE)
        return
    if rule.kind == "stall":
        time.sleep(rule.seconds)
        return
    if rule.kind == "interrupt":
        raise KeyboardInterrupt("injected interrupt (fault injection)")
    if rule.kind == "crash-write":
        raise InjectedCrash("injected crash during checkpoint write")
    raise InjectedFault(f"injected {rule.kind} fault at site {site!r}")
