"""Test-support machinery shipped with the library (not test code itself).

The only resident so far is :mod:`repro.testing.faults`, the deterministic
fault injector the robustness suite uses to force worker crashes, Newton
divergence, stalls and mid-run interrupts through the campaign runner's
recovery ladder.  It lives in the package (not under ``tests/``) because
the probes are compiled into the engine and must resolve in pool workers
and CI subprocesses alike.
"""

from .faults import (
    FAULTS_ENV,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    clear_faults,
    current_scope,
    fire,
    install_faults,
    probe,
    scope,
)

__all__ = [
    "FAULTS_ENV",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "clear_faults",
    "current_scope",
    "fire",
    "install_faults",
    "probe",
    "scope",
]
