"""Command-line interface: ``python -m repro <command>``.

Four commands cover the library's day-to-day uses:

* ``fit``       — characterize a process: print the fitted ASDM (and
  baseline) parameters for a technology card.
* ``estimate``  — one-shot peak-SSN estimate for a configuration, with the
  damping region and the applicable Table 1 case.
* ``plan``      — the design helpers: how a bus can meet a noise budget
  (max simultaneous drivers / slower edges / more pads / skewing).
* ``report``    — run a paper experiment and print its report (the same
  artifacts the benchmark harness regenerates).

Every command additionally accepts ``--telemetry`` (print aggregated solver
counters — Newton iterations, step rejections/retries, LU-cache activity,
unrecovered failures — after the command's output) and
``--telemetry-json PATH`` (write the same counters as a machine-readable
run summary, so harnesses can assert "0 unrecovered failures, N retries"
instead of just not-crashing).
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis.engine import ENGINES, set_default_engine
from .spice.telemetry import disable_session_telemetry, enable_session_telemetry

from .core.design import (
    max_simultaneous_drivers,
    required_ground_pads,
    required_rise_time,
    skew_schedule,
)
from .core.ssn_inductive import InductiveSsnModel
from .core.ssn_lc import LcSsnModel
from .experiments import (
    ablations,
    capacitance_sweep,
    damping_map,
    delay_degradation,
    fig1_iv_fit,
    fig2_waveforms,
    fig3_model_comparison,
    fig4_capacitance,
    impedance,
    mutual_coupling,
    pattern_statistics,
    power_rail,
    processes,
    realistic_input,
    skew,
    table1_formulas,
    temperature,
)
from .experiments.common import fitted_models
from .process.library import list_technologies

#: report-command registry: name -> zero-argument-after-tech runner.
_EXPERIMENTS = {
    "fig1": lambda tech: fig1_iv_fit.run(tech).format_report(),
    "fig2": lambda tech: fig2_waveforms.run(tech).format_report(),
    "fig3": lambda tech: fig3_model_comparison.run(tech).format_report(),
    "fig4": lambda tech: fig4_capacitance.run(tech).format_report(),
    "table1": lambda tech: table1_formulas.run(tech).format_report(),
    "processes": lambda tech: processes.run().format_report(),
    "damping": lambda tech: damping_map.run(tech).format_report(),
    "power-rail": lambda tech: power_rail.run(tech).format_report(),
    "coupling": lambda tech: mutual_coupling.run(tech).format_report(),
    "impedance": lambda tech: impedance.run(tech).format_report(),
    "patterns": lambda tech: pattern_statistics.run(tech).format_report(),
    "delay": lambda tech: delay_degradation.run(tech).format_report(),
    "cap-sweep": lambda tech: capacitance_sweep.run(tech).format_report(),
    "temperature": lambda tech: temperature.run(tech).format_report(),
    "skew": lambda tech: skew.run(tech).format_report(),
    "realistic-input": lambda tech: realistic_input.run(tech).format_report(),
    "ablations": lambda tech: "\n".join(
        [
            ablations.resistance_ablation(tech).format_report(),
            ablations.fit_floor_ablation(tech).format_report(),
            ablations.collapse_ablation(tech).format_report(),
        ]
    ),
}


def _add_tech_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech",
        default="tsmc018",
        choices=list_technologies(),
        help="technology card (default: tsmc018)",
    )


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared ``--telemetry`` / ``--telemetry-json`` / ``--engine`` flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry", action="store_true",
        help="print aggregated solver telemetry after the command output",
    )
    parent.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help="write the solver-telemetry run summary as JSON to PATH",
    )
    parent.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="transient engine for golden simulations: 'batch' runs "
        "same-topology ensembles in one vectorized Newton loop, 'scalar' "
        "simulates them one at a time, 'auto' picks per workload "
        "(default: $REPRO_ENGINE, else scalar)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSN estimation via application-specific device modeling "
        "(Ding & Mazumder, DATE 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    telemetry_parent = _telemetry_parent()
    _parent = {"parents": [telemetry_parent]}

    fit = sub.add_parser("fit", help="fit ASDM and baseline models to a process",
                         **_parent)
    _add_tech_argument(fit)
    fit.add_argument("--strength", type=float, default=1.0,
                     help="driver width as a multiple of the reference (default 1)")

    est = sub.add_parser("estimate", help="peak-SSN estimate for one configuration",
                         **_parent)
    _add_tech_argument(est)
    est.add_argument("-n", "--drivers", type=int, required=True,
                     help="simultaneously switching drivers")
    est.add_argument("-l", "--inductance", type=float, default=5e-9,
                     help="ground inductance in henries (default 5e-9)")
    est.add_argument("-c", "--capacitance", type=float, default=None,
                     help="ground capacitance in farads (default: none -> Eqn 7)")
    est.add_argument("-t", "--rise-time", type=float, default=0.5e-9,
                     help="input rise time in seconds (default 0.5e-9)")
    est.add_argument("--gate-csv", default=None,
                     help="CSV of a measured gate waveform (t,y columns); "
                     "adds a PWL-drive estimate fed that waveform")

    plan = sub.add_parser("plan", help="design a bus against a noise budget",
                          **_parent)
    _add_tech_argument(plan)
    plan.add_argument("-b", "--budget", type=float, required=True,
                      help="peak-SSN budget in volts")
    plan.add_argument("-w", "--bus-width", type=int, required=True,
                      help="total bus width in drivers")
    plan.add_argument("-l", "--inductance", type=float, default=5e-9)
    plan.add_argument("-c", "--pin-capacitance", type=float, default=1e-12)
    plan.add_argument("-t", "--rise-time", type=float, default=0.5e-9)

    report = sub.add_parser("report", help="run a paper experiment and print its report",
                            **_parent)
    _add_tech_argument(report)
    report.add_argument("experiment", choices=sorted(_EXPERIMENTS) + ["all"])

    return parser


def _run_fit(args) -> str:
    models = fitted_models(args.tech, args.strength)
    a, ap, sq = models.asdm, models.alpha_power, models.square_law
    lines = [
        f"Technology {args.tech}, driver strength {args.strength}x "
        f"({models.technology.reference_width * args.strength * 1e6:.1f} um pull-down)",
        f"  ASDM (Eqn 3):    K = {a.k * 1e3:.3f} mA/V, V0 = {a.v0:.3f} V, "
        f"lambda = {a.lam:.3f}   "
        f"(max fit err {models.asdm_report.max_relative_error * 100:.1f}%)",
        f"  alpha-power:     B = {ap.b * 1e3:.3f} mA/V^a, Vth = {ap.vth:.3f} V, "
        f"alpha = {ap.alpha:.3f}",
        f"  square law:      beta = {sq.beta * 1e3:.3f} mA/V^2, Vth = {sq.vth:.3f} V",
    ]
    return "\n".join(lines)


def _run_estimate(args) -> str:
    models = fitted_models(args.tech)
    vdd = models.technology.vdd
    lines = [
        f"{args.drivers} drivers, L = {args.inductance:.3g} H, "
        f"tr = {args.rise_time:.3g} s, {args.tech} (VDD = {vdd} V)"
    ]
    l_only = InductiveSsnModel(models.asdm, args.drivers, args.inductance, vdd, args.rise_time)
    lines.append(f"  L-only model (Eqn 7):  peak SSN = {l_only.peak_voltage():.4f} V "
                 f"at t = {l_only.peak_time():.3g} s")
    if args.capacitance is not None:
        lc = LcSsnModel(models.asdm, args.drivers, args.inductance, args.capacitance,
                        vdd, args.rise_time)
        lines.append(f"  LC model (Table 1):    peak SSN = {lc.peak_voltage():.4f} V "
                     f"[{lc.case.value}; zeta = {lc.damping_ratio:.2f}]")
        lines.append(f"  post-ramp extension:   peak SSN = {lc.peak_voltage_extended():.4f} V")
    if args.gate_csv is not None:
        from .core.ssn_pwl import PwlDriveSsnModel
        from .spice.waveform import Waveform

        gate = Waveform.from_csv(args.gate_csv)
        pwl = PwlDriveSsnModel(models.asdm, args.drivers, args.inductance,
                               gate.t, gate.y)
        lines.append(
            f"  PWL drive ({args.gate_csv}): peak SSN = {pwl.peak_voltage():.4f} V "
            f"at t = {pwl.peak_time():.3g} s"
        )
    return "\n".join(lines)


def _run_plan(args) -> str:
    models = fitted_models(args.tech)
    vdd = models.technology.vdd
    params = models.asdm
    lines = [
        f"Bus of {args.bus_width} drivers under a {args.budget} V budget "
        f"({args.tech}, L = {args.inductance:.3g} H, tr = {args.rise_time:.3g} s)"
    ]
    n_max = max_simultaneous_drivers(args.budget, params, args.inductance, vdd, args.rise_time)
    lines.append(f"  max simultaneous drivers: {n_max}")
    tr = required_rise_time(args.budget, params, args.bus_width, args.inductance, vdd)
    lines.append(f"  rise time for the full bus: {tr:.3g} s")
    try:
        pads = required_ground_pads(
            args.budget, params, args.bus_width, args.inductance,
            args.pin_capacitance, vdd, args.rise_time,
        )
        lines.append(
            f"  ground pads for the full bus: {pads.pads} "
            f"(peak {pads.peak_noise:.4f} V)"
        )
    except ValueError as exc:
        lines.append(f"  ground pads for the full bus: {exc}")
    plan = skew_schedule(args.budget, params, args.bus_width, args.inductance, vdd,
                         args.rise_time)
    lines.append(
        f"  skewed launch: {plan.groups} groups of <= {plan.group_size}, "
        f"latency {plan.added_latency:.3g} s, per-group peak {plan.peak_noise:.4f} V"
    )
    return "\n".join(lines)


def _run_report(args) -> str:
    if args.experiment == "all":
        return "\n".join(_EXPERIMENTS[name](args.tech) for name in sorted(_EXPERIMENTS))
    return _EXPERIMENTS[args.experiment](args.tech)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "fit": _run_fit,
        "estimate": _run_estimate,
        "plan": _run_plan,
        "report": _run_report,
    }
    collect = bool(getattr(args, "telemetry", False) or
                   getattr(args, "telemetry_json", None))
    session = enable_session_telemetry() if collect else None
    set_default_engine(getattr(args, "engine", None))
    try:
        print(handlers[args.command](args))
        if session is not None:
            if args.telemetry:
                print(session.format_report())
            if args.telemetry_json:
                with open(args.telemetry_json, "w") as fh:
                    json.dump(session.as_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
    finally:
        set_default_engine(None)
        if session is not None:
            disable_session_telemetry()
    return 0


if __name__ == "__main__":
    sys.exit(main())
