"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the library's day-to-day uses:

* ``fit``       — characterize a process: print the fitted ASDM (and
  baseline) parameters for a technology card.
* ``estimate``  — one-shot peak-SSN estimate for a configuration, with the
  damping region and the applicable Table 1 case.
* ``plan``      — the design helpers: how a bus can meet a noise budget
  (max simultaneous drivers / slower edges / more pads / skewing).
* ``report``    — run a paper experiment and print its report (the same
  artifacts the benchmark harness regenerates).
* ``sweep``     — golden-simulate one knob sweep (driver count, ground
  capacitance or rise time) against the ASDM estimate.
* ``montecarlo``— golden transient Monte Carlo under device variation.
* ``simulate``  — golden-simulate a list of driver counts and print peaks.
* ``serve``     — the SSN service (:mod:`repro.service`): an async HTTP
  front end answering simulate/sweep/montecarlo queries from the
  persistent content-addressed result store, deduplicating identical
  in-flight requests and dispatching misses onto the campaign runner.
* ``status``    — operational health: fetch a running server's
  ``/statusz`` snapshot (``--url``), or summarize a store directory and
  its durable event journal offline (``--store``/``--events``).
* ``events``    — inspect durable event journals: ``events tail`` prints
  the most recent entries, ``events summarize`` the per-name counts.
* ``surrogate`` — fit and inspect the microsecond surrogate tier
  (:mod:`repro.surrogate`): ``surrogate fit`` characterizes a technology
  over a parameter box and persists the fitted model (with validity
  region and error bounds) into the result store; ``surrogate inspect``
  lists the store's fitted models.  ``--engine surrogate`` on the
  campaign commands answers in-region points from the process-default
  registry.

``sweep``/``montecarlo``/``simulate`` run *campaigns* — long multi-simulation workloads — through
the fault-tolerant runner (:mod:`repro.analysis.campaign`): they accept
``--checkpoint PATH`` (journal completed chunks atomically), ``--resume``
(replay the journal and run only what's missing, bit-identical to an
uninterrupted run), ``--max-retries``/``--deadline`` (per-chunk retry
budget and per-task wall-clock limit) plus ``--chunk-size``/``--workers``.

Every command additionally accepts ``--telemetry`` (print aggregated solver
counters — Newton iterations, step rejections/retries, LU-cache activity,
campaign recoveries, unrecovered failures — after the command's output) and
``--telemetry-json PATH`` (write the same counters as a machine-readable
run summary, atomically, so harnesses can assert "0 unrecovered failures,
N retries" instead of just not-crashing).

Observability (:mod:`repro.observability`) rides on the same parent parser:
``--trace PATH`` records a hierarchical span tree and writes it as Chrome
trace-event JSON (open in ``chrome://tracing`` / Perfetto, or summarize
with ``repro trace summarize PATH``), ``--trace-detail`` picks the span
granularity (phase/newton/full), ``--trace-sample`` head-samples root
spans, and ``--metrics PATH`` exports session counters and histograms as
Prometheus text.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .analysis.campaign import CampaignConfig, CampaignRunner
from .analysis.driver_bank import DriverBankSpec
from .analysis.engine import ENGINES, set_default_engine
from .spice.mna import SPARSE_MODES, set_default_sparse
from .observability import atomic_write_json, summarize_trace_file
from .observability import events as obs_events
from .observability import metrics as obs_metrics
from .observability import trace as obs_trace
from .observability.export import write_chrome_trace, write_prometheus
from .observability.trace import DETAIL_LEVELS
from .spice.telemetry import disable_session_telemetry, enable_session_telemetry

from .core.design import (
    max_simultaneous_drivers,
    required_ground_pads,
    required_rise_time,
    skew_schedule,
)
from .core.ssn_inductive import InductiveSsnModel
from .core.ssn_lc import LcSsnModel
from .experiments import (
    ablations,
    capacitance_sweep,
    damping_map,
    delay_degradation,
    fig1_iv_fit,
    fig2_waveforms,
    fig3_model_comparison,
    fig4_capacitance,
    impedance,
    mutual_coupling,
    pattern_statistics,
    power_rail,
    processes,
    realistic_input,
    skew,
    table1_formulas,
    temperature,
)
from .experiments.common import fitted_models
from .process.library import list_technologies

#: report-command registry: name -> zero-argument-after-tech runner.
_EXPERIMENTS = {
    "fig1": lambda tech: fig1_iv_fit.run(tech).format_report(),
    "fig2": lambda tech: fig2_waveforms.run(tech).format_report(),
    "fig3": lambda tech: fig3_model_comparison.run(tech).format_report(),
    "fig4": lambda tech: fig4_capacitance.run(tech).format_report(),
    "table1": lambda tech: table1_formulas.run(tech).format_report(),
    "processes": lambda tech: processes.run().format_report(),
    "damping": lambda tech: damping_map.run(tech).format_report(),
    "power-rail": lambda tech: power_rail.run(tech).format_report(),
    "coupling": lambda tech: mutual_coupling.run(tech).format_report(),
    "impedance": lambda tech: impedance.run(tech).format_report(),
    "patterns": lambda tech: pattern_statistics.run(tech).format_report(),
    "delay": lambda tech: delay_degradation.run(tech).format_report(),
    "cap-sweep": lambda tech: capacitance_sweep.run(tech).format_report(),
    "temperature": lambda tech: temperature.run(tech).format_report(),
    "skew": lambda tech: skew.run(tech).format_report(),
    "realistic-input": lambda tech: realistic_input.run(tech).format_report(),
    "ablations": lambda tech: "\n".join(
        [
            ablations.resistance_ablation(tech).format_report(),
            ablations.fit_floor_ablation(tech).format_report(),
            ablations.collapse_ablation(tech).format_report(),
        ]
    ),
}


def _add_tech_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech",
        default="tsmc018",
        choices=list_technologies(),
        help="technology card (default: tsmc018)",
    )


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared ``--telemetry``/``--telemetry-json``/``--engine``/``--sparse`` flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry", action="store_true",
        help="print aggregated solver telemetry after the command output",
    )
    parent.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help="write the solver-telemetry run summary as JSON to PATH",
    )
    parent.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="transient engine for golden simulations: 'batch' runs "
        "same-topology ensembles in one vectorized Newton loop, 'scalar' "
        "simulates them one at a time, 'surrogate' answers in-region "
        "points from fitted closed-form models (falling back to full "
        "engines otherwise), 'auto' picks per workload "
        "(default: $REPRO_ENGINE, else scalar)",
    )
    parent.add_argument(
        "--sparse", choices=list(SPARSE_MODES), default=None,
        help="linear-algebra tier: 'on' forces CSC assembly + splu "
        "factorization, 'off' forces the dense LAPACK path, 'auto' "
        "engages sparse above the size threshold "
        "(default: $REPRO_SPARSE, else auto)",
    )
    parent.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record hierarchical run tracing and write a Chrome "
        "trace-event JSON to PATH (view in chrome://tracing or Perfetto, "
        "or print with 'repro trace summarize PATH')",
    )
    parent.add_argument(
        "--trace-detail", choices=list(DETAIL_LEVELS), default="newton",
        help="span granularity: 'phase' = campaign/analysis phases only, "
        "'newton' adds one span per Newton solve, 'full' adds per-iteration "
        "assembly/LU spans (default: newton)",
    )
    parent.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="P",
        help="record each root span with probability P in [0, 1]; children "
        "inherit the root's decision, so sampled traces stay whole trees "
        "(default: 1.0)",
    )
    parent.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="collect session metrics (Newton-iteration, step-size and "
        "phase-time histograms; engine/retry counters) and write Prometheus "
        "text to PATH",
    )
    return parent


def _campaign_parent() -> argparse.ArgumentParser:
    """Shared fault-tolerance flags of the campaign commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal completed chunks to PATH (atomic JSONL); a crashed or "
        "interrupted run can be finished with --resume",
    )
    parent.add_argument(
        "--resume", action="store_true",
        help="replay the --checkpoint journal and run only missing chunks; "
        "results are bit-identical to an uninterrupted run",
    )
    parent.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-attempts per chunk (and per recovery rung) after the first "
        "failure (default 2)",
    )
    parent.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget; an attempt exceeding it counts as "
        "failed and enters the retry/degradation ladder (default: none)",
    )
    parent.add_argument(
        "--chunk-size", type=int, default=8, metavar="N",
        help="simulations per journaled chunk (default 8)",
    )
    parent.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for scalar-engine chunks (default: "
        "$REPRO_MAX_WORKERS, else serial; 0 = one per CPU)",
    )
    return parent


def _campaign_config(args) -> CampaignConfig:
    return CampaignConfig(
        checkpoint=args.checkpoint,
        resume=args.resume,
        chunk_size=args.chunk_size,
        max_retries=args.max_retries,
        deadline=args.deadline,
        max_workers=args.workers,
        engine=getattr(args, "engine", None),
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSN estimation via application-specific device modeling "
        "(Ding & Mazumder, DATE 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    telemetry_parent = _telemetry_parent()
    _parent = {"parents": [telemetry_parent]}

    fit = sub.add_parser("fit", help="fit ASDM and baseline models to a process",
                         **_parent)
    _add_tech_argument(fit)
    fit.add_argument("--strength", type=float, default=1.0,
                     help="driver width as a multiple of the reference (default 1)")

    est = sub.add_parser("estimate", help="peak-SSN estimate for one configuration",
                         **_parent)
    _add_tech_argument(est)
    est.add_argument("-n", "--drivers", type=int, required=True,
                     help="simultaneously switching drivers")
    est.add_argument("-l", "--inductance", type=float, default=5e-9,
                     help="ground inductance in henries (default 5e-9)")
    est.add_argument("-c", "--capacitance", type=float, default=None,
                     help="ground capacitance in farads (default: none -> Eqn 7)")
    est.add_argument("-t", "--rise-time", type=float, default=0.5e-9,
                     help="input rise time in seconds (default 0.5e-9)")
    est.add_argument("--gate-csv", default=None,
                     help="CSV of a measured gate waveform (t,y columns); "
                     "adds a PWL-drive estimate fed that waveform")

    plan = sub.add_parser("plan", help="design a bus against a noise budget",
                          **_parent)
    _add_tech_argument(plan)
    plan.add_argument("-b", "--budget", type=float, required=True,
                      help="peak-SSN budget in volts")
    plan.add_argument("-w", "--bus-width", type=int, required=True,
                      help="total bus width in drivers")
    plan.add_argument("-l", "--inductance", type=float, default=5e-9)
    plan.add_argument("-c", "--pin-capacitance", type=float, default=1e-12)
    plan.add_argument("-t", "--rise-time", type=float, default=0.5e-9)

    report = sub.add_parser("report", help="run a paper experiment and print its report",
                            **_parent)
    _add_tech_argument(report)
    report.add_argument("experiment", choices=sorted(_EXPERIMENTS) + ["all"])

    campaign_parent = _campaign_parent()
    _campaign = {"parents": [telemetry_parent, campaign_parent]}

    swp = sub.add_parser(
        "sweep", help="golden-simulate a knob sweep vs the ASDM estimate",
        **_campaign)
    _add_tech_argument(swp)
    swp.add_argument("--knob", choices=("n_drivers", "capacitance", "rise_time"),
                     default="n_drivers", help="quantity to sweep (default n_drivers)")
    swp.add_argument("--values", required=True,
                     help="comma-separated knob values (e.g. 1,2,4,8)")
    swp.add_argument("-n", "--drivers", type=int, default=4,
                     help="base driver count (default 4)")
    swp.add_argument("-l", "--inductance", type=float, default=5e-9,
                     help="ground inductance in henries (default 5e-9)")
    swp.add_argument("-c", "--capacitance", type=float, default=None,
                     help="base ground capacitance in farads (default: none)")
    swp.add_argument("-t", "--rise-time", type=float, default=0.5e-9,
                     help="base input rise time in seconds (default 0.5e-9)")
    swp.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the sweep as CSV to PATH")

    mc = sub.add_parser(
        "montecarlo", help="golden transient Monte Carlo under device variation",
        **_campaign)
    _add_tech_argument(mc)
    mc.add_argument("-n", "--drivers", type=int, required=True,
                    help="simultaneously switching drivers")
    mc.add_argument("-l", "--inductance", type=float, default=5e-9)
    mc.add_argument("-c", "--capacitance", type=float, default=None)
    mc.add_argument("-t", "--rise-time", type=float, default=0.5e-9)
    mc.add_argument("--trials", type=int, default=64,
                    help="Monte Carlo draws (default 64)")
    mc.add_argument("--seed", type=int, default=0,
                    help="RNG seed; draws are fixed up front (default 0)")
    mc.add_argument("--vth-sigma", type=float, default=None,
                    help="threshold 1-sigma in volts (default: DeviceSpread)")
    mc.add_argument("--mu-sigma", type=float, default=None,
                    help="mobility lognormal sigma (default: DeviceSpread)")

    sim = sub.add_parser(
        "simulate", help="golden-simulate driver counts and print SSN peaks",
        **_campaign)
    _add_tech_argument(sim)
    sim.add_argument("-n", "--drivers", required=True,
                     help="comma-separated driver counts (e.g. 2,4,8)")
    sim.add_argument("-l", "--inductance", type=float, default=5e-9)
    sim.add_argument("-c", "--capacitance", type=float, default=None)
    sim.add_argument("-t", "--rise-time", type=float, default=0.5e-9)

    srv = sub.add_parser(
        "serve",
        help="serve simulate/sweep/montecarlo over HTTP from the "
        "persistent result store",
        parents=[_telemetry_parent()],
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8431,
                     help="bind port; 0 picks an ephemeral port and prints "
                     "it (default 8431)")
    srv.add_argument("--store", metavar="DIR", default=".repro_store",
                     help="result-database directory (default .repro_store)")
    srv.add_argument("--max-retries", type=int, default=2, metavar="N",
                     help="campaign retry budget for dispatched misses "
                     "(default 2)")
    srv.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="per-task wall-clock budget of dispatched misses "
                     "(default: none)")
    srv.add_argument("--chunk-size", type=int, default=8, metavar="N",
                     help="campaign chunk size for Monte Carlo fleets "
                     "(default 8)")
    srv.add_argument("--workers", type=int, default=None, metavar="N",
                     help="process-pool width for dispatched campaigns "
                     "(default: $REPRO_MAX_WORKERS, else serial)")
    srv.add_argument("--no-surrogate", action="store_true",
                     help="disable surrogate-first answering (every "
                     "/simulate goes through the exact store/dispatch path)")
    srv.add_argument("--no-refine", action="store_true",
                     help="skip the background golden refinement behind "
                     "surrogate answers")
    srv.add_argument("--events", metavar="PATH", default="auto",
                     help="durable event-journal file (default: "
                     "events.jsonl inside the store)")
    srv.add_argument("--no-events", action="store_true",
                     help="disable the durable event journal")
    srv.add_argument("--audit-fraction", type=float, default=0.1,
                     metavar="F",
                     help="fraction of surrogate answers shadow-audited "
                     "against their golden refinement (default 0.1; "
                     "0 disables)")
    srv.add_argument("--flight-dir", metavar="DIR", default=None,
                     help="directory for flight-recorder bundles on "
                     "compute crashes (default: $REPRO_FLIGHT_DIR, "
                     "else disabled)")

    st = sub.add_parser(
        "status",
        help="operational health: query a server's /statusz or summarize "
        "a store + event journal offline")
    st.add_argument("--url", metavar="URL", default=None,
                    help="base URL of a running server "
                    "(e.g. http://127.0.0.1:8431); fetches /statusz")
    st.add_argument("--store", metavar="DIR", default=".repro_store",
                    help="result-database directory for the offline view "
                    "(default .repro_store)")
    st.add_argument("--events", metavar="PATH", default=None,
                    help="event-journal file for the offline view "
                    "(default: events.jsonl inside the store)")
    st.add_argument("--json", action="store_true",
                    help="print the raw /statusz JSON (with --url)")

    ev = sub.add_parser(
        "events", help="inspect durable event journals (JSONL)")
    ev_sub = ev.add_subparsers(dest="events_command", required=True)
    ev_tail = ev_sub.add_parser(
        "tail", help="print the most recent journal events")
    ev_tail.add_argument("file", help="event-journal JSONL file")
    ev_tail.add_argument("-n", "--lines", type=int, default=10, metavar="N",
                         help="events to show (default 10)")
    ev_sum = ev_sub.add_parser(
        "summarize", help="print per-event-name counts of a journal")
    ev_sum.add_argument("file", help="event-journal JSONL file")

    sg = sub.add_parser(
        "surrogate",
        help="fit / inspect the microsecond surrogate tier",
        parents=[telemetry_parent],
    )
    sg_sub = sg.add_subparsers(dest="surrogate_command", required=True)
    sg_fit = sg_sub.add_parser(
        "fit", help="fit a surrogate over a parameter box and store it")
    _add_tech_argument(sg_fit)
    sg_fit.add_argument("--store", metavar="DIR", default=".repro_store",
                        help="result-database directory to persist the "
                        "fitted model into (default .repro_store)")
    sg_fit.add_argument("--drivers", default="2:12", metavar="LO:HI",
                        help="driver-count validity interval (default 2:12)")
    sg_fit.add_argument("--inductance", default="2e-9:8e-9", metavar="LO:HI",
                        help="ground-inductance interval in henries "
                        "(default 2e-9:8e-9)")
    sg_fit.add_argument("--rise-time", default="0.2e-9:0.8e-9", metavar="LO:HI",
                        help="rise-time interval in seconds "
                        "(default 0.2e-9:0.8e-9)")
    sg_fit.add_argument("--capacitance", default=None, metavar="LO:HI",
                        help="ground-capacitance interval in farads; fits an "
                        "LC surrogate (default: none -> L-only topology)")
    sg_fit.add_argument("--guard", type=float, default=0.0,
                        help="extrapolation allowance per knob as a fraction "
                        "of its span (default 0 = strict box)")
    sg_fit.add_argument("--tolerance", type=float, default=3.0,
                        metavar="PERCENT",
                        help="worst-case peak-error tolerance the model may "
                        "serve under (default 3)")
    sg_fit.add_argument("--samples", type=int, default=2, metavar="N",
                        help="training-grid density per knob; 2 = box "
                        "corners (default 2)")
    sg_fit.add_argument("--strength", type=float, default=1.0,
                        help="driver width multiple frozen into the model "
                        "(default 1)")
    sg_inspect = sg_sub.add_parser(
        "inspect", help="list the fitted surrogate models in a store")
    sg_inspect.add_argument("--store", metavar="DIR", default=".repro_store",
                            help="result-database directory "
                            "(default .repro_store)")

    tr = sub.add_parser("trace", help="inspect trace files written by --trace")
    tr_sub = tr.add_subparsers(dest="trace_command", required=True)
    tr_sum = tr_sub.add_parser(
        "summarize", help="print a per-span-name timeline summary of a trace")
    tr_sum.add_argument("file", help="Chrome trace-event JSON written by --trace")
    tr_sum.add_argument("--max-depth", type=int, default=6, metavar="N",
                        help="only summarize spans nested at most N deep "
                        "(default: 6)")

    return parser


def _run_fit(args) -> str:
    models = fitted_models(args.tech, args.strength)
    a, ap, sq = models.asdm, models.alpha_power, models.square_law
    lines = [
        f"Technology {args.tech}, driver strength {args.strength}x "
        f"({models.technology.reference_width * args.strength * 1e6:.1f} um pull-down)",
        f"  ASDM (Eqn 3):    K = {a.k * 1e3:.3f} mA/V, V0 = {a.v0:.3f} V, "
        f"lambda = {a.lam:.3f}   "
        f"(max fit err {models.asdm_report.max_relative_error * 100:.1f}%)",
        f"  alpha-power:     B = {ap.b * 1e3:.3f} mA/V^a, Vth = {ap.vth:.3f} V, "
        f"alpha = {ap.alpha:.3f}",
        f"  square law:      beta = {sq.beta * 1e3:.3f} mA/V^2, Vth = {sq.vth:.3f} V",
    ]
    return "\n".join(lines)


def _run_estimate(args) -> str:
    models = fitted_models(args.tech)
    vdd = models.technology.vdd
    lines = [
        f"{args.drivers} drivers, L = {args.inductance:.3g} H, "
        f"tr = {args.rise_time:.3g} s, {args.tech} (VDD = {vdd} V)"
    ]
    l_only = InductiveSsnModel(models.asdm, args.drivers, args.inductance, vdd, args.rise_time)
    lines.append(f"  L-only model (Eqn 7):  peak SSN = {l_only.peak_voltage():.4f} V "
                 f"at t = {l_only.peak_time():.3g} s")
    if args.capacitance is not None:
        lc = LcSsnModel(models.asdm, args.drivers, args.inductance, args.capacitance,
                        vdd, args.rise_time)
        lines.append(f"  LC model (Table 1):    peak SSN = {lc.peak_voltage():.4f} V "
                     f"[{lc.case.value}; zeta = {lc.damping_ratio:.2f}]")
        lines.append(f"  post-ramp extension:   peak SSN = {lc.peak_voltage_extended():.4f} V")
    if args.gate_csv is not None:
        from .core.ssn_pwl import PwlDriveSsnModel
        from .spice.waveform import Waveform

        gate = Waveform.from_csv(args.gate_csv)
        pwl = PwlDriveSsnModel(models.asdm, args.drivers, args.inductance,
                               gate.t, gate.y)
        lines.append(
            f"  PWL drive ({args.gate_csv}): peak SSN = {pwl.peak_voltage():.4f} V "
            f"at t = {pwl.peak_time():.3g} s"
        )
    return "\n".join(lines)


def _run_plan(args) -> str:
    models = fitted_models(args.tech)
    vdd = models.technology.vdd
    params = models.asdm
    lines = [
        f"Bus of {args.bus_width} drivers under a {args.budget} V budget "
        f"({args.tech}, L = {args.inductance:.3g} H, tr = {args.rise_time:.3g} s)"
    ]
    n_max = max_simultaneous_drivers(args.budget, params, args.inductance, vdd, args.rise_time)
    lines.append(f"  max simultaneous drivers: {n_max}")
    tr = required_rise_time(args.budget, params, args.bus_width, args.inductance, vdd)
    lines.append(f"  rise time for the full bus: {tr:.3g} s")
    try:
        pads = required_ground_pads(
            args.budget, params, args.bus_width, args.inductance,
            args.pin_capacitance, vdd, args.rise_time,
        )
        lines.append(
            f"  ground pads for the full bus: {pads.pads} "
            f"(peak {pads.peak_noise:.4f} V)"
        )
    except ValueError as exc:
        lines.append(f"  ground pads for the full bus: {exc}")
    plan = skew_schedule(args.budget, params, args.bus_width, args.inductance, vdd,
                         args.rise_time)
    lines.append(
        f"  skewed launch: {plan.groups} groups of <= {plan.group_size}, "
        f"latency {plan.added_latency:.3g} s, per-group peak {plan.peak_noise:.4f} V"
    )
    return "\n".join(lines)


def _run_report(args) -> str:
    if args.experiment == "all":
        return "\n".join(_EXPERIMENTS[name](args.tech) for name in sorted(_EXPERIMENTS))
    return _EXPERIMENTS[args.experiment](args.tech)


#: sweep-command knob -> pure spec transform (shared with the sweep layer).
_SWEEP_APPLY = {
    "n_drivers": lambda spec, v: dataclasses.replace(spec, n_drivers=int(v)),
    "capacitance": lambda spec, v: dataclasses.replace(spec, capacitance=float(v)),
    "rise_time": lambda spec, v: dataclasses.replace(spec, rise_time=float(v)),
}


def _asdm_estimator(models):
    """Closed-form peak-SSN estimate matched to each point's topology."""
    vdd = models.technology.vdd

    def estimate(spec: DriverBankSpec) -> float:
        if spec.capacitance is not None:
            return LcSsnModel(models.asdm, spec.n_drivers, spec.inductance,
                              spec.capacitance, vdd, spec.rise_time).peak_voltage()
        return InductiveSsnModel(models.asdm, spec.n_drivers, spec.inductance,
                                 vdd, spec.rise_time).peak_voltage()

    return estimate


def _campaign_summary(runner: CampaignRunner) -> str:
    tel = runner.telemetry
    return (f"  campaign: retries={tel.retries} degradations={tel.degradations} "
            f"chunks_failed={tel.chunks_failed} "
            f"checkpoints={tel.checkpoint_writes}")


def _run_sweep(args) -> str:
    models = fitted_models(args.tech)
    base = DriverBankSpec(
        technology=models.technology, n_drivers=args.drivers,
        inductance=args.inductance, rise_time=args.rise_time,
        capacitance=args.capacitance,
    )
    values = [float(v) for v in args.values.split(",") if v.strip()]
    runner = CampaignRunner(_campaign_config(args))
    result = runner.run_sweep(args.knob, base, values, _SWEEP_APPLY[args.knob],
                              {"asdm": _asdm_estimator(models)})
    lines = [
        f"sweep {args.knob} over {len(values)} points "
        f"({args.tech}, L = {args.inductance:.3g} H)",
        f"  {'value':>12}  {'simulated':>10}  {'asdm':>10}  {'err%':>7}",
    ]
    for p in result.points:
        lines.append(
            f"  {p.value:>12.6g}  {p.simulated_peak:>10.4f}  "
            f"{p.estimates['asdm']:>10.4f}  {p.percent_error('asdm'):>7.2f}"
        )
    lines.append(_campaign_summary(runner))
    if args.csv:
        result.to_csv(args.csv)
        lines.append(f"  wrote {args.csv}")
    return "\n".join(lines)


def _run_montecarlo(args) -> str:
    from .analysis.montecarlo import DeviceSpread

    models = fitted_models(args.tech)
    spec = DriverBankSpec(
        technology=models.technology, n_drivers=args.drivers,
        inductance=args.inductance, rise_time=args.rise_time,
        capacitance=args.capacitance,
    )
    defaults = DeviceSpread()
    spread = DeviceSpread(
        vth_sigma=defaults.vth_sigma if args.vth_sigma is None else args.vth_sigma,
        mu_sigma=defaults.mu_sigma if args.mu_sigma is None else args.mu_sigma,
    )
    runner = CampaignRunner(_campaign_config(args))
    result = runner.run_montecarlo(spec, spread=spread, trials=args.trials,
                                   seed=args.seed)
    lines = [
        f"golden Monte Carlo: {args.trials} trials, {args.drivers} drivers, "
        f"L = {args.inductance:.3g} H, seed {args.seed} ({args.tech})",
        f"  mean peak SSN:  {result.mean:.4f} V   (std {result.std:.4f} V)",
        f"  p95 peak SSN:   {result.p95:.4f} V",
        f"  nominal:        {result.nominal:.4f} V   "
        f"(guard band {result.guard_band:.4f} V)",
        _campaign_summary(runner),
    ]
    return "\n".join(lines)


def _run_serve(args) -> str:
    # Local import: the service stack (asyncio server, store) is only
    # needed by this command.
    from .service import ServiceConfig, run_server

    config = ServiceConfig(
        host=args.host, port=args.port, store_root=args.store,
        max_retries=args.max_retries, deadline=args.deadline,
        chunk_size=args.chunk_size, max_workers=args.workers,
        surrogate=not args.no_surrogate,
        surrogate_refine=not args.no_refine,
        audit_fraction=args.audit_fraction,
        events_path=None if args.no_events else args.events,
        flight_dir=args.flight_dir,
    )
    try:
        run_server(config, announce=lambda line: print(line, flush=True))
    except KeyboardInterrupt:
        pass
    return "server stopped"


def _statusz_lines(payload: dict) -> list[str]:
    """Render a ``/statusz`` JSON snapshot as a short human report."""
    lines = [f"status: {payload.get('status', '?')}"]
    store = payload.get("store") or {}
    if store:
        lines.append(f"  store: {store.get('records', '?')} records, "
                     f"{store.get('quarantined', 0)} quarantined "
                     f"({store.get('root', '?')})")
    lines.append(f"  inflight: {payload.get('inflight', 0)}")
    slo = payload.get("slo") or {}
    if slo:
        budget = slo.get("error_budget") or {}
        lines.append(
            f"  slo[{slo.get('window_seconds', '?')}s]: "
            f"{slo.get('requests', 0)} requests, "
            f"error rate {slo.get('error_rate', 0.0):.4f}, "
            f"hit rate {slo.get('hit_rate', 0.0):.2f}, "
            f"surrogate rate {slo.get('surrogate_rate', 0.0):.2f}, "
            f"budget {budget.get('state', '?')} "
            f"({budget.get('remaining', 0.0):.2f} remaining)")
    surrogate = payload.get("surrogate") or {}
    if surrogate:
        audit = surrogate.get("audit") or {}
        lines.append(f"  surrogate: {surrogate.get('models', 0)} models, "
                     f"audit fraction {audit.get('fraction', 0.0):g}, "
                     f"{audit.get('pending', 0)} audits pending")
        for region, stats in sorted((audit.get("regions") or {}).items()):
            flag = "  DEMOTED" if stats.get("demoted") else ""
            lines.append(
                f"    {region}: {stats.get('samples', 0)} audited, "
                f"max err {stats.get('max_abs_percent', 0.0):.2f}%{flag}")
        for slot in audit.get("demoted") or []:
            lines.append(
                f"    demoted {slot.get('technology')}/{slot.get('topology')}"
                f"/{slot.get('operating_region')}: {slot.get('reason')}")
    events = payload.get("events") or {}
    if events:
        lines.append(f"  events: {events.get('recorded', 0)} recorded "
                     f"-> {events.get('path') or '(memory only)'}")
    return lines


def _run_status(args) -> str:
    if args.url:
        # Local import: only this branch needs an HTTP client.
        import json
        import urllib.request

        url = args.url.rstrip("/") + "/statusz"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                payload = json.loads(response.read().decode())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"status: cannot fetch {url}: {exc}") from None
        if args.json:
            return json.dumps(payload, indent=2, sort_keys=True)
        return "\n".join([f"statusz from {url}:"] + _statusz_lines(payload))

    # Offline view: summarize the store directory and its event journal.
    import json
    from pathlib import Path

    from .service import ResultStore

    root = Path(args.store)
    if not root.exists():
        raise SystemExit(f"status: no store at {root} "
                         "(pass --store or --url)")
    store = ResultStore(root)
    events_path = Path(args.events) if args.events else root / "events.jsonl"
    lines = [
        f"store {root}: {len(store)} records, "
        f"{len(store.quarantined())} quarantined",
    ]
    kinds: dict[str, int] = {}
    for path in sorted(root.glob("??/*.json")):
        try:
            record = json.loads(path.read_text())
            kind = record.get("kind", "?") if isinstance(record, dict) else "?"
        except (OSError, ValueError):
            kind = "?"
        kinds[kind] = kinds.get(kind, 0) + 1
    for kind in sorted(kinds):
        lines.append(f"  {kind}: {kinds[kind]}")
    if events_path.exists():
        events = obs_events.read_journal(events_path)
        lines.append(f"journal {events_path}:")
        lines.extend("  " + line for line in
                     obs_events.summarize_events(events).splitlines())
    else:
        lines.append(f"journal {events_path}: (absent)")
    return "\n".join(lines)


def _run_events(args) -> str:
    events = obs_events.read_journal(args.file)
    if args.events_command == "tail":
        if not events:
            return f"{args.file}: no events"
        shown = events[-max(args.lines, 0):]
        return "\n".join(obs_events.format_event(event) for event in shown)
    return "\n".join([f"{args.file}:"] +
                     ["  " + line for line in
                      obs_events.summarize_events(events).splitlines()])


def _parse_interval(text: str, name: str) -> tuple[float, float]:
    """Parse a ``LO:HI`` interval argument into a (lo, hi) float pair."""
    try:
        lo_text, hi_text = text.split(":")
        lo, hi = float(lo_text), float(hi_text)
    except ValueError:
        raise SystemExit(f"--{name}: expected LO:HI, got {text!r}") from None
    if not lo < hi:
        raise SystemExit(f"--{name}: need LO < HI, got {text!r}")
    return lo, hi


def _run_surrogate(args) -> str:
    # Local import: the surrogate tier and store are only needed here.
    from .service import ResultStore, surrogate_key
    from .surrogate import fit_surrogate

    store = ResultStore(args.store)
    if args.surrogate_command == "inspect":
        lines = [f"surrogate models in {args.store}:"]
        count = 0
        for record in store.iter_records(kind="surrogate"):
            model = record["model"]
            error = model["error"]
            box = ", ".join(
                f"{knob} [{lo:.3g}, {hi:.3g}]"
                for knob, (lo, hi) in sorted(model["region"]["box"].items())
            )
            lines.append(
                f"  {model['technology']}/{model['topology']}"
                f"/{model['operating_region']}: max err "
                f"{error['max_abs_percent']:.2f}% over "
                f"{model['n_training']} training points; {box}"
            )
            count += 1
        if count == 0:
            lines.append("  (none)")
        return "\n".join(lines)

    model = fit_surrogate(
        args.tech,
        n_drivers=_parse_interval(args.drivers, "drivers"),
        inductance=_parse_interval(args.inductance, "inductance"),
        rise_time=_parse_interval(args.rise_time, "rise-time"),
        capacitance=(None if args.capacitance is None
                     else _parse_interval(args.capacitance, "capacitance")),
        guard=args.guard,
        tolerance_percent=args.tolerance,
        samples_per_knob=args.samples,
        driver_strength=args.strength,
        # Honor an explicit --engine; otherwise train batched, the fastest
        # exact path for the factorial grid.
        engine=None if args.engine else "batch",
    )
    key = surrogate_key(model.technology, model.topology, model.operating_region)
    store.put_surrogate(key, model)
    box = ", ".join(f"{knob} [{lo:.3g}, {hi:.3g}]" for knob, lo, hi in model.region.box)
    return "\n".join([
        f"fitted surrogate {model.technology}/{model.topology}"
        f"/{model.operating_region} -> {args.store} ({key[:12]}...)",
        f"  validity box: {box} (guard {model.region.guard:g})",
        f"  ASDM: K = {model.asdm.k * 1e3:.3f} mA/V, V0 = {model.asdm.v0:.3f} V, "
        f"lambda = {model.asdm.lam:.3f}",
        f"  peak error vs golden MNA: max {model.error.max_abs_percent:.2f}%, "
        f"mean {model.error.mean_abs_percent:.2f}% "
        f"over {model.n_training} training points "
        f"(serving tolerance {model.tolerance_percent:g}%)",
    ])


def _run_trace(args) -> str:
    return summarize_trace_file(args.file, max_depth=args.max_depth)


def _run_simulate(args) -> str:
    models = fitted_models(args.tech)
    counts = [int(v) for v in args.drivers.split(",") if v.strip()]
    specs = [
        DriverBankSpec(
            technology=models.technology, n_drivers=n,
            inductance=args.inductance, rise_time=args.rise_time,
            capacitance=args.capacitance,
        )
        for n in counts
    ]
    runner = CampaignRunner(_campaign_config(args))
    summaries = runner.run_simulate(specs)
    lines = [
        f"golden simulation of {len(counts)} configurations "
        f"({args.tech}, L = {args.inductance:.3g} H, "
        f"tr = {args.rise_time:.3g} s)",
        f"  {'drivers':>8}  {'peak SSN':>10}  {'at':>10}  engine",
    ]
    for n, summary in zip(counts, summaries):
        lines.append(
            f"  {n:>8}  {summary.peak_voltage:>10.4f}  "
            f"{summary.peak_time:>10.3g}  {summary.engine}"
        )
    lines.append(_campaign_summary(runner))
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "fit": _run_fit,
        "estimate": _run_estimate,
        "plan": _run_plan,
        "report": _run_report,
        "sweep": _run_sweep,
        "montecarlo": _run_montecarlo,
        "simulate": _run_simulate,
        "serve": _run_serve,
        "status": _run_status,
        "events": _run_events,
        "surrogate": _run_surrogate,
        "trace": _run_trace,
    }
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    # --metrics wants the session telemetry too: record_telemetry projects
    # the aggregated counters and phase timings into the registry at export.
    collect = bool(getattr(args, "telemetry", False) or
                   getattr(args, "telemetry_json", None) or metrics_path)
    session = enable_session_telemetry() if collect else None
    tracer = obs_trace.enable_tracing(
        sample=args.trace_sample, detail=args.trace_detail,
    ) if trace_path else None
    registry = obs_metrics.enable_metrics() if metrics_path else None
    set_default_engine(getattr(args, "engine", None))
    set_default_sparse(getattr(args, "sparse", None))
    try:
        print(handlers[args.command](args))
        if session is not None:
            if getattr(args, "telemetry", False):
                print(session.format_report())
            if getattr(args, "telemetry_json", None):
                atomic_write_json(args.telemetry_json, session.as_dict())
        if tracer is not None:
            write_chrome_trace(trace_path, tracer.spans, tracer)
        if registry is not None:
            registry.record_telemetry(session)
            write_prometheus(metrics_path, registry)
    finally:
        set_default_engine(None)
        set_default_sparse(None)
        obs_trace.disable_tracing()
        obs_metrics.disable_metrics()
        if session is not None:
            disable_session_telemetry()
    return 0


if __name__ == "__main__":
    sys.exit(main())
