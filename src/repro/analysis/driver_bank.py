"""Construction of the N-driver SSN validation circuit (paper Fig. 2 setup).

The circuit the paper simulates in HSPICE:

* a shared input ramp 0 -> VDD over ``rise_time`` driving every gate,
* N identical pull-down NFETs, drains on their own output pads,
* each pad loaded by a large capacitor initially charged to VDD,
* all sources and bulks tied to the *internal* ground node,
* the internal ground tied to the true ground through the package
  parasitics: L alone (Section 3) or L plus a shunt C (Section 4), with an
  optional series R (which the paper argues is negligible — we keep it as a
  knob so that claim can be tested, see the ablation benchmark).

Because the drivers are identical they may be *collapsed* into a single
device of N-fold width driving an N-fold load — mathematically exact and
linearly faster to simulate.  ``collapse=False`` keeps N explicit devices;
the equivalence is verified in the integration tests.
"""

from __future__ import annotations

import dataclasses

from ..process.technology import Technology
from ..spice.circuit import Circuit
from ..spice.sources import Ramp

#: Node names used by the generated netlist.
INPUT_NODE = "in"
GROUND_BOUNCE_NODE = "ssn"
OUTPUT_NODE_FMT = "out{index}"
INDUCTOR_NAME = "Lgnd"
CAPACITOR_NAME = "Cgnd"
RESISTOR_NAME = "Rgnd"


@dataclasses.dataclass(frozen=True)
class DriverBankSpec:
    """Everything needed to build and simulate one SSN validation circuit.

    Attributes:
        technology: process card supplying VDD and the golden device.
        n_drivers: number of simultaneously switching output drivers.
        inductance: ground-path inductance in henries.
        rise_time: input ramp 0 -> VDD duration in seconds.
        capacitance: ground-path shunt capacitance in farads, or None for
            the Section-3 inductance-only network.
        resistance: ground-path series resistance in ohms (0 disables).
        load_capacitance: per-driver output load in farads.
        driver_strength: driver width as a multiple of the technology's
            reference output-driver width.
        collapse: merge the identical drivers into one scaled device.
        input_offsets: optional per-driver input-ramp start times in
            seconds (length n_drivers).  When set, each driver gets its
            own input source and ``collapse`` is ignored — this is the
            harness for verifying skewed (staggered) launch schedules.
    """

    technology: Technology
    n_drivers: int
    inductance: float
    rise_time: float
    capacitance: float | None = None
    resistance: float = 0.0
    load_capacitance: float = 10e-12
    driver_strength: float = 1.0
    collapse: bool = True
    input_offsets: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.n_drivers <= 0:
            raise ValueError("n_drivers must be positive")
        if self.inductance <= 0:
            raise ValueError("inductance must be positive")
        if self.capacitance is not None and self.capacitance <= 0:
            raise ValueError("capacitance must be positive (or None to omit)")
        if self.resistance < 0:
            raise ValueError("resistance must be non-negative")
        if self.rise_time <= 0 or self.load_capacitance <= 0:
            raise ValueError("rise_time and load_capacitance must be positive")
        if self.input_offsets is not None:
            if len(self.input_offsets) != self.n_drivers:
                raise ValueError(
                    f"input_offsets has {len(self.input_offsets)} entries "
                    f"for {self.n_drivers} drivers"
                )
            if any(offset < 0 for offset in self.input_offsets):
                raise ValueError("input offsets must be non-negative")

    @property
    def slope(self) -> float:
        """Input ramp slope sr = VDD / tr."""
        return self.technology.vdd / self.rise_time

    def driver_names(self) -> list[str]:
        """Names of the MOSFET elements present in the built circuit."""
        if self.collapse and self.input_offsets is None:
            return ["M1"]
        return [f"M{i + 1}" for i in range(self.n_drivers)]


def build_driver_bank(spec: DriverBankSpec) -> Circuit:
    """Build the SSN validation netlist for a spec.

    The ground-path topology is: ``ssn`` --L-- (--R--) ``0`` with the shunt
    C from ``ssn`` straight to true ground, matching the paper's Eqns
    (11)-(12) where the capacitor current bypasses the inductor.
    """
    tech = spec.technology
    vdd = tech.vdd
    circuit = Circuit(
        f"{spec.n_drivers}-driver SSN bank, {tech.name}, "
        f"L={spec.inductance:.3g} C={spec.capacitance or 0:.3g}"
    )
    if spec.input_offsets is None:
        circuit.vsource("Vin", INPUT_NODE, "0", Ramp(0.0, vdd, 0.0, spec.rise_time))
    else:
        for i, offset in enumerate(spec.input_offsets):
            circuit.vsource(
                f"Vin{i + 1}", f"{INPUT_NODE}{i + 1}", "0",
                Ramp(0.0, vdd, offset, spec.rise_time),
            )

    inductor_bottom = "0"
    if spec.resistance > 0:
        inductor_bottom = "lr_mid"
        circuit.resistor(RESISTOR_NAME, inductor_bottom, "0", spec.resistance)
    circuit.inductor(INDUCTOR_NAME, GROUND_BOUNCE_NODE, inductor_bottom, spec.inductance, ic=0.0)
    if spec.capacitance is not None:
        circuit.capacitor(CAPACITOR_NAME, GROUND_BOUNCE_NODE, "0", spec.capacitance, ic=0.0)

    if spec.collapse and spec.input_offsets is None:
        device = tech.driver_device(spec.driver_strength * spec.n_drivers)
        out = OUTPUT_NODE_FMT.format(index=1)
        circuit.capacitor("CL1", out, "0", spec.load_capacitance * spec.n_drivers, ic=vdd)
        circuit.mosfet("M1", out, INPUT_NODE, GROUND_BOUNCE_NODE, GROUND_BOUNCE_NODE, device)
    else:
        device = tech.driver_device(spec.driver_strength)
        for i in range(spec.n_drivers):
            out = OUTPUT_NODE_FMT.format(index=i + 1)
            gate = INPUT_NODE if spec.input_offsets is None else f"{INPUT_NODE}{i + 1}"
            circuit.capacitor(f"CL{i + 1}", out, "0", spec.load_capacitance, ic=vdd)
            circuit.mosfet(
                f"M{i + 1}", out, gate, GROUND_BOUNCE_NODE, GROUND_BOUNCE_NODE, device
            )
    return circuit
