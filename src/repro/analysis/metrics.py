"""Error metrics used when judging estimators against the golden simulation."""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..spice.waveform import Waveform


def relative_error(estimate: float, reference: float) -> float:
    """Signed (estimate - reference)/reference; reference must be nonzero."""
    if reference == 0.0:
        raise ValueError("relative error undefined for a zero reference")
    return (estimate - reference) / reference


def percent_error(estimate: float, reference: float) -> float:
    """Signed relative error in percent."""
    return 100.0 * relative_error(estimate, reference)


@dataclasses.dataclass(frozen=True)
class ErrorSummary:
    """Aggregate accuracy of one estimator over a sweep.

    Attributes:
        mean_abs_percent: mean of |percent error| over the sweep points.
        max_abs_percent: worst |percent error|.
        rms_percent: RMS percent error.
        bias_percent: mean signed percent error (positive = overestimates).
    """

    mean_abs_percent: float
    max_abs_percent: float
    rms_percent: float
    bias_percent: float

    @classmethod
    def from_pairs(cls, estimates, references) -> "ErrorSummary":
        """Summary over aligned arrays of estimates and golden references."""
        estimates = np.asarray(estimates, dtype=float)
        references = np.asarray(references, dtype=float)
        if estimates.shape != references.shape or estimates.size == 0:
            raise ValueError("estimates and references must be equal-length, non-empty")
        if np.any(references == 0.0):
            raise ValueError("references must be nonzero")
        pct = 100.0 * (estimates - references) / references
        return cls(
            mean_abs_percent=float(np.mean(np.abs(pct))),
            max_abs_percent=float(np.max(np.abs(pct))),
            rms_percent=float(np.sqrt(np.mean(np.square(pct)))),
            bias_percent=float(np.mean(pct)),
        )


@dataclasses.dataclass(frozen=True)
class WaveformComparison:
    """Pointwise agreement of a model waveform with a golden waveform.

    Comparison is restricted to the model's validity window (NaN samples in
    the model waveform are ignored), normalized by the golden peak.

    Attributes:
        max_abs_error: worst |model - golden| in volts (or amperes).
        rms_error: RMS difference over the window.
        normalized_max_error: max_abs_error / max|golden|.
    """

    max_abs_error: float
    rms_error: float
    normalized_max_error: float


def compare_waveforms(model: Waveform, golden: Waveform) -> WaveformComparison:
    """Compare a (possibly partially-NaN) model waveform against a golden one."""
    reference = golden.value_at(model.t)
    diff = model.y - reference
    valid = np.isfinite(diff)
    if not np.any(valid):
        raise ValueError("model waveform has no finite samples to compare")
    diff = diff[valid]
    scale = float(np.max(np.abs(golden.y)))
    if scale == 0.0 or math.isclose(scale, 0.0):
        raise ValueError("golden waveform is identically zero")
    max_abs = float(np.max(np.abs(diff)))
    return WaveformComparison(
        max_abs_error=max_abs,
        rms_error=float(np.sqrt(np.mean(np.square(diff)))),
        normalized_max_error=max_abs / scale,
    )
