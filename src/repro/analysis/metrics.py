"""Error metrics used when judging estimators against the golden simulation."""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..spice.waveform import Waveform


def relative_error(estimate: float, reference: float) -> float:
    """Signed (estimate - reference)/reference.

    Zero-reference convention (a degenerate operating point, e.g. a sweep
    value that suppresses switching entirely):

    * ``0/0`` — estimate and reference both exactly 0 — is **0.0**: the
      estimator is exactly right, there is no error to report.
    * ``x/0`` with ``x != 0`` is **signed infinity** (the error really is
      unbounded relative to a zero reference), never an exception.

    Aggregators must not fold the infinite case into means — see
    :meth:`ErrorSummary.from_pairs`, which skips and counts such pairs.
    """
    if reference == 0.0:
        if estimate == 0.0:
            return 0.0
        return math.copysign(math.inf, estimate)
    return (estimate - reference) / reference


def percent_error(estimate: float, reference: float) -> float:
    """Signed relative error in percent (same zero-reference conventions)."""
    return 100.0 * relative_error(estimate, reference)


@dataclasses.dataclass(frozen=True)
class ErrorSummary:
    """Aggregate accuracy of one estimator over a sweep.

    Attributes:
        mean_abs_percent: mean of |percent error| over the sweep points.
        max_abs_percent: worst |percent error|.
        rms_percent: RMS percent error.
        bias_percent: mean signed percent error (positive = overestimates).
        n_points: pairs that entered the aggregates.
        n_skipped: degenerate pairs (zero reference) excluded from the
            aggregates rather than propagating ``inf`` into the means.
    """

    mean_abs_percent: float
    max_abs_percent: float
    rms_percent: float
    bias_percent: float
    n_points: int = 0
    n_skipped: int = 0

    @classmethod
    def from_pairs(cls, estimates, references) -> "ErrorSummary":
        """Summary over aligned arrays of estimates and golden references.

        Pairs whose reference is exactly 0 carry no meaningful relative
        error (see :func:`relative_error`); they are skipped and counted
        in ``n_skipped`` instead of poisoning every mean with ``inf``.
        If *no* pair has a nonzero reference the summary is undefined and
        a ``ValueError`` is raised.
        """
        estimates = np.asarray(estimates, dtype=float)
        references = np.asarray(references, dtype=float)
        if estimates.shape != references.shape or estimates.size == 0:
            raise ValueError("estimates and references must be equal-length, non-empty")
        valid = references != 0.0
        n_skipped = int(np.count_nonzero(~valid))
        if not np.any(valid):
            raise ValueError("all references are zero; relative errors undefined")
        pct = 100.0 * (estimates[valid] - references[valid]) / references[valid]
        return cls(
            mean_abs_percent=float(np.mean(np.abs(pct))),
            max_abs_percent=float(np.max(np.abs(pct))),
            rms_percent=float(np.sqrt(np.mean(np.square(pct)))),
            bias_percent=float(np.mean(pct)),
            n_points=int(pct.size),
            n_skipped=n_skipped,
        )


def settling_time(waveform: Waveform, band: float) -> float:
    """Earliest time after which the signal stays within ``band`` of its end.

    The batched-ensemble workflows summarize SSN waveforms by peak and
    settling; this is the scalar reference definition.  ``band`` is an
    absolute tolerance in the waveform's units and must be positive.
    Returns the start time when the whole waveform already sits in the
    band, and the last sample time when even the final sample's neighbors
    leave it.
    """
    if band <= 0:
        raise ValueError("band must be positive")
    t, y = waveform.t, waveform.y
    final = y[-1]
    last_outside = -1
    for i in range(len(y)):
        if abs(y[i] - final) > band:
            last_outside = i
    if last_outside < 0:
        return float(t[0])
    return float(t[min(last_outside + 1, len(t) - 1)])


def batch_peaks(times, values):
    """Per-waveform (time, value) of the maximum over a ``(B, T)`` batch.

    Vectorized equivalent of :meth:`Waveform.peak` over the batch axis —
    one ``argmax`` instead of a Python loop, exactly tie-breaking the same
    way (first maximal sample wins).

    Args:
        times: shared time grid, shape ``(T,)``, or per-waveform grids of
            shape ``(B, T)``.
        values: sample matrix, shape ``(B, T)``.

    Returns:
        ``(peak_times, peak_values)`` arrays of shape ``(B,)``.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be a (B, T) batch")
    idx = np.argmax(values, axis=1)
    rows = np.arange(len(values))
    peak_times = times[idx] if times.ndim == 1 else times[rows, idx]
    return peak_times, values[rows, idx]


def batch_settling_times(times, values, band: float):
    """Per-waveform settling times over a ``(B, T)`` batch.

    Vectorized equivalent of :func:`settling_time`: the out-of-band mask
    is reduced with one ``argmax`` over the reversed batch axis (the
    position of each row's *last* out-of-band sample) instead of a
    per-waveform Python scan.

    Args:
        times: shared time grid ``(T,)`` or per-waveform grids ``(B, T)``.
        values: sample matrix, shape ``(B, T)``.
        band: absolute settling tolerance, positive.

    Returns:
        Array of shape ``(B,)`` of settling times.
    """
    if band <= 0:
        raise ValueError("band must be positive")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be a (B, T) batch")
    n = values.shape[1]
    outside = np.abs(values - values[:, -1:]) > band
    # argmax on the reversed mask finds each row's last True; all-False
    # rows (already settled) report argmax 0, masked off separately.
    last_outside = n - 1 - np.argmax(outside[:, ::-1], axis=1)
    settle_idx = np.minimum(last_outside + 1, n - 1)
    settle_idx = np.where(outside.any(axis=1), settle_idx, 0)
    rows = np.arange(len(values))
    return times[settle_idx] if times.ndim == 1 else times[rows, settle_idx]


@dataclasses.dataclass(frozen=True)
class WaveformComparison:
    """Pointwise agreement of a model waveform with a golden waveform.

    Comparison is restricted to the model's validity window (NaN samples in
    the model waveform are ignored), normalized by the golden peak.

    Attributes:
        max_abs_error: worst |model - golden| in volts (or amperes).
        rms_error: RMS difference over the window.
        normalized_max_error: max_abs_error / max|golden|.
        n_valid: samples that entered the comparison.  0 means the model
            had no finite samples on the compared span (e.g. an
            inductance-only model queried entirely after the ramp) and
            every error field is NaN.
    """

    max_abs_error: float
    rms_error: float
    normalized_max_error: float
    n_valid: int = -1

    @property
    def is_empty(self) -> bool:
        """True when no sample was comparable (all error fields are NaN)."""
        return self.n_valid == 0


def compare_waveforms(model: Waveform, golden: Waveform) -> WaveformComparison:
    """Compare a (possibly partially-NaN) model waveform against a golden one.

    A model window with *no* finite samples is a legitimate degenerate
    query (an all-NaN validity window), not an error: the result comes
    back with ``n_valid == 0`` and NaN error fields, computed without
    tripping numpy's all-NaN/empty-slice ``RuntimeWarning`` s — callers
    running under ``-W error::RuntimeWarning`` stay clean.
    """
    reference = golden.value_at(model.t)
    diff = model.y - reference
    valid = np.isfinite(diff)
    if not np.any(valid):
        nan = float("nan")
        return WaveformComparison(
            max_abs_error=nan, rms_error=nan, normalized_max_error=nan, n_valid=0
        )
    diff = diff[valid]
    scale = float(np.max(np.abs(golden.y)))
    if scale == 0.0 or math.isclose(scale, 0.0):
        raise ValueError("golden waveform is identically zero")
    max_abs = float(np.max(np.abs(diff)))
    return WaveformComparison(
        max_abs_error=max_abs,
        rms_error=float(np.sqrt(np.mean(np.square(diff)))),
        normalized_max_error=max_abs / scale,
        n_valid=int(diff.size),
    )
