"""High-level golden SSN simulation (the "HSPICE run" of each experiment).

Wraps circuit construction, time-step selection and waveform extraction so
experiments can ask one question — "what does the real (simulated) circuit
do?" — in one call.  The peak is reported over the *full* simulated span,
like the paper's HSPICE measurements, not just over the model validity
window.
"""

from __future__ import annotations

import dataclasses
import functools
import math

from ..spice.batch import BatchIncompatibleError, batch_transient, lockstep_signature
from ..spice.telemetry import SolverTelemetry, record_session
from ..spice.transient import TransientOptions, transient
from .engine import resolve_engine
from .parallel import parallel_map_traced
from ..spice.waveform import Waveform
from .driver_bank import (
    DriverBankSpec,
    GROUND_BOUNCE_NODE,
    INDUCTOR_NAME,
    INPUT_NODE,
    OUTPUT_NODE_FMT,
    build_driver_bank,
)

#: Time-step resolution: points per input rise time.
POINTS_PER_RAMP = 400
#: And, when the network can ring, points per ringing period.
POINTS_PER_RING = 80


@dataclasses.dataclass(frozen=True)
class SsnSimulation:
    """Waveforms and summary numbers of one golden SSN run.

    Attributes:
        spec: the simulated configuration.
        ssn: ground-bounce voltage at the internal ground node.
        inductor_current: total current through the ground inductance.
        driver_current: channel current of one driver.
        input_voltage: the gate ramp.
        output_voltage: one driver's pad voltage.
        peak_voltage: maximum SSN voltage over the simulated span.
        peak_time: instant of that maximum.
        telemetry: solver counters of the underlying transient run
            (pickles across process-pool workers with the rest of the
            simulation, so parallel sweeps keep full observability).
    """

    spec: DriverBankSpec
    ssn: Waveform
    inductor_current: Waveform
    driver_current: Waveform
    input_voltage: Waveform
    output_voltage: Waveform
    peak_voltage: float
    peak_time: float
    telemetry: SolverTelemetry | None = None


def default_time_step(spec: DriverBankSpec) -> float:
    """Step fine enough for both the ramp and any LC ringing."""
    dt = spec.rise_time / POINTS_PER_RAMP
    if spec.capacitance is not None:
        ring_period = 2.0 * math.pi * math.sqrt(spec.inductance * spec.capacitance)
        dt = min(dt, ring_period / POINTS_PER_RING)
    return dt


def default_stop_time(spec: DriverBankSpec) -> float:
    """Span covering the ramp plus enough tail to catch delayed peaks."""
    tstop = 2.0 * spec.rise_time
    if spec.capacitance is not None:
        ring_period = 2.0 * math.pi * math.sqrt(spec.inductance * spec.capacitance)
        tstop = max(tstop, spec.rise_time + 1.5 * ring_period)
    if spec.input_offsets is not None:
        tstop += max(spec.input_offsets)
    return tstop


def simulate_ssn(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> SsnSimulation:
    """Run the golden transient simulation of one driver-bank configuration.

    Args:
        spec: circuit configuration.
        tstop: simulation span (default: :func:`default_stop_time`).
        dt: base time step (default: :func:`default_time_step`).
        options: transient-engine knobs.

    Returns:
        The :class:`SsnSimulation` with waveforms and the global SSN peak.
    """
    circuit = build_driver_bank(spec)
    result = transient(
        circuit,
        tstop if tstop is not None else default_stop_time(spec),
        dt if dt is not None else default_time_step(spec),
        options=options,
    )
    return _package_simulation(spec, result)


def _package_simulation(spec: DriverBankSpec, result) -> SsnSimulation:
    """Extract the SSN waveforms and peak from one finished transient run.

    Shared by the scalar path and the batched-ensemble path, so both
    engines report through the identical packaging.
    """
    ssn = result.voltage(GROUND_BOUNCE_NODE)
    peak_time, peak_voltage = ssn.peak()

    first_driver = spec.driver_names()[0]
    driver_current = result.current(first_driver)
    if spec.collapse and spec.input_offsets is None and spec.n_drivers > 1:
        # The collapsed device carries all N drivers' current.
        driver_current = Waveform(driver_current.t, driver_current.y / spec.n_drivers)

    input_node = INPUT_NODE if spec.input_offsets is None else f"{INPUT_NODE}1"
    return SsnSimulation(
        spec=spec,
        ssn=ssn,
        inductor_current=result.current(INDUCTOR_NAME),
        driver_current=driver_current,
        input_voltage=result.voltage(input_node),
        output_voltage=result.voltage(OUTPUT_NODE_FMT.format(index=1)),
        peak_voltage=peak_voltage,
        peak_time=peak_time,
        telemetry=result.telemetry,
    )


@functools.lru_cache(maxsize=256)
def _simulate_ssn_memo(spec, tstop, dt, options):
    return simulate_ssn(spec, tstop, dt, options)


def simulate_ssn_cached(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> SsnSimulation:
    """Memoized :func:`simulate_ssn` keyed on the frozen spec.

    Paper figures revisit the same configurations (the Fig. 3 and Fig. 4
    sweeps share their base points; ablations re-run nominal corners), so
    repeated points are free.  Every argument is a frozen dataclass (or
    scalar), making the memo key exact; results are shared, so callers
    must treat the returned waveforms as read-only — which every
    experiment already does.
    """
    return _simulate_ssn_memo(spec, tstop, dt, options)


def simulate_ssn_cache_clear() -> None:
    """Drop all memoized golden simulations (mainly for tests)."""
    _simulate_ssn_memo.cache_clear()


def simulate_many(
    specs,
    max_workers: int | None = None,
    options: TransientOptions | None = None,
    engine: str | None = None,
) -> list[SsnSimulation]:
    """Golden-simulate many specs on the selected execution engine.

    Results preserve the order of ``specs`` regardless of engine or worker
    count, so sweeps are element-for-element comparable however they ran.

    ``engine`` selects the transient engine (``"scalar"``, ``"batch"`` or
    ``"auto"``; default per :func:`repro.analysis.engine.resolve_engine`):

    * scalar — one :func:`transient` per spec, optionally across a process
      pool (``max_workers``); serial results are memoized via
      :func:`simulate_ssn_cached`.  When the runs execute in pool workers,
      their telemetry records come back on the :class:`SsnSimulation`
      objects and are folded into the parent process's session aggregator
      (if enabled) — worker-side session state dies with the worker, so
      this is where cross-process observability is stitched together.
    * batch — specs whose circuits share a lockstep signature (same
      topology and time grid, different parameter values) are simulated
      together by one vectorized Newton loop
      (:func:`repro.spice.batch.batch_transient`).  Specs that cannot join
      a lockstep group — incompatible topologies, singleton groups, or
      option modes the batched loop does not implement — fall back to the
      scalar path, so ``"batch"`` never fails where ``"scalar"`` succeeds.
    """
    specs = list(specs)
    if resolve_engine(engine, len(specs)) == "batch":
        return _simulate_many_batched(specs, options)
    if options is None:
        fn = simulate_ssn_cached
    else:
        fn = functools.partial(_simulate_with_options, options=options)
    sims, used_pool = parallel_map_traced(fn, specs, max_workers=max_workers)
    if used_pool:
        for sim in sims:
            record_session(sim.telemetry)
    return sims


def _simulate_many_batched(specs, options) -> list[SsnSimulation]:
    """Lockstep grouping behind the ``"batch"`` engine of :func:`simulate_many`.

    Builds every spec's circuit, groups them by (lockstep signature,
    stop time, time step), runs each group of two or more through
    :func:`batch_transient`, and routes everything else — singletons and
    incompatible circuits or options — through the scalar path.
    """
    sims: list[SsnSimulation | None] = [None] * len(specs)
    groups: dict[tuple, list[int]] = {}
    circuits: list = [None] * len(specs)
    for i, spec in enumerate(specs):
        circuit = build_driver_bank(spec)
        try:
            key = (
                lockstep_signature(circuit),
                default_stop_time(spec),
                default_time_step(spec),
            )
        except BatchIncompatibleError:
            key = ("scalar", i)
        circuits[i] = circuit
        groups.setdefault(key, []).append(i)

    for key, members in groups.items():
        ran_batched = False
        if len(members) >= 2:
            _, tstop, dt = key
            try:
                results = batch_transient(
                    [circuits[i] for i in members], tstop, dt, options=options
                )
            except BatchIncompatibleError:
                pass  # e.g. the legacy engine: scalar fallback below
            else:
                for i, result in zip(members, results):
                    sims[i] = _package_simulation(specs[i], result)
                ran_batched = True
        if not ran_batched:
            for i in members:
                sims[i] = simulate_ssn_cached(specs[i], options=options)
    return sims


def aggregate_telemetry(sims) -> SolverTelemetry:
    """Summed solver telemetry over many :class:`SsnSimulation` results."""
    return SolverTelemetry.aggregate(sim.telemetry for sim in sims)


def _simulate_with_options(spec, options):
    return simulate_ssn_cached(spec, options=options)
