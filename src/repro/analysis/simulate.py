"""High-level golden SSN simulation (the "HSPICE run" of each experiment).

Wraps circuit construction, time-step selection and waveform extraction so
experiments can ask one question — "what does the real (simulated) circuit
do?" — in one call.  The peak is reported over the *full* simulated span,
like the paper's HSPICE measurements, not just over the model validity
window.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
import functools
import math
import threading

from ..devices.kernels import kernel_available
from ..observability import metrics as obs_metrics
from ..spice.batch import BatchIncompatibleError, batch_transient, lockstep_signature
from ..spice.mna import default_sparse_mode
from ..spice.telemetry import SolverTelemetry, record_session
from ..spice.transient import TransientOptions, transient
from .engine import default_engine, resolve_engine
from .parallel import parallel_map_traced
from ..spice.waveform import Waveform
from .driver_bank import (
    DriverBankSpec,
    GROUND_BOUNCE_NODE,
    INDUCTOR_NAME,
    INPUT_NODE,
    OUTPUT_NODE_FMT,
    build_driver_bank,
)

#: Time-step resolution: points per input rise time.
POINTS_PER_RAMP = 400
#: And, when the network can ring, points per ringing period.
POINTS_PER_RING = 80


@dataclasses.dataclass(frozen=True)
class SsnSimulation:
    """Waveforms and summary numbers of one golden SSN run.

    Attributes:
        spec: the simulated configuration.
        ssn: ground-bounce voltage at the internal ground node.
        inductor_current: total current through the ground inductance.
        driver_current: channel current of one driver.
        input_voltage: the gate ramp.
        output_voltage: one driver's pad voltage.
        peak_voltage: maximum SSN voltage over the simulated span.
        peak_time: instant of that maximum.
        telemetry: solver counters of the underlying transient run
            (pickles across process-pool workers with the rest of the
            simulation, so parallel sweeps keep full observability).
    """

    spec: DriverBankSpec
    ssn: Waveform
    inductor_current: Waveform
    driver_current: Waveform
    input_voltage: Waveform
    output_voltage: Waveform
    peak_voltage: float
    peak_time: float
    telemetry: SolverTelemetry | None = None


def default_time_step(spec: DriverBankSpec) -> float:
    """Step fine enough for both the ramp and any LC ringing."""
    dt = spec.rise_time / POINTS_PER_RAMP
    if spec.capacitance is not None:
        ring_period = 2.0 * math.pi * math.sqrt(spec.inductance * spec.capacitance)
        dt = min(dt, ring_period / POINTS_PER_RING)
    return dt


def default_stop_time(spec: DriverBankSpec) -> float:
    """Span covering the ramp plus enough tail to catch delayed peaks."""
    tstop = 2.0 * spec.rise_time
    if spec.capacitance is not None:
        ring_period = 2.0 * math.pi * math.sqrt(spec.inductance * spec.capacitance)
        tstop = max(tstop, spec.rise_time + 1.5 * ring_period)
    if spec.input_offsets is not None:
        tstop += max(spec.input_offsets)
    return tstop


def simulate_ssn(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> SsnSimulation:
    """Run the golden transient simulation of one driver-bank configuration.

    Args:
        spec: circuit configuration.
        tstop: simulation span (default: :func:`default_stop_time`).
        dt: base time step (default: :func:`default_time_step`).
        options: transient-engine knobs.

    Returns:
        The :class:`SsnSimulation` with waveforms and the global SSN peak.
    """
    circuit = build_driver_bank(spec)
    result = transient(
        circuit,
        tstop if tstop is not None else default_stop_time(spec),
        dt if dt is not None else default_time_step(spec),
        options=options,
    )
    return _package_simulation(spec, result)


def _package_simulation(spec: DriverBankSpec, result) -> SsnSimulation:
    """Extract the SSN waveforms and peak from one finished transient run.

    Shared by the scalar path and the batched-ensemble path, so both
    engines report through the identical packaging.
    """
    ssn = result.voltage(GROUND_BOUNCE_NODE)
    peak_time, peak_voltage = ssn.peak()

    first_driver = spec.driver_names()[0]
    driver_current = result.current(first_driver)
    if spec.collapse and spec.input_offsets is None and spec.n_drivers > 1:
        # The collapsed device carries all N drivers' current.
        driver_current = Waveform(driver_current.t, driver_current.y / spec.n_drivers)

    input_node = INPUT_NODE if spec.input_offsets is None else f"{INPUT_NODE}1"
    return SsnSimulation(
        spec=spec,
        ssn=ssn,
        inductor_current=result.current(INDUCTOR_NAME),
        driver_current=driver_current,
        input_voltage=result.voltage(input_node),
        output_voltage=result.voltage(OUTPUT_NODE_FMT.format(index=1)),
        peak_voltage=peak_voltage,
        peak_time=peak_time,
        telemetry=result.telemetry,
    )


def resolved_backend(options: TransientOptions | None = None) -> tuple:
    """Snapshot of the process-global backend defaults a run resolves under.

    A golden simulation's exact output (including its telemetry and
    ``extras`` backend records) depends not only on the explicit arguments
    but on three process-wide defaults that can be flipped between calls:
    the engine default (:func:`repro.analysis.engine.set_default_engine` /
    ``REPRO_ENGINE``), the sparse-tier default
    (:func:`repro.spice.mna.set_default_sparse` / ``REPRO_SPARSE``), and
    the availability of the compiled MOSFET kernel (numba import +
    ``REPRO_NO_NUMBA``).  Returns a sorted tuple of ``(name, value)``
    pairs, hashable and JSON-friendly, that every result-cache key — the
    in-process memo and the persistent service store — must fold in so a
    default flip is a cache miss, never a stale hit.

    An explicit ``TransientOptions.sparse`` of ``True``/``False`` pins the
    tier, so the global sparse default is irrelevant (and excluded) for
    such option sets.
    """
    sparse = "auto" if options is None else options.sparse
    if sparse == "auto":
        sparse = default_sparse_mode()
    return (
        ("engine", default_engine()),
        ("kernel", "numba" if kernel_available() else "numpy"),
        ("sparse", str(sparse)),
    )


def ssn_memo_key(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> tuple:
    """The exact memo key of one golden simulation request.

    Every component is a frozen dataclass or scalar plus the
    :func:`resolved_backend` snapshot, so equality means "the same
    simulation under the same process-global defaults".  The persistent
    service store (:mod:`repro.service`) derives its content-addressed
    fingerprints from this same function, keeping the two cache tiers'
    key contracts identical by construction.
    """
    return (spec, tstop, dt, options, resolved_backend(options))


def freeze_simulation(sim: SsnSimulation) -> SsnSimulation:
    """Mark every waveform array of ``sim`` read-only, in place.

    Cached simulations are shared between all their callers; a caller
    mutating ``sim.ssn.y`` would silently corrupt every later cache hit.
    With the buffers frozen, such a write raises ``ValueError`` instead.
    Returns ``sim`` for chaining.
    """
    for wf in (sim.ssn, sim.inductor_current, sim.driver_current,
               sim.input_voltage, sim.output_voltage):
        wf.t.setflags(write=False)
        wf.y.setflags(write=False)
    return sim


class _SsnMemoCache:
    """Bounded, thread-safe LRU of frozen golden simulations.

    Replaces the former ``functools.lru_cache`` so the cache can (a) tag
    each lookup as hit or fresh compute — the pooled telemetry path and
    the service layer both need that distinction — and (b) freeze every
    stored simulation's waveforms.  The simulation itself runs outside
    the lock; two threads racing on one key at worst compute it twice
    (the service layer's in-flight dedup prevents exactly that for HTTP
    traffic).
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._data: collections.OrderedDict = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def fetch(self, key) -> SsnSimulation | None:
        with self._lock:
            sim = self._data.get(key)
            if sim is None:
                return None
            self._data.move_to_end(key)
            self.hits += 1
        obs_metrics.inc("repro_ssn_memo_hits_total")
        return sim

    def insert(self, key, sim: SsnSimulation) -> None:
        with self._lock:
            self.misses += 1
            self._data[key] = sim
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        obs_metrics.inc("repro_ssn_memo_misses_total")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_memo = _SsnMemoCache()


def simulate_ssn_cached_fresh(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> tuple[SsnSimulation, bool]:
    """:func:`simulate_ssn_cached` plus whether the Newton loop really ran.

    Returns ``(sim, fresh)``; ``fresh`` is False exactly when the result
    came out of the memo, i.e. its ``telemetry`` describes work done by an
    *earlier* call.  Callers that fold telemetry into session aggregates
    (the pooled scalar path, the serving layer) must skip stale records or
    they double-count Newton work that never ran.
    """
    key = ssn_memo_key(spec, tstop, dt, options)
    sim = _memo.fetch(key)
    if sim is not None:
        return sim, False
    sim = freeze_simulation(simulate_ssn(spec, tstop, dt, options))
    _memo.insert(key, sim)
    return sim, True


def simulate_ssn_cached(
    spec: DriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> SsnSimulation:
    """Memoized :func:`simulate_ssn` keyed on the frozen spec *and* backend.

    Paper figures revisit the same configurations (the Fig. 3 and Fig. 4
    sweeps share their base points; ablations re-run nominal corners), so
    repeated points are free.  Every argument is a frozen dataclass (or
    scalar), and the key additionally folds in :func:`resolved_backend` —
    flipping ``set_default_sparse``/``REPRO_SPARSE`` or
    ``set_default_engine``/``REPRO_ENGINE`` between calls recomputes
    instead of returning a result (and telemetry) from the old backend.
    Results are shared, and their waveform arrays are frozen
    (``writeable=False``): an accidental mutation raises instead of
    silently corrupting every later cache hit.
    """
    sim, _ = simulate_ssn_cached_fresh(spec, tstop, dt, options)
    return sim


def simulate_ssn_cache_clear() -> None:
    """Drop all memoized golden simulations (mainly for tests)."""
    _memo.clear()


def simulate_ssn_cache_stats() -> dict:
    """Memo observability: ``{"hits", "misses", "size", "maxsize"}``."""
    return {"hits": _memo.hits, "misses": _memo.misses,
            "size": len(_memo), "maxsize": _memo.maxsize}


def simulate_many(
    specs,
    max_workers: int | None = None,
    options: TransientOptions | None = None,
    engine: str | None = None,
) -> list[SsnSimulation]:
    """Golden-simulate many specs on the selected execution engine.

    Results preserve the order of ``specs`` regardless of engine or worker
    count, so sweeps are element-for-element comparable however they ran.

    ``engine`` selects the transient engine (``"scalar"``, ``"batch"``,
    ``"surrogate"`` or ``"auto"``; default per
    :func:`repro.analysis.engine.resolve_engine`):

    * scalar — one :func:`transient` per spec, optionally across a process
      pool (``max_workers``); serial results are memoized via
      :func:`simulate_ssn_cached`.  When the runs execute in pool workers,
      their telemetry records come back on the :class:`SsnSimulation`
      objects and are folded into the parent process's session aggregator
      (if enabled) — worker-side session state dies with the worker, so
      this is where cross-process observability is stitched together.
    * batch — specs whose circuits share a lockstep signature (same
      topology and time grid, different parameter values) are simulated
      together by one vectorized Newton loop
      (:func:`repro.spice.batch.batch_transient`).  Specs that cannot join
      a lockstep group — incompatible topologies, singleton groups, or
      option modes the batched loop does not implement — fall back to the
      scalar path, so ``"batch"`` never fails where ``"scalar"`` succeeds.
    * surrogate — specs accepted by a fitted model in the default
      surrogate registry (:func:`repro.surrogate.default_registry`) are
      answered in closed form before any MNA assembly; everything else
      (misses, out-of-region or bound-violating refusals) runs through
      ``engine="auto"`` exactly as it would have without the surrogate
      tier, with the routing decision tagged into each result's
      ``telemetry.extras`` (``surrogate_hits`` / ``surrogate_misses`` /
      ``surrogate_refusals``).
    """
    specs = list(specs)
    resolved = resolve_engine(engine, len(specs))
    if resolved == "surrogate":
        return _simulate_many_surrogate(specs, max_workers, options)
    if resolved == "batch":
        return _simulate_many_batched(specs, options)
    fn = _simulate_tagged if options is None else functools.partial(
        _simulate_tagged, options=options)
    tagged, used_pool = parallel_map_traced(fn, specs, max_workers=max_workers)
    if used_pool:
        # Worker-side session aggregation dies with the workers, so the
        # parent stitches their telemetry in here — but only for *fresh*
        # computes.  A worker-side memo hit (duplicate spec, or a fork
        # inheriting the parent's warm memo) carries the telemetry of a run
        # that was already recorded when it actually executed; re-recording
        # it would double-count Newton work that never ran this call.
        for sim, fresh in tagged:
            if fresh:
                record_session(sim.telemetry)
    return [sim for sim, _ in tagged]


def _simulate_many_batched(specs, options) -> list[SsnSimulation]:
    """Lockstep grouping behind the ``"batch"`` engine of :func:`simulate_many`.

    Builds every spec's circuit, groups them by (lockstep signature,
    stop time, time step), runs each group of two or more through
    :func:`batch_transient`, and routes everything else — singletons and
    incompatible circuits or options — through the scalar path.
    """
    sims: list[SsnSimulation | None] = [None] * len(specs)
    groups: dict[tuple, list[int]] = {}
    circuits: list = [None] * len(specs)
    for i, spec in enumerate(specs):
        circuit = build_driver_bank(spec)
        try:
            key = (
                lockstep_signature(circuit),
                default_stop_time(spec),
                default_time_step(spec),
            )
        except BatchIncompatibleError:
            key = ("scalar", i)
        circuits[i] = circuit
        groups.setdefault(key, []).append(i)

    for key, members in groups.items():
        ran_batched = False
        if len(members) >= 2:
            _, tstop, dt = key
            try:
                results = batch_transient(
                    [circuits[i] for i in members], tstop, dt, options=options
                )
            except BatchIncompatibleError:
                pass  # e.g. the legacy engine: scalar fallback below
            else:
                for i, result in zip(members, results):
                    sims[i] = _package_simulation(specs[i], result)
                ran_batched = True
        if not ran_batched:
            for i in members:
                sims[i] = simulate_ssn_cached(specs[i], options=options)
    return sims


def _simulate_many_surrogate(specs, max_workers, options) -> list[SsnSimulation]:
    """The ``"surrogate"`` top rung of :func:`simulate_many`'s ladder.

    Each spec is routed through the process-default surrogate registry:
    hits come back as synthesized closed-form simulations (microseconds,
    no MNA assembly); misses and refusals are simulated together through
    ``engine="auto"`` — the exact runs the request would have produced
    without the surrogate tier.  Fallback results get the routing
    decision tagged into a *copy* of their telemetry (memoized
    simulations are shared; mutating their records in place would corrupt
    every other holder and double-count on repeat tags).
    """
    # Inside the function to break the cycle: repro.surrogate builds its
    # training data with this module's simulate_many.
    from ..surrogate import default_registry

    registry = default_registry()
    sims: list[SsnSimulation | None] = [None] * len(specs)
    fallback: list[tuple[int, str]] = []
    for i, spec in enumerate(specs):
        sim, outcome = registry.route_simulation(spec, options=options)
        if sim is None:
            fallback.append((i, outcome))
        else:
            sims[i] = sim
    if fallback:
        full = simulate_many([specs[i] for i, _ in fallback],
                             max_workers=max_workers, options=options,
                             engine="auto")
        for (i, outcome), sim in zip(fallback, full):
            telemetry = copy.deepcopy(sim.telemetry) or SolverTelemetry()
            key = "surrogate_misses" if outcome == "miss" else "surrogate_refusals"
            telemetry.extras[key] = telemetry.extras.get(key, 0) + 1
            sims[i] = dataclasses.replace(sim, telemetry=telemetry)
    return sims


def aggregate_telemetry(sims) -> SolverTelemetry:
    """Summed solver telemetry over many :class:`SsnSimulation` results."""
    return SolverTelemetry.aggregate(sim.telemetry for sim in sims)


def _simulate_tagged(spec, options=None):
    """Pool-worker mapper: memoized simulate plus the hit/fresh tag."""
    return simulate_ssn_cached_fresh(spec, options=options)
