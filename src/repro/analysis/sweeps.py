"""Parameter-sweep engine: golden simulation vs any set of estimators.

Every paper figure is a sweep of one knob (driver count N, ground
capacitance C, ...) comparing the golden simulation's peak SSN against one
or more closed-form estimates.  :func:`sweep` factors that pattern out:
callers provide a base :class:`DriverBankSpec`, the values to sweep, how to
apply a value to the spec, and named estimator callbacks.

The golden simulations — the expensive part — are memoized on the frozen
spec and can fan out across a process pool (``max_workers``); the cheap
closed-form estimators always run in the calling process, so estimator
callbacks are free to be closures.  Parallel sweeps return points in the
same order as serial sweeps, element for element.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Sequence

from ..observability import trace
from ..spice.telemetry import SolverTelemetry
from .driver_bank import DriverBankSpec
from .simulate import simulate_many

#: An estimator maps the concrete spec of one sweep point to a peak voltage.
Estimator = Callable[[DriverBankSpec], float]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One sweep value: golden result plus every estimator's answer.

    Attributes:
        value: the swept knob's value at this point.
        spec: the concrete circuit configuration simulated.
        simulated_peak: golden-simulation maximum SSN voltage.
        estimates: estimator name -> estimated maximum SSN voltage.
        telemetry: solver counters of this point's golden simulation
            (None for points built without one).
    """

    value: float
    spec: DriverBankSpec
    simulated_peak: float
    estimates: dict[str, float]
    telemetry: SolverTelemetry | None = None

    def percent_error(self, name: str) -> float:
        """Signed percent error of one estimator at this point.

        Returns ``nan`` when the golden simulation's peak is exactly zero
        (a degenerate point — e.g. a sweep value that suppresses switching
        entirely), where a relative error is undefined.
        """
        if self.simulated_peak == 0:
            return math.nan
        return 100.0 * (self.estimates[name] - self.simulated_peak) / self.simulated_peak


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, in sweep order."""

    knob: str
    points: tuple[SweepPoint, ...]

    def values(self) -> list[float]:
        return [p.value for p in self.points]

    def simulated_peaks(self) -> list[float]:
        return [p.simulated_peak for p in self.points]

    def estimate_series(self, name: str) -> list[float]:
        return [p.estimates[name] for p in self.points]

    def percent_errors(self, name: str) -> list[float]:
        return [p.percent_error(name) for p in self.points]

    @property
    def telemetry(self) -> SolverTelemetry:
        """Aggregated solver telemetry over every point's golden simulation.

        Sums the per-point records (which survive the process-pool round
        trip), so ``result.telemetry.unrecovered_failures == 0`` asserts
        that every operating point of the sweep converged — with however
        many recovered retries ``step_retries`` reports.
        """
        return SolverTelemetry.aggregate(p.telemetry for p in self.points)

    @property
    def estimator_names(self) -> list[str]:
        return sorted(self.points[0].estimates) if self.points else []

    def to_csv(self, path) -> None:
        """Write the sweep as CSV: knob, simulated peak, every estimate.

        Column order is deterministic — the knob, ``simulated``, then
        estimators sorted by name — regardless of estimator-dict insertion
        order, so diffs between sweep runs are meaningful.  Values are
        written with :func:`repr`, the shortest string that round-trips
        the exact float, so reading the file back reproduces every bit.
        An empty sweep writes just the header row.
        """
        names = self.estimator_names
        header = ",".join([self.knob, "simulated"] + names)
        with open(path, "w") as fh:
            fh.write(header + "\n")
            for p in self.points:
                row = [p.value, p.simulated_peak] + [p.estimates[n] for n in names]
                fh.write(",".join(repr(float(v)) for v in row) + "\n")


def sweep(
    knob: str,
    base: DriverBankSpec,
    values: Sequence[float],
    apply: Callable[[DriverBankSpec, float], DriverBankSpec],
    estimators: dict[str, Estimator],
    max_workers: int | None = None,
    engine: str | None = None,
    campaign=None,
) -> SweepResult:
    """Run the golden simulation and all estimators across ``values``.

    Args:
        knob: label of the swept quantity (for reports).
        base: template spec; ``apply(base, value)`` yields each point's spec.
        values: knob values, in presentation order.
        apply: pure function deriving a concrete spec from the template.
        estimators: name -> callback evaluated on each concrete spec.
        max_workers: process-pool width for the golden simulations; the
            default (None) honors ``REPRO_MAX_WORKERS`` and otherwise runs
            serially.  Results are order- and value-identical either way.
        engine: transient engine for the golden simulations (``"scalar"``,
            ``"batch"`` or ``"auto"``); the default honors ``REPRO_ENGINE``
            per :func:`repro.analysis.engine.resolve_engine`.  The batched
            engine runs all sweep points in one vectorized Newton loop.
        campaign: optional :class:`repro.analysis.campaign.CampaignConfig`
            routing the golden simulations through the fault-tolerant
            :class:`~repro.analysis.campaign.CampaignRunner`
            (checkpoint/resume, retries, engine degradation).  Results are
            bit-identical to the direct path; ``max_workers``/``engine``
            here are ignored in favor of the config's own knobs.

    Returns:
        The populated :class:`SweepResult`.
    """
    if campaign is not None:
        # Local import: campaign builds on this module's result types.
        from .campaign import CampaignRunner

        runner = campaign if isinstance(campaign, CampaignRunner) \
            else CampaignRunner(campaign)
        return runner.run_sweep(knob, base, values, apply, estimators)
    with trace.span("sweep", knob=knob, points=len(values)):
        specs = [apply(base, value) for value in values]
        sims = simulate_many(specs, max_workers=max_workers, engine=engine)
        points = []
        for value, spec, sim in zip(values, specs, sims):
            estimates = {name: float(fn(spec)) for name, fn in estimators.items()}
            points.append(
                SweepPoint(
                    value=float(value),
                    spec=spec,
                    simulated_peak=sim.peak_voltage,
                    estimates=estimates,
                    telemetry=sim.telemetry,
                )
            )
        return SweepResult(knob=knob, points=tuple(points))


def sweep_driver_count(
    base: DriverBankSpec, counts: Sequence[int], estimators: dict[str, Estimator],
    max_workers: int | None = None, engine: str | None = None, campaign=None,
) -> SweepResult:
    """Sweep the number of simultaneously switching drivers (Figs. 3-4)."""
    return sweep(
        "n_drivers",
        base,
        list(counts),
        lambda spec, n: dataclasses.replace(spec, n_drivers=int(n)),
        estimators,
        max_workers=max_workers,
        engine=engine,
        campaign=campaign,
    )


def sweep_ground_capacitance(
    base: DriverBankSpec, capacitances: Sequence[float], estimators: dict[str, Estimator],
    max_workers: int | None = None, engine: str | None = None, campaign=None,
) -> SweepResult:
    """Sweep the parasitic ground capacitance (Section 4 studies)."""
    return sweep(
        "capacitance",
        base,
        list(capacitances),
        lambda spec, c: dataclasses.replace(spec, capacitance=float(c)),
        estimators,
        max_workers=max_workers,
        engine=engine,
        campaign=campaign,
    )


def sweep_rise_time(
    base: DriverBankSpec, rise_times: Sequence[float], estimators: dict[str, Estimator],
    max_workers: int | None = None, engine: str | None = None, campaign=None,
) -> SweepResult:
    """Sweep the input ramp duration (slope design-knob studies)."""
    return sweep(
        "rise_time",
        base,
        list(rise_times),
        lambda spec, tr: dataclasses.replace(spec, rise_time=float(tr)),
        estimators,
        max_workers=max_workers,
        engine=engine,
        campaign=campaign,
    )
