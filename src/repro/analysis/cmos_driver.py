"""Full CMOS driver bank: both rails, both devices (extension harness).

The paper models the pull-down NFETs only and asserts that (i) the
power-supply node "can be analyzed similarly" and (ii) the pull-up's
contribution during the output-falling transition is negligible (drivers
modeled as pull-down current sources).  This harness builds the complete
circuit — PMOS pull-ups, NMOS pull-downs, and parasitics on *both* the
VDD and ground paths — so both assertions become measurable:

* a rising input: NMOS discharge -> ground bounce, with the PMOS initially
  still on (crowbar current adds to the ground-path current);
* a falling input: PMOS charge -> VDD droop, the dual problem.
"""

from __future__ import annotations

import dataclasses
import math

from ..packaging.parasitics import GroundPathParasitics
from ..process.technology import Technology
from ..spice.circuit import Circuit
from ..spice.sources import Ramp
from ..spice.transient import TransientOptions, transient
from ..spice.waveform import Waveform
from .simulate import POINTS_PER_RAMP  # shared resolution policy

#: Node names of the generated netlist.
INPUT_NODE = "in"
GROUND_BOUNCE_NODE = "gndint"
VDD_RAIL_NODE = "vddint"
OUTPUT_NODE = "out1"


@dataclasses.dataclass(frozen=True)
class CmosDriverBankSpec:
    """A bank of full CMOS output drivers with parasitics on both rails.

    Attributes:
        technology: process card (must carry a PMOS card).
        n_drivers: number of simultaneously switching drivers.
        ground: ground-path parasitics (L, C; R unused here).
        power: VDD-path parasitics.
        edge: "rise" (output falls, ground bounces) or "fall" (output
            rises, VDD droops).
        edge_time: input ramp duration in seconds.
        load_capacitance: per-driver output load in farads.
        driver_strength: width multiple of the technology reference.
        include_pullup: include the PMOS devices (disable to reproduce the
            paper's NMOS-only idealization on a rising edge).
        include_pulldown: include the NMOS devices.
    """

    technology: Technology
    n_drivers: int
    ground: GroundPathParasitics
    power: GroundPathParasitics
    edge: str = "rise"
    edge_time: float = 0.5e-9
    load_capacitance: float = 10e-12
    driver_strength: float = 1.0
    include_pullup: bool = True
    include_pulldown: bool = True

    def __post_init__(self):
        if self.edge not in ("rise", "fall"):
            raise ValueError(f"edge must be 'rise' or 'fall', got {self.edge!r}")
        if self.n_drivers <= 0:
            raise ValueError("n_drivers must be positive")
        if self.edge_time <= 0 or self.load_capacitance <= 0:
            raise ValueError("edge_time and load_capacitance must be positive")
        if not (self.include_pullup or self.include_pulldown):
            raise ValueError("at least one of the pull-up/pull-down must be included")
        if self.technology.pmos is None and self.include_pullup:
            raise ValueError(f"technology {self.technology.name!r} has no PMOS card")


def build_cmos_driver_bank(spec: CmosDriverBankSpec) -> Circuit:
    """Build the two-rail CMOS bank (drivers collapsed into one N-wide pair)."""
    tech = spec.technology
    vdd = tech.vdd
    circuit = Circuit(f"{spec.n_drivers}-driver CMOS bank ({spec.edge})")

    if spec.edge == "rise":
        circuit.vsource("Vin", INPUT_NODE, "0", Ramp(0.0, vdd, 0.0, spec.edge_time))
        load_ic = vdd
    else:
        circuit.vsource("Vin", INPUT_NODE, "0", Ramp(vdd, 0.0, 0.0, spec.edge_time))
        load_ic = 0.0

    circuit.vsource("Vdd", "vddrail", "0", vdd)
    circuit.inductor("Lvdd", "vddrail", VDD_RAIL_NODE, spec.power.inductance, ic=0.0)
    circuit.capacitor("Cvdd", VDD_RAIL_NODE, "0", spec.power.capacitance, ic=vdd)
    circuit.inductor("Lgnd", GROUND_BOUNCE_NODE, "0", spec.ground.inductance, ic=0.0)
    circuit.capacitor("Cgnd", GROUND_BOUNCE_NODE, "0", spec.ground.capacitance, ic=0.0)

    total = spec.driver_strength * spec.n_drivers
    circuit.capacitor("CL1", OUTPUT_NODE, "0", spec.load_capacitance * spec.n_drivers,
                      ic=load_ic)
    if spec.include_pulldown:
        circuit.mosfet("Mn1", OUTPUT_NODE, INPUT_NODE, GROUND_BOUNCE_NODE,
                       GROUND_BOUNCE_NODE, tech.driver_device(total))
    if spec.include_pullup:
        circuit.mosfet("Mp1", OUTPUT_NODE, INPUT_NODE, VDD_RAIL_NODE,
                       VDD_RAIL_NODE, tech.pullup_device(total))
    return circuit


@dataclasses.dataclass(frozen=True)
class CmosSimulation:
    """Waveforms and summary numbers of one two-rail golden run.

    Attributes:
        spec: the simulated configuration.
        ground_bounce: voltage of the internal ground node.
        vdd_droop: droop below VDD of the internal supply node (positive =
            rail sagging).
        output_voltage: the shared pad voltage.
        peak_ground_bounce: maximum ground bounce over the run.
        peak_vdd_droop: maximum supply droop over the run.
    """

    spec: CmosDriverBankSpec
    ground_bounce: Waveform
    vdd_droop: Waveform
    output_voltage: Waveform
    peak_ground_bounce: float
    peak_vdd_droop: float


def simulate_cmos(
    spec: CmosDriverBankSpec,
    tstop: float | None = None,
    dt: float | None = None,
    options: TransientOptions | None = None,
) -> CmosSimulation:
    """Run the golden transient of a two-rail CMOS bank."""
    circuit = build_cmos_driver_bank(spec)
    if dt is None:
        dt = spec.edge_time / POINTS_PER_RAMP
        for path in (spec.ground, spec.power):
            ring = 2.0 * math.pi * math.sqrt(path.inductance * path.capacitance)
            dt = min(dt, ring / 80.0)
    if tstop is None:
        tstop = 2.0 * spec.edge_time
        for path in (spec.ground, spec.power):
            ring = 2.0 * math.pi * math.sqrt(path.inductance * path.capacitance)
            tstop = max(tstop, spec.edge_time + 1.5 * ring)

    result = transient(circuit, tstop, dt, options=options)
    bounce = result.voltage(GROUND_BOUNCE_NODE)
    rail = result.voltage(VDD_RAIL_NODE)
    droop = Waveform(rail.t, spec.technology.vdd - rail.y)
    return CmosSimulation(
        spec=spec,
        ground_bounce=bounce,
        vdd_droop=droop,
        output_voltage=result.voltage(OUTPUT_NODE),
        peak_ground_bounce=bounce.peak()[1],
        peak_vdd_droop=droop.peak()[1],
    )
