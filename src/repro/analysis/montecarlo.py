"""Process-variation Monte Carlo on the ASDM parameters (extension).

The paper fits (K, V0, lambda) to one nominal process corner.  Real silicon
varies; because the peak-SSN formula (Eqn 10) is closed-form, propagating
parameter spread to a noise distribution is essentially free — one of the
practical payoffs of an analytic model over simulation.  This module draws
correlated-lognormal K and normal V0/lambda perturbations and reports the
resulting peak-SSN statistics.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..core.asdm import AsdmParameters
from ..core.figure import circuit_figure, peak_noise_from_figure
from ..observability import trace
from ..spice.telemetry import SolverTelemetry, record_session
from .driver_bank import DriverBankSpec
from .parallel import parallel_map, resolve_workers


@dataclasses.dataclass(frozen=True)
class ParameterSpread:
    """Relative (1-sigma) spreads of the ASDM parameters.

    Attributes:
        k_sigma: lognormal sigma of K (drive-strength variation).
        v0_sigma: absolute normal sigma of V0 in volts (threshold variation).
        lam_sigma: absolute normal sigma of lambda.
    """

    k_sigma: float = 0.08
    v0_sigma: float = 0.03
    lam_sigma: float = 0.01

    def __post_init__(self):
        if min(self.k_sigma, self.v0_sigma, self.lam_sigma) < 0:
            raise ValueError("spreads must be non-negative")


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Distribution of the peak SSN voltage under process variation.

    Attributes:
        samples: per-trial peak SSN voltages.
        mean: sample mean in volts.
        std: sample standard deviation in volts.
        p95: 95th-percentile peak SSN (the guard-band number).
        nominal: peak SSN at the nominal parameters.
        telemetry: run observability record (wall clock under
            ``phase_seconds["montecarlo"]``; the closed-form evaluator
            needs no Newton solves, so the solver counters stay zero).
    """

    samples: np.ndarray
    mean: float
    std: float
    p95: float
    nominal: float
    telemetry: SolverTelemetry | None = None

    @property
    def guard_band(self) -> float:
        """How much margin variation demands: p95 - nominal, volts."""
        return self.p95 - self.nominal


def _trial_peaks(args) -> np.ndarray:
    """Peak SSN for one chunk of Monte Carlo draws (picklable worker)."""
    z, vdd, ks, v0s, lams = args
    samples = np.empty(len(ks))
    for i in range(len(ks)):
        v0 = min(max(v0s[i], 0.0), 0.9 * vdd)
        lam = max(lams[i], 1e-3)
        trial = AsdmParameters(k=float(ks[i]), v0=float(v0), lam=float(lam))
        samples[i] = peak_noise_from_figure(z, trial, vdd)
    return samples


def peak_noise_distribution(
    params: AsdmParameters,
    n_drivers: int,
    inductance: float,
    vdd: float,
    rise_time: float,
    spread: ParameterSpread | None = None,
    trials: int = 2000,
    seed: int = 0,
    max_workers: int | None = None,
) -> MonteCarloResult:
    """Monte Carlo the Eqn (10) peak SSN under ASDM parameter variation.

    Args:
        params: nominal fitted parameters.
        n_drivers, inductance, vdd, rise_time: circuit configuration.
        spread: parameter sigmas (defaults are typical die-to-die numbers).
        trials: number of Monte Carlo draws.
        seed: RNG seed for reproducibility.
        max_workers: process-pool width for the trial evaluations; the
            default (None) honors ``REPRO_MAX_WORKERS`` and otherwise runs
            serially.  All draws happen up front in the parent process, so
            the sample vector is identical for every worker count.

    Returns:
        The sampled distribution and its summary statistics.
    """
    if trials < 2:
        raise ValueError("trials must be at least 2")
    spread = spread or ParameterSpread()
    tel = SolverTelemetry()
    wall_start = time.perf_counter()
    with trace.span("montecarlo", kind="closed_form", trials=trials) as msp:
        rng = np.random.default_rng(seed)
        z = circuit_figure(n_drivers, inductance, vdd / rise_time)

        ks = params.k * rng.lognormal(
            mean=0.0, sigma=max(spread.k_sigma, 1e-12), size=trials
        )
        v0s = params.v0 + rng.normal(0.0, spread.v0_sigma, size=trials)
        lams = params.lam + rng.normal(0.0, spread.lam_sigma, size=trials)

        workers = resolve_workers(max_workers)
        if workers <= 1:
            samples = _trial_peaks((z, vdd, ks, v0s, lams))
        else:
            bounds = np.array_split(np.arange(trials), workers)
            chunks = [
                (z, vdd, ks[idx], v0s[idx], lams[idx]) for idx in bounds if len(idx)
            ]
            samples = np.concatenate(
                parallel_map(_trial_peaks, chunks, max_workers=workers)
            )

    tel.add_phase_seconds("montecarlo", trace.elapsed(msp, wall_start))
    record_session(tel)
    return MonteCarloResult(
        samples=samples,
        mean=float(np.mean(samples)),
        std=float(np.std(samples)),
        p95=float(np.percentile(samples, 95.0)),
        nominal=peak_noise_from_figure(z, params, vdd),
        telemetry=tel,
    )


@dataclasses.dataclass(frozen=True)
class DeviceSpread:
    """1-sigma spreads of the golden device parameters for transient MC.

    Attributes:
        vth_sigma: absolute normal sigma of the zero-bias threshold in
            volts (die-to-die threshold variation).
        mu_sigma: lognormal sigma of the low-field mobility (relative
            drive-strength variation; lognormal keeps mobility positive).
    """

    vth_sigma: float = 0.015
    mu_sigma: float = 0.05

    def __post_init__(self):
        if min(self.vth_sigma, self.mu_sigma) < 0:
            raise ValueError("spreads must be non-negative")


def transient_peak_distribution(
    spec: DriverBankSpec,
    spread: DeviceSpread | None = None,
    trials: int = 64,
    seed: int = 0,
    engine: str | None = None,
    campaign=None,
) -> MonteCarloResult:
    """Monte Carlo the *golden-simulated* peak SSN under device variation.

    Where :func:`peak_noise_distribution` propagates spread through the
    closed-form Eqn (10), this runs the full transient simulator on every
    trial: the nominal technology's NMOS threshold and mobility are
    perturbed, a driver-bank circuit is built per draw, and the whole
    fleet of same-topology circuits is simulated.  Under the batched
    engine (``engine="batch"`` or ``REPRO_ENGINE=batch``) the fleet
    advances in one vectorized Newton loop instead of ``trials``
    independent runs, which is what makes golden Monte Carlo affordable.

    Args:
        spec: nominal driver-bank configuration.
        spread: device-parameter sigmas (defaults are typical die-to-die
            numbers).
        trials: number of Monte Carlo draws.
        seed: RNG seed for reproducibility; the draw vector is fixed up
            front, so samples are identical for every engine.
        engine: transient engine, as in
            :func:`repro.analysis.simulate.simulate_many`.
        campaign: optional :class:`repro.analysis.campaign.CampaignConfig`
            routing the trial fleet through the fault-tolerant
            :class:`~repro.analysis.campaign.CampaignRunner`
            (checkpoint/resume, retries, engine degradation).  The draw
            vector is fixed up front from ``seed`` either way, so samples
            are bit-identical to the direct path; ``engine`` here is
            ignored in favor of the config's own knob.

    Returns:
        The sampled golden peak-SSN distribution and summary statistics;
        ``telemetry`` aggregates the fleet's solver counters plus the wall
        clock under ``phase_seconds["montecarlo_transient"]``.
    """
    # Local import: simulate builds on driver_bank, keep module import light.
    from .simulate import aggregate_telemetry, simulate_many, simulate_ssn_cached

    if campaign is not None:
        from .campaign import CampaignRunner

        runner = campaign if isinstance(campaign, CampaignRunner) \
            else CampaignRunner(campaign)
        return runner.run_montecarlo(spec, spread=spread, trials=trials, seed=seed)
    if trials < 2:
        raise ValueError("trials must be at least 2")
    spread = spread or DeviceSpread()
    wall_start = time.perf_counter()
    with trace.span("montecarlo", kind="transient", trials=trials) as msp:
        rng = np.random.default_rng(seed)
        tech = spec.technology
        vths = tech.nmos.vth0 + rng.normal(0.0, spread.vth_sigma, size=trials)
        mus = tech.nmos.mu0 * rng.lognormal(
            mean=0.0, sigma=max(spread.mu_sigma, 1e-12), size=trials
        )

        trial_specs = [
            dataclasses.replace(
                spec,
                technology=dataclasses.replace(
                    tech, nmos=tech.nmos.scaled(vth0=float(v), mu0=float(m))
                ),
            )
            for v, m in zip(vths, mus)
        ]
        sims = simulate_many(trial_specs, engine=engine)
        samples = np.array([sim.peak_voltage for sim in sims])

    tel = aggregate_telemetry(sims)
    tel.add_phase_seconds("montecarlo_transient", trace.elapsed(msp, wall_start))
    return MonteCarloResult(
        samples=samples,
        mean=float(np.mean(samples)),
        std=float(np.std(samples)),
        p95=float(np.percentile(samples, 95.0)),
        nominal=simulate_ssn_cached(spec).peak_voltage,
        telemetry=tel,
    )
