"""Tapered pre-driver (buffer) chain substrate.

The SSN design literature the paper builds on (Senthinathan & Prince 1993,
Yang & Brews 1996, Vemuru 1997 — refs [9]-[11]) studies output drivers fed
by tapered inverter chains, whose finite edge rates are what the paper's
``sr`` abstracts.  This module builds that substrate: a chain of CMOS
inverters, each stage ``taper``-times wider than the previous, driving the
final pull-down bank through the ground inductance.

Device gate loading is modeled with explicit input capacitors (our MOSFET
element is capacitance-free by design; the gate charge of stage i+1 is the
load of stage i):

    C_in = (Wn + Wp) * L * Cox * GATE_CAP_FACTOR

With an odd number of inverting stages a rising chain input produces a
rising final gate — the SSN-triggering polarity.
"""

from __future__ import annotations

import dataclasses

from ..process.technology import Technology
from ..spice.circuit import Circuit
from ..spice.sources import Ramp
from ..spice.transient import transient
from ..spice.waveform import Waveform

#: Effective gate capacitance factor (channel + overlap, per unit Cox*W*L).
GATE_CAP_FACTOR = 1.5


@dataclasses.dataclass(frozen=True)
class BufferChainSpec:
    """A tapered pre-driver chain feeding an N-driver pull-down bank.

    Attributes:
        technology: process card (with a PMOS card for the inverters).
        n_drivers: output drivers switching simultaneously.
        stages: number of pre-driver inverters (use an even count so the
            final gate rises when the chain input rises: each inverter
            inverts, and the bank needs a rising gate).
        taper: width ratio between consecutive stages.
        first_stage_strength: width of stage 1's NMOS as a multiple of the
            technology reference width.
        inductance: ground-path inductance under the final bank.
        capacitance: ground-path capacitance (None for L-only).
        input_rise_time: edge rate of the (ideal) chain input.
        load_capacitance: per-driver output load.
    """

    technology: Technology
    n_drivers: int
    stages: int = 2
    taper: float = 3.0
    first_stage_strength: float = 0.15
    inductance: float = 5e-9
    capacitance: float | None = None
    input_rise_time: float = 0.2e-9
    load_capacitance: float = 10e-12

    def __post_init__(self):
        if self.stages < 1:
            raise ValueError("need at least one pre-driver stage")
        if self.stages % 2 != 0:
            raise ValueError(
                "use an even stage count: the final gate must rise with the input"
            )
        if self.taper <= 1.0:
            raise ValueError("taper must exceed 1")
        if self.n_drivers <= 0 or self.first_stage_strength <= 0:
            raise ValueError("n_drivers and first_stage_strength must be positive")
        if self.inductance <= 0 or self.input_rise_time <= 0:
            raise ValueError("inductance and input_rise_time must be positive")

    def stage_strength(self, index: int) -> float:
        """Drive strength of pre-driver stage ``index`` (0-based)."""
        return self.first_stage_strength * self.taper**index


def gate_capacitance(tech: Technology, nmos_width: float, pmos_width: float) -> float:
    """Explicit input capacitance of an inverter with the given widths."""
    return GATE_CAP_FACTOR * tech.nmos.cox * tech.node * (nmos_width + pmos_width)


def build_buffer_chain(spec: BufferChainSpec) -> Circuit:
    """Netlist: input ramp -> tapered inverters -> pull-down bank on L(C)."""
    tech = spec.technology
    vdd = tech.vdd
    circuit = Circuit(f"{spec.stages}-stage tapered chain + {spec.n_drivers}-driver bank")
    circuit.vsource("Vin", "a0", "0", Ramp(0.0, vdd, 0.0, spec.input_rise_time))
    circuit.vsource("Vdd", "vdd", "0", vdd)

    # Pre-driver inverters: stage i reads node a{i}, drives node a{i+1}.
    # A rising chain input makes odd-indexed internal nodes fall and even
    # ones rise; internal nodes therefore start at alternating rails.
    for i in range(spec.stages):
        strength = spec.stage_strength(i)
        node_in = f"a{i}"
        node_out = f"a{i + 1}"
        nmos = tech.driver_device(strength)
        pmos = tech.pullup_device(strength)
        circuit.mosfet(f"Xn{i + 1}", node_out, node_in, "0", "0", nmos)
        circuit.mosfet(f"Xp{i + 1}", node_out, node_in, "vdd", "vdd", pmos)
        # Load of this stage: the next stage's (or the bank's) gate charge.
        if i + 1 < spec.stages:
            next_strength = spec.stage_strength(i + 1)
            next_n = tech.reference_width * next_strength
            next_p = next_n * tech.pmos_width_ratio
        else:
            next_n = tech.reference_width * spec.n_drivers
            next_p = 0.0  # the output bank is pull-down only (paper circuit)
        initial = vdd if i % 2 == 0 else 0.0  # node a{i+1} before switching
        circuit.capacitor(
            f"Cg{i + 1}", node_out, "0", gate_capacitance(tech, next_n, next_p),
            ic=initial,
        )

    gate = f"a{spec.stages}"
    circuit.inductor("Lgnd", "ssn", "0", spec.inductance, ic=0.0)
    if spec.capacitance is not None:
        circuit.capacitor("Cgnd", "ssn", "0", spec.capacitance, ic=0.0)
    circuit.capacitor("CL1", "out1", "0", spec.load_capacitance * spec.n_drivers, ic=vdd)
    circuit.mosfet("M1", "out1", gate, "ssn", "ssn", tech.driver_device(spec.n_drivers))
    return circuit


@dataclasses.dataclass(frozen=True)
class BufferChainSimulation:
    """Waveforms of one chain-driven SSN run.

    Attributes:
        spec: the simulated configuration.
        final_gate: the realistic gate waveform at the bank's input.
        ssn: ground-bounce waveform.
        peak_voltage: maximum ground bounce.
    """

    spec: BufferChainSpec
    final_gate: Waveform
    ssn: Waveform
    peak_voltage: float


def simulate_buffer_chain(
    spec: BufferChainSpec, tstop: float | None = None, dt: float | None = None
) -> BufferChainSimulation:
    """Run the golden transient of the chain-driven bank."""
    circuit = build_buffer_chain(spec)
    # The chain stretches the edge by roughly its stage delays; give the
    # run generous room and resolution.
    if tstop is None:
        tstop = 6.0 * spec.input_rise_time + 2e-9
    if dt is None:
        dt = spec.input_rise_time / 200.0
    result = transient(circuit, tstop, dt)
    ssn = result.voltage("ssn")
    return BufferChainSimulation(
        spec=spec,
        final_gate=result.voltage(f"a{spec.stages}"),
        ssn=ssn,
        peak_voltage=ssn.peak()[1],
    )
