"""Effective-ramp extraction from realistic (non-ideal) input waveforms.

Every formula in the paper assumes an ideal linear gate ramp ``Vg = sr*t``.
Real driver inputs come out of a pre-driver chain with exponential-ish
edges.  The standard engineering bridge is an *effective* ramp: fit the
measured edge between two crossing fractions (20%/80% by default) and use
the equivalent full-swing slope in the closed forms.  This module extracts
that ramp; the realistic-input experiment (E13) quantifies how well the
paper's model holds under it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..spice.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class EffectiveRamp:
    """A linear ramp equivalent to a measured rising edge.

    Attributes:
        slope: equivalent full-swing slope sr in V/s.
        rise_time: equivalent 0-to-vdd rise time vdd/sr in seconds.
        start_time: time at which the equivalent ramp leaves 0 V.
        low_crossing: measured time of the lower reference crossing.
        high_crossing: measured time of the upper reference crossing.
    """

    slope: float
    rise_time: float
    start_time: float
    low_crossing: float
    high_crossing: float

    def voltage(self, t, vdd: float):
        """The equivalent ramp evaluated at ``t`` (clamped to [0, vdd])."""
        t = np.asarray(t, dtype=float)
        v = np.clip((t - self.start_time) * self.slope, 0.0, vdd)
        if v.ndim == 0:
            return float(v)
        return v


def crossing_time(waveform: Waveform, level: float) -> float:
    """First time the waveform rises through ``level`` (interpolated).

    Raises:
        ValueError: if the waveform never reaches the level.
    """
    y = waveform.y
    above = np.flatnonzero(y >= level)
    if len(above) == 0:
        raise ValueError(f"waveform never reaches {level} V (max {y.max():.4g} V)")
    i = int(above[0])
    if i == 0:
        return float(waveform.t[0])
    t0, t1 = waveform.t[i - 1], waveform.t[i]
    y0, y1 = y[i - 1], y[i]
    return float(t0 + (level - y0) * (t1 - t0) / (y1 - y0))


def extract_effective_ramp(
    waveform: Waveform,
    vdd: float,
    low_fraction: float = 0.2,
    high_fraction: float = 0.8,
) -> EffectiveRamp:
    """Fit an equivalent linear ramp to a rising edge.

    The slope is taken between the ``low_fraction`` and ``high_fraction``
    crossings of ``vdd``; the equivalent ramp is the full-swing line with
    that slope passing through the low crossing.

    Args:
        waveform: the measured rising edge.
        vdd: full swing the edge settles to.
        low_fraction: lower reference level as a fraction of vdd.
        high_fraction: upper reference level as a fraction of vdd.

    Returns:
        The fitted :class:`EffectiveRamp`.
    """
    if not 0.0 < low_fraction < high_fraction < 1.0:
        raise ValueError("need 0 < low_fraction < high_fraction < 1")
    t_low = crossing_time(waveform, low_fraction * vdd)
    t_high = crossing_time(waveform, high_fraction * vdd)
    if t_high <= t_low:
        raise ValueError("degenerate edge: upper crossing not after lower crossing")
    slope = (high_fraction - low_fraction) * vdd / (t_high - t_low)
    start = t_low - low_fraction * vdd / slope
    return EffectiveRamp(
        slope=slope,
        rise_time=vdd / slope,
        start_time=start,
        low_crossing=t_low,
        high_crossing=t_high,
    )
