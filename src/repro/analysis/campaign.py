"""Fault-tolerant campaign runner: journaled chunks, retries, degradation.

The paper's headline results (the Fig. 3 driver-count sweeps, the Table 1
comparisons) and the golden Monte Carlo extensions are long multi-instance
campaigns; PVT-corner characterization in practice means thousands of such
runs.  Before this module, one crashed worker, one poison parameter point
or one Ctrl-C lost the whole sweep.  :class:`CampaignRunner` executes any
sweep / ``simulate_many`` / ``transient_peak_distribution`` workload as a
sequence of *chunks* with four guarantees:

1. **Atomic checkpointing** — after every completed chunk the whole
   journal (header plus one JSON line per finished chunk) is rewritten to
   a temp file in the checkpoint's directory, fsynced, and committed with
   ``os.replace``.  A crash at any instant leaves either the previous
   valid journal or the new valid journal on disk, never a torn file.
2. **Exact resume** — ``resume=True`` replays the journal (validating a
   fingerprint of the workload so a stale journal cannot silently corrupt
   a different campaign) and re-executes only the missing chunks.  Results
   are **bit-identical** to an uninterrupted run: journaled floats are
   serialized by :mod:`json` with ``repr`` round-trip fidelity, and fresh
   chunks execute the same deterministic code path.
3. **Retry with backoff and a deadline** — a failing chunk is re-attempted
   up to ``max_retries`` times with capped exponential backoff; each task
   additionally carries an optional wall-clock ``deadline`` after which
   its attempt is treated as failed (:class:`DeadlineExceeded`).
4. **Graceful engine degradation** — when a chunk exhausts its bulk retry
   budget, each of its instances is recovered independently down the
   batch -> scalar fast path -> legacy reference ladder
   (:func:`repro.analysis.engine.degradation_rungs`).  Every recovery
   action is counted in :class:`~repro.spice.telemetry.SolverTelemetry`
   (``retries``, ``degradations``, ``chunks_failed``,
   ``checkpoint_writes``), so harnesses assert exact recovery behavior
   instead of mere survival.

Worker crashes below the chunk level are absorbed one layer down:
:func:`repro.analysis.parallel.parallel_map` respawns a broken process
pool once and then recomputes serially, so a killed worker costs a
``degradations`` tick, not the campaign.

Every failure path here is exercised by tests through the deterministic
fault injector (:mod:`repro.testing.faults`) rather than trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from ..observability import events as obs_events
from ..observability import health as obs_health
from ..observability import metrics as obs_metrics
from ..observability import trace
from ..observability.atomic import atomic_write
from ..spice.telemetry import SolverTelemetry, record_session
from ..spice.transient import TransientOptions
from ..testing import faults
from .driver_bank import DriverBankSpec
from .engine import degradation_rungs, resolve_engine
from .parallel import parallel_map_traced
from .simulate import SsnSimulation, simulate_many, simulate_ssn_cached

#: Journal schema version (bumped on incompatible format changes).
CHECKPOINT_VERSION = 1

#: Engine options of the last-resort "legacy" rung: the frozen seed engine.
LEGACY_OPTIONS = TransientOptions(legacy_reference=True)


class CampaignError(RuntimeError):
    """A campaign instance failed every rung of the recovery ladder.

    The runner's :class:`~repro.spice.telemetry.SolverTelemetry` (with
    ``unrecovered_failures`` incremented) is attached as ``.telemetry``.
    """

    telemetry: SolverTelemetry | None = None


class CheckpointMismatchError(CampaignError):
    """The checkpoint on disk was written by a *different* workload.

    Resuming a sweep from another sweep's journal would silently splice
    wrong numbers into the result, so the fingerprint (workload kind,
    item count, chunk size, parameter digest) must match exactly.
    """


class DeadlineExceeded(CampaignError):
    """One task's wall-clock attempt exceeded the configured deadline."""


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign execution.

    Attributes:
        checkpoint: journal path (JSONL); None disables checkpointing.
        resume: replay an existing journal and run only missing chunks.
            Without an existing journal this is a normal fresh run.
        chunk_size: instances per journaled chunk (the checkpoint
            granularity; part of the resume fingerprint).
        max_retries: re-attempts per chunk (and per instance per rung)
            after the first failure.
        deadline: per-task wall-clock budget in seconds (None = unlimited).
        backoff_base: first retry backoff in seconds; attempt ``k`` sleeps
            ``min(backoff_cap, backoff_base * 2**k)``.  0 disables sleeping
            (the test suite's setting).
        backoff_cap: upper bound on one backoff sleep.
        max_workers: process-pool width for scalar bulk execution (as in
            :func:`repro.analysis.parallel.parallel_map`).
        engine: starting engine rung (``"batch"``/``"scalar"``/``"auto"``;
            default per :func:`repro.analysis.engine.resolve_engine`).
        flight_dir: directory for a flight-recorder bundle (last events +
            spans + metrics) dumped when an instance exhausts the whole
            recovery ladder (default: ``$REPRO_FLIGHT_DIR``, else none).
    """

    checkpoint: str | os.PathLike | None = None
    resume: bool = False
    chunk_size: int = 8
    max_retries: int = 2
    deadline: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    max_workers: int | None = None
    engine: str | None = None
    flight_dir: str | os.PathLike | None = None

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when given")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff times must be non-negative")


@dataclasses.dataclass(frozen=True)
class SimulationSummary:
    """Journal-backed summary of one golden simulation in a campaign.

    Campaign journals store JSON-serializable summaries (peaks, times,
    telemetry counters), not full waveforms; callers needing waveforms
    re-simulate the few configurations of interest via
    :func:`repro.analysis.simulate.simulate_ssn_cached`.
    """

    index: int
    spec: DriverBankSpec
    peak_voltage: float
    peak_time: float
    engine: str
    telemetry: SolverTelemetry | None = None


# -- picklable instance worker -------------------------------------------------------


def _record_from(index: int, sim: SsnSimulation, rung: str) -> dict:
    return {
        "index": int(index),
        "peak": float(sim.peak_voltage),
        "peak_time": float(sim.peak_time),
        "engine": rung,
        "telemetry": None if sim.telemetry is None else sim.telemetry.as_dict(),
    }


def _rung_options(rung: str, options: TransientOptions | None) -> TransientOptions | None:
    """The transient options one recovery rung actually simulates under.

    The legacy rung forces the frozen seed engine on top of whatever the
    caller requested; the other rungs pass the request through untouched.
    """
    if rung != "legacy":
        return options
    if options is None:
        return LEGACY_OPTIONS
    return dataclasses.replace(options, legacy_reference=True)


def _simulate_rung(spec: DriverBankSpec, rung: str,
                   options: TransientOptions | None = None) -> SsnSimulation:
    return simulate_ssn_cached(spec, options=_rung_options(rung, options))


def _instance_record(payload: tuple) -> dict:
    """Simulate one instance and summarize it (module-level: picklable).

    Publishes ``task``/``engine`` fault scope, runs the ``task`` probe (the
    injector's stall fault sleeps here) and enforces the per-task deadline
    on the attempt's wall clock.
    """
    index, spec, rung, deadline, options = payload
    with faults.scope(task=index, engine=rung):
        start = time.perf_counter()
        with trace.span("task", index=index, engine=rung):
            faults.probe("task")
            sim = _simulate_rung(spec, rung, options)
        elapsed = time.perf_counter() - start
    if deadline is not None and elapsed > deadline:
        raise DeadlineExceeded(
            f"task {index} took {elapsed:.3f} s against a {deadline:.3f} s deadline"
        )
    return _record_from(index, sim, rung)


# -- the runner ----------------------------------------------------------------------


class CampaignRunner:
    """Executes spec ensembles as journaled, retried, degradable chunks.

    One runner instance accumulates campaign telemetry across its runs in
    ``self.telemetry`` (campaign counters only — per-instance solver
    counters ride on the returned results, exactly as in direct sweeps, so
    nothing is double counted when callers aggregate both).
    """

    def __init__(self, config: CampaignConfig | None = None, **kwargs):
        if config is not None and kwargs:
            raise TypeError("pass either a CampaignConfig or keyword knobs, not both")
        self.config = config if config is not None else CampaignConfig(**kwargs)
        self.telemetry = SolverTelemetry()

    # -- checkpoint I/O --------------------------------------------------------------

    @staticmethod
    def _fingerprint(kind: str, n_items: int, chunk_size: int, extra: dict) -> str:
        payload = json.dumps(
            {"kind": kind, "n_items": n_items, "chunk_size": chunk_size, **extra},
            sort_keys=True, default=repr,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _write_journal(self, path: Path, header: dict, done: dict[int, dict]) -> None:
        """Atomically replace the journal with header + completed chunks.

        Publication goes through the shared
        :func:`repro.observability.atomic.atomic_write` helper (tempfile in
        the journal's directory, fsync, ``os.replace``); the line generator
        runs the ``checkpoint`` fault probe after the header chunk, so the
        injector's ``crash-write`` fault still fires after the header lands
        in the temp file and leaves the previous journal untouched.
        """

        def lines() -> Iterator[str]:
            yield json.dumps(header, sort_keys=True) + "\n"
            faults.probe("checkpoint")
            for ci in sorted(done):
                yield json.dumps(done[ci], sort_keys=True) + "\n"

        start = time.perf_counter()
        with trace.span("checkpoint_write", chunks=len(done)) as sp:
            atomic_write(path, lines())
        self.telemetry.checkpoint_writes += 1
        obs_metrics.observe("repro_checkpoint_write_seconds",
                            trace.elapsed(sp, start))
        obs_events.emit("checkpoint_write", path=str(path), chunks=len(done))

    def _load_journal(self, path: Path, header: dict) -> dict[int, dict]:
        """Replay a journal, validating it belongs to this exact workload."""
        done: dict[int, dict] = {}
        if not path.exists():
            return done
        with open(path) as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
        if not lines:
            return done
        on_disk = json.loads(lines[0])
        for key in ("version", "kind", "n_items", "chunk_size", "fingerprint"):
            if on_disk.get(key) != header[key]:
                raise CheckpointMismatchError(
                    f"checkpoint {path} was written by a different campaign "
                    f"({key}: journal {on_disk.get(key)!r} vs workload {header[key]!r}); "
                    "delete it or point --checkpoint elsewhere"
                )
        for line in lines[1:]:
            entry = json.loads(line)
            done[int(entry["chunk"])] = entry
            # Restored chunks contribute their saved recovery counters, so
            # resumed telemetry reports the whole campaign's history.
            self.telemetry.merge(SolverTelemetry.from_dict(entry.get("campaign", {})))
        return done

    # -- execution -------------------------------------------------------------------

    def _sleep_backoff(self, attempt: int) -> None:
        cfg = self.config
        if cfg.backoff_base > 0:
            time.sleep(min(cfg.backoff_cap, cfg.backoff_base * (2.0 ** attempt)))

    def _bulk(self, indices: Sequence[int], specs: Sequence[DriverBankSpec],
              rung: str, tally: SolverTelemetry,
              options: TransientOptions | None = None) -> list[dict]:
        """One whole-chunk execution attempt at one engine rung."""
        faults.probe("engine")
        cfg = self.config
        if rung in ("surrogate", "batch"):
            # Whole-ensemble rungs: the surrogate tier routes per spec
            # inside simulate_many (falling back to full engines itself),
            # and lockstep shares one wall clock across the ensemble, so
            # the per-task deadline applies on the scalar rungs only.
            sims = simulate_many(list(specs), engine=rung, options=options)
            return [_record_from(i, sim, rung) for i, sim in zip(indices, sims)]
        payloads = [(i, spec, rung, cfg.deadline, options)
                    for i, spec in zip(indices, specs)]
        if rung == "scalar":
            records, used_pool = parallel_map_traced(
                _instance_record, payloads, max_workers=cfg.max_workers,
                telemetry=tally,
            )
            if used_pool:
                # Worker-side session aggregation dies with the workers;
                # stitch their per-run counters into this process's session.
                for rec in records:
                    if rec.get("telemetry"):
                        record_session(SolverTelemetry.from_dict(rec["telemetry"]))
            return records
        return [_instance_record(p) for p in payloads]

    def _recover_instance(self, ci: int, index: int, spec: DriverBankSpec,
                          rung0: str, tally: SolverTelemetry,
                          options: TransientOptions | None = None) -> dict:
        """Retry one instance down the engine ladder until it lands."""
        cfg = self.config
        last_exc: BaseException | None = None
        for rung in degradation_rungs(rung0):
            if rung != rung0:
                tally.degradations += 1
            for attempt in range(1 + cfg.max_retries):
                with faults.scope(chunk=ci, task=index, attempt=attempt,
                                  phase="instance", engine=rung):
                    try:
                        return _instance_record(
                            (index, spec, rung, cfg.deadline, options))
                    except Exception as exc:
                        last_exc = exc
                        if attempt < cfg.max_retries:
                            tally.retries += 1
                            self._sleep_backoff(attempt)
        tally.unrecovered_failures += 1
        self.telemetry.merge(tally)
        error = CampaignError(
            f"instance {index} (chunk {ci}) failed every rung of the "
            f"recovery ladder {degradation_rungs(rung0)}: {last_exc}"
        )
        error.telemetry = self.telemetry
        # The campaign is about to die unrecovered: journal the moment and
        # dump a flight bundle (events + spans + metrics) for the operator.
        obs_events.emit("campaign_unrecovered", chunk=ci, index=index,
                        error=str(last_exc))
        obs_health.maybe_flight_record(
            self.config.flight_dir, "campaign_unrecovered",
            extra={"chunk": ci, "index": index, "error": str(last_exc)})
        raise error from last_exc

    def _run_chunk(self, ci: int, indices: Sequence[int],
                   specs: Sequence[DriverBankSpec], rung0: str,
                   chunk_sp=trace.NOOP_SPAN,
                   options: TransientOptions | None = None) -> dict:
        cfg = self.config
        tally = SolverTelemetry()  # this chunk's recovery counters
        records: list[dict] | None = None
        chunk_start = time.perf_counter()
        for attempt in range(1 + cfg.max_retries):
            with faults.scope(chunk=ci, attempt=attempt, phase="bulk", engine=rung0):
                try:
                    records = self._bulk(indices, specs, rung0, tally, options)
                    break
                except Exception:
                    chunk_sp.add_event("bulk_attempt_failed", attempt=attempt)
                    obs_events.emit("chunk_retry", chunk=ci, attempt=attempt,
                                    engine=rung0)
                    if attempt < cfg.max_retries:
                        tally.retries += 1
                        self._sleep_backoff(attempt)
        if records is not None and attempt > 0:
            # Latency the retry ladder added before the chunk finally landed
            # (first-attempt successes never observe into this histogram).
            obs_metrics.observe("repro_chunk_retry_latency_seconds",
                                time.perf_counter() - chunk_start)
        if records is None:
            # Bulk budget exhausted: recover instance by instance, each
            # walking its own rung ladder.
            tally.chunks_failed += 1
            chunk_sp.add_event("per_instance_recovery")
            obs_events.emit("chunk_degraded", chunk=ci, engine=rung0)
            records = [
                self._recover_instance(ci, i, spec, rung0, tally, options)
                for i, spec in zip(indices, specs)
            ]
            obs_metrics.observe("repro_chunk_retry_latency_seconds",
                                time.perf_counter() - chunk_start)
        self.telemetry.merge(tally)
        return {
            "chunk": int(ci),
            "indices": [int(i) for i in indices],
            "engine": rung0,
            "records": records,
            "campaign": {
                "retries": tally.retries,
                "degradations": tally.degradations,
                "chunks_failed": tally.chunks_failed,
            },
        }

    def run_specs(self, specs: Sequence[DriverBankSpec], kind: str = "simulate",
                  fingerprint_extra: dict | None = None,
                  options: TransientOptions | None = None) -> list[dict]:
        """Execute every spec, returning one summary record per spec.

        The core campaign loop: chunk the specs, skip chunks already in
        the journal (``resume``), execute the rest through the retry /
        degradation machinery, and commit the journal atomically after
        every completed chunk.  A ``KeyboardInterrupt`` (or any crash)
        propagates — the journal already holds every completed chunk, so
        re-running with ``resume=True`` finishes the campaign without
        recomputing them.

        ``options`` threads explicit :class:`TransientOptions` through
        every rung of the execution ladder (the serving layer's dispatch
        path); the legacy rung overlays ``legacy_reference=True`` on top.
        Default (``None``) runs keep the journal fingerprint unchanged, so
        existing checkpoints stay resumable.
        """
        specs = list(specs)
        cfg = self.config
        n = len(specs)
        if n == 0:
            return []
        rung0 = resolve_engine(cfg.engine, n)
        extra = dict(fingerprint_extra or {})
        if options is not None:
            extra["options"] = repr(options)
        fingerprint = self._fingerprint(kind, n, cfg.chunk_size, extra)
        header = {
            "version": CHECKPOINT_VERSION,
            "kind": kind,
            "n_items": n,
            "chunk_size": cfg.chunk_size,
            "fingerprint": fingerprint,
        }
        path = Path(cfg.checkpoint) if cfg.checkpoint is not None else None
        done: dict[int, dict] = {}
        with trace.span("campaign", kind=kind, items=n, engine=rung0,
                        chunk_size=cfg.chunk_size) as csp:
            if path is not None:
                if cfg.resume:
                    done = self._load_journal(path, header)
                    csp.set_attribute("resumed_chunks", len(done))
                    obs_events.emit("campaign_resumed", kind=kind,
                                    chunks=len(done))
                else:
                    # Fresh run: commit a header-only journal immediately so
                    # an interrupt during the first chunk still leaves valid
                    # JSONL.
                    self._write_journal(path, header, done)

            chunk_ids = range(0, n, cfg.chunk_size)
            for ci, start in enumerate(chunk_ids):
                if ci in done:
                    continue
                indices = list(range(start, min(start + cfg.chunk_size, n)))
                with trace.span("chunk", chunk=ci,
                                instances=len(indices)) as chunk_sp:
                    with faults.scope(chunk=ci):
                        faults.probe("chunk")
                        done[ci] = self._run_chunk(
                            ci, indices, [specs[i] for i in indices], rung0,
                            chunk_sp=chunk_sp, options=options,
                        )
                if path is not None:
                    self._write_journal(path, header, done)

        records = [rec for ci in sorted(done) for rec in done[ci]["records"]]
        records.sort(key=lambda rec: rec["index"])
        record_session(SolverTelemetry.from_dict({
            "retries": self.telemetry.retries,
            "degradations": self.telemetry.degradations,
            "chunks_failed": self.telemetry.chunks_failed,
            "checkpoint_writes": self.telemetry.checkpoint_writes,
        }))
        return records

    # -- workload wrappers -----------------------------------------------------------

    def run_sweep(self, knob: str, base: DriverBankSpec, values: Sequence[float],
                  apply: Callable[[DriverBankSpec, float], DriverBankSpec],
                  estimators: dict[str, Callable[[DriverBankSpec], float]]):
        """Fault-tolerant :func:`repro.analysis.sweeps.sweep` equivalent.

        Golden peaks come from the journaled campaign; the cheap
        closed-form estimators are recomputed in-process at assembly time
        (they are pure functions of the spec, so resumed results are
        identical to uninterrupted ones).
        """
        from .sweeps import SweepPoint, SweepResult

        values = [float(v) for v in values]
        specs = [apply(base, v) for v in values]
        records = self.run_specs(
            specs, kind="sweep",
            fingerprint_extra={"knob": knob, "values": [repr(v) for v in values],
                               "base": repr(base)},
        )
        points = []
        for value, spec, rec in zip(values, specs, records):
            estimates = {name: float(fn(spec)) for name, fn in estimators.items()}
            tel = (SolverTelemetry.from_dict(rec["telemetry"])
                   if rec.get("telemetry") else None)
            points.append(SweepPoint(
                value=value, spec=spec, simulated_peak=rec["peak"],
                estimates=estimates, telemetry=tel,
            ))
        return SweepResult(knob=knob, points=tuple(points))

    def run_montecarlo(self, spec: DriverBankSpec, spread=None, trials: int = 64,
                       seed: int = 0):
        """Fault-tolerant golden transient Monte Carlo (device variation).

        Mirrors :func:`repro.analysis.montecarlo.transient_peak_distribution`:
        the trial draws are fixed up front from ``seed``, so the sample
        vector is identical for every chunking, worker count and recovery
        path.
        """
        from .montecarlo import DeviceSpread, MonteCarloResult

        if trials < 2:
            raise ValueError("trials must be at least 2")
        spread = spread or DeviceSpread()
        rng = np.random.default_rng(seed)
        tech = spec.technology
        vths = tech.nmos.vth0 + rng.normal(0.0, spread.vth_sigma, size=trials)
        mus = tech.nmos.mu0 * rng.lognormal(
            mean=0.0, sigma=max(spread.mu_sigma, 1e-12), size=trials
        )
        trial_specs = [
            dataclasses.replace(
                spec,
                technology=dataclasses.replace(
                    tech, nmos=tech.nmos.scaled(vth0=float(v), mu0=float(m))
                ),
            )
            for v, m in zip(vths, mus)
        ]
        records = self.run_specs(
            trial_specs, kind="montecarlo",
            fingerprint_extra={"trials": trials, "seed": seed,
                               "spread": repr(spread), "spec": repr(spec)},
        )
        samples = np.array([rec["peak"] for rec in records])
        tel = SolverTelemetry.aggregate(
            SolverTelemetry.from_dict(rec["telemetry"])
            for rec in records if rec.get("telemetry")
        )
        return MonteCarloResult(
            samples=samples,
            mean=float(np.mean(samples)),
            std=float(np.std(samples)),
            p95=float(np.percentile(samples, 95.0)),
            nominal=simulate_ssn_cached(spec).peak_voltage,
            telemetry=tel,
        )

    def run_simulate(self, specs: Sequence[DriverBankSpec]) -> list[SimulationSummary]:
        """Fault-tolerant golden simulation of a spec list (summaries)."""
        specs = list(specs)
        records = self.run_specs(
            specs, kind="simulate",
            fingerprint_extra={"specs": [repr(s) for s in specs]},
        )
        return [
            SimulationSummary(
                index=rec["index"], spec=specs[rec["index"]],
                peak_voltage=rec["peak"], peak_time=rec["peak_time"],
                engine=rec["engine"],
                telemetry=(SolverTelemetry.from_dict(rec["telemetry"])
                           if rec.get("telemetry") else None),
            )
            for rec in records
        ]
