"""Process-pool execution for embarrassingly parallel experiment work.

Sweep points and Monte Carlo trials are independent, so the experiment
layer fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping three invariants:

* **Deterministic ordering** — results come back in submission order
  (``Executor.map``), so parallel runs are element-for-element identical
  to serial runs.
* **Graceful serial fallback** — ``max_workers=1`` (the default) never
  touches multiprocessing, and a pool that cannot be created or dies
  mid-flight (sandboxed environments, unpicklable payloads, killed
  workers) falls back to computing the remaining work in-process.
* **Configurable worker count** — pass ``max_workers`` explicitly or set
  the ``REPRO_MAX_WORKERS`` environment variable; ``0``/``None`` means
  "one worker per CPU".

Worker functions must be module-level (picklable) and their arguments
pickle-round-trippable; the frozen spec dataclasses used by the sweep and
Monte Carlo layers satisfy both.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``max_workers`` is not passed.
WORKERS_ENV = "REPRO_MAX_WORKERS"


def resolve_workers(max_workers: int | None = None) -> int:
    """The effective worker count for one parallel region.

    ``None`` defers to the ``REPRO_MAX_WORKERS`` environment variable and
    finally to 1 (serial — the safe default for library use).  ``0`` means
    one worker per available CPU.

    A garbage environment value (``"auto"``, ``""``, a negative number)
    must never crash an experiment that would otherwise run fine serially:
    it falls back to 1 worker with a :class:`RuntimeWarning`.  An invalid
    *explicit* ``max_workers`` argument is a programming error and raises.
    """
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is not an integer; running serially",
                RuntimeWarning, stacklevel=2,
            )
            return 1
        if value < 0:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is negative; running serially",
                RuntimeWarning, stacklevel=2,
            )
            return 1
        max_workers = value
    if max_workers < 0:
        raise ValueError(f"max_workers must be >= 0, got {max_workers}")
    if max_workers == 0:
        return os.cpu_count() or 1
    return max_workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """Order-preserving map over ``items``, optionally across processes.

    With one worker (or one item) this is a plain list comprehension —
    zero multiprocessing machinery.  Otherwise the items are dispatched to
    a process pool; results return in input order.  If the pool cannot be
    created or breaks, the whole map is recomputed serially, so callers
    always get a complete, ordered result.

    Exceptions raised by ``fn`` itself propagate unchanged in both modes.
    """
    results, _ = parallel_map_traced(fn, items, max_workers=max_workers)
    return results


def parallel_map_traced(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> tuple[list[R], bool]:
    """:func:`parallel_map` plus whether the pool path actually ran.

    Returns ``(results, used_pool)``.  ``used_pool`` is False for the
    serial fast path *and* for the serial recompute after a pool failure —
    i.e. it is True exactly when the results were produced in worker
    processes.  Callers that fold worker-side state (telemetry records)
    back into the parent use this to avoid double counting.
    """
    work: Sequence[T] = list(items)
    workers = resolve_workers(max_workers)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work], False
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(work))) as pool:
            return list(pool.map(fn, work)), True
    except (OSError, BrokenProcessPool, pickle.PicklingError, TypeError):
        # Pool unavailable (sandbox/fork limits) or payload unpicklable:
        # degrade to the serial path rather than failing the experiment.
        return [fn(item) for item in work], False
