"""Process-pool execution for embarrassingly parallel experiment work.

Sweep points and Monte Carlo trials are independent, so the experiment
layer fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping three invariants:

* **Deterministic ordering** — results come back in submission order
  (``Executor.map``), so parallel runs are element-for-element identical
  to serial runs.
* **Graceful serial fallback** — ``max_workers=1`` (the default) never
  touches multiprocessing; a pool that cannot be *created* (sandboxed
  environments, unpicklable payloads) silently computes the work
  in-process; and a pool that *breaks* mid-flight (a worker process
  killed by the OOM killer, a segfaulting extension, an injected crash)
  is respawned once and, if it breaks again, the map is recomputed
  serially with a :class:`RuntimeWarning` and a telemetry degradation
  flag — a crashed worker never loses the campaign.
* **Configurable worker count** — pass ``max_workers`` explicitly or set
  the ``REPRO_MAX_WORKERS`` environment variable; ``0``/``None`` means
  "one worker per CPU".

Worker functions must be module-level (picklable) and their arguments
pickle-round-trippable; the frozen spec dataclasses used by the sweep and
Monte Carlo layers satisfy both.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from ..observability import events as obs_events
from ..observability import metrics as obs_metrics
from ..observability import trace
from ..spice.telemetry import SolverTelemetry, record_session
from ..testing import faults

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``max_workers`` is not passed.
WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Broken-pool respawns attempted before degrading to the serial path.
POOL_RESPAWNS = 1


def resolve_workers(max_workers: int | None = None) -> int:
    """The effective worker count for one parallel region.

    ``None`` defers to the ``REPRO_MAX_WORKERS`` environment variable and
    finally to 1 (serial — the safe default for library use).  ``0`` means
    one worker per available CPU.

    A garbage environment value (``"auto"``, ``""``, a negative number)
    must never crash an experiment that would otherwise run fine serially:
    it falls back to 1 worker with a :class:`RuntimeWarning`.  An invalid
    *explicit* ``max_workers`` argument is a programming error and raises.
    """
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is not an integer; running serially",
                RuntimeWarning, stacklevel=2,
            )
            return 1
        if value < 0:
            warnings.warn(
                f"{WORKERS_ENV}={env!r} is negative; running serially",
                RuntimeWarning, stacklevel=2,
            )
            return 1
        max_workers = value
    if max_workers < 0:
        raise ValueError(f"max_workers must be >= 0, got {max_workers}")
    if max_workers == 0:
        return os.cpu_count() or 1
    return max_workers


def _observability_config() -> tuple[dict | None, bool, dict | None] | None:
    """The parent's tracing/metrics/events state as a picklable bootstrap.

    None when all three are disabled (the production default), keeping the
    worker payload byte-identical to the uninstrumented one.
    """
    tracer = trace.active_tracer()
    want_metrics = obs_metrics.active_registry() is not None
    journal = obs_events.active_journal()
    if tracer is None and not want_metrics and journal is None:
        return None
    return (None if tracer is None else tracer.config(), want_metrics,
            None if journal is None else journal.config())


def _pool_invoke(
    payload: tuple[Callable[[T], R], int, T, tuple | None]
) -> tuple[R, list | None, dict | None, list | None]:
    """Worker-side shim: publish the task index as fault scope, then call.

    Module-level (picklable) on purpose.  The ``worker`` probe is what lets
    the fault injector kill this specific worker process deterministically;
    with no fault plan installed it is a no-op.

    When the parent traces, collects metrics or journals events, a fresh
    tracer/registry/journal is enabled around the call and its serialized
    spans/metrics/events ride back with the result, where
    :func:`parallel_map_traced` re-parents the spans under the dispatching
    span and folds metrics and events into the parent (cross-process
    stitching).  Worker journals are memory-only — the parent's file keeps
    exactly one writer.
    """
    fn, index, item, obs_cfg = payload
    with faults.scope(task=index):
        faults.probe("worker")
        if obs_cfg is None:
            return fn(item), None, None, None
        trace_cfg, want_metrics, events_cfg = obs_cfg
        if trace_cfg is not None:
            # Offset the sampling seed per task so head-based sampling
            # draws independently across the fleet, yet deterministically
            # for any worker count and dispatch order.  The per-task id
            # prefix keeps span ids globally unique even when one worker
            # process serves several tasks (each task re-creates the
            # tracer, restarting its id counter).
            cfg = dict(trace_cfg)
            cfg["seed"] = cfg.get("seed", 0) * 1_000_003 + index + 1
            cfg["id_prefix"] = f"{os.getpid():x}t{index:x}"
            trace.enable_tracing(**cfg)
        if want_metrics:
            obs_metrics.enable_metrics()
        if events_cfg is not None:
            obs_events.enable_events(**events_cfg)
        try:
            result = fn(item)
            return (result, trace.snapshot_spans(),
                    obs_metrics.snapshot_metrics(),
                    obs_events.snapshot_events() or None)
        finally:
            trace.disable_tracing()
            obs_metrics.disable_metrics()
            obs_events.disable_events()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
    telemetry: SolverTelemetry | None = None,
) -> list[R]:
    """Order-preserving map over ``items``, optionally across processes.

    With one worker (or one item) this is a plain list comprehension —
    zero multiprocessing machinery.  Otherwise the items are dispatched to
    a process pool; results return in input order.  If the pool cannot be
    created it is skipped silently; if it breaks mid-flight it is respawned
    once and then the whole map is recomputed serially (with a
    ``RuntimeWarning``), so callers always get a complete, ordered result.

    Exceptions raised by ``fn`` itself propagate unchanged in both modes.
    """
    results, _ = parallel_map_traced(fn, items, max_workers=max_workers,
                                     telemetry=telemetry)
    return results


def parallel_map_traced(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
    telemetry: SolverTelemetry | None = None,
) -> tuple[list[R], bool]:
    """:func:`parallel_map` plus whether the pool path actually ran.

    Returns ``(results, used_pool)``.  ``used_pool`` is False for the
    serial fast path *and* for the serial recompute after a pool failure —
    i.e. it is True exactly when the results were produced in worker
    processes.  Callers that fold worker-side state (telemetry records)
    back into the parent use this to avoid double counting.

    A :class:`~concurrent.futures.process.BrokenProcessPool` (a worker
    process died — OOM kill, segfault, injected crash) is retried on a
    fresh pool ``POOL_RESPAWNS`` times; if the pool keeps breaking the map
    is recomputed serially with a ``RuntimeWarning`` and a ``degradations``
    tick on ``telemetry`` (and the session aggregator, if enabled), never
    an exception: completed campaigns must survive crashed workers.

    With tracing/metrics enabled (:mod:`repro.observability`), workers run
    under their own tracer/registry; their spans come back with the results
    and are re-parented under this call's ``parallel_map`` span, and their
    metrics merge into the parent registry.  Spans of a pool attempt that
    *broke* are discarded with its results, so every task appears in the
    stitched trace exactly once — whether it ultimately ran in a worker, in
    the respawned pool, or in the serial recompute.
    """
    work: Sequence[T] = list(items)
    workers = resolve_workers(max_workers)
    with trace.span("parallel_map", items=len(work), workers=workers) as sp:
        if workers <= 1 or len(work) <= 1:
            sp.set_attribute("used_pool", False)
            return [fn(item) for item in work], False
        obs_cfg = _observability_config()
        payloads = [(fn, i, item, obs_cfg) for i, item in enumerate(work)]
        for _ in range(1 + POOL_RESPAWNS):
            try:
                with ProcessPoolExecutor(max_workers=min(workers, len(work))) as pool:
                    outs = list(pool.map(_pool_invoke, payloads))
            except BrokenProcessPool:
                # A worker died mid-map.  Results from pure fns are
                # deterministic, so re-running the full map (fresh pool, then
                # serially) reproduces exactly what an unbroken run returns.
                # Any spans from the dead attempt die with its results, so
                # stitched traces stay exactly-once.
                sp.add_event("broken_process_pool")
                continue
            except (OSError, pickle.PicklingError, TypeError):
                # Pool unavailable (sandbox/fork limits) or payload unpicklable:
                # degrade to the serial path rather than failing the experiment.
                sp.set_attribute("used_pool", False)
                return [fn(item) for item in work], False
            # Stitch worker-side observability back under this span before
            # handing out the results.
            parent_id = trace.current_span_id()
            registry = obs_metrics.active_registry()
            for _, spans_payload, metrics_payload, events_payload in outs:
                if spans_payload:
                    trace.adopt_spans(spans_payload, parent_id=parent_id)
                if metrics_payload and registry is not None:
                    registry.merge_dict(metrics_payload)
                if events_payload:
                    obs_events.adopt_events(events_payload)
            sp.set_attribute("used_pool", True)
            return [result for result, _, _, _ in outs], True
        warnings.warn(
            "process pool broke; recomputing the map serially",
            RuntimeWarning, stacklevel=2,
        )
        if telemetry is not None:
            # The caller owns folding this record into the session aggregator;
            # recording here too would double count.
            telemetry.degradations += 1
        else:
            record_session(SolverTelemetry(degradations=1))
        obs_metrics.inc("repro_pool_degradations_total")
        obs_events.emit("pool_degraded", items=len(work))
        sp.add_event("pool_degraded_to_serial")
        sp.set_attribute("used_pool", False)
        return [fn(item) for item in work], False
