"""Execution-engine selection for the analysis layer.

The golden simulations can run on several engines:

* ``"scalar"`` — one :func:`repro.spice.transient.transient` call per
  configuration (optionally fanned out over a process pool).  This is the
  seed behavior and the default.
* ``"batch"`` — configurations that share a lockstep signature are folded
  into one :func:`repro.spice.batch.batch_transient` call: a single
  vectorized Newton loop advances the whole ensemble at once.
* ``"surrogate"`` — in-region queries answered in microseconds by fitted
  closed-form models (:mod:`repro.surrogate`) before any MNA assembly;
  out-of-region, bound-violating or uncovered queries fall through to the
  full engines with the decision recorded in telemetry.
* ``"auto"`` — ``"batch"`` whenever more than one configuration is
  requested, ``"scalar"`` otherwise.  ``"auto"`` never resolves to the
  surrogate tier: an approximate answer path must be opted into
  explicitly.

Selection precedence, highest first: an explicit ``engine=`` argument, the
process-wide default installed with :func:`set_default_engine` (the CLI's
``--engine`` flag uses this), the ``REPRO_ENGINE`` environment variable,
and finally ``"scalar"``.

The batch engine degrades gracefully: configurations whose circuits cannot
share a lockstep batch (mixed topologies, unsupported elements) and option
modes the lockstep loop does not implement (the frozen legacy engine)
silently fall back to the scalar path, so ``"batch"`` is always safe to
request.  Adaptive stepping *is* lockstep-capable: sweeps, Monte Carlo
fleets and campaigns with ``TransientOptions(adaptive=True)`` batch like
fixed-step runs, each instance walking its own accepted-step sequence
behind per-instance masks.
"""

from __future__ import annotations

import os

from ..observability import metrics as obs_metrics

#: Recognized engine names, in documentation order.
ENGINES = ("auto", "batch", "scalar", "surrogate")

#: The campaign runner's graceful-degradation ladder, strongest rung first:
#: the fitted closed-form surrogate tier, the vectorized lockstep engine,
#: the scalar fast path, and finally the frozen legacy reference engine
#: (slow but the most battle-tested numerics).  "legacy" is an execution
#: rung, not a selectable default engine, so it is not part of
#: :data:`ENGINES`.
DEGRADATION_LADDER = ("surrogate", "batch", "scalar", "legacy")

#: Environment variable consulted when no explicit engine is given.
ENGINE_ENV = "REPRO_ENGINE"

_default_engine: str | None = None


def default_engine() -> str:
    """The engine a run with no explicit ``engine=`` argument would consult.

    Pure read of the process-wide default / ``REPRO_ENGINE`` precedence
    chain — no ``"auto"`` resolution, no metrics side effects, no
    validation (an invalid environment value is returned verbatim and
    rejected later by :func:`resolve_engine`, exactly where it is
    consumed).  Result-cache keys fold this in so flipping the default
    between calls can never return a stale-keyed hit.
    """
    engine = _default_engine
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    return engine


def set_default_engine(engine: str | None) -> None:
    """Install a process-wide default engine (``None`` clears it).

    Sits between explicit ``engine=`` arguments and the ``REPRO_ENGINE``
    environment variable in precedence; the CLI's ``--engine`` flag is a
    thin wrapper around this.
    """
    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    _default_engine = engine


def resolve_engine(engine: str | None = None, n_items: int | None = None) -> str:
    """Resolve an engine request to ``"surrogate"``, ``"batch"`` or ``"scalar"``.

    Args:
        engine: explicit request, or None to consult the process default
            and then ``REPRO_ENGINE``.
        n_items: ensemble size, used to resolve ``"auto"`` (batching a
            single configuration has no lockstep to exploit).  ``None``
            leaves ``"auto"`` resolved toward ``"batch"``.

    Returns:
        ``"surrogate"``, ``"batch"`` or ``"scalar"``.  ``"auto"`` never
        resolves to ``"surrogate"``; the approximate tier must be asked
        for by name.
    """
    if engine is None:
        engine = _default_engine
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine == "auto":
        engine = "scalar" if (n_items is not None and n_items < 2) else "batch"
    obs_metrics.inc("repro_engine_selected_total", labels={"engine": engine})
    return engine


def degradation_rungs(start: str) -> tuple[str, ...]:
    """Per-instance recovery rungs at and below ``start``, strongest first.

    The surrogate and batch rungs only exist for *bulk* (whole-chunk)
    execution — the surrogate tier already degrades per-spec inside its
    own routing, and a single instance has no lockstep to exploit — so
    per-instance recovery after a failed chunk begins at the scalar fast
    path:

    >>> degradation_rungs("surrogate")
    ('scalar', 'legacy')
    >>> degradation_rungs("batch")
    ('scalar', 'legacy')
    >>> degradation_rungs("scalar")
    ('scalar', 'legacy')
    >>> degradation_rungs("legacy")
    ('legacy',)
    """
    if start not in DEGRADATION_LADDER:
        raise ValueError(
            f"unknown rung {start!r}; choose from {DEGRADATION_LADDER}"
        )
    rungs = DEGRADATION_LADDER[DEGRADATION_LADDER.index(start):]
    return tuple(r for r in rungs if r not in ("surrogate", "batch"))
