"""Golden-simulation harness, sweeps, metrics and Monte Carlo extensions."""

from .buffer_chain import (
    BufferChainSimulation,
    BufferChainSpec,
    build_buffer_chain,
    simulate_buffer_chain,
)
from .cmos_driver import CmosDriverBankSpec, CmosSimulation, build_cmos_driver_bank, simulate_cmos
from .driver_bank import DriverBankSpec, build_driver_bank
from .engine import ENGINES, resolve_engine, set_default_engine
from .metrics import (
    ErrorSummary,
    WaveformComparison,
    batch_peaks,
    batch_settling_times,
    compare_waveforms,
    percent_error,
    relative_error,
    settling_time,
)
from .montecarlo import (
    DeviceSpread,
    MonteCarloResult,
    ParameterSpread,
    peak_noise_distribution,
    transient_peak_distribution,
)
from .parallel import parallel_map, parallel_map_traced, resolve_workers
from .ramps import EffectiveRamp, crossing_time, extract_effective_ramp
from .simulate import (
    SsnSimulation,
    aggregate_telemetry,
    default_stop_time,
    default_time_step,
    simulate_many,
    simulate_ssn,
    simulate_ssn_cached,
)
from .sweeps import (
    SweepPoint,
    SweepResult,
    sweep,
    sweep_driver_count,
    sweep_ground_capacitance,
    sweep_rise_time,
)

__all__ = [
    "BufferChainSimulation",
    "BufferChainSpec",
    "CmosDriverBankSpec",
    "CmosSimulation",
    "DeviceSpread",
    "DriverBankSpec",
    "ENGINES",
    "EffectiveRamp",
    "ErrorSummary",
    "MonteCarloResult",
    "ParameterSpread",
    "SsnSimulation",
    "SweepPoint",
    "SweepResult",
    "WaveformComparison",
    "aggregate_telemetry",
    "batch_peaks",
    "batch_settling_times",
    "build_buffer_chain",
    "build_cmos_driver_bank",
    "build_driver_bank",
    "compare_waveforms",
    "crossing_time",
    "default_stop_time",
    "default_time_step",
    "extract_effective_ramp",
    "parallel_map",
    "parallel_map_traced",
    "peak_noise_distribution",
    "percent_error",
    "relative_error",
    "resolve_engine",
    "resolve_workers",
    "set_default_engine",
    "settling_time",
    "simulate_buffer_chain",
    "simulate_cmos",
    "simulate_many",
    "simulate_ssn",
    "simulate_ssn_cached",
    "sweep",
    "sweep_driver_count",
    "sweep_ground_capacitance",
    "sweep_rise_time",
    "transient_peak_distribution",
]
