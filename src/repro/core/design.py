"""SSN-aware design helpers — the paper's design implications, executable.

Section 3 of the paper closes with two observations: (i) for a fixed
process, the designer controls SSN only through Z = N*L*sr, and (ii) the
three factors are interchangeable.  This module turns those observations
into the questions an I/O designer actually asks:

* how many drivers may switch simultaneously under a noise budget?
* how slow must the inputs ramp for a given bank of drivers?
* how many ground pads does the package need?
* how should a wide bus be *skewed* (staggered) to meet the budget without
  slowing any individual driver?

All answers derive from Eqn (10) via :mod:`repro.core.figure`; the
pad-count answer is cross-checked against the full LC model of Section 4,
because adding pads lowers L but *raises* C and can push the network into
the under-damped region where the L-only estimate is optimistic.
"""

from __future__ import annotations

import dataclasses
import math

from .asdm import AsdmParameters
from .figure import circuit_figure, figure_for_noise_budget, peak_noise_from_figure
from .ssn_lc import LcSsnModel


def max_simultaneous_drivers(
    budget: float,
    params: AsdmParameters,
    inductance: float,
    vdd: float,
    rise_time: float,
) -> int:
    """Largest N whose Eqn (10) peak SSN stays within ``budget``.

    Returns 0 if even a single driver violates the budget.
    """
    slope = vdd / rise_time
    z_max = figure_for_noise_budget(budget, params, vdd)
    n = math.floor(z_max / (inductance * slope) * (1 + 1e-12))
    return max(n, 0)


def required_rise_time(
    budget: float,
    params: AsdmParameters,
    n_drivers: int,
    inductance: float,
    vdd: float,
) -> float:
    """Slowest-necessary input rise time for N drivers under a budget.

    The paper's second design implication: when N and L are fixed, slowing
    the inputs is the remaining SSN control knob.
    """
    if n_drivers <= 0:
        raise ValueError("n_drivers must be positive")
    z_max = figure_for_noise_budget(budget, params, vdd)
    slope_max = z_max / (n_drivers * inductance)
    return vdd / slope_max


@dataclasses.dataclass(frozen=True)
class PadCountRecommendation:
    """Result of :func:`required_ground_pads`.

    Attributes:
        pads: smallest pad count meeting the budget.
        inductance: resulting parallel ground inductance.
        capacitance: resulting total parasitic capacitance.
        peak_noise: LC-model peak SSN at that pad count.
        l_only_peak_noise: what the L-only model would have promised.
    """

    pads: int
    inductance: float
    capacitance: float
    peak_noise: float
    l_only_peak_noise: float


def required_ground_pads(
    budget: float,
    params: AsdmParameters,
    n_drivers: int,
    pin_inductance: float,
    pin_capacitance: float,
    vdd: float,
    rise_time: float,
    max_pads: int = 256,
) -> PadCountRecommendation:
    """Smallest number of ground pads meeting the noise budget.

    ``k`` pads in parallel give ``L = pin_inductance/k`` and
    ``C = k * pin_capacitance``.  The budget check uses the full LC model
    (Table 1): lowering L while raising C drives the network under-damped,
    where the first ringing peak — not the L-only boundary value — sets the
    maximum (paper Section 4 and Fig. 4).

    Raises:
        ValueError: if the budget cannot be met within ``max_pads``.
    """
    if budget <= 0:
        raise ValueError("noise budget must be positive")
    for pads in range(1, max_pads + 1):
        inductance = pin_inductance / pads
        capacitance = pin_capacitance * pads
        model = LcSsnModel(params, n_drivers, inductance, capacitance, vdd, rise_time)
        peak = model.peak_voltage()
        if peak <= budget:
            z = circuit_figure(n_drivers, inductance, vdd / rise_time)
            return PadCountRecommendation(
                pads=pads,
                inductance=inductance,
                capacitance=capacitance,
                peak_noise=peak,
                l_only_peak_noise=peak_noise_from_figure(z, params, vdd),
            )
    raise ValueError(
        f"budget {budget} V unreachable with up to {max_pads} ground pads "
        f"(N={n_drivers}, pin L={pin_inductance}, pin C={pin_capacitance})"
    )


@dataclasses.dataclass(frozen=True)
class SkewSchedule:
    """A staggered switching plan for a wide output bus.

    Attributes:
        group_size: drivers switching together in each group.
        group_offsets: start time of each group, seconds from bus launch.
        peak_noise: worst per-group Eqn (10) peak SSN.
        added_latency: launch-to-last-group-settled penalty in seconds.
    """

    group_size: int
    group_offsets: tuple[float, ...]
    peak_noise: float
    added_latency: float

    @property
    def groups(self) -> int:
        return len(self.group_offsets)


def skew_schedule(
    budget: float,
    params: AsdmParameters,
    n_total: int,
    inductance: float,
    vdd: float,
    rise_time: float,
) -> SkewSchedule:
    """Split an n_total-wide bus into sequential groups meeting the budget.

    The paper's reading of "reduce N": don't let all drivers switch
    simultaneously.  Groups are separated by one full rise time so their
    active windows never overlap, making the effective N the group size.

    Raises:
        ValueError: if even one driver per group violates the budget.
    """
    if n_total <= 0:
        raise ValueError("n_total must be positive")
    group_size = max_simultaneous_drivers(budget, params, inductance, vdd, rise_time)
    if group_size < 1:
        raise ValueError(
            f"budget {budget} V cannot be met even by a single driver; "
            "slow the inputs or reduce the ground inductance"
        )
    group_size = min(group_size, n_total)
    groups = math.ceil(n_total / group_size)
    offsets = tuple(i * rise_time for i in range(groups))
    z = circuit_figure(group_size, inductance, vdd / rise_time)
    return SkewSchedule(
        group_size=group_size,
        group_offsets=offsets,
        peak_noise=peak_noise_from_figure(z, params, vdd),
        added_latency=offsets[-1],
    )
