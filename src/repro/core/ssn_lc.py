"""SSN model with both parasitic inductance and capacitance (paper Section 4).

The ground bonding wires and pads contribute a parasitic capacitance C in
parallel with the internal ground node (a PGA package: L ~ 5 nH, C ~ 1 pF).
KCL/KVL at that node (Eqns 11-12),

    N*Id = i_L + C*dVn/dt,        Vn = L*di_L/dt,

combined with the ASDM current give the second-order ODE of Eqn (13):

    L*C*Vn'' + N*L*K*lambda*Vn' + Vn = N*L*K*sr = Vss .

With ``a = N*K*lambda/(2C)`` and ``w0 = 1/sqrt(LC)`` and initial conditions
``Vn(t0) = Vn'(t0) = 0`` (devices just turning on, inductor current zero),
the response during the active window ``tau in [0, te - t0]`` is:

* over-damped  (a > w0), roots s12 = -a +- sqrt(a^2 - w0^2):
      Vn = Vss * [1 + (s2*e^{s1 tau} - s1*e^{s2 tau}) / (s1 - s2)]     (Eqn 18)
* critically damped (a = w0):
      Vn = Vss * [1 - (1 + a*tau)*e^{-a tau}]                          (Eqn 20)
* under-damped (a < w0), w = sqrt(w0^2 - a^2):
      Vn = Vss * [1 - e^{-a tau} (cos(w tau) + (a/w) sin(w tau))]      (Eqn 22)

In the first two cases dVn/dt > 0 on the whole window, so the maximum is at
the window end.  Under-damped, dVn/dt = Vss*e^{-a tau}*(w0^2/w)*sin(w tau):
local maxima at ``tau = k*pi/w`` with strictly decreasing values, so the
global maximum is the *first peak*

      Vmax = Vss * (1 + e^{-a pi / w})                                 (Eqn 24)

provided it occurs inside the window, ``pi/w <= te - t0`` (Ineq. 26);
otherwise the maximum is the window-end value.  That yields the paper's
four-row Table 1, reproduced by :meth:`LcSsnModel.peak_voltage`.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from .asdm import AsdmParameters
from .damping import CRITICAL_BAND, DampingRegion


class Table1Case(enum.Enum):
    """The four maximum-SSN formulas of the paper's Table 1."""

    OVERDAMPED = "1: over-damped, boundary maximum"
    CRITICALLY_DAMPED = "2: critically damped, boundary maximum"
    UNDERDAMPED_FIRST_PEAK = "3a: under-damped, first ringing peak (Eqn 24)"
    UNDERDAMPED_BOUNDARY = "3b: under-damped, ramp ends before first peak"


class LcSsnModel:
    """Closed-form SSN estimate including the ground parasitic capacitance.

    Args:
        params: ASDM parameters of one driver's pull-down device.
        n_drivers: number of simultaneously switching drivers, N.
        inductance: ground parasitic inductance L in henries.
        capacitance: ground parasitic capacitance C in farads.
        vdd: supply voltage in volts.
        rise_time: input ramp time in seconds.
    """

    def __init__(
        self,
        params: AsdmParameters,
        n_drivers: int,
        inductance: float,
        capacitance: float,
        vdd: float,
        rise_time: float,
    ):
        if n_drivers <= 0:
            raise ValueError("n_drivers must be positive")
        if inductance <= 0 or capacitance <= 0:
            raise ValueError("inductance and capacitance must be positive")
        if rise_time <= 0:
            raise ValueError("rise_time must be positive")
        if vdd <= params.v0:
            raise ValueError(
                f"vdd={vdd} must exceed the ASDM offset V0={params.v0}"
            )
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.capacitance = capacitance
        self.vdd = vdd
        self.rise_time = rise_time

    # -- derived quantities ---------------------------------------------------------

    @property
    def slope(self) -> float:
        """Input ramp slope sr = VDD / tr."""
        return self.vdd / self.rise_time

    @property
    def turn_on_time(self) -> float:
        """t0 = V0 / sr."""
        return self.params.v0 / self.slope

    @property
    def ramp_end_time(self) -> float:
        return self.rise_time

    @property
    def window(self) -> float:
        """Active ramp window length te - t0 = (VDD - V0)/sr."""
        return (self.vdd - self.params.v0) / self.slope

    @property
    def decay_rate(self) -> float:
        """a = N*K*lambda/(2C) (Eqn 15's damping term)."""
        return self.n_drivers * self.params.k * self.params.lam / (2.0 * self.capacitance)

    @property
    def natural_frequency(self) -> float:
        """w0 = 1/sqrt(LC)."""
        return 1.0 / math.sqrt(self.inductance * self.capacitance)

    @property
    def damping_ratio(self) -> float:
        """zeta = a/w0."""
        return self.decay_rate / self.natural_frequency

    @property
    def asymptotic_voltage(self) -> float:
        """Vss = N*L*K*sr (particular solution of Eqn 13)."""
        return self.n_drivers * self.inductance * self.params.k * self.slope

    @property
    def ringing_frequency(self) -> float:
        """w = sqrt(w0^2 - a^2); only meaningful when under-damped."""
        a, w0 = self.decay_rate, self.natural_frequency
        if a >= w0:
            raise ValueError("ringing frequency is defined only in the under-damped region")
        return math.sqrt(w0 * w0 - a * a)

    @property
    def region(self) -> DampingRegion:
        zeta = self.damping_ratio
        if zeta > 1.0 + CRITICAL_BAND:
            return DampingRegion.OVERDAMPED
        if zeta < 1.0 - CRITICAL_BAND:
            return DampingRegion.UNDERDAMPED
        return DampingRegion.CRITICALLY_DAMPED

    @property
    def case(self) -> Table1Case:
        """Which of the four Table 1 formulas applies."""
        region = self.region
        if region is DampingRegion.OVERDAMPED:
            return Table1Case.OVERDAMPED
        if region is DampingRegion.CRITICALLY_DAMPED:
            return Table1Case.CRITICALLY_DAMPED
        if math.pi / self.ringing_frequency <= self.window:
            return Table1Case.UNDERDAMPED_FIRST_PEAK
        return Table1Case.UNDERDAMPED_BOUNDARY

    # -- waveform ---------------------------------------------------------------------

    def normalized_response(self, tau):
        """Normalized response Vn(tau)/Vss on tau >= 0 (analytic continuation).

        Unlike :meth:`voltage` this applies no validity-window masking; the
        damping-map experiment uses it to characterize the network itself.
        """
        a, w0 = self.decay_rate, self.natural_frequency
        region = self.region
        if region is DampingRegion.OVERDAMPED:
            b = math.sqrt(a * a - w0 * w0)
            s1, s2 = -a + b, -a - b
            return 1.0 + (s2 * np.exp(s1 * tau) - s1 * np.exp(s2 * tau)) / (s1 - s2)
        if region is DampingRegion.CRITICALLY_DAMPED:
            return 1.0 - (1.0 + a * tau) * np.exp(-a * tau)
        w = self.ringing_frequency
        return 1.0 - np.exp(-a * tau) * (np.cos(w * tau) + (a / w) * np.sin(w * tau))

    def voltage(self, t):
        """SSN voltage waveform (Eqns 18/20/22 by region).

        Zero before turn-on, NaN after the ramp ends (model validity
        window), scalar-in scalar-out.
        """
        t = np.asarray(t, dtype=float)
        tau = np.maximum(t - self.turn_on_time, 0.0)
        v = self.asymptotic_voltage * self.normalized_response(tau)
        v = np.where(t < self.turn_on_time, 0.0, v)
        v = np.where(t > self.ramp_end_time * (1 + 1e-12), np.nan, v)
        if v.ndim == 0:
            return float(v)
        return v

    def voltage_derivative(self, t):
        """dVn/dt; used to verify the positive-definiteness claims of Section 4."""
        t = np.asarray(t, dtype=float)
        tau = np.maximum(t - self.turn_on_time, 0.0)
        a, w0 = self.decay_rate, self.natural_frequency
        vss = self.asymptotic_voltage
        region = self.region
        if region is DampingRegion.OVERDAMPED:
            b = math.sqrt(a * a - w0 * w0)
            s1, s2 = -a + b, -a - b
            d = vss * (s1 * s2) * (np.exp(s1 * tau) - np.exp(s2 * tau)) / (s1 - s2)
        elif region is DampingRegion.CRITICALLY_DAMPED:
            d = vss * a * a * tau * np.exp(-a * tau)
        else:
            w = self.ringing_frequency
            d = vss * np.exp(-a * tau) * (w0 * w0 / w) * np.sin(w * tau)
        d = np.where(t < self.turn_on_time, 0.0, d)
        d = np.where(t > self.ramp_end_time * (1 + 1e-12), np.nan, d)
        if d.ndim == 0:
            return float(d)
        return d

    # -- peak -------------------------------------------------------------------------

    def first_peak_time(self) -> float:
        """tau of the first under-damped ringing peak: pi/w (Eqn 25)."""
        return math.pi / self.ringing_frequency

    def peak_voltage(self) -> float:
        """Maximum SSN voltage over the active window — paper Table 1."""
        case = self.case
        if case is Table1Case.UNDERDAMPED_FIRST_PEAK:
            a, w = self.decay_rate, self.ringing_frequency
            return self.asymptotic_voltage * (1.0 + math.exp(-a * math.pi / w))
        return self.asymptotic_voltage * float(self.normalized_response(self.window))

    def peak_time(self) -> float:
        """Instant of the maximum SSN voltage."""
        if self.case is Table1Case.UNDERDAMPED_FIRST_PEAK:
            return self.turn_on_time + self.first_peak_time()
        return self.ramp_end_time

    # -- post-ramp continuation (extension beyond the paper) ---------------------------

    def post_ramp_voltage(self, t):
        """SSN voltage for t >= te — an extension beyond the paper's model.

        After the ramp the gate holds at VDD, so the ASDM current loses its
        ``sr`` forcing and Eqn (13) becomes homogeneous:

            L*C*Vn'' + N*L*K*lambda*Vn' + Vn = 0

        with initial conditions taken from the closed-form solution at the
        window end.  The paper stops its derivation at ``te``; this
        continuation matters in case 3b (ramp ends before the first ringing
        peak), where the physical maximum occurs shortly *after* the ramp
        — see :meth:`peak_voltage_extended` and the EXPERIMENTS.md entry.
        """
        t = np.asarray(t, dtype=float)
        tau = t - self.ramp_end_time
        ve = self.asymptotic_voltage * float(self.normalized_response(self.window))
        vpe = float(self.voltage_derivative(self.ramp_end_time))
        a, w0 = self.decay_rate, self.natural_frequency
        region = self.region
        if region is DampingRegion.OVERDAMPED:
            b = math.sqrt(a * a - w0 * w0)
            s1, s2 = -a + b, -a - b
            c1 = (vpe - s2 * ve) / (s1 - s2)
            c2 = ve - c1
            v = c1 * np.exp(s1 * tau) + c2 * np.exp(s2 * tau)
        elif region is DampingRegion.CRITICALLY_DAMPED:
            v = (ve + (vpe + a * ve) * tau) * np.exp(-a * tau)
        else:
            w = self.ringing_frequency
            v = np.exp(-a * tau) * (
                ve * np.cos(w * tau) + ((vpe + a * ve) / w) * np.sin(w * tau)
            )
        v = np.where(tau < 0.0, np.nan, v)
        if v.ndim == 0:
            return float(v)
        return v

    def peak_voltage_extended(self, horizon_periods: float = 3.0) -> float:
        """Global maximum including the post-ramp tail (extension).

        Returns max(Table 1 window maximum, post-ramp continuation peak).
        The continuation peak is located numerically on a dense grid over a
        few natural periods past ``te`` — more than enough, since every
        mode decays at rate ``a``.
        """
        horizon = horizon_periods * 2.0 * math.pi / self.natural_frequency
        tail_t = self.ramp_end_time + np.linspace(0.0, horizon, 4000)
        tail_max = float(np.max(self.post_ramp_voltage(tail_t)))
        return max(self.peak_voltage(), tail_max)
