"""Application-specific device model (ASDM) — paper Section 2, Eqn (3).

For SSN estimation only one bias family matters: the driver's pull-down
NFET with its drain held high (the output pad has a large load and stays
near VDD while the input rises) and its source *and bulk* riding on the
bouncing internal ground node.  In that region the drain current of a
short-channel device is, empirically, linear in both the gate and source
voltages:

    Id(Vg, Vs) = K * (Vg - V0 - lambda * Vs),    clamped at zero      (Eqn 3)

* ``K``      [A/V]  — transconductance slope of the Id-Vg curves.
* ``V0``     [V]    — *effective* turn-on offset.  Not the threshold
  voltage: the paper stresses V0 = 0.61 V for a 0.18 um NFET whose Vth is
  about 0.5 V.  It is whatever intercept makes the linear model match the
  strongly-on region, where all the SSN current lives.
* ``lambda`` [-]    — source sensitivity; > 1 in real processes because
  raising the source both reduces Vgs one-for-one and raises the threshold
  through the body effect.

Trading generality for this single region is what yields closed-form SSN
solutions with *no further approximation* — the paper's central move.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..devices.base import MosfetModel, ensure_arrays


@dataclasses.dataclass(frozen=True)
class AsdmParameters:
    """Fitted parameters of the ASDM linear drain-current model.

    Attributes:
        k: transconductance slope in A/V (per device, absorbs width).
        v0: effective turn-on offset voltage in volts.
        lam: source-voltage sensitivity (dimensionless, > 1 physically).
    """

    k: float
    v0: float
    lam: float

    def __post_init__(self):
        if self.k <= 0:
            raise ValueError(f"ASDM slope K must be positive, got {self.k}")
        if self.lam <= 0:
            raise ValueError(f"ASDM lambda must be positive, got {self.lam}")
        if self.v0 < 0:
            raise ValueError(f"ASDM offset V0 must be non-negative, got {self.v0}")

    def scaled(self, factor: float) -> "AsdmParameters":
        """Parameters of ``factor`` parallel copies of this device.

        K scales with width; V0 and lambda are width-independent.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return dataclasses.replace(self, k=self.k * factor)

    def drain_current(self, vg, vs=0.0):
        """Eqn (3) with the cutoff clamp; accepts scalars or arrays."""
        vg, vs = ensure_arrays(vg, vs)
        out = self.k * np.maximum(vg - self.v0 - self.lam * vs, 0.0)
        if out.ndim == 0:
            return float(out)
        return out

    def turn_on_gate_voltage(self, vs=0.0):
        """Gate voltage where the model starts conducting: V0 + lambda*Vs."""
        return self.v0 + self.lam * np.asarray(vs, dtype=float)


class AsdmMosfet(MosfetModel):
    """ASDM wrapped in the common device interface.

    Eqn (3) is written in *absolute* gate and source voltages for a device
    whose drain sits at the rail: ``Id = K*(Vg - V0 - lambda*Vs)``.  A
    terminal-wise device model only sees differences, but in the intended
    application ``Vs = vdd - vds``, so the source voltage is recoverable
    given the drain rail.  Substituting:

        Id = K * (vgs - V0 - (lambda - 1) * (vdd - vds))

    which is exact whenever the drain is at ``vdd`` (the ASDM validity
    region) and degrades gracefully nearby.  Exposing this as a
    :class:`MosfetModel` lets the circuit simulator run ablations with the
    paper's model in the loop.
    """

    name = "asdm"

    def __init__(self, params: AsdmParameters, vdd: float):
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        self.params = params
        self.vdd = vdd

    def ids(self, vgs, vds, vbs=0.0):
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        p = self.params
        vs_est = np.maximum(self.vdd - vds, 0.0)
        on = p.k * np.maximum(vgs - p.v0 - (p.lam - 1.0) * vs_est, 0.0)
        out = np.where(vds > 0.0, on, 0.0)
        if out.ndim == 0:
            return float(out)
        return out
