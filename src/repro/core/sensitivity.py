"""Closed-form sensitivities of the maximum SSN voltage (extension).

Because Eqn (10) is analytic,

    Vmax = K*Z * (1 - e^{-u}),     u = (VDD - V0)/(lambda*K*Z),

its partial derivatives are one differentiation away — no finite
differences, no re-simulation.  With ``E = e^{-u}``:

    dV/dZ   = K * (1 - E - u*E)                (K and Z enter symmetrically)
    dV/dK   = Z * (1 - E - u*E)
    dV/dlam = -K*Z * u * E / lambda
    dV/dV0  = -E / lambda
    dV/dVDD = +E / lambda

and the chain rule maps dV/dZ onto the physical knobs N, L, sr
(``Z = N*L*sr``).  Uses: gradient-based design trade-offs, first-order
variance propagation (cross-checked against the Monte Carlo module in the
tests), and the elasticity view (percent change of Vmax per percent change
of a knob) that makes the paper's "N, L and sr are interchangeable"
statement exact: their elasticities are identical.

Convention: Z is treated as independent of VDD (``dV/dVDD`` holds the
slope sr fixed).  If your sr is defined as VDD/tr, add the corresponding
dV/dZ * dZ/dVDD term yourself.
"""

from __future__ import annotations

import dataclasses
import math

from .asdm import AsdmParameters
from .figure import circuit_figure, peak_noise_from_figure


@dataclasses.dataclass(frozen=True)
class PeakSensitivities:
    """Partial derivatives of Vmax at one operating point.

    Attributes:
        vmax: the peak SSN voltage itself, volts.
        d_z: dVmax/dZ in V per (V*H/s... i.e. per unit of Z).
        d_k: dVmax/dK in V per (A/V).
        d_lam: dVmax/dlambda in volts.
        d_v0: dVmax/dV0 (dimensionless).
        d_vdd: dVmax/dVDD at fixed slope (dimensionless).
        d_n: dVmax/dN in volts per driver (real-valued N).
        d_l: dVmax/dL in V/H.
        d_slope: dVmax/dsr in V/(V/s).
    """

    vmax: float
    d_z: float
    d_k: float
    d_lam: float
    d_v0: float
    d_vdd: float
    d_n: float
    d_l: float
    d_slope: float

    def elasticity(self, knob: str) -> float:
        """d ln(Vmax) / d ln(knob): percent response per percent change.

        Knobs: "z", "k", "lam", "n", "l", "slope" (multiplicative knobs
        only; V0 and VDD are offsets, not scales).
        """
        pairs = {
            "z": self.d_z * self._z,
            "k": self.d_k * self._k,
            "lam": self.d_lam * self._lam,
            "n": self.d_n * self._n,
            "l": self.d_l * self._l,
            "slope": self.d_slope * self._slope,
        }
        if knob not in pairs:
            raise KeyError(f"unknown knob {knob!r}; choose from {sorted(pairs)}")
        return pairs[knob] / self.vmax

    # Filled by the constructor function below (operating-point values).
    _z: float = 0.0
    _k: float = 0.0
    _lam: float = 0.0
    _n: float = 0.0
    _l: float = 0.0
    _slope: float = 0.0


def peak_sensitivities(
    params: AsdmParameters,
    n_drivers: float,
    inductance: float,
    vdd: float,
    rise_time: float,
) -> PeakSensitivities:
    """Analytic sensitivities of Eqn (10) at one configuration.

    Args:
        params: fitted ASDM parameters.
        n_drivers: driver count (real-valued for derivative purposes).
        inductance: ground inductance in henries.
        vdd: supply voltage in volts.
        rise_time: input rise time in seconds.

    Returns:
        All partials plus the operating-point context for elasticities.
    """
    slope = vdd / rise_time
    z = circuit_figure(n_drivers, inductance, slope)
    k, lam, v0 = params.k, params.lam, params.v0
    c = vdd - v0
    if c <= 0:
        raise ValueError("vdd must exceed the ASDM offset V0")

    u = c / (lam * k * z)
    e = math.exp(-u)
    vmax = peak_noise_from_figure(z, params, vdd)

    core = 1.0 - e - u * e  # shared factor of the K/Z derivatives
    d_z = k * core
    d_k = z * core
    d_lam = -k * z * u * e / lam
    d_v0 = -e / lam
    d_vdd = e / lam

    return PeakSensitivities(
        vmax=vmax,
        d_z=d_z,
        d_k=d_k,
        d_lam=d_lam,
        d_v0=d_v0,
        d_vdd=d_vdd,
        d_n=d_z * inductance * slope,
        d_l=d_z * n_drivers * slope,
        d_slope=d_z * n_drivers * inductance,
        _z=z,
        _k=k,
        _lam=lam,
        _n=float(n_drivers),
        _l=inductance,
        _slope=slope,
    )


def linear_noise_spread(
    sensitivities: PeakSensitivities,
    k_sigma_rel: float,
    v0_sigma: float,
    lam_sigma: float,
) -> float:
    """First-order standard deviation of Vmax under parameter spread.

    Propagates independent Gaussian parameter variations through the
    analytic gradient — the cheap alternative to Monte Carlo, accurate in
    the small-spread regime (verified against
    :func:`repro.analysis.montecarlo.peak_noise_distribution` in tests).

    Args:
        sensitivities: output of :func:`peak_sensitivities`.
        k_sigma_rel: relative (1-sigma) spread of K.
        v0_sigma: absolute spread of V0 in volts.
        lam_sigma: absolute spread of lambda.

    Returns:
        Standard deviation of the peak SSN voltage in volts.
    """
    s = sensitivities
    var = (
        (s.d_k * s._k * k_sigma_rel) ** 2
        + (s.d_v0 * v0_sigma) ** 2
        + (s.d_lam * lam_sigma) ** 2
    )
    return math.sqrt(var)
