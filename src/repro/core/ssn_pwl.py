"""Closed-form SSN under an arbitrary piecewise-linear gate drive (extension).

The paper solves the inductance-only SSN equation for an ideal ramp.  The
same ASDM linearity solves it for *any* piecewise-linear gate waveform:
on a segment with slope ``s_i`` the ODE

    tau * dVn/dt + Vn = N*L*K*s_i,      tau = N*L*K*lambda

is the familiar first-order equation with a segment-local asymptote
``Vss_i = N*L*K*s_i``, so

    Vn(t) = Vss_i + (Vn(t_i) - Vss_i) * exp(-(t - t_i)/tau)

with continuity at the knots.  Within each segment Vn moves monotonically
toward ``Vss_i``, so the global maximum lies at a knot — peak evaluation
stays exact and O(#segments).

This closes the gap exposed by the tapered pre-driver experiment (E13):
real driver gates are not linear ramps, and bridging them with an
"effective" ramp leaves 15-25% error; feeding the measured waveform into
this model recovers the paper-level accuracy.  A flat tail (slope 0 after
the edge settles) also yields the post-ramp decay for free.

Assumptions carried over from the paper: drains stay high (ASDM validity)
and the devices stay on once the gate passes the turn-on point — valid for
the monotone rising edges this is used on; a violation of the on-state
assumption (Vn overtaking the overdrive) is detected and reported.
"""

from __future__ import annotations

import math

import numpy as np

from .asdm import AsdmParameters


class PwlDriveSsnModel:
    """Inductance-only SSN for N drivers under a piecewise-linear gate drive.

    Args:
        params: ASDM parameters of one driver.
        n_drivers: simultaneously switching drivers.
        inductance: ground inductance in henries.
        gate_times: knot times of the gate waveform, strictly increasing.
        gate_voltages: gate voltages at the knots (monotone rising edges
            are the intended use; the first knot should precede turn-on).
    """

    def __init__(self, params: AsdmParameters, n_drivers: int, inductance: float,
                 gate_times, gate_voltages):
        if n_drivers <= 0 or inductance <= 0:
            raise ValueError("n_drivers and inductance must be positive")
        t = np.asarray(gate_times, dtype=float)
        v = np.asarray(gate_voltages, dtype=float)
        if t.ndim != 1 or t.shape != v.shape or len(t) < 2:
            raise ValueError("gate waveform needs matching 1-D arrays of >= 2 knots")
        if np.any(np.diff(t) <= 0):
            raise ValueError("gate knot times must be strictly increasing")
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self._gate_t = t
        self._gate_v = v
        self._solve()

    # -- construction ------------------------------------------------------------

    def _turn_on_time(self) -> float:
        """First crossing of the gate through V0 (Vn = 0 before turn-on)."""
        v0 = self.params.v0
        above = np.flatnonzero(self._gate_v >= v0)
        if len(above) == 0:
            raise ValueError(
                f"gate waveform never reaches the ASDM turn-on voltage {v0:.3g} V"
            )
        i = int(above[0])
        if i == 0:
            return float(self._gate_t[0])
        t0, t1 = self._gate_t[i - 1], self._gate_t[i]
        y0, y1 = self._gate_v[i - 1], self._gate_v[i]
        return float(t0 + (v0 - y0) * (t1 - t0) / (y1 - y0))

    def _solve(self) -> None:
        """Precompute per-segment (t_start, vn_start, vss) triples."""
        k, lam = self.params.k, self.params.lam
        nl = self.n_drivers * self.inductance
        self.time_constant = nl * k * lam

        t_on = self._turn_on_time()
        knots = [t_on] + [float(t) for t in self._gate_t if t > t_on]
        starts, vn_starts, asymptotes = [], [], []
        vn = 0.0
        for t_start, t_end in zip(knots, knots[1:]):
            mid = 0.5 * (t_start + t_end)
            slope = self._gate_slope(mid)
            vss = nl * k * slope
            starts.append(t_start)
            vn_starts.append(vn)
            asymptotes.append(vss)
            vn = vss + (vn - vss) * math.exp(-(t_end - t_start) / self.time_constant)
        # Final segment: gate flat (or whatever the last slope is) forever.
        starts.append(knots[-1])
        vn_starts.append(vn)
        asymptotes.append(nl * k * self._gate_slope(knots[-1] + 1e-30))

        self.turn_on_time = t_on
        self._seg_start = np.array(starts)
        self._seg_vn = np.array(vn_starts)
        self._seg_vss = np.array(asymptotes)

    def _gate_slope(self, t: float) -> float:
        """Slope of the gate waveform at time t (0 outside the knots)."""
        if t <= self._gate_t[0] or t >= self._gate_t[-1]:
            return 0.0
        i = int(np.searchsorted(self._gate_t, t) - 1)
        dt = self._gate_t[i + 1] - self._gate_t[i]
        return float((self._gate_v[i + 1] - self._gate_v[i]) / dt)

    # -- evaluation ---------------------------------------------------------------

    def voltage(self, t):
        """SSN voltage at time(s) t; zero before turn-on.

        Queries past the last knot clamp to the final (flat-tail) segment,
        whose exponential decay extends to t = +inf by construction; the
        segment index is bounded on *both* ends so no query can index out
        of range or land on a nonexistent segment.
        """
        t = np.asarray(t, dtype=float)
        idx = np.clip(
            np.searchsorted(self._seg_start, t, side="right") - 1,
            0, len(self._seg_start) - 1,
        )
        vss = self._seg_vss[idx]
        vn0 = self._seg_vn[idx]
        t0 = self._seg_start[idx]
        v = vss + (vn0 - vss) * np.exp(-np.maximum(t - t0, 0.0) / self.time_constant)
        v = np.where(t < self.turn_on_time, 0.0, v)
        if v.ndim == 0:
            return float(v)
        return v

    def peak_voltage(self) -> float:
        """Global maximum SSN voltage.

        Within each segment Vn relaxes monotonically toward the segment
        asymptote, so the maximum is attained at a knot.
        """
        return float(np.max(self._seg_vn))

    def peak_time(self) -> float:
        """Time of the maximum (the knot attaining it)."""
        return float(self._seg_start[int(np.argmax(self._seg_vn))])

    def on_state_violated(self, vdd: float) -> bool:
        """True if the always-on assumption breaks somewhere.

        Checks at the knots whether the ASDM overdrive
        ``Vg - V0 - lambda*Vn`` ever goes negative while the gate is high.
        """
        gate_at_knots = np.interp(self._seg_start, self._gate_t, self._gate_v)
        overdrive = gate_at_knots - self.params.v0 - self.params.lam * self._seg_vn
        past_turn_on = self._seg_start >= self.turn_on_time
        return bool(np.any(overdrive[past_turn_on] < -1e-9 * vdd))
