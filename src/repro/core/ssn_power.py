"""Power-rail (VDD droop) SSN by duality — the paper's Section 2 aside.

"The SSN at the power-supply node can be analyzed similarly."  The dual
problem: a *falling* input turns the PMOS pull-ups on, which charge the
output loads through the VDD-path inductance, sagging the internal supply
rail.  Mirror every voltage about the rails (u = VDD - Vg is the effective
rising gate drive, Vd = VDD - Vrail the droop) and the PMOS drain current
in its SSN region takes exactly the ASDM form

    |Id| = Kp * (u - V0p - lambda_p * Vd)

so the ground-bounce mathematics of Sections 3-4 applies verbatim with
PMOS-fitted parameters.  This module provides:

* :func:`pmos_asdm_surface` / the fit path — characterize a pull-up by
  sweeping its mirrored (NMOS-equivalent) device, so :func:`fit_asdm`
  works unchanged;
* :class:`PowerRailSsnModel` — droop waveform and peak via the existing
  L-only / LC machinery, renamed into rail language.

The duality is validated against the full two-rail CMOS golden simulation
in the power-rail experiment.
"""

from __future__ import annotations

from ..devices.pmos import ComplementaryMosfet
from ..devices.sweep import IvSurface, sweep_id_vg
from .asdm import AsdmParameters
from .fitting import FitReport, fit_asdm
from .ssn_inductive import InductiveSsnModel
from .ssn_lc import LcSsnModel


def pmos_asdm_surface(pullup: ComplementaryMosfet, vdd: float) -> IvSurface:
    """IV surface of a pull-up in mirrored (magnitude) coordinates.

    Sweeping the inner NMOS-equivalent device with its drain at VDD is
    exactly the pull-up biased with its source on the (drooping) rail and
    its drain on the still-low output — the PMOS SSN region.
    """
    return sweep_id_vg(pullup.inner, vdd)


def fit_pmos_asdm(
    pullup: ComplementaryMosfet, vdd: float, floor_fraction: float = 0.05
) -> tuple[AsdmParameters, FitReport]:
    """Extract ASDM parameters of a pull-up device (magnitude space).

    The returned ``v0`` is the offset below VDD at which the pull-up
    starts conducting; ``k`` and ``lam`` read as for the NMOS case.
    """
    return fit_asdm(pmos_asdm_surface(pullup, vdd), floor_fraction=floor_fraction)


class PowerRailSsnModel:
    """VDD-droop estimate for N pull-ups switching on a falling input.

    A thin duality wrapper: internally this is the ground-bounce model
    evaluated with PMOS-fitted parameters; externally it speaks in rail
    droop and absolute rail voltage.

    Args:
        params: PMOS ASDM parameters from :func:`fit_pmos_asdm`.
        n_drivers: simultaneously switching drivers.
        inductance: VDD-path parasitic inductance in henries.
        vdd: nominal supply in volts.
        fall_time: input falling-ramp duration in seconds.
        capacitance: VDD-path parasitic capacitance in farads, or None for
            the inductance-only model.
    """

    def __init__(
        self,
        params: AsdmParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        fall_time: float,
        capacitance: float | None = None,
    ):
        self.vdd = vdd
        if capacitance is None:
            self._mirror = InductiveSsnModel(params, n_drivers, inductance, vdd, fall_time)
        else:
            self._mirror = LcSsnModel(
                params, n_drivers, inductance, capacitance, vdd, fall_time
            )

    @property
    def mirror(self):
        """The underlying ground-bounce model in mirrored coordinates."""
        return self._mirror

    def droop(self, t):
        """Rail droop below VDD (volts, positive = sagging)."""
        return self._mirror.voltage(t)

    def rail_voltage(self, t):
        """Absolute internal-rail voltage VDD - droop."""
        return self.vdd - self._mirror.voltage(t)

    def peak_droop(self) -> float:
        """Maximum rail droop (Eqn 7 or Table 1, mirrored)."""
        return self._mirror.peak_voltage()

    def peak_time(self) -> float:
        """Instant of the maximum droop."""
        return self._mirror.peak_time()
