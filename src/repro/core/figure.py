"""The circuit-oriented figure Z = N * L * sr (paper Eqns 9-10).

Rewriting the maximum-SSN formula of Eqn (7) in terms of

    Z = N * L * sr

gives (Eqn 10)

    Vmax(Z) = K*Z * (1 - exp(-(VDD - V0) / (lambda*K*Z)))

so the entire circuit-design freedom collapses into the single product Z:
halving the driver count, halving the ground inductance or halving the
input slope are *equivalent* SSN countermeasures.  This module makes that
observation executable: evaluate Vmax(Z), invert it, and trade the three
factors against each other.
"""

from __future__ import annotations

import math

from .asdm import AsdmParameters


def circuit_figure(n_drivers: float, inductance: float, slope: float) -> float:
    """Z = N * L * sr in volt-henry/second (equivalently V*H/s)."""
    if n_drivers <= 0 or inductance <= 0 or slope <= 0:
        raise ValueError("n_drivers, inductance and slope must all be positive")
    return n_drivers * inductance * slope


def peak_noise_from_figure(z: float, params: AsdmParameters, vdd: float) -> float:
    """Eqn (10): maximum SSN voltage as a function of Z alone."""
    if z <= 0:
        raise ValueError("circuit figure Z must be positive")
    if vdd <= params.v0:
        raise ValueError("vdd must exceed the ASDM offset V0")
    kz = params.k * z
    return kz * -math.expm1(-(vdd - params.v0) / (params.lam * kz))


def figure_for_noise_budget(budget: float, params: AsdmParameters, vdd: float) -> float:
    """Largest Z whose Eqn (10) peak noise stays within ``budget``.

    Vmax(Z) increases monotonically in Z and saturates at
    ``(VDD - V0)/lambda``; budgets at or above that bound are unreachable
    by any finite Z and raise ValueError.

    scipy is imported here, not at module scope, so ``import repro.core``
    stays runnable on a numpy-only interpreter (the PEP 562 soft-dep
    contract); only this root solve needs ``brentq``.
    """
    from scipy import optimize

    if budget <= 0:
        raise ValueError("noise budget must be positive")
    supremum = (vdd - params.v0) / params.lam
    if budget >= supremum:
        raise ValueError(
            f"budget {budget} V is never exceeded: Vmax saturates at "
            f"(VDD - V0)/lambda = {supremum:.4g} V"
        )

    def excess(log_z: float) -> float:
        return peak_noise_from_figure(math.exp(log_z), params, vdd) - budget

    # Bracket in log-space: small Z -> Vmax ~ K*Z -> below budget.
    lo = math.log(budget / params.k) - 30.0
    hi = math.log(budget / params.k) + 60.0
    return math.exp(optimize.brentq(excess, lo, hi, xtol=1e-12, rtol=1e-12))


def equivalent_driver_count(z: float, inductance: float, slope: float) -> float:
    """N achieving the figure Z at the given L and sr (real-valued)."""
    if z <= 0 or inductance <= 0 or slope <= 0:
        raise ValueError("all arguments must be positive")
    return z / (inductance * slope)


def equivalent_inductance(z: float, n_drivers: float, slope: float) -> float:
    """L achieving the figure Z at the given N and sr."""
    if z <= 0 or n_drivers <= 0 or slope <= 0:
        raise ValueError("all arguments must be positive")
    return z / (n_drivers * slope)


def equivalent_slope(z: float, n_drivers: float, inductance: float) -> float:
    """sr achieving the figure Z at the given N and L."""
    if z <= 0 or n_drivers <= 0 or inductance <= 0:
        raise ValueError("all arguments must be positive")
    return z / (n_drivers * inductance)
