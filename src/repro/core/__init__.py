"""The paper's contribution: ASDM device modeling and closed-form SSN estimation.

Typical flow::

    from repro.core import fit_asdm, InductiveSsnModel, LcSsnModel
    from repro.devices import sweep_id_vg
    from repro.process import TSMC018

    surface = sweep_id_vg(TSMC018.driver_device(), TSMC018.vdd)
    params, report = fit_asdm(surface)
    model = LcSsnModel(params, n_drivers=8, inductance=5e-9,
                       capacitance=1e-12, vdd=TSMC018.vdd, rise_time=0.1e-9)
    print(model.case, model.peak_voltage())
"""

from .asdm import AsdmMosfet, AsdmParameters
from .damping import (
    DampingRegion,
    classify,
    critical_capacitance,
    critical_driver_count,
    damping_ratio,
    decay_rate,
    natural_frequency,
)
from .design import (
    PadCountRecommendation,
    SkewSchedule,
    max_simultaneous_drivers,
    required_ground_pads,
    required_rise_time,
    skew_schedule,
)
from .figure import (
    circuit_figure,
    equivalent_driver_count,
    equivalent_inductance,
    equivalent_slope,
    figure_for_noise_budget,
    peak_noise_from_figure,
)
from .fitting import (
    AlphaPowerSsnParameters,
    FitReport,
    SquareLawSsnParameters,
    fit_alpha_power,
    fit_asdm,
    fit_square_law,
)
from .ssn_inductive import InductiveSsnModel
from .ssn_lc import LcSsnModel, Table1Case
from .ssn_power import PowerRailSsnModel, fit_pmos_asdm, pmos_asdm_surface
from .sensitivity import PeakSensitivities, linear_noise_spread, peak_sensitivities
from .ssn_pwl import PwlDriveSsnModel

__all__ = [
    "AlphaPowerSsnParameters",
    "AsdmMosfet",
    "AsdmParameters",
    "DampingRegion",
    "FitReport",
    "InductiveSsnModel",
    "LcSsnModel",
    "PadCountRecommendation",
    "PeakSensitivities",
    "PowerRailSsnModel",
    "PwlDriveSsnModel",
    "SkewSchedule",
    "SquareLawSsnParameters",
    "Table1Case",
    "circuit_figure",
    "classify",
    "critical_capacitance",
    "critical_driver_count",
    "damping_ratio",
    "decay_rate",
    "equivalent_driver_count",
    "equivalent_inductance",
    "equivalent_slope",
    "figure_for_noise_budget",
    "fit_alpha_power",
    "fit_asdm",
    "fit_pmos_asdm",
    "fit_square_law",
    "max_simultaneous_drivers",
    "natural_frequency",
    "linear_noise_spread",
    "peak_noise_from_figure",
    "peak_sensitivities",
    "pmos_asdm_surface",
    "required_ground_pads",
    "required_rise_time",
    "skew_schedule",
]
