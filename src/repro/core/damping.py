"""Damping-region arithmetic for the LC ground network (paper Section 4).

With the parasitic capacitance C included, the SSN node obeys the
second-order ODE of Eqn (13); its character is set by

    a   = N*K*lambda / (2*C)        (decay rate, 1/s)
    w0  = 1 / sqrt(L*C)             (undamped natural frequency, rad/s)
    zeta = a / w0 = (N*K*lambda/2) * sqrt(L/C)

The paper's Eqn (27) gives the boundary as a *critical capacitance*

    C_crit = (N*K*lambda)^2 * L / 4

under-damped for C > C_crit.  C_crit grows like N^2, hence the paper's
observation that systems with few simultaneous switchers ring while heavily
loaded ground rails are over-damped.
"""

from __future__ import annotations

import enum
import math

from .asdm import AsdmParameters

#: Relative half-width of the band around zeta = 1 treated as critical.
CRITICAL_BAND = 1e-9


class DampingRegion(enum.Enum):
    """The three characters of the second-order SSN response."""

    OVERDAMPED = "over-damped"
    CRITICALLY_DAMPED = "critically damped"
    UNDERDAMPED = "under-damped"


def decay_rate(params: AsdmParameters, n_drivers: int, capacitance: float) -> float:
    """``a = N*K*lambda / (2C)`` in 1/s."""
    _check(n_drivers, capacitance=capacitance)
    return n_drivers * params.k * params.lam / (2.0 * capacitance)


def natural_frequency(inductance: float, capacitance: float) -> float:
    """``w0 = 1/sqrt(LC)`` in rad/s."""
    _check(1, inductance=inductance, capacitance=capacitance)
    return 1.0 / math.sqrt(inductance * capacitance)


def damping_ratio(
    params: AsdmParameters, n_drivers: int, inductance: float, capacitance: float
) -> float:
    """``zeta = (N*K*lambda/2) * sqrt(L/C)``; 1 at the critical boundary."""
    _check(n_drivers, inductance=inductance, capacitance=capacitance)
    return 0.5 * n_drivers * params.k * params.lam * math.sqrt(inductance / capacitance)


def classify(
    params: AsdmParameters,
    n_drivers: int,
    inductance: float,
    capacitance: float,
    band: float = CRITICAL_BAND,
) -> DampingRegion:
    """Damping region of the configuration (Table 1 case conditions 1-3)."""
    zeta = damping_ratio(params, n_drivers, inductance, capacitance)
    if zeta > 1.0 + band:
        return DampingRegion.OVERDAMPED
    if zeta < 1.0 - band:
        return DampingRegion.UNDERDAMPED
    return DampingRegion.CRITICALLY_DAMPED


def critical_capacitance(params: AsdmParameters, n_drivers: int, inductance: float) -> float:
    """Eqn (27): ``C_crit = (N*K*lambda)^2 * L / 4``.

    The ground network is under-damped when its parasitic capacitance
    exceeds this value.
    """
    _check(n_drivers, inductance=inductance)
    return (n_drivers * params.k * params.lam) ** 2 * inductance / 4.0


def critical_driver_count(params: AsdmParameters, inductance: float, capacitance: float) -> float:
    """The (real-valued) N at which the configuration is critically damped.

    Configurations with fewer simultaneous switchers than this are
    under-damped; the paper highlights this inverse N^2 relationship.
    """
    _check(1, inductance=inductance, capacitance=capacitance)
    return 2.0 * math.sqrt(capacitance / inductance) / (params.k * params.lam)


def _check(n_drivers: int, inductance: float | None = None, capacitance: float | None = None):
    if n_drivers <= 0:
        raise ValueError("number of drivers must be positive")
    if inductance is not None and inductance <= 0:
        raise ValueError("inductance must be positive")
    if capacitance is not None and capacitance <= 0:
        raise ValueError("capacitance must be positive")
