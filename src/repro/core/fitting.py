"""Model parameter extraction from simulated IV data (paper Fig. 1).

The paper fits its ASDM model to BSIM3-simulated ``Id(Vg; Vs)`` curves with
the drain held at VDD.  We do the same against the golden device:

* :func:`fit_asdm` — linear least squares for (K, V0, lambda).  Eqn (3) is
  linear in its parameters once written as ``Id = a*Vg + b*Vs + c`` with
  ``K = a``, ``lambda = -b/a``, ``V0 = -c/a``.
* :func:`fit_alpha_power` — nonlinear fit of the Sakurai-Newton saturation
  law ``Id = B*(Vg - Vth)^alpha`` (substrate for the Vemuru/Song/Jou
  baselines, which all start from the alpha-power model).
* :func:`fit_square_law` — classic ``sqrt(Id)`` extraction (substrate for
  the Senthinathan & Prince baseline).

All fits exclude the near-threshold tail: the paper argues (and we verify
in tests) that the weak-inversion region carries negligible SSN current, so
models are judged only where the drivers actually conduct.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..devices.sweep import IvSurface
from .asdm import AsdmParameters


@dataclasses.dataclass(frozen=True)
class FitReport:
    """Quality of a model fit over the retained (strongly-on) points.

    Attributes:
        rms_error: RMS absolute current error in amperes.
        max_abs_error: worst absolute current error in amperes.
        max_relative_error: worst |error| / max(Id) over retained points.
        n_points: number of IV samples used in the fit.
    """

    rms_error: float
    max_abs_error: float
    max_relative_error: float
    n_points: int


@dataclasses.dataclass(frozen=True)
class AlphaPowerSsnParameters:
    """Alpha-power saturation law of one whole driver (width absorbed).

    Attributes:
        b: drive coefficient in A/V^alpha (total, not per meter).
        vth: extracted threshold voltage in volts.
        alpha: velocity-saturation index.
    """

    b: float
    vth: float
    alpha: float

    def saturation_current(self, vgs):
        """``Id = b * (vgs - vth)^alpha`` clamped at zero."""
        vov = np.maximum(np.asarray(vgs, dtype=float) - self.vth, 0.0)
        return self.b * np.power(vov, self.alpha)

    def transconductance(self, vgs):
        """dId/dVgs of the saturation law."""
        vov = np.maximum(np.asarray(vgs, dtype=float) - self.vth, 1e-12)
        return self.alpha * self.b * np.power(vov, self.alpha - 1.0)


@dataclasses.dataclass(frozen=True)
class SquareLawSsnParameters:
    """Square-law saturation model of one whole driver.

    Attributes:
        beta: total transconductance factor in A/V^2 (``Id = beta/2*(Vgs-Vth)^2``).
        vth: extracted threshold voltage in volts.
    """

    beta: float
    vth: float

    def saturation_current(self, vgs):
        vov = np.maximum(np.asarray(vgs, dtype=float) - self.vth, 0.0)
        return 0.5 * self.beta * np.square(vov)


def _retained(surface: IvSurface, floor_fraction: float):
    """Flattened (vg, vs, id) restricted to currents above the floor."""
    if not 0.0 < floor_fraction < 1.0:
        raise ValueError("floor_fraction must be in (0, 1)")
    vg, vs, ids = surface.flattened()
    keep = ids > floor_fraction * float(np.max(ids))
    if np.count_nonzero(keep) < 4:
        raise ValueError("too few strongly-on IV samples to fit; lower floor_fraction")
    return vg[keep], vs[keep], ids[keep]


def _report(ids: np.ndarray, predicted: np.ndarray) -> FitReport:
    err = predicted - ids
    scale = float(np.max(ids))
    return FitReport(
        rms_error=float(np.sqrt(np.mean(np.square(err)))),
        max_abs_error=float(np.max(np.abs(err))),
        max_relative_error=float(np.max(np.abs(err)) / scale),
        n_points=len(ids),
    )


def fit_asdm(surface: IvSurface, floor_fraction: float = 0.05) -> tuple[AsdmParameters, FitReport]:
    """Extract ASDM (K, V0, lambda) from an Id(Vg; Vs) surface.

    Args:
        surface: IV data with drain at VDD (see :func:`repro.devices.sweep.sweep_id_vg`).
        floor_fraction: drop samples below this fraction of the peak current
            (the near-threshold region the paper excludes).

    Returns:
        (params, report): fitted parameters and fit quality over the
        retained region.
    """
    vg, vs, ids = _retained(surface, floor_fraction)
    design = np.column_stack([vg, vs, np.ones_like(vg)])
    (a, b, c), *_ = np.linalg.lstsq(design, ids, rcond=None)
    if a <= 0:
        raise ValueError("degenerate fit: non-positive transconductance slope")
    params = AsdmParameters(k=float(a), v0=float(-c / a), lam=float(-b / a))
    return params, _report(ids, params.drain_current(vg, vs))


def fit_alpha_power(
    surface: IvSurface, floor_fraction: float = 0.02
) -> tuple[AlphaPowerSsnParameters, FitReport]:
    """Fit the alpha-power saturation law to the Vs = 0 curve of a surface.

    scipy is imported here, not at module scope: the ASDM path
    (:func:`fit_asdm`) is pure numpy, and ``repro.core`` keeps the
    scipy-free import contract of the PEP 562 layout — only actually
    *calling* this baseline fit requires scipy.
    """
    from scipy import optimize

    ids = surface.curve(0.0)
    vg = surface.vg
    keep = ids > floor_fraction * float(np.max(ids))
    vg, ids = vg[keep], ids[keep]
    if len(ids) < 4:
        raise ValueError("too few points above the current floor for an alpha-power fit")

    def law(v, b, vth, alpha):
        return b * np.power(np.maximum(v - vth, 0.0), alpha)

    imax = float(np.max(ids))
    vmax = float(np.max(vg))
    p0 = (imax / max(vmax - 0.5, 0.1), 0.45, 1.3)
    bounds = ([1e-9, 0.0, 0.8], [np.inf, 0.9 * vmax, 2.2])
    popt, _ = optimize.curve_fit(law, vg, ids, p0=p0, bounds=bounds, maxfev=20000)
    params = AlphaPowerSsnParameters(b=float(popt[0]), vth=float(popt[1]), alpha=float(popt[2]))
    return params, _report(ids, params.saturation_current(vg))


def fit_square_law(
    surface: IvSurface, floor_fraction: float = 0.05
) -> tuple[SquareLawSsnParameters, FitReport]:
    """Fit ``Id = beta/2 (Vg-Vth)^2`` via linear regression on sqrt(Id)."""
    ids = surface.curve(0.0)
    vg = surface.vg
    keep = ids > floor_fraction * float(np.max(ids))
    vg, ids = vg[keep], ids[keep]
    if len(ids) < 3:
        raise ValueError("too few points above the current floor for a square-law fit")
    root = np.sqrt(ids)
    slope, intercept = np.polyfit(vg, root, 1)
    if slope <= 0:
        raise ValueError("degenerate square-law fit: non-positive slope")
    params = SquareLawSsnParameters(beta=float(2.0 * slope**2), vth=float(-intercept / slope))
    return params, _report(ids, params.saturation_current(vg))
