"""Inductance-only SSN model (paper Section 3, Eqns 4-10).

Circuit: N identical output drivers discharge their (large) loads through a
shared ground inductance L.  During the input rise the outputs stay high,
so every pull-down NFET is in the ASDM validity region, its gate driven by
the ramp ``Vg(t) = sr*t`` and its source riding on the SSN voltage Vn.

KCL at the internal ground node (Eqn 4), with the ASDM current of Eqn (3):

    Vn = N*L * dId/dt = N*L*K*(sr - lambda * dVn/dt)

a first-order linear ODE whose exact solution — the paper's point is that
ASDM needs *no* extra approximation here — is

    Vn(t)  = Vss * (1 - exp(-(t - t0)/tau)),   t0 <= t <= te       (Eqn 6)
    Id(t)  = K * (sr*t - V0 - lambda*Vn(t))                        (Eqn 8)
    Vmax   = Vss * (1 - exp(-(te - t0)/tau))                       (Eqn 7)

with ``t0 = V0/sr`` (devices turn on), ``te = VDD/sr`` (ramp ends),
``tau = N*L*K*lambda`` and ``Vss = N*L*K*sr``.  The formulas hold only
while the input is rising; outside [t0, te] this model reports 0 before
turn-on and NaN after the ramp (the paper's derivation stops there).
"""

from __future__ import annotations

import math

import numpy as np

from .asdm import AsdmParameters


class InductiveSsnModel:
    """Closed-form SSN estimate with ground inductance as the only parasitic.

    Args:
        params: ASDM parameters of *one* driver's pull-down device.
        n_drivers: number of simultaneously switching drivers, N.
        inductance: total ground parasitic inductance L in henries.
        vdd: supply voltage (top of the input ramp) in volts.
        rise_time: input ramp time tr in seconds; the slope is sr = vdd/tr.
    """

    def __init__(
        self,
        params: AsdmParameters,
        n_drivers: int,
        inductance: float,
        vdd: float,
        rise_time: float,
    ):
        if n_drivers <= 0:
            raise ValueError("n_drivers must be positive")
        if inductance <= 0:
            raise ValueError("inductance must be positive")
        if rise_time <= 0:
            raise ValueError("rise_time must be positive")
        if vdd <= params.v0:
            raise ValueError(
                f"vdd={vdd} must exceed the ASDM offset V0={params.v0}; "
                "the drivers never turn on otherwise"
            )
        self.params = params
        self.n_drivers = int(n_drivers)
        self.inductance = inductance
        self.vdd = vdd
        self.rise_time = rise_time

    # -- derived quantities -------------------------------------------------------

    @property
    def slope(self) -> float:
        """Input ramp slope sr = VDD / tr in V/s."""
        return self.vdd / self.rise_time

    @property
    def turn_on_time(self) -> float:
        """t0 = V0 / sr: instant the devices start conducting."""
        return self.params.v0 / self.slope

    @property
    def ramp_end_time(self) -> float:
        """te: instant the input reaches VDD."""
        return self.rise_time

    @property
    def time_constant(self) -> float:
        """tau = N*L*K*lambda (Eqn 5's first-order time constant)."""
        return self.n_drivers * self.inductance * self.params.k * self.params.lam

    @property
    def asymptotic_voltage(self) -> float:
        """Vss = N*L*K*sr: the level Vn relaxes toward during the ramp."""
        return self.n_drivers * self.inductance * self.params.k * self.slope

    # -- waveforms ----------------------------------------------------------------

    def voltage(self, t):
        """SSN voltage waveform, Eqn (6).

        Returns 0 before turn-on and NaN after the ramp ends (the model's
        validity window, as the paper notes below Eqn 8).
        """
        t = np.asarray(t, dtype=float)
        tau_rel = (t - self.turn_on_time) / self.time_constant
        v = self.asymptotic_voltage * -np.expm1(-np.maximum(tau_rel, 0.0))
        v = np.where(t < self.turn_on_time, 0.0, v)
        v = np.where(t > self.ramp_end_time * (1 + 1e-12), np.nan, v)
        if v.ndim == 0:
            return float(v)
        return v

    def driver_current(self, t):
        """Per-driver drain current, Eqn (8); same validity window."""
        t = np.asarray(t, dtype=float)
        vn = self.voltage(t)
        i = self.params.k * (self.slope * t - self.params.v0 - self.params.lam * vn)
        i = np.where(t < self.turn_on_time, 0.0, np.maximum(i, 0.0))
        if i.ndim == 0:
            return float(i)
        return i

    def total_current(self, t):
        """Current through the ground inductor: N drivers in parallel."""
        return self.n_drivers * self.driver_current(t)

    # -- peak ---------------------------------------------------------------------

    def peak_voltage(self) -> float:
        """Maximum SSN voltage, Eqn (7).

        dVn/dt > 0 throughout the ramp, so the maximum sits at te, where
        the input reaches VDD.
        """
        window = (self.vdd - self.params.v0) / self.slope
        return self.asymptotic_voltage * -math.expm1(-window / self.time_constant)

    def peak_time(self) -> float:
        """Instant of the maximum: the end of the ramp."""
        return self.ramp_end_time
