"""Package parasitic library (PGA, QFP, BGA, wirebond ground paths)."""

from .parasitics import (
    BGA,
    PGA,
    QFP,
    WIREBOND,
    GroundPathParasitics,
    PackageModel,
    get_package,
    list_packages,
)

__all__ = [
    "BGA",
    "PGA",
    "QFP",
    "WIREBOND",
    "GroundPathParasitics",
    "PackageModel",
    "get_package",
    "list_packages",
]
