"""Package parasitic models for the ground return path.

The paper quotes a typical pin-grid-array (PGA) package: 5 nH inductance,
1 pF capacitance, 10 mOhm resistance per ground path, and argues that the
resistance is negligible while the capacitance is not.  This module captures
those numbers — and other common package styles — as data, plus the
pad-parallelism rule the paper uses in Fig. 4: ``k`` ground pads in
parallel divide the inductance (and resistance) by ``k`` and multiply the
capacitance by ``k``.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GroundPathParasitics:
    """Lumped parasitics of the chip-to-board ground return.

    Attributes:
        inductance: series inductance in henries.
        capacitance: shunt capacitance at the internal ground node in farads.
        resistance: series resistance in ohms.
    """

    inductance: float
    capacitance: float
    resistance: float

    def __post_init__(self):
        if self.inductance <= 0 or self.capacitance <= 0:
            raise ValueError("inductance and capacitance must be positive")
        if self.resistance < 0:
            raise ValueError("resistance must be non-negative")

    def with_pads(self, pads: int) -> "GroundPathParasitics":
        """Parasitics of ``pads`` identical paths in parallel.

        Inductance and resistance divide; capacitance adds.  This is the
        transformation behind the paper's Fig. 4(b)/(d) "ground pads
        doubled" configuration.
        """
        if pads < 1:
            raise ValueError("pad count must be at least 1")
        return GroundPathParasitics(
            inductance=self.inductance / pads,
            capacitance=self.capacitance * pads,
            resistance=self.resistance / pads,
        )


@dataclasses.dataclass(frozen=True)
class PackageModel:
    """A named package style with per-ground-pin parasitics."""

    name: str
    pin: GroundPathParasitics
    description: str = ""

    def ground_path(self, pads: int = 1) -> GroundPathParasitics:
        """Effective ground-path parasitics with ``pads`` ground pins."""
        return self.pin.with_pads(pads)


#: The paper's reference package: PGA with 5 nH / 1 pF / 10 mOhm per path.
PGA = PackageModel(
    name="pga",
    pin=GroundPathParasitics(inductance=5e-9, capacitance=1e-12, resistance=10e-3),
    description="Pin grid array; the paper's quoted typical values.",
)

#: Quad flat pack: longer leads, higher inductance.
QFP = PackageModel(
    name="qfp",
    pin=GroundPathParasitics(inductance=8e-9, capacitance=1.5e-12, resistance=40e-3),
    description="Quad flat package with gull-wing leads.",
)

#: Ball grid array: short paths, low inductance, more shunt capacitance.
BGA = PackageModel(
    name="bga",
    pin=GroundPathParasitics(inductance=1.5e-9, capacitance=1.2e-12, resistance=15e-3),
    description="Ball grid array with short vertical paths.",
)

#: Bare bond wire (chip-on-board): inductance dominated by wire length.
WIREBOND = PackageModel(
    name="wirebond",
    pin=GroundPathParasitics(inductance=3e-9, capacitance=0.4e-12, resistance=60e-3),
    description="Single 3 mm bond wire, roughly 1 nH/mm.",
)

_REGISTRY = {p.name: p for p in (PGA, QFP, BGA, WIREBOND)}


def get_package(name: str) -> PackageModel:
    """Look up a built-in package model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown package {name!r}; known packages: {known}") from None


def list_packages() -> list[str]:
    """Names of all built-in package models."""
    return sorted(_REGISTRY)
