"""Common interface for MOSFET drain-current models.

Every SSN estimator in this repository — the paper's ASDM model, the
alpha-power-law baselines, and the golden circuit simulator — consumes a
MOSFET model through this interface.  A model maps terminal voltages to the
drain current ``Id`` and (for the circuit simulator's Newton iteration) to
the small-signal conductances

* ``gm``   = dId/dVgs   (transconductance),
* ``gds``  = dId/dVds   (output conductance),
* ``gmbs`` = dId/dVbs   (body transconductance).

Voltages follow the usual NMOS convention: ``vgs``, ``vds`` and ``vbs`` are
gate, drain and bulk potentials referred to the source.  Models must be
defined (and finite) for all real inputs; cutoff regions return 0 current.

Subclasses may either override :meth:`partials` with analytic derivatives or
inherit the central finite-difference default, which is accurate enough for
Newton convergence on the well-scaled circuits used here.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

#: Perturbation used by the finite-difference default of ``partials``.
_FD_STEP = 1e-6


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """Drain current and its partial derivatives at one bias point."""

    ids: float
    gm: float
    gds: float
    gmbs: float


class MosfetModel(abc.ABC):
    """Abstract NMOS drain-current model ``Id(vgs, vds, vbs)``."""

    #: Human-readable model name used in reports and experiment tables.
    name: str = "mosfet"

    @abc.abstractmethod
    def ids(self, vgs, vds, vbs=0.0):
        """Drain current in amperes.

        Accepts scalars or numpy arrays (broadcast together) and returns the
        same shape.  Must never return negative current for ``vds >= 0``.
        """

    def ids_scalar(self, vgs: float, vds: float, vbs: float = 0.0) -> float:
        """Drain current at one scalar bias point.

        Semantically identical to ``float(self.ids(...))``; subclasses may
        override with a pure-``math`` implementation to skip the numpy
        broadcast machinery, which dominates the circuit simulator's Newton
        assembly cost on scalar inputs.
        """
        return float(self.ids(vgs, vds, vbs))

    def partials(self, vgs: float, vds: float, vbs: float = 0.0) -> OperatingPoint:
        """Current and conductances at a scalar bias point.

        The default implementation uses central finite differences on
        :meth:`ids_scalar`; override for analytic derivatives.
        """
        h = _FD_STEP
        f = self.ids_scalar
        ids = f(vgs, vds, vbs)
        gm = (f(vgs + h, vds, vbs) - f(vgs - h, vds, vbs)) / (2 * h)
        gds = (f(vgs, vds + h, vbs) - f(vgs, vds - h, vbs)) / (2 * h)
        gmbs = (f(vgs, vds, vbs + h) - f(vgs, vds, vbs - h)) / (2 * h)
        return OperatingPoint(ids=ids, gm=gm, gds=gds, gmbs=gmbs)

    def partials_array(self, vgs, vds, vbs=0.0) -> OperatingPoint:
        """Array-in/array-out operating points over a batch of bias points.

        Central finite differences through the vectorized :meth:`ids` with
        the same step as the scalar :meth:`partials`, so a batched engine's
        Newton iterates track the scalar engine's to floating-point noise.
        The seven bias evaluations (center plus six perturbed) are stacked
        into one ``(7, B)`` call so the model's elementwise math runs once
        per iterate instead of seven times.

        Returns an :class:`OperatingPoint` whose fields are arrays shaped
        like the broadcast inputs.
        """
        h = _FD_STEP
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vbs = np.asarray(vbs, dtype=float)
        if not (vgs.shape == vds.shape == vbs.shape):
            vgs, vds, vbs = np.broadcast_arrays(vgs, vds, vbs)
        # Broadcast-fill preallocated grids instead of stacking seven
        # temporaries: this runs once per batched Newton iterate, where
        # python-level array plumbing is the dominant cost.  The grids are
        # cached on the model (refilled in full every call, so stale
        # perturbations never leak between iterates).
        shape = (7,) + vgs.shape
        grids = getattr(self, "_fd_grids", None)
        if grids is None or grids[0].shape != shape:
            grids = (np.empty(shape), np.empty(shape), np.empty(shape))
            self._fd_grids = grids
        grid_vgs, grid_vds, grid_vbs = grids
        grid_vgs[:] = vgs
        grid_vgs[1] += h
        grid_vgs[2] -= h
        grid_vds[:] = vds
        grid_vds[3] += h
        grid_vds[4] -= h
        grid_vbs[:] = vbs
        grid_vbs[5] += h
        grid_vbs[6] -= h
        i = np.asarray(self.ids(grid_vgs, grid_vds, grid_vbs), dtype=float)
        return OperatingPoint(
            ids=i[0],
            gm=(i[1] - i[2]) / (2 * h),
            gds=(i[3] - i[4]) / (2 * h),
            gmbs=(i[5] - i[6]) / (2 * h),
        )

    def saturation_current(self, vgs, vds_high, vbs=0.0):
        """Convenience alias: current with the drain held at a high rail.

        SSN modeling evaluates devices with the drain at (or near) VDD while
        the source bounces; several callers read better with this name.
        """
        return self.ids(vgs, vds_high, vbs)


def reference_partials(model: MosfetModel, vgs: float, vds: float,
                       vbs: float = 0.0) -> OperatingPoint:
    """Finite-difference partials through the vectorized :meth:`MosfetModel.ids`.

    This is the original (pre-fast-path) operating-point evaluation.  The
    legacy simulator engine (``TransientOptions(legacy_reference=True)``)
    stamps through it so the golden-parity tests can bound the fast path
    against frozen seed numerics.
    """
    h = _FD_STEP
    ids = float(model.ids(vgs, vds, vbs))
    gm = float(model.ids(vgs + h, vds, vbs) - model.ids(vgs - h, vds, vbs)) / (2 * h)
    gds = float(model.ids(vgs, vds + h, vbs) - model.ids(vgs, vds - h, vbs)) / (2 * h)
    gmbs = float(model.ids(vgs, vds, vbs + h) - model.ids(vgs, vds, vbs - h)) / (2 * h)
    return OperatingPoint(ids=ids, gm=gm, gds=gds, gmbs=gmbs)


def ensure_arrays(*values):
    """Broadcast heterogeneous scalar/array inputs to common float arrays."""
    arrays = np.broadcast_arrays(*[np.asarray(v, dtype=float) for v in values])
    return [np.array(a, dtype=float) for a in arrays]
