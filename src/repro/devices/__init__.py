"""MOSFET device models: the substrate under every SSN estimator here.

* :class:`BsimLikeMosfet` — the golden short-channel device standing in for
  HSPICE/BSIM3 (see DESIGN.md, substitutions table).
* :class:`AlphaPowerMosfet` — Sakurai-Newton alpha-power law, used by the
  prior-art baselines.
* :class:`Level1Mosfet` — classic square law, used by the Senthinathan &
  Prince baseline and as a long-channel sanity limit.
"""

from .alpha_power import AlphaPowerMosfet, AlphaPowerParameters
from .base import MosfetModel, OperatingPoint
from .bsim_like import BsimLikeMosfet, BsimLikeParameters
from .level1 import Level1Mosfet, Level1Parameters
from .pmos import ComplementaryMosfet, pmos_from_parameters
from .sweep import IvSurface, sweep_id_vg

__all__ = [
    "AlphaPowerMosfet",
    "AlphaPowerParameters",
    "BsimLikeMosfet",
    "BsimLikeParameters",
    "ComplementaryMosfet",
    "IvSurface",
    "Level1Mosfet",
    "Level1Parameters",
    "MosfetModel",
    "OperatingPoint",
    "pmos_from_parameters",
    "sweep_id_vg",
]
