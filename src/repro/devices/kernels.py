"""Optional compiled operating-point kernel for the golden MOSFET model.

The batched lockstep engine's per-iterate device cost is seven vectorized
evaluations of :meth:`BsimLikeMosfet.ids` (center plus six finite-difference
perturbations, see :meth:`MosfetModel.partials_array`).  Each evaluation is
~20 elementwise numpy operations, and at ensemble widths of a few dozen the
per-operation dispatch overhead — not the flops — dominates.  This module
JIT-compiles the whole seven-point stencil into one fused loop with
`numba <https://numba.pydata.org>`_ when it is importable:

* **Soft dependency** — numba is *not* a requirement of this project.  When
  it is absent (the CI baseline), :func:`compiled_partials` returns ``None``
  and callers keep the pure-numpy ``partials_array`` path; nothing changes.
* **Opt-out** — setting the ``REPRO_NO_NUMBA`` environment variable to any
  non-empty value disables compilation even when numba is installed
  (debugging aid, and the lever behind the no-numba CI matrix leg).
* **Numerics** — the kernel mirrors ``BsimLikeMosfet._ids_forward_scalar``
  (itself the scalar twin of the vectorized ``_ids_forward``): the same
  IEEE-double operations, the same stable softplus, the same ``vds < 0``
  source/drain swap and the same finite-difference step.  Compiled and
  numpy operating points agree to rounding; Newton contraction pins the
  converged waveforms together under the engine's 1e-9 golden-parity
  contract (asserted by the test suite whenever numba happens to be
  present).
* **Scope** — only scalar-parameter :class:`BsimLikeMosfet` instances
  compile.  Stacked models (``(B,)`` parameter fields from
  :func:`repro.devices.bsim_like.stack_models`) keep the numpy path: their
  per-element constants would turn the fused constant tuple into arrays
  and the win evaporates.

The engaged backend is visible in telemetry: batched runs record
``backend_numba_kernel`` in ``SolverTelemetry.extras`` next to the
linear-algebra tier (see ``repro.spice.telemetry.record_backend``).
"""

from __future__ import annotations

import math
import os

import numpy as np

from .base import _FD_STEP, OperatingPoint
from .bsim_like import BsimLikeMosfet

#: Environment variable disabling the compiled kernel when set (non-empty).
NUMBA_DISABLE_ENV = "REPRO_NO_NUMBA"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the CI baseline has no numba
    _numba = None

#: Compiled stencil, built lazily on first use (JIT compilation is slow;
#: importing this module must stay cheap for numpy-only users).
_kernel = None


def kernel_available() -> bool:
    """True when numba is importable and not disabled via the environment."""
    return _numba is not None and not os.environ.get(NUMBA_DISABLE_ENV)


def _build_kernel():  # pragma: no cover - requires numba
    """Compile the seven-point operating-point stencil (once per process)."""
    njit = _numba.njit

    @njit(cache=True)
    def ids_one(vgs, vds, vbs, vth_base, gamma, sigma, ecl, two_nvt,
                inv_two_nvt, four_delta, delta, theta, beta0, inv_ecl,
                lam, phi):
        # Source/drain swap for a reversed channel, as in ids_scalar.
        sign = 1.0
        if vds < 0.0:
            vgs = vgs - vds
            vbs = vbs - vds
            vds = -vds
            sign = -1.0
        arg = phi - vbs
        if arg < 1e-12:
            arg = 1e-12
        vth = vth_base + gamma * math.sqrt(arg) - sigma * vds
        x = (vgs - vth) * inv_two_nvt
        if x > 0.0:
            soft = x + math.log1p(math.exp(-x))
        else:
            soft = math.log1p(math.exp(x))
        vgsteff = two_nvt * soft
        vdsat = vgsteff * ecl / (vgsteff + ecl)
        t = vdsat - vds - delta
        vdseff = vdsat - 0.5 * (t + math.sqrt(t * t + four_delta * vdsat))
        if vdseff < 0.0:
            vdseff = 0.0
        beta = beta0 / (1.0 + theta * vgsteff)
        core = beta * (vgsteff - 0.5 * vdseff) * vdseff / (
            1.0 + vdseff * inv_ecl)
        over = vds - vdseff
        clm = 1.0 + lam * (over if over > 0.0 else 0.0)
        return sign * core * clm

    @njit(cache=True)
    def stencil(vgs, vds, vbs, h, vth_base, gamma, sigma, ecl, two_nvt,
                inv_two_nvt, four_delta, delta, theta, beta0, inv_ecl,
                lam, phi):
        n = vgs.shape[0]
        ids = np.empty(n)
        gm = np.empty(n)
        gds = np.empty(n)
        gmbs = np.empty(n)
        inv_2h = 1.0 / (2.0 * h)
        for i in range(n):
            g = vgs[i]
            d = vds[i]
            b = vbs[i]
            ids[i] = ids_one(g, d, b, vth_base, gamma, sigma, ecl, two_nvt,
                             inv_two_nvt, four_delta, delta, theta, beta0,
                             inv_ecl, lam, phi)
            gm[i] = (
                ids_one(g + h, d, b, vth_base, gamma, sigma, ecl, two_nvt,
                        inv_two_nvt, four_delta, delta, theta, beta0,
                        inv_ecl, lam, phi)
                - ids_one(g - h, d, b, vth_base, gamma, sigma, ecl, two_nvt,
                          inv_two_nvt, four_delta, delta, theta, beta0,
                          inv_ecl, lam, phi)
            ) * inv_2h
            gds[i] = (
                ids_one(g, d + h, b, vth_base, gamma, sigma, ecl, two_nvt,
                        inv_two_nvt, four_delta, delta, theta, beta0,
                        inv_ecl, lam, phi)
                - ids_one(g, d - h, b, vth_base, gamma, sigma, ecl, two_nvt,
                          inv_two_nvt, four_delta, delta, theta, beta0,
                          inv_ecl, lam, phi)
            ) * inv_2h
            gmbs[i] = (
                ids_one(g, d, b + h, vth_base, gamma, sigma, ecl, two_nvt,
                        inv_two_nvt, four_delta, delta, theta, beta0,
                        inv_ecl, lam, phi)
                - ids_one(g, d, b - h, vth_base, gamma, sigma, ecl, two_nvt,
                          inv_two_nvt, four_delta, delta, theta, beta0,
                          inv_ecl, lam, phi)
            ) * inv_2h
        return ids, gm, gds, gmbs

    return stencil


def compiled_partials(model):
    """A compiled ``(vgs, vds, vbs) -> OperatingPoint`` closure, or None.

    ``None`` means "use the numpy path": numba missing, compilation
    disabled via :data:`NUMBA_DISABLE_ENV`, a non-golden model family, or
    a stacked model whose parameter fields are ``(B,)`` arrays.
    """
    global _kernel
    if not kernel_available():
        return None
    if not isinstance(model, BsimLikeMosfet):
        return None
    consts = []
    for value in model._array_consts():
        arr = np.asarray(value, dtype=float)
        if arr.ndim != 0:
            return None  # stacked parameters: keep the vectorized numpy path
        consts.append(float(arr))
    consts = tuple(consts)
    if _kernel is None:  # pragma: no cover - requires numba
        _kernel = _build_kernel()
    kernel = _kernel
    h = _FD_STEP

    def run(vgs, vds, vbs):  # pragma: no cover - requires numba
        vgs, vds, vbs = np.broadcast_arrays(
            np.asarray(vgs, dtype=float), np.asarray(vds, dtype=float),
            np.asarray(vbs, dtype=float))
        shape = vgs.shape
        ids, gm, gds, gmbs = kernel(
            np.ascontiguousarray(vgs).ravel(),
            np.ascontiguousarray(vds).ravel(),
            np.ascontiguousarray(vbs).ravel(), h, *consts)
        return OperatingPoint(ids=ids.reshape(shape), gm=gm.reshape(shape),
                              gds=gds.reshape(shape),
                              gmbs=gmbs.reshape(shape))

    return run
