"""Shichman-Hodges (SPICE level-1) square-law MOSFET model.

The classic long-channel model: quadratic saturation current, linear/triode
region below ``Vdsat = Vgs - Vth``, optional channel-length modulation and
body effect.  It is *not* the golden device (long-channel physics is the
wrong shape for a 0.18 um driver) but it serves three purposes:

* reference implementation for unit-testing the model interface,
* the device underlying the Senthinathan & Prince (1991) baseline, which
  was derived for square-law devices,
* a sanity limit: the alpha-power law with ``alpha = 2`` must agree with it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import MosfetModel, ensure_arrays


@dataclasses.dataclass(frozen=True)
class Level1Parameters:
    """Parameters of the square-law model.

    Attributes:
        kp: transconductance factor ``mu * Cox`` in A/V^2.
        vth0: zero-bias threshold voltage in volts.
        w: channel width in meters.
        l: channel length in meters.
        lam: channel-length-modulation coefficient in 1/V.
        gamma: body-effect coefficient in sqrt(V).
        phi: surface potential ``2 phi_F`` in volts.
    """

    kp: float = 170e-6
    vth0: float = 0.5
    w: float = 10e-6
    l: float = 0.18e-6
    lam: float = 0.05
    gamma: float = 0.45
    phi: float = 0.85

    def __post_init__(self):
        if self.w <= 0 or self.l <= 0:
            raise ValueError("channel width and length must be positive")
        if self.kp <= 0:
            raise ValueError("transconductance factor kp must be positive")
        if self.phi <= 0:
            raise ValueError("surface potential phi must be positive")


class Level1Mosfet(MosfetModel):
    """NMOS square-law model with body effect and CLM."""

    name = "level1"

    def __init__(self, params: Level1Parameters | None = None):
        self.params = params or Level1Parameters()

    def threshold(self, vbs=0.0):
        """Body-effect-adjusted threshold voltage.

        ``Vth = Vth0 + gamma * (sqrt(phi - Vbs) - sqrt(phi))`` with the
        sqrt argument clamped at zero for strongly forward-biased bulk.
        """
        p = self.params
        vbs = np.asarray(vbs, dtype=float)
        arg = np.maximum(p.phi - vbs, 0.0)
        return p.vth0 + p.gamma * (np.sqrt(arg) - np.sqrt(p.phi))

    def ids(self, vgs, vds, vbs=0.0):
        p = self.params
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        beta = p.kp * p.w / p.l
        vov = vgs - self.threshold(vbs)
        clm = 1.0 + p.lam * vds

        sat = 0.5 * beta * np.square(np.maximum(vov, 0.0)) * clm
        tri = beta * (vov - 0.5 * vds) * vds * clm
        out = np.where(vds >= vov, sat, tri)
        out = np.where(vov <= 0.0, 0.0, out)
        if out.ndim == 0:
            return float(out)
        return out
