"""IV-sweep utilities used by parameter extraction and Fig. 1.

The paper fits ASDM to simulated ``Id`` vs ``Vg`` curves taken at several
source voltages with the drain held high (the only bias family that matters
for ground-bounce estimation).  :class:`IvSurface` is the container those
fits and plots consume.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import MosfetModel


@dataclasses.dataclass(frozen=True)
class IvSurface:
    """A family of Id(Vg) curves at fixed source voltages, drain held high.

    Attributes:
        vg: 1-D gate-voltage grid, shape (n_vg,).
        vs: 1-D source-voltage values, shape (n_vs,).
        ids: drain currents, shape (n_vs, n_vg); row i is the curve at vs[i].
        vdd: drain rail voltage the sweep was taken at.
    """

    vg: np.ndarray
    vs: np.ndarray
    ids: np.ndarray
    vdd: float

    def __post_init__(self):
        if self.ids.shape != (len(self.vs), len(self.vg)):
            raise ValueError(
                f"ids shape {self.ids.shape} does not match "
                f"(n_vs={len(self.vs)}, n_vg={len(self.vg)})"
            )

    def curve(self, vs_value: float) -> np.ndarray:
        """The Id(Vg) curve at the given source voltage (must be on the grid)."""
        matches = np.flatnonzero(np.isclose(self.vs, vs_value))
        if len(matches) == 0:
            raise KeyError(f"vs={vs_value} is not one of the swept source voltages")
        return self.ids[matches[0]]

    def flattened(self):
        """(vg, vs, ids) as aligned 1-D arrays — the least-squares data layout."""
        vg_grid, vs_grid = np.meshgrid(self.vg, self.vs)
        return vg_grid.ravel(), vs_grid.ravel(), self.ids.ravel()


def sweep_id_vg(
    model: MosfetModel,
    vdd: float,
    vg: np.ndarray | None = None,
    vs: np.ndarray | None = None,
) -> IvSurface:
    """Sweep ``Id(Vg; Vs)`` with drain at ``vdd`` and bulk tied to source.

    This reproduces the bias family of the paper's Fig. 1: the pull-down
    transistor of an output driver whose source/bulk ride on the bouncing
    ground node while the drain (the output pad) stays high.

    Args:
        model: the device to sweep.
        vdd: drain rail; also the default top of the gate sweep.
        vg: gate-voltage grid (default: 0..vdd in 10 mV steps).
        vs: source voltages (default: 0..0.8 V in 0.2 V steps, as in Fig. 1).

    Returns:
        The sampled :class:`IvSurface`.
    """
    if vg is None:
        vg = np.arange(0.0, vdd + 1e-12, 0.01)
    if vs is None:
        vs = np.arange(0.0, 0.8 + 1e-12, 0.2)
    vg = np.asarray(vg, dtype=float)
    vs = np.asarray(vs, dtype=float)

    curves = np.empty((len(vs), len(vg)))
    for i, source in enumerate(vs):
        # Bulk tied to source (vbs = 0); vds = vdd - vs.
        curves[i] = model.ids(vg - source, vdd - source, 0.0)
    return IvSurface(vg=vg, vs=vs, ids=curves, vdd=vdd)
