"""PMOS device support via complementary mapping.

The paper analyzes the ground rail only and notes that "the SSN at the
power-supply node can be analyzed similarly."  Making that sentence
executable requires a PMOS pull-up device.  Rather than duplicating the
short-channel physics, :class:`ComplementaryMosfet` maps a PMOS onto an
NMOS-parameterized inner model by the usual sign symmetry:

    Id_pmos(vgs, vds, vbs) = -Id_inner(-vgs, -vds, -vbs)

where ``Id_pmos`` keeps the drain->source reference of the common device
interface (so a conducting pull-up, with vgs and vds negative, reports a
*negative* drain current: conventional current flows source -> drain,
from the VDD rail into the output).  The inner model's parameters are the
PMOS magnitudes (|Vth|, hole mobility, hole saturation field).

The mapping is exact, so every result derived for ground bounce (ASDM
fit, Eqns 6-10, Table 1) transfers to VDD droop by duality — which is
precisely the paper's claim, and what :mod:`repro.core.ssn_power` plus the
power-rail experiments verify.
"""

from __future__ import annotations

from .base import MosfetModel, ensure_arrays
from .bsim_like import BsimLikeMosfet, BsimLikeParameters


class ComplementaryMosfet(MosfetModel):
    """A P-channel device expressed through an N-channel inner model."""

    name = "pmos"

    def __init__(self, inner: MosfetModel):
        self.inner = inner

    def ids(self, vgs, vds, vbs=0.0):
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        out = self.inner.ids(-vgs, -vds, -vbs)
        if isinstance(out, float) or out.ndim == 0:
            return -float(out)
        return -out

    def ids_scalar(self, vgs: float, vds: float, vbs: float = 0.0) -> float:
        return -self.inner.ids_scalar(-vgs, -vds, -vbs)

    @property
    def params(self):
        """The inner (magnitude-space) parameters."""
        return self.inner.params


def pmos_from_parameters(params: BsimLikeParameters) -> ComplementaryMosfet:
    """A golden PMOS from magnitude-space short-channel parameters."""
    return ComplementaryMosfet(BsimLikeMosfet(params))
