"""Sakurai-Newton alpha-power-law MOSFET model (reference [12] of the paper).

The alpha-power law generalizes the square law to short-channel devices by
replacing the quadratic overdrive dependence with an empirical exponent
``alpha`` (2 for long channels, approaching 1 under full velocity
saturation):

    Idsat(vgs)  = b * W * (vgs - vth)^alpha
    Vdsat(vgs)  = kv * (vgs - vth)^(alpha/2)
    Id (triode) = Idsat * (2 - vds/Vdsat) * (vds/Vdsat)

This is the model the prior-art SSN estimators (Vemuru 1996, Jou 1998,
Song 1999) are built on; the paper's central argument is that the alpha-power
form forces those works into additional approximations, which ASDM avoids.
We implement it both as a circuit-simulator device and as the substrate for
the baseline estimators, including the parameter extraction used to fit it
to the golden device.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .base import MosfetModel, ensure_arrays


@dataclasses.dataclass(frozen=True)
class AlphaPowerParameters:
    """Parameters of the alpha-power law.

    Attributes:
        b: drive strength per unit width in A / (m * V^alpha).
        alpha: velocity-saturation index, 1 <= alpha <= 2.
        vth: threshold voltage in volts.
        kv: drain saturation voltage coefficient in V^(1 - alpha/2).
        w: channel width in meters.
        gamma: body-effect coefficient in sqrt(V) (0 disables body effect).
        phi: surface potential in volts.
        lam: channel-length-modulation coefficient in 1/V.
    """

    b: float = 300.0
    alpha: float = 1.3
    vth: float = 0.5
    kv: float = 0.9
    w: float = 10e-6
    gamma: float = 0.0
    phi: float = 0.85
    lam: float = 0.0

    def __post_init__(self):
        if not 0.5 <= self.alpha <= 2.5:
            raise ValueError(f"alpha={self.alpha} outside plausible range [0.5, 2.5]")
        if self.b <= 0 or self.w <= 0 or self.kv <= 0:
            raise ValueError("b, w and kv must be positive")


class AlphaPowerMosfet(MosfetModel):
    """NMOS alpha-power-law model."""

    name = "alpha-power"

    def __init__(self, params: AlphaPowerParameters | None = None):
        self.params = params or AlphaPowerParameters()

    def threshold(self, vbs=0.0):
        """Threshold voltage with optional body effect."""
        p = self.params
        if p.gamma == 0.0:
            return np.full_like(np.asarray(vbs, dtype=float), p.vth) + 0.0
        arg = np.maximum(p.phi - np.asarray(vbs, dtype=float), 0.0)
        return p.vth + p.gamma * (np.sqrt(arg) - np.sqrt(p.phi))

    def saturation_drain_voltage(self, vgs, vbs=0.0):
        """``Vdsat = kv * (vgs - vth)^(alpha/2)``, zero in cutoff."""
        p = self.params
        vov = np.maximum(np.asarray(vgs, dtype=float) - self.threshold(vbs), 0.0)
        return p.kv * np.power(vov, p.alpha / 2.0)

    def ids(self, vgs, vds, vbs=0.0):
        p = self.params
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        vov = np.maximum(vgs - self.threshold(vbs), 0.0)
        idsat = p.b * p.w * np.power(vov, p.alpha)
        vdsat = p.kv * np.power(vov, p.alpha / 2.0)

        clm = 1.0 + p.lam * vds
        # Triode expression; guard the division where the device is in cutoff.
        safe_vdsat = np.where(vdsat > 0.0, vdsat, 1.0)
        ratio = np.clip(vds / safe_vdsat, 0.0, None)
        triode = idsat * (2.0 - ratio) * ratio

        out = np.where(vds >= vdsat, idsat * clm, triode)
        out = np.where(vov <= 0.0, 0.0, out)
        if out.ndim == 0:
            return float(out)
        return out
