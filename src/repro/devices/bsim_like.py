"""Golden short-channel NMOS model standing in for HSPICE's BSIM3.

The paper validates every formula against HSPICE Level-49 (BSIM3) transient
runs on TSMC 0.18/0.25/0.35 um processes.  Those decks are proprietary, so
this module provides the substitution documented in DESIGN.md: an empirical
short-channel model with the physical ingredients that give BSIM3 its IV
*shape* in the SSN-relevant region:

* smooth subthreshold-to-strong-inversion transition (BSIM-style
  ``Vgsteff`` log-exp interpolation),
* body effect and drain-induced barrier lowering on the threshold,
* vertical-field mobility degradation,
* velocity saturation (this is what drags the effective alpha from 2 toward
  1 and makes ``Id`` vs ``Vg`` near-linear — the property ASDM exploits),
* a smooth effective drain voltage ``Vdseff`` so triode and saturation join
  with continuous derivatives (important for Newton convergence),
* channel-length modulation.

The model is C-inf smooth in all terminal voltages for ``vds >= 0`` and is
extended antisymmetrically for ``vds < 0`` (source/drain swap), so the
circuit simulator can evaluate it anywhere the Newton iteration wanders.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .base import MosfetModel, ensure_arrays

#: Thermal voltage kT/q at 300 K, volts.
THERMAL_VOLTAGE = 0.02585
#: Reference temperature for all parameter values, kelvin.
REFERENCE_TEMPERATURE = 300.0
#: Threshold temperature coefficient, V/K (typical NMOS: about -1 mV/K).
VTH_TEMP_COEFF = -1.0e-3
#: Mobility temperature exponent: mu ~ (T/T0)^-1.5 (phonon scattering).
MOBILITY_TEMP_EXPONENT = -1.5


@dataclasses.dataclass(frozen=True)
class BsimLikeParameters:
    """Parameters of the golden short-channel model.

    Attributes:
        vth0: zero-bias long-channel threshold voltage in volts.
        gamma: body-effect coefficient in sqrt(V).
        phi: surface potential in volts.
        sigma: DIBL coefficient (threshold shift per volt of vds).
        n: subthreshold ideality factor.
        mu0: low-field mobility in m^2/(V s).
        theta: vertical-field mobility degradation in 1/V.
        ec: velocity-saturation critical field in V/m.
        cox: gate-oxide capacitance per area in F/m^2.
        w: channel width in meters.
        l: channel length in meters.
        lam: channel-length-modulation coefficient in 1/V.
        delta: Vdseff smoothing parameter in volts.
        temperature: junction temperature in kelvin.  All other values are
            specified at 300 K; the model applies standard scalings
            (mobility ~ T^-1.5, Vth ~ -1 mV/K, thermal voltage ~ T).
    """

    vth0: float = 0.48
    gamma: float = 0.45
    phi: float = 0.85
    sigma: float = 0.02
    n: float = 1.4
    mu0: float = 0.032
    theta: float = 0.25
    ec: float = 5.0e6
    cox: float = 8.4e-3
    w: float = 10e-6
    l: float = 0.18e-6
    lam: float = 0.04
    delta: float = 0.02
    temperature: float = REFERENCE_TEMPERATURE

    def __post_init__(self):
        if self.w <= 0 or self.l <= 0:
            raise ValueError("channel width and length must be positive")
        if self.ec <= 0 or self.cox <= 0 or self.mu0 <= 0:
            raise ValueError("ec, cox and mu0 must be positive")
        if self.delta <= 0:
            raise ValueError("Vdseff smoothing delta must be positive")
        if not 150.0 <= self.temperature <= 500.0:
            raise ValueError("temperature must be a plausible junction value (150-500 K)")

    @property
    def vth0_t(self) -> float:
        """Threshold at the operating temperature."""
        return self.vth0 + VTH_TEMP_COEFF * (self.temperature - REFERENCE_TEMPERATURE)

    @property
    def mu0_t(self) -> float:
        """Low-field mobility at the operating temperature."""
        return self.mu0 * (self.temperature / REFERENCE_TEMPERATURE) ** MOBILITY_TEMP_EXPONENT

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the operating temperature."""
        return THERMAL_VOLTAGE * self.temperature / REFERENCE_TEMPERATURE

    def scaled(self, **overrides) -> "BsimLikeParameters":
        """A copy with the given fields replaced (e.g. ``scaled(w=60e-6)``)."""
        return dataclasses.replace(self, **overrides)


class BsimLikeMosfet(MosfetModel):
    """Golden NMOS device used as the HSPICE/BSIM3 substitute."""

    name = "bsim-like"

    def __init__(self, params: BsimLikeParameters | None = None):
        self.params = params or BsimLikeParameters()
        self._const_params = None
        self._consts = None

    def _scalar_consts(self):
        """Temperature-derived constants, cached per parameter object.

        ``vth0_t``/``mu0_t``/``thermal_voltage`` are dataclass properties;
        recomputing them on every Newton stamp is measurable.  ``params`` is
        frozen, so identity is a sound cache key.
        """
        p = self.params
        if self._const_params is not p:
            self._const_params = p
            self._consts = (
                p.vth0_t, p.mu0_t, p.thermal_voltage,
                math.sqrt(p.phi), p.ec * p.l,
            )
        return self._consts

    # -- threshold and overdrive ------------------------------------------------

    def threshold(self, vbs=0.0, vds=0.0):
        """Threshold with body effect and DIBL."""
        p = self.params
        vbs = np.asarray(vbs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        arg = np.maximum(p.phi - vbs, 1e-12)
        return p.vth0_t + p.gamma * (np.sqrt(arg) - np.sqrt(p.phi)) - p.sigma * vds

    def effective_overdrive(self, vgs, vbs=0.0, vds=0.0):
        """BSIM-style smooth overdrive ``Vgsteff``.

        Tends to ``vgs - vth`` well above threshold and to an exponential
        (subthreshold) tail below it; strictly positive everywhere.
        """
        p = self.params
        vgst = np.asarray(vgs, dtype=float) - self.threshold(vbs, vds)
        x = vgst / (2.0 * p.n * p.thermal_voltage)
        # log1p(exp(x)) evaluated stably on both sides.
        soft = np.where(x > 0.0, x + np.log1p(np.exp(-np.abs(x))), np.log1p(np.exp(np.minimum(x, 0.0))))
        return 2.0 * p.n * p.thermal_voltage * soft

    def saturation_drain_voltage(self, vgs, vbs=0.0, vds=0.0):
        """Velocity-saturation-limited ``Vdsat = Vgsteff*EcL/(Vgsteff+EcL)``."""
        p = self.params
        vgsteff = self.effective_overdrive(vgs, vbs, vds)
        ecl = p.ec * p.l
        return vgsteff * ecl / (vgsteff + ecl)

    # -- drain current ----------------------------------------------------------

    def _ids_forward(self, vgs, vds, vbs):
        """Drain current for ``vds >= 0`` (element-wise arrays)."""
        p = self.params
        vgsteff = self.effective_overdrive(vgs, vbs, vds)
        ecl = p.ec * p.l
        vdsat = vgsteff * ecl / (vgsteff + ecl)

        # Smooth minimum of (vds, vdsat): the BSIM3 Vdseff expression.
        t = vdsat - vds - p.delta
        vdseff = vdsat - 0.5 * (t + np.sqrt(t * t + 4.0 * p.delta * vdsat))
        # Floating-point rounding can push vdseff infinitesimally below zero
        # at vds = 0, which would flip the sign of the (tiny) current.
        vdseff = np.maximum(vdseff, 0.0)

        mueff = p.mu0_t / (1.0 + p.theta * vgsteff)
        beta = mueff * p.cox * p.w / p.l
        core = beta * (vgsteff - 0.5 * vdseff) * vdseff / (1.0 + vdseff / ecl)
        clm = 1.0 + p.lam * np.maximum(vds - vdseff, 0.0)
        return core * clm

    def ids(self, vgs, vds, vbs=0.0):
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        forward = self._ids_forward(vgs, np.abs(vds), vbs)
        # Source/drain swap for vds < 0: gate and bulk referenced to the
        # electrical source, which is the terminal at lower potential.
        swapped = self._ids_forward(vgs - vds, np.abs(vds), vbs - vds)
        out = np.where(vds >= 0.0, forward, -swapped)
        if out.ndim == 0:
            return float(out)
        return out

    # -- scalar fast path --------------------------------------------------------

    def _ids_forward_scalar(self, vgs: float, vds: float, vbs: float) -> float:
        """Pure-``math`` twin of :meth:`_ids_forward` for one bias point.

        Same IEEE-double operations in the same order as the vectorized
        version, minus the per-call numpy broadcast/allocation overhead —
        the circuit simulator stamps through this tens of thousands of
        times per transient run.
        """
        p = self.params
        vth0_t, mu0_t, vt, sqrt_phi, ecl = self._scalar_consts()

        arg = p.phi - vbs
        if arg < 1e-12:
            arg = 1e-12
        vth = vth0_t + p.gamma * (math.sqrt(arg) - sqrt_phi) - p.sigma * vds

        x = (vgs - vth) / (2.0 * p.n * vt)
        if x > 0.0:
            soft = x + math.log1p(math.exp(-x))
        else:
            soft = math.log1p(math.exp(x))
        vgsteff = 2.0 * p.n * vt * soft

        vdsat = vgsteff * ecl / (vgsteff + ecl)
        t = vdsat - vds - p.delta
        vdseff = vdsat - 0.5 * (t + math.sqrt(t * t + 4.0 * p.delta * vdsat))
        if vdseff < 0.0:
            vdseff = 0.0

        mueff = mu0_t / (1.0 + p.theta * vgsteff)
        beta = mueff * p.cox * p.w / p.l
        core = beta * (vgsteff - 0.5 * vdseff) * vdseff / (1.0 + vdseff / ecl)
        over = vds - vdseff
        clm = 1.0 + p.lam * (over if over > 0.0 else 0.0)
        return core * clm

    def ids_scalar(self, vgs: float, vds: float, vbs: float = 0.0) -> float:
        if vds >= 0.0:
            return self._ids_forward_scalar(vgs, vds, vbs)
        return -self._ids_forward_scalar(vgs - vds, -vds, vbs - vds)
