"""Golden short-channel NMOS model standing in for HSPICE's BSIM3.

The paper validates every formula against HSPICE Level-49 (BSIM3) transient
runs on TSMC 0.18/0.25/0.35 um processes.  Those decks are proprietary, so
this module provides the substitution documented in DESIGN.md: an empirical
short-channel model with the physical ingredients that give BSIM3 its IV
*shape* in the SSN-relevant region:

* smooth subthreshold-to-strong-inversion transition (BSIM-style
  ``Vgsteff`` log-exp interpolation),
* body effect and drain-induced barrier lowering on the threshold,
* vertical-field mobility degradation,
* velocity saturation (this is what drags the effective alpha from 2 toward
  1 and makes ``Id`` vs ``Vg`` near-linear — the property ASDM exploits),
* a smooth effective drain voltage ``Vdseff`` so triode and saturation join
  with continuous derivatives (important for Newton convergence),
* channel-length modulation.

The model is C-inf smooth in all terminal voltages for ``vds >= 0`` and is
extended antisymmetrically for ``vds < 0`` (source/drain swap), so the
circuit simulator can evaluate it anywhere the Newton iteration wanders.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .base import MosfetModel, ensure_arrays

#: Thermal voltage kT/q at 300 K, volts.
THERMAL_VOLTAGE = 0.02585
#: Reference temperature for all parameter values, kelvin.
REFERENCE_TEMPERATURE = 300.0
#: Threshold temperature coefficient, V/K (typical NMOS: about -1 mV/K).
VTH_TEMP_COEFF = -1.0e-3
#: Mobility temperature exponent: mu ~ (T/T0)^-1.5 (phonon scattering).
MOBILITY_TEMP_EXPONENT = -1.5


@dataclasses.dataclass(frozen=True)
class BsimLikeParameters:
    """Parameters of the golden short-channel model.

    Attributes:
        vth0: zero-bias long-channel threshold voltage in volts.
        gamma: body-effect coefficient in sqrt(V).
        phi: surface potential in volts.
        sigma: DIBL coefficient (threshold shift per volt of vds).
        n: subthreshold ideality factor.
        mu0: low-field mobility in m^2/(V s).
        theta: vertical-field mobility degradation in 1/V.
        ec: velocity-saturation critical field in V/m.
        cox: gate-oxide capacitance per area in F/m^2.
        w: channel width in meters.
        l: channel length in meters.
        lam: channel-length-modulation coefficient in 1/V.
        delta: Vdseff smoothing parameter in volts.
        temperature: junction temperature in kelvin.  All other values are
            specified at 300 K; the model applies standard scalings
            (mobility ~ T^-1.5, Vth ~ -1 mV/K, thermal voltage ~ T).
    """

    vth0: float = 0.48
    gamma: float = 0.45
    phi: float = 0.85
    sigma: float = 0.02
    n: float = 1.4
    mu0: float = 0.032
    theta: float = 0.25
    ec: float = 5.0e6
    cox: float = 8.4e-3
    w: float = 10e-6
    l: float = 0.18e-6
    lam: float = 0.04
    delta: float = 0.02
    temperature: float = REFERENCE_TEMPERATURE

    def __post_init__(self):
        if self.w <= 0 or self.l <= 0:
            raise ValueError("channel width and length must be positive")
        if self.ec <= 0 or self.cox <= 0 or self.mu0 <= 0:
            raise ValueError("ec, cox and mu0 must be positive")
        if self.delta <= 0:
            raise ValueError("Vdseff smoothing delta must be positive")
        if not 150.0 <= self.temperature <= 500.0:
            raise ValueError("temperature must be a plausible junction value (150-500 K)")

    @property
    def vth0_t(self) -> float:
        """Threshold at the operating temperature."""
        return self.vth0 + VTH_TEMP_COEFF * (self.temperature - REFERENCE_TEMPERATURE)

    @property
    def mu0_t(self) -> float:
        """Low-field mobility at the operating temperature."""
        return self.mu0 * (self.temperature / REFERENCE_TEMPERATURE) ** MOBILITY_TEMP_EXPONENT

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the operating temperature."""
        return THERMAL_VOLTAGE * self.temperature / REFERENCE_TEMPERATURE

    def scaled(self, **overrides) -> "BsimLikeParameters":
        """A copy with the given fields replaced (e.g. ``scaled(w=60e-6)``)."""
        return dataclasses.replace(self, **overrides)


class BsimLikeMosfet(MosfetModel):
    """Golden NMOS device used as the HSPICE/BSIM3 substitute."""

    name = "bsim-like"

    def __init__(self, params: BsimLikeParameters | None = None):
        self.params = params or BsimLikeParameters()
        self._const_params = None
        self._consts = None
        self._aconst_params = None
        self._aconsts = None

    def _scalar_consts(self):
        """Temperature-derived constants, cached per parameter object.

        ``vth0_t``/``mu0_t``/``thermal_voltage`` are dataclass properties;
        recomputing them on every Newton stamp is measurable.  ``params`` is
        frozen, so identity is a sound cache key.
        """
        p = self.params
        if self._const_params is not p:
            self._const_params = p
            self._consts = (
                p.vth0_t, p.mu0_t, p.thermal_voltage,
                math.sqrt(p.phi), p.ec * p.l,
            )
        return self._consts

    def _array_consts(self):
        """Fused bias-independent constants of the vectorized current path.

        Unlike the scalar cache this one tolerates stacked ``(B,)``
        parameter fields (see :func:`stack_models`), so the vectorized
        current path shares one cache with batched ensembles.  Every
        product that does not involve a terminal voltage is folded here —
        the vectorized evaluation runs once per batched Newton iterate on
        small arrays, where each elementwise operation costs a fixed numpy
        dispatch overhead regardless of width.
        """
        p = self.params
        if self._aconst_params is not p:
            self._aconst_params = p
            ecl = p.ec * p.l
            two_nvt = 2.0 * p.n * p.thermal_voltage
            self._aconsts = (
                # threshold: vth = vth_base + gamma*sqrt(phi - vbs) - sigma*vds
                p.vth0_t - p.gamma * np.sqrt(p.phi),
                p.gamma,
                p.sigma,
                ecl,
                two_nvt,
                1.0 / two_nvt,
                4.0 * p.delta,
                p.delta,
                p.theta,
                # zero-degradation gain beta0 = mu0(T) * cox * w / l
                p.mu0_t * p.cox * p.w / p.l,
                1.0 / ecl,
                p.lam,
                p.phi,
            )
        return self._aconsts

    # -- threshold and overdrive ------------------------------------------------

    def threshold(self, vbs=0.0, vds=0.0):
        """Threshold with body effect and DIBL."""
        p = self.params
        vbs = np.asarray(vbs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        arg = np.maximum(p.phi - vbs, 1e-12)
        return p.vth0_t + p.gamma * (np.sqrt(arg) - np.sqrt(p.phi)) - p.sigma * vds

    def effective_overdrive(self, vgs, vbs=0.0, vds=0.0):
        """BSIM-style smooth overdrive ``Vgsteff``.

        Tends to ``vgs - vth`` well above threshold and to an exponential
        (subthreshold) tail below it; strictly positive everywhere.
        """
        p = self.params
        vgst = np.asarray(vgs, dtype=float) - self.threshold(vbs, vds)
        x = vgst / (2.0 * p.n * p.thermal_voltage)
        # log1p(exp(x)) evaluated stably on both sides.
        soft = np.where(x > 0.0, x + np.log1p(np.exp(-np.abs(x))), np.log1p(np.exp(np.minimum(x, 0.0))))
        return 2.0 * p.n * p.thermal_voltage * soft

    def saturation_drain_voltage(self, vgs, vbs=0.0, vds=0.0):
        """Velocity-saturation-limited ``Vdsat = Vgsteff*EcL/(Vgsteff+EcL)``."""
        p = self.params
        vgsteff = self.effective_overdrive(vgs, vbs, vds)
        ecl = p.ec * p.l
        return vgsteff * ecl / (vgsteff + ecl)

    # -- drain current ----------------------------------------------------------

    def _ids_forward(self, vgs, vds, vbs):
        """Drain current for ``vds >= 0`` (element-wise arrays).

        Inlines :meth:`threshold` / :meth:`effective_overdrive` with the
        fused constants of :meth:`_array_consts`: this runs once per
        batched Newton iterate on small arrays, where per-operation numpy
        dispatch dominates, so every redundant ``asarray``/property
        evaluation and every foldable product is measurable.  The
        arithmetic is the public methods' up to floating-point
        reassociation (``logaddexp`` for the stable softplus, reciprocal
        multiplies for the constant divisors) — differences are at
        rounding level, far inside every model and parity tolerance.
        """
        (vth_base, gamma, sigma, ecl, two_nvt, inv_two_nvt, four_delta,
         delta, theta, beta0, inv_ecl, lam, phi) = self._array_consts()
        arg = np.maximum(phi - vbs, 1e-12)
        vth = vth_base + gamma * np.sqrt(arg) - sigma * vds
        x = (vgs - vth) * inv_two_nvt
        # softplus log(1 + exp(x)), numerically stable on both sides.
        vgsteff = two_nvt * np.logaddexp(0.0, x)
        vdsat = vgsteff * ecl / (vgsteff + ecl)

        # Smooth minimum of (vds, vdsat): the BSIM3 Vdseff expression.
        t = vdsat - vds - delta
        vdseff = vdsat - 0.5 * (t + np.sqrt(t * t + four_delta * vdsat))
        # Floating-point rounding can push vdseff infinitesimally below zero
        # at vds = 0, which would flip the sign of the (tiny) current.
        vdseff = np.maximum(vdseff, 0.0)

        beta = beta0 / (1.0 + theta * vgsteff)
        core = beta * (vgsteff - 0.5 * vdseff) * vdseff / (1.0 + vdseff * inv_ecl)
        clm = 1.0 + lam * np.maximum(vds - vdseff, 0.0)
        return core * clm

    def ids(self, vgs, vds, vbs=0.0):
        if not (
            type(vgs) is np.ndarray and vgs.dtype == np.float64
            and type(vds) is np.ndarray and vds.dtype == np.float64
            and type(vbs) is np.ndarray and vbs.dtype == np.float64
            and vgs.shape == vds.shape == vbs.shape
        ):
            vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        if vds.size and vds.min() >= 0.0:
            # All-forward fast path: the swapped branch would be discarded
            # element-for-element by the np.where below, so skip computing
            # it.  Batched Newton iterates land here almost always (the SSN
            # drivers never see a reversed channel), halving device cost.
            out = self._ids_forward(vgs, vds, vbs)
            if out.ndim == 0:
                return float(out)
            return out
        forward = self._ids_forward(vgs, np.abs(vds), vbs)
        # Source/drain swap for vds < 0: gate and bulk referenced to the
        # electrical source, which is the terminal at lower potential.
        swapped = self._ids_forward(vgs - vds, np.abs(vds), vbs - vds)
        out = np.where(vds >= 0.0, forward, -swapped)
        if out.ndim == 0:
            return float(out)
        return out

    # -- scalar fast path --------------------------------------------------------

    def _ids_forward_scalar(self, vgs: float, vds: float, vbs: float) -> float:
        """Pure-``math`` twin of :meth:`_ids_forward` for one bias point.

        Same IEEE-double operations in the same order as the vectorized
        version, minus the per-call numpy broadcast/allocation overhead —
        the circuit simulator stamps through this tens of thousands of
        times per transient run.
        """
        p = self.params
        vth0_t, mu0_t, vt, sqrt_phi, ecl = self._scalar_consts()

        arg = p.phi - vbs
        if arg < 1e-12:
            arg = 1e-12
        vth = vth0_t + p.gamma * (math.sqrt(arg) - sqrt_phi) - p.sigma * vds

        x = (vgs - vth) / (2.0 * p.n * vt)
        if x > 0.0:
            soft = x + math.log1p(math.exp(-x))
        else:
            soft = math.log1p(math.exp(x))
        vgsteff = 2.0 * p.n * vt * soft

        vdsat = vgsteff * ecl / (vgsteff + ecl)
        t = vdsat - vds - p.delta
        vdseff = vdsat - 0.5 * (t + math.sqrt(t * t + 4.0 * p.delta * vdsat))
        if vdseff < 0.0:
            vdseff = 0.0

        mueff = mu0_t / (1.0 + p.theta * vgsteff)
        beta = mueff * p.cox * p.w / p.l
        core = beta * (vgsteff - 0.5 * vdseff) * vdseff / (1.0 + vdseff / ecl)
        over = vds - vdseff
        clm = 1.0 + p.lam * (over if over > 0.0 else 0.0)
        return core * clm

    def ids_scalar(self, vgs: float, vds: float, vbs: float = 0.0) -> float:
        if vds >= 0.0:
            return self._ids_forward_scalar(vgs, vds, vbs)
        return -self._ids_forward_scalar(vgs - vds, -vds, vbs - vds)


def stack_models(models) -> BsimLikeMosfet:
    """One model evaluating B golden devices elementwise over the instance axis.

    Builds a :class:`BsimLikeMosfet` whose parameter fields are ``(B,)``
    arrays (one entry per input model), so every elementwise expression in
    the model broadcasts across the instance axis: ``stacked.ids(vgs, vds,
    vbs)`` with ``(B,)`` bias arrays returns the per-instance currents of B
    *different* devices in one vectorized pass.  This is the device half of
    the batched ensemble engine (:mod:`repro.spice.batch`): a driver-count
    sweep stacks B drivers that differ only in width, a Monte Carlo fleet
    stacks B process perturbations.

    Fields that are identical across all inputs stay scalars (the common
    case for everything except ``w``), keeping the broadcast cheap.  The
    parameter container is assembled field-by-field because each input was
    already validated by ``BsimLikeParameters.__post_init__``; the array
    container itself never passes through validation (its comparisons are
    not array-safe).

    Args:
        models: sequence of :class:`BsimLikeMosfet` instances (length >= 1).

    Returns:
        The stacked model.  With a single input model, that model itself.

    Raises:
        TypeError: if any input is not a :class:`BsimLikeMosfet`.
        ValueError: on an empty sequence.
    """
    models = list(models)
    if not models:
        raise ValueError("stack_models needs at least one model")
    for m in models:
        if not isinstance(m, BsimLikeMosfet):
            raise TypeError(
                f"stack_models supports BsimLikeMosfet only, got {type(m).__name__}"
            )
    if len(models) == 1:
        return models[0]
    stacked = object.__new__(BsimLikeParameters)
    for f in dataclasses.fields(BsimLikeParameters):
        values = [getattr(m.params, f.name) for m in models]
        first = values[0]
        if all(v == first for v in values[1:]):
            object.__setattr__(stacked, f.name, first)
        else:
            object.__setattr__(stacked, f.name, np.array(values, dtype=float))
    return BsimLikeMosfet(stacked)
