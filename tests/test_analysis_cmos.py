"""Tests for the two-rail CMOS driver-bank harness."""

import dataclasses

import pytest

from repro.analysis import CmosDriverBankSpec, build_cmos_driver_bank, simulate_cmos
from repro.packaging import PGA
from repro.process import TSMC018


@pytest.fixture
def spec():
    return CmosDriverBankSpec(
        technology=TSMC018, n_drivers=2, ground=PGA.pin, power=PGA.pin, edge="rise"
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="edge"):
            CmosDriverBankSpec(
                technology=TSMC018, n_drivers=2, ground=PGA.pin, power=PGA.pin,
                edge="sideways",
            )
        with pytest.raises(ValueError):
            CmosDriverBankSpec(
                technology=TSMC018, n_drivers=0, ground=PGA.pin, power=PGA.pin
            )
        with pytest.raises(ValueError, match="at least one"):
            CmosDriverBankSpec(
                technology=TSMC018, n_drivers=2, ground=PGA.pin, power=PGA.pin,
                include_pullup=False, include_pulldown=False,
            )


class TestBuild:
    def test_both_devices_present(self, spec):
        circuit = build_cmos_driver_bank(spec)
        names = {el.name for el in circuit.elements}
        assert {"Mn1", "Mp1", "Lvdd", "Lgnd", "Cvdd", "Cgnd", "Vin", "Vdd"} <= names

    def test_pullup_omitted_on_request(self, spec):
        circuit = build_cmos_driver_bank(dataclasses.replace(spec, include_pullup=False))
        names = {el.name for el in circuit.elements}
        assert "Mp1" not in names
        assert "Mn1" in names

    def test_falling_edge_load_starts_low(self, spec):
        circuit = build_cmos_driver_bank(dataclasses.replace(spec, edge="fall"))
        assert circuit.element("CL1").ic == 0.0

    def test_rising_edge_load_starts_high(self, spec):
        circuit = build_cmos_driver_bank(spec)
        assert circuit.element("CL1").ic == pytest.approx(TSMC018.vdd)


class TestSimulation:
    @pytest.fixture(scope="class")
    def rise_sim(self):
        spec = CmosDriverBankSpec(
            technology=TSMC018, n_drivers=2, ground=PGA.pin, power=PGA.pin, edge="rise"
        )
        return simulate_cmos(spec)

    @pytest.fixture(scope="class")
    def fall_sim(self):
        spec = CmosDriverBankSpec(
            technology=TSMC018, n_drivers=2, ground=PGA.pin, power=PGA.pin, edge="fall"
        )
        return simulate_cmos(spec)

    def test_rising_edge_bounces_ground(self, rise_sim):
        assert rise_sim.peak_ground_bounce > 0.1
        assert rise_sim.peak_vdd_droop < 0.3 * rise_sim.peak_ground_bounce

    def test_falling_edge_droops_rail(self, fall_sim):
        assert fall_sim.peak_vdd_droop > 0.1
        assert fall_sim.peak_ground_bounce < 0.3 * fall_sim.peak_vdd_droop

    def test_output_transitions(self, rise_sim, fall_sim):
        # The pads move toward the opposite rail; with 10 pF loads and 1x
        # drivers only part of the swing completes within the short run.
        vdd = TSMC018.vdd
        assert rise_sim.output_voltage.value_at(0.0) == pytest.approx(vdd, abs=0.05)
        assert rise_sim.output_voltage.y[-1] < vdd - 0.3
        assert fall_sim.output_voltage.value_at(0.0) == pytest.approx(0.0, abs=0.05)
        assert fall_sim.output_voltage.y[-1] > 0.3

    def test_matches_nmos_only_bank(self, rise_sim):
        """Rising-edge ground bounce ~ the single-rail harness result."""
        from repro.analysis import DriverBankSpec, simulate_ssn

        single = simulate_ssn(
            DriverBankSpec(
                technology=TSMC018, n_drivers=2, inductance=PGA.pin.inductance,
                capacitance=PGA.pin.capacitance, rise_time=0.5e-9,
            )
        )
        assert rise_sim.peak_ground_bounce == pytest.approx(single.peak_voltage, rel=0.02)
