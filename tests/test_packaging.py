"""Unit tests for package parasitic models."""

import pytest

from repro.packaging import PGA, GroundPathParasitics, get_package, list_packages


class TestGroundPath:
    def test_paper_pga_values(self):
        """The paper's quoted PGA numbers: 5 nH, 1 pF, 10 mOhm."""
        assert PGA.pin.inductance == pytest.approx(5e-9)
        assert PGA.pin.capacitance == pytest.approx(1e-12)
        assert PGA.pin.resistance == pytest.approx(10e-3)

    def test_parallel_pads_transformation(self):
        two = PGA.pin.with_pads(2)
        assert two.inductance == pytest.approx(PGA.pin.inductance / 2)
        assert two.capacitance == pytest.approx(PGA.pin.capacitance * 2)
        assert two.resistance == pytest.approx(PGA.pin.resistance / 2)

    def test_one_pad_identity(self):
        assert PGA.pin.with_pads(1) == PGA.pin

    def test_invalid_pad_count(self):
        with pytest.raises(ValueError):
            PGA.pin.with_pads(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroundPathParasitics(inductance=0.0, capacitance=1e-12, resistance=0.0)
        with pytest.raises(ValueError):
            GroundPathParasitics(inductance=1e-9, capacitance=1e-12, resistance=-1.0)


class TestRegistry:
    def test_known_packages(self):
        assert list_packages() == ["bga", "pga", "qfp", "wirebond"]

    def test_lookup(self):
        assert get_package("pga") is PGA

    def test_unknown_package(self):
        with pytest.raises(KeyError, match="wirebond"):
            get_package("dip")

    def test_ground_path_delegates(self):
        path = get_package("bga").ground_path(pads=4)
        assert path.inductance == pytest.approx(get_package("bga").pin.inductance / 4)

    def test_bga_lower_inductance_than_qfp(self):
        assert get_package("bga").pin.inductance < get_package("qfp").pin.inductance
