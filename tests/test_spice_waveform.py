"""Unit tests for the Waveform container."""

import numpy as np
import pytest

from repro.spice import Waveform


@pytest.fixture
def ramp():
    t = np.linspace(0, 1, 11)
    return Waveform(t, 2 * t)


@pytest.fixture
def ringing():
    t = np.linspace(0, 4 * np.pi, 1000)
    return Waveform(t, np.exp(-0.1 * t) * np.sin(t))


class TestConstruction:
    def test_length(self, ramp):
        assert len(ramp) == 11

    def test_span(self, ramp):
        assert ramp.tstart == 0.0
        assert ramp.tstop == 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(3), np.arange(4))

    def test_rejects_non_monotone_time(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([1.0]))


class TestQueries:
    def test_interpolation(self, ramp):
        assert ramp.value_at(0.25) == pytest.approx(0.5)

    def test_interpolation_clamps(self, ramp):
        assert ramp.value_at(-1.0) == 0.0
        assert ramp.value_at(2.0) == 2.0

    def test_vectorized_value_at(self, ramp):
        out = ramp.value_at(np.array([0.1, 0.2]))
        assert out == pytest.approx([0.2, 0.4])

    def test_window(self, ringing):
        win = ringing.window(1.0, 2.0)
        assert win.tstart == pytest.approx(1.0)
        assert win.tstop == pytest.approx(2.0)
        assert win.value_at(1.5) == pytest.approx(ringing.value_at(1.5), abs=1e-6)

    def test_window_invalid(self, ringing):
        with pytest.raises(ValueError):
            ringing.window(2.0, 1.0)


class TestExtrema:
    def test_peak_of_damped_sine(self, ringing):
        # d/dt[e^{-0.1t} sin t] = 0 at tan t = 10.
        t_star = np.arctan(10.0)
        t_peak, v_peak = ringing.peak()
        assert t_peak == pytest.approx(t_star, abs=0.02)
        assert v_peak == pytest.approx(np.exp(-0.1 * t_star) * np.sin(t_star), abs=1e-3)

    def test_trough(self, ringing):
        t_min, v_min = ringing.trough()
        assert t_min == pytest.approx(np.arctan(10.0) + np.pi, abs=0.02)
        assert v_min < 0

    def test_local_maxima_count(self, ringing):
        maxima = ringing.local_maxima()
        assert len(maxima) == 2  # peaks at pi/2 and pi/2 + 2pi

    def test_local_maxima_decreasing(self, ringing):
        values = [v for _, v in ringing.local_maxima()]
        assert values[0] > values[1]


class TestCalculus:
    def test_derivative_of_ramp(self, ramp):
        d = ramp.derivative()
        assert np.allclose(d.y, 2.0)

    def test_integral_of_ramp(self, ramp):
        assert ramp.integral() == pytest.approx(1.0)

    def test_resample(self, ramp):
        r = ramp.resample(np.linspace(0, 1, 5))
        assert len(r) == 5
        assert r.value_at(0.5) == pytest.approx(1.0)

    def test_rms_difference_zero_against_self(self, ringing):
        assert ringing.rms_difference(ringing) == 0.0

    def test_max_abs_difference(self, ramp):
        other = Waveform(ramp.t, ramp.y + 0.5)
        assert ramp.max_abs_difference(other) == pytest.approx(0.5)
