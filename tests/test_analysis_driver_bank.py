"""Unit tests for the SSN validation-circuit builder."""

import dataclasses

import pytest

from repro.analysis import DriverBankSpec, build_driver_bank
from repro.analysis.driver_bank import (
    CAPACITOR_NAME,
    GROUND_BOUNCE_NODE,
    INDUCTOR_NAME,
    RESISTOR_NAME,
)


@pytest.fixture
def spec(tech018):
    return DriverBankSpec(
        technology=tech018, n_drivers=4, inductance=5e-9, rise_time=0.5e-9
    )


class TestSpec:
    def test_slope(self, spec):
        assert spec.slope == pytest.approx(1.8 / 0.5e-9)

    def test_driver_names_collapsed(self, spec):
        assert spec.driver_names() == ["M1"]

    def test_driver_names_explicit(self, spec):
        explicit = dataclasses.replace(spec, collapse=False)
        assert explicit.driver_names() == ["M1", "M2", "M3", "M4"]

    def test_validation(self, tech018):
        with pytest.raises(ValueError):
            DriverBankSpec(technology=tech018, n_drivers=0, inductance=5e-9, rise_time=1e-9)
        with pytest.raises(ValueError):
            DriverBankSpec(technology=tech018, n_drivers=1, inductance=-1e-9, rise_time=1e-9)
        with pytest.raises(ValueError):
            DriverBankSpec(
                technology=tech018, n_drivers=1, inductance=5e-9, rise_time=1e-9,
                capacitance=0.0,
            )
        with pytest.raises(ValueError):
            DriverBankSpec(
                technology=tech018, n_drivers=1, inductance=5e-9, rise_time=1e-9,
                resistance=-1.0,
            )


class TestBuild:
    def test_l_only_topology(self, spec):
        circuit = build_driver_bank(spec)
        names = {el.name for el in circuit.elements}
        assert INDUCTOR_NAME in names
        assert CAPACITOR_NAME not in names
        assert RESISTOR_NAME not in names
        assert "M1" in names
        assert "Vin" in names

    def test_capacitor_included_when_specified(self, spec):
        circuit = build_driver_bank(dataclasses.replace(spec, capacitance=1e-12))
        assert CAPACITOR_NAME in {el.name for el in circuit.elements}

    def test_resistor_in_series_when_specified(self, spec):
        circuit = build_driver_bank(dataclasses.replace(spec, resistance=10e-3))
        names = {el.name for el in circuit.elements}
        assert RESISTOR_NAME in names
        # The inductor must no longer terminate at true ground.
        inductor = circuit.element(INDUCTOR_NAME)
        assert inductor.nodes[1] != 0

    def test_collapsed_device_width(self, spec):
        circuit = build_driver_bank(spec)
        device = circuit.element("M1").model
        expected = spec.technology.reference_width * spec.n_drivers
        assert device.params.w == pytest.approx(expected)

    def test_collapsed_load_scaled(self, spec):
        circuit = build_driver_bank(spec)
        assert circuit.element("CL1").farads == pytest.approx(
            spec.load_capacitance * spec.n_drivers
        )

    def test_explicit_builds_n_devices(self, spec):
        circuit = build_driver_bank(dataclasses.replace(spec, collapse=False))
        mosfets = [el.name for el in circuit.elements if el.name.startswith("M")]
        assert len(mosfets) == 4

    def test_sources_and_bulks_on_bounce_node(self, spec):
        circuit = build_driver_bank(spec)
        m = circuit.element("M1")
        ssn = circuit.node_id(GROUND_BOUNCE_NODE)
        _, _, source, bulk = m.nodes
        assert source == ssn
        assert bulk == ssn

    def test_loads_initially_charged_to_vdd(self, spec):
        circuit = build_driver_bank(spec)
        assert circuit.element("CL1").ic == pytest.approx(spec.technology.vdd)
