"""Unit tests for source waveform shapes."""

import pytest

from repro.spice import Dc, Pulse, Pwl, Ramp


class TestDc:
    def test_constant(self):
        src = Dc(1.8)
        assert src(0.0) == 1.8
        assert src(1e9) == 1.8

    def test_no_breakpoints(self):
        assert Dc(1.0).breakpoints() == []


class TestRamp:
    def test_shape(self):
        r = Ramp(0.0, 1.8, t_start=1e-9, t_rise=0.5e-9)
        assert r(0.0) == 0.0
        assert r(1e-9) == 0.0
        assert r(1.25e-9) == pytest.approx(0.9)
        assert r(1.5e-9) == pytest.approx(1.8)
        assert r(10e-9) == 1.8

    def test_slope(self):
        r = Ramp(0.0, 1.8, 0.0, 0.5e-9)
        assert r.slope == pytest.approx(3.6e9)

    def test_breakpoints(self):
        r = Ramp(0.0, 1.8, 1e-9, 0.5e-9)
        assert r.breakpoints() == pytest.approx([1e-9, 1.5e-9])

    def test_falling_ramp(self):
        r = Ramp(1.8, 0.0, 0.0, 1e-9)
        assert r(0.5e-9) == pytest.approx(0.9)

    def test_zero_rise_rejected(self):
        with pytest.raises(ValueError):
            Ramp(0, 1, 0, 0.0)


class TestPulse:
    @pytest.fixture
    def pulse(self):
        return Pulse(v0=0.0, v1=1.0, delay=1.0, rise=0.5, width=2.0, fall=0.5)

    def test_phases(self, pulse):
        assert pulse(0.5) == 0.0
        assert pulse(1.25) == pytest.approx(0.5)
        assert pulse(2.0) == 1.0
        assert pulse(3.75) == pytest.approx(0.5)
        assert pulse(10.0) == 0.0

    def test_breakpoints(self, pulse):
        assert pulse.breakpoints() == pytest.approx([1.0, 1.5, 3.5, 4.0])

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, 0, rise=0.0, width=1, fall=1)


class TestPwl:
    def test_interpolation(self):
        src = Pwl([(0, 0), (1, 2), (3, 2), (4, 0)])
        assert src(0.5) == pytest.approx(1.0)
        assert src(2.0) == pytest.approx(2.0)
        assert src(3.5) == pytest.approx(1.0)

    def test_flat_outside(self):
        src = Pwl([(1, 5), (2, 7)])
        assert src(0.0) == 5.0
        assert src(3.0) == 7.0

    def test_breakpoints(self):
        src = Pwl([(0, 0), (1, 1)])
        assert src.breakpoints() == [0.0, 1.0]

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            Pwl([(0, 0)])

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError):
            Pwl([(0, 0), (0, 1)])
