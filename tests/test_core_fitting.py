"""Unit tests for model parameter extraction."""

import numpy as np
import pytest

from repro.core import (
    AsdmParameters,
    fit_alpha_power,
    fit_asdm,
    fit_square_law,
)
from repro.devices import (
    AlphaPowerMosfet,
    AlphaPowerParameters,
    IvSurface,
    Level1Mosfet,
    Level1Parameters,
    sweep_id_vg,
)


def surface_from_asdm(params: AsdmParameters, vdd=1.8) -> IvSurface:
    """Synthesize an exactly-linear IV surface from known ASDM parameters."""
    vg = np.arange(0.0, vdd + 1e-12, 0.02)
    vs = np.arange(0.0, 0.81, 0.2)
    vg_grid, vs_grid = np.meshgrid(vg, vs)
    ids = params.drain_current(vg_grid, vs_grid)
    return IvSurface(vg=vg, vs=vs, ids=ids, vdd=vdd)


class TestFitAsdm:
    def test_recovers_exact_parameters(self):
        truth = AsdmParameters(k=4.2e-3, v0=0.63, lam=1.05)
        fitted, report = fit_asdm(surface_from_asdm(truth))
        assert fitted.k == pytest.approx(truth.k, rel=1e-6)
        assert fitted.v0 == pytest.approx(truth.v0, rel=1e-4)
        assert fitted.lam == pytest.approx(truth.lam, rel=1e-4)
        assert report.max_relative_error < 1e-9

    def test_golden_device_fit_quality(self, models018):
        """Paper Fig. 1: a few percent max error in the strongly-on region."""
        assert models018.asdm_report.max_relative_error < 0.06

    def test_v0_exceeds_device_threshold(self, models018):
        """The paper's headline observation: V0 (0.61 V) > Vth (~0.5 V)."""
        assert models018.asdm.v0 > models018.technology.nmos.vth0 + 0.05

    def test_lambda_exceeds_one(self, models018):
        assert models018.asdm.lam > 1.0

    def test_floor_validation(self, models018):
        surface = sweep_id_vg(models018.technology.driver_device(), 1.8)
        with pytest.raises(ValueError):
            fit_asdm(surface, floor_fraction=0.0)
        with pytest.raises(ValueError):
            fit_asdm(surface, floor_fraction=1.0)

    def test_report_counts_points(self):
        truth = AsdmParameters(k=4e-3, v0=0.6, lam=1.0)
        _, report = fit_asdm(surface_from_asdm(truth))
        assert report.n_points > 100


class TestFitAlphaPower:
    def test_recovers_synthetic_law(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(b=400.0, alpha=1.25, vth=0.5, w=10e-6))
        surface = sweep_id_vg(dev, 1.8)
        fitted, report = fit_alpha_power(surface)
        assert fitted.alpha == pytest.approx(1.25, abs=0.02)
        assert fitted.vth == pytest.approx(0.5, abs=0.02)
        assert fitted.b == pytest.approx(400.0 * 10e-6, rel=0.05)
        assert report.max_relative_error < 0.01

    def test_golden_device_alpha_short_channel(self, models018):
        """The golden device must look short-channel: alpha well below 2."""
        assert 1.0 < models018.alpha_power.alpha < 1.5

    def test_transconductance_derivative(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(b=400.0, alpha=1.3, vth=0.5))
        surface = sweep_id_vg(dev, 1.8)
        fitted, _ = fit_alpha_power(surface)
        h = 1e-5
        numeric = (fitted.saturation_current(1.5 + h) - fitted.saturation_current(1.5 - h)) / (2 * h)
        assert float(fitted.transconductance(1.5)) == pytest.approx(float(numeric), rel=1e-5)


class TestFitSquareLaw:
    def test_recovers_synthetic_square_law(self):
        params = Level1Parameters(kp=150e-6, w=20e-6, l=1e-6, vth0=0.55, lam=0.0, gamma=0.0)
        surface = sweep_id_vg(Level1Mosfet(params), 1.8)
        fitted, report = fit_square_law(surface)
        beta_true = params.kp * params.w / params.l
        assert fitted.beta == pytest.approx(beta_true, rel=1e-6)
        assert fitted.vth == pytest.approx(0.55, abs=1e-6)
        assert report.max_relative_error < 1e-9

    def test_saturation_current_shape(self, models018):
        sq = models018.square_law
        assert float(sq.saturation_current(sq.vth - 0.1)) == 0.0
        assert float(sq.saturation_current(sq.vth + 1.0)) > 0.0
