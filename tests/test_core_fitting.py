"""Unit tests for model parameter extraction."""

import numpy as np
import pytest

from repro.core import (
    AsdmParameters,
    fit_alpha_power,
    fit_asdm,
    fit_square_law,
)
from repro.devices import (
    AlphaPowerMosfet,
    AlphaPowerParameters,
    IvSurface,
    Level1Mosfet,
    Level1Parameters,
    sweep_id_vg,
)


def surface_from_asdm(params: AsdmParameters, vdd=1.8) -> IvSurface:
    """Synthesize an exactly-linear IV surface from known ASDM parameters."""
    vg = np.arange(0.0, vdd + 1e-12, 0.02)
    vs = np.arange(0.0, 0.81, 0.2)
    vg_grid, vs_grid = np.meshgrid(vg, vs)
    ids = params.drain_current(vg_grid, vs_grid)
    return IvSurface(vg=vg, vs=vs, ids=ids, vdd=vdd)


class TestFitAsdm:
    def test_recovers_exact_parameters(self):
        truth = AsdmParameters(k=4.2e-3, v0=0.63, lam=1.05)
        fitted, report = fit_asdm(surface_from_asdm(truth))
        assert fitted.k == pytest.approx(truth.k, rel=1e-6)
        assert fitted.v0 == pytest.approx(truth.v0, rel=1e-4)
        assert fitted.lam == pytest.approx(truth.lam, rel=1e-4)
        assert report.max_relative_error < 1e-9

    def test_golden_device_fit_quality(self, models018):
        """Paper Fig. 1: a few percent max error in the strongly-on region."""
        assert models018.asdm_report.max_relative_error < 0.06

    def test_v0_exceeds_device_threshold(self, models018):
        """The paper's headline observation: V0 (0.61 V) > Vth (~0.5 V)."""
        assert models018.asdm.v0 > models018.technology.nmos.vth0 + 0.05

    def test_lambda_exceeds_one(self, models018):
        assert models018.asdm.lam > 1.0

    def test_floor_validation(self, models018):
        surface = sweep_id_vg(models018.technology.driver_device(), 1.8)
        with pytest.raises(ValueError):
            fit_asdm(surface, floor_fraction=0.0)
        with pytest.raises(ValueError):
            fit_asdm(surface, floor_fraction=1.0)

    def test_report_counts_points(self):
        truth = AsdmParameters(k=4e-3, v0=0.6, lam=1.0)
        _, report = fit_asdm(surface_from_asdm(truth))
        assert report.n_points > 100


class TestFitAlphaPower:
    def test_recovers_synthetic_law(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(b=400.0, alpha=1.25, vth=0.5, w=10e-6))
        surface = sweep_id_vg(dev, 1.8)
        fitted, report = fit_alpha_power(surface)
        assert fitted.alpha == pytest.approx(1.25, abs=0.02)
        assert fitted.vth == pytest.approx(0.5, abs=0.02)
        assert fitted.b == pytest.approx(400.0 * 10e-6, rel=0.05)
        assert report.max_relative_error < 0.01

    def test_golden_device_alpha_short_channel(self, models018):
        """The golden device must look short-channel: alpha well below 2."""
        assert 1.0 < models018.alpha_power.alpha < 1.5

    def test_transconductance_derivative(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(b=400.0, alpha=1.3, vth=0.5))
        surface = sweep_id_vg(dev, 1.8)
        fitted, _ = fit_alpha_power(surface)
        h = 1e-5
        numeric = (fitted.saturation_current(1.5 + h) - fitted.saturation_current(1.5 - h)) / (2 * h)
        assert float(fitted.transconductance(1.5)) == pytest.approx(float(numeric), rel=1e-5)


class TestFitSquareLaw:
    def test_recovers_synthetic_square_law(self):
        params = Level1Parameters(kp=150e-6, w=20e-6, l=1e-6, vth0=0.55, lam=0.0, gamma=0.0)
        surface = sweep_id_vg(Level1Mosfet(params), 1.8)
        fitted, report = fit_square_law(surface)
        beta_true = params.kp * params.w / params.l
        assert fitted.beta == pytest.approx(beta_true, rel=1e-6)
        assert fitted.vth == pytest.approx(0.55, abs=1e-6)
        assert report.max_relative_error < 1e-9

    def test_saturation_current_shape(self, models018):
        sq = models018.square_law
        assert float(sq.saturation_current(sq.vth - 0.1)) == 0.0
        assert float(sq.saturation_current(sq.vth + 1.0)) > 0.0


def ideal_surface(law, vdd=1.8) -> IvSurface:
    """A surface synthesized directly from a closed-form law — no device.

    The ``vs`` rows all carry the same curve (the baselines ignore body
    effect), so the fitters see ideal, noiseless data.
    """
    vg = np.arange(0.0, vdd + 1e-12, 0.01)
    vs = np.array([0.0, 0.2, 0.4])
    ids = np.tile(law(vg), (len(vs), 1))
    return IvSurface(vg=vg, vs=vs, ids=ids, vdd=vdd)


class TestIdealSurfaceRoundTrips:
    """Generating parameters in, generating parameters out — no device model."""

    def test_alpha_power_round_trip(self):
        b, vth, alpha = 3.5e-3, 0.48, 1.32
        surface = ideal_surface(
            lambda vg: b * np.power(np.maximum(vg - vth, 0.0), alpha))
        fitted, report = fit_alpha_power(surface)
        assert fitted.b == pytest.approx(b, rel=1e-4)
        assert fitted.vth == pytest.approx(vth, abs=1e-4)
        assert fitted.alpha == pytest.approx(alpha, abs=1e-3)
        assert report.max_relative_error < 1e-4

    def test_square_law_round_trip(self):
        beta, vth = 6.0e-3, 0.52
        surface = ideal_surface(
            lambda vg: 0.5 * beta * np.square(np.maximum(vg - vth, 0.0)))
        fitted, report = fit_square_law(surface)
        assert fitted.beta == pytest.approx(beta, rel=1e-6)
        assert fitted.vth == pytest.approx(vth, abs=1e-6)
        assert report.max_relative_error < 1e-9

    def test_asdm_round_trip_from_raw_arrays(self):
        truth = AsdmParameters(k=5.1e-3, v0=0.58, lam=1.12)
        fitted, report = fit_asdm(surface_from_asdm(truth))
        for got, want in [(fitted.k, truth.k), (fitted.v0, truth.v0),
                          (fitted.lam, truth.lam)]:
            assert got == pytest.approx(want, rel=1e-4)
        assert np.isfinite([fitted.k, fitted.v0, fitted.lam]).all()
        assert report.n_points > 0


class TestRetentionEdge:
    """floor_fraction edge cases must raise cleanly, never emit NaNs."""

    def test_all_points_excluded_raises(self):
        # A constant surface: every sample equals the peak, so a floor
        # just below 1.0 retains everything — but a peak of zero retains
        # nothing anywhere.
        vg = np.linspace(0.0, 1.8, 10)
        vs = np.array([0.0])
        surface = IvSurface(vg=vg, vs=vs, ids=np.zeros((1, 10)), vdd=1.8)
        with pytest.raises(ValueError, match="too few strongly-on"):
            fit_asdm(surface, floor_fraction=0.5)

    def test_near_unity_floor_raises_not_nan(self):
        truth = AsdmParameters(k=4e-3, v0=0.6, lam=1.0)
        surface = surface_from_asdm(truth)
        with pytest.raises(ValueError, match="too few strongly-on"):
            # Only the single peak sample survives a floor this high.
            fit_asdm(surface, floor_fraction=0.999999)

    def test_single_point_surface_raises(self):
        surface = IvSurface(vg=np.array([1.8]), vs=np.array([0.0]),
                            ids=np.array([[1e-3]]), vdd=1.8)
        with pytest.raises(ValueError, match="too few strongly-on"):
            fit_asdm(surface)

    def test_alpha_power_thin_curve_raises(self):
        vg = np.linspace(0.0, 1.8, 20)
        ids = np.where(vg > 1.75, 1e-3, 1e-9)  # two points above any floor
        surface = IvSurface(vg=vg, vs=np.array([0.0]),
                            ids=ids[None, :], vdd=1.8)
        with pytest.raises(ValueError, match="too few points"):
            fit_alpha_power(surface)

    def test_square_law_thin_curve_raises(self):
        vg = np.linspace(0.0, 1.8, 20)
        ids = np.where(vg > 1.75, 1e-3, 1e-9)
        surface = IvSurface(vg=vg, vs=np.array([0.0]),
                            ids=ids[None, :], vdd=1.8)
        with pytest.raises(ValueError, match="too few points"):
            fit_square_law(surface)

    def test_degenerate_negative_slope_raises(self):
        # Currents *fall* with Vg: the lstsq slope goes negative and the
        # fit must refuse rather than return an unphysical K.
        vg = np.linspace(0.5, 1.8, 30)
        vs = np.array([0.0, 0.2])
        ids = np.tile(np.linspace(2e-3, 1e-3, 30), (2, 1))
        surface = IvSurface(vg=vg, vs=vs, ids=ids, vdd=1.8)
        with pytest.raises(ValueError, match="non-positive transconductance"):
            fit_asdm(surface, floor_fraction=0.01)

    def test_square_law_negative_slope_raises(self):
        vg = np.linspace(0.5, 1.8, 30)
        ids = np.linspace(2e-3, 1e-3, 30)
        surface = IvSurface(vg=vg, vs=np.array([0.0]),
                            ids=ids[None, :], vdd=1.8)
        with pytest.raises(ValueError, match="non-positive slope"):
            fit_square_law(surface, floor_fraction=0.01)
