"""Unit tests for the analytic peak-SSN sensitivities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AsdmParameters, circuit_figure, peak_noise_from_figure
from repro.core.sensitivity import linear_noise_spread, peak_sensitivities


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


ARGS = dict(n_drivers=8, inductance=5e-9, vdd=1.8, rise_time=0.5e-9)


def numeric_partial(params, key, h_rel=1e-6, **kwargs):
    """Central finite difference of Vmax w.r.t. one argument or parameter."""
    import dataclasses

    def vmax(p, kw):
        z = circuit_figure(kw["n_drivers"], kw["inductance"], kw["vdd"] / kw["rise_time"])
        return peak_noise_from_figure(z, p, kw["vdd"])

    base = dict(ARGS, **kwargs)
    if key in base:
        x = base[key]
        h = abs(x) * h_rel
        hi = dict(base, **{key: x + h})
        lo = dict(base, **{key: x - h})
        return (vmax(params, hi) - vmax(params, lo)) / (2 * h)
    x = getattr(params, key)
    h = abs(x) * h_rel
    hi = dataclasses.replace(params, **{key: x + h})
    lo = dataclasses.replace(params, **{key: x - h})
    return (vmax(hi, base) - vmax(lo, base)) / (2 * h)


class TestPartials:
    def test_vmax_matches_eqn10(self, params):
        s = peak_sensitivities(params, **ARGS)
        z = circuit_figure(ARGS["n_drivers"], ARGS["inductance"],
                           ARGS["vdd"] / ARGS["rise_time"])
        assert s.vmax == pytest.approx(peak_noise_from_figure(z, params, 1.8), rel=1e-12)

    @pytest.mark.parametrize("key,attr", [
        ("n_drivers", "d_n"),
        ("inductance", "d_l"),
    ])
    def test_circuit_partials_match_finite_difference(self, params, key, attr):
        s = peak_sensitivities(params, **ARGS)
        assert getattr(s, attr) == pytest.approx(
            numeric_partial(params, key), rel=1e-5
        )

    @pytest.mark.parametrize("key,attr", [
        ("k", "d_k"),
        ("lam", "d_lam"),
        ("v0", "d_v0"),
    ])
    def test_parameter_partials_match_finite_difference(self, params, key, attr):
        s = peak_sensitivities(params, **ARGS)
        assert getattr(s, attr) == pytest.approx(
            numeric_partial(params, key), rel=1e-5
        )

    def test_slope_partial_consistent_with_rise_time(self, params):
        """dV/dsr relates to dV/dtr by the chain rule sr = VDD/tr."""
        s = peak_sensitivities(params, **ARGS)
        tr = ARGS["rise_time"]
        h = tr * 1e-6
        hi = peak_sensitivities(params, 8, 5e-9, 1.8, tr + h).vmax
        lo = peak_sensitivities(params, 8, 5e-9, 1.8, tr - h).vmax
        dv_dtr = (hi - lo) / (2 * h)
        assert dv_dtr == pytest.approx(s.d_slope * (-1.8 / tr**2), rel=1e-4)

    def test_signs(self, params):
        s = peak_sensitivities(params, **ARGS)
        assert s.d_n > 0 and s.d_l > 0 and s.d_slope > 0 and s.d_k > 0
        assert s.d_lam < 0  # stronger feedback -> less noise
        assert s.d_v0 < 0  # later turn-on -> shorter window -> less noise
        assert s.d_vdd > 0


class TestElasticities:
    def test_n_l_slope_elasticities_identical(self, params):
        """The interchangeability claim: same elasticity for N, L, sr."""
        s = peak_sensitivities(params, **ARGS)
        assert s.elasticity("n") == pytest.approx(s.elasticity("l"), rel=1e-12)
        assert s.elasticity("n") == pytest.approx(s.elasticity("slope"), rel=1e-12)
        assert s.elasticity("n") == pytest.approx(s.elasticity("z"), rel=1e-12)

    def test_elasticity_between_zero_and_one(self, params):
        """Vmax grows sub-linearly in Z (saturating exponential)."""
        s = peak_sensitivities(params, **ARGS)
        assert 0.0 < s.elasticity("z") < 1.0

    def test_unknown_knob(self, params):
        with pytest.raises(KeyError):
            peak_sensitivities(params, **ARGS).elasticity("vdd")

    @settings(max_examples=40)
    @given(
        k=st.floats(1e-3, 0.05),
        lam=st.floats(1.0, 1.3),
        n=st.integers(1, 64),
        tr=st.floats(0.1e-9, 2e-9),
    )
    def test_elasticity_property(self, k, lam, n, tr):
        params = AsdmParameters(k=k, v0=0.6, lam=lam)
        s = peak_sensitivities(params, n, 5e-9, 1.8, tr)
        assert 0.0 <= s.elasticity("z") <= 1.0 + 1e-9


class TestLinearSpread:
    def test_matches_monte_carlo_small_spread(self, params):
        from repro.analysis import ParameterSpread, peak_noise_distribution

        s = peak_sensitivities(params, **ARGS)
        linear = linear_noise_spread(s, k_sigma_rel=0.03, v0_sigma=0.01, lam_sigma=0.005)
        mc = peak_noise_distribution(
            params, 8, 5e-9, 1.8, 0.5e-9,
            spread=ParameterSpread(k_sigma=0.03, v0_sigma=0.01, lam_sigma=0.005),
            trials=4000,
        )
        assert linear == pytest.approx(mc.std, rel=0.10)

    def test_zero_spread_zero_sigma(self, params):
        s = peak_sensitivities(params, **ARGS)
        assert linear_noise_spread(s, 0.0, 0.0, 0.0) == 0.0
