"""Integration test for E13: realistic gate edges and the PWL-drive model."""

import pytest

from repro.experiments import realistic_input


@pytest.fixture(scope="module")
def result():
    return realistic_input.run(n_drivers=4)


class TestRealisticInput:
    def test_pwl_model_recovers_accuracy(self, result):
        """Feeding the measured waveform restores paper-level accuracy."""
        assert abs(result.percent_error(result.pwl_peak)) < 8.0

    def test_pwl_beats_effective_ramp(self, result):
        assert abs(result.percent_error(result.pwl_peak)) < abs(
            result.percent_error(result.effective_ramp_peak)
        )

    def test_effective_ramp_conservative_naive_not(self, result):
        """The effective-ramp bridge overestimates (safe); using the
        chain-*input* edge rate can underestimate, because a tapered chain
        sharpens the edge it forwards."""
        assert result.percent_error(result.effective_ramp_peak) > 0
        assert result.effective_rise_time < result.spec.input_rise_time

    def test_pwl_peak_time_matches_simulation(self, result):
        assert result.pwl_peak_time == pytest.approx(
            result.simulated_peak_time, rel=0.10
        )

    def test_report_renders(self, result):
        text = result.format_report()
        assert "PWL-drive closed form" in text
        assert "tapered chain" in text
